#include "reward/reward.hpp"

#include <stdexcept>

#include "features/features.hpp"

namespace qrc::reward {

std::string_view reward_name(RewardKind kind) {
  switch (kind) {
    case RewardKind::kFidelity:
      return "fidelity";
    case RewardKind::kCriticalDepth:
      return "critical_depth";
    case RewardKind::kCombination:
      return "combination";
    case RewardKind::kGateCount:
      return "gate_count";
    case RewardKind::kDepth:
      return "depth";
  }
  return "unknown";
}

double expected_fidelity(const ir::Circuit& circuit,
                         const device::Device& device) {
  if (circuit.num_qubits() > device.num_qubits()) {
    return 0.0;
  }
  double fidelity = 1.0;
  for (const ir::Operation& op : circuit.ops()) {
    fidelity *= 1.0 - device.op_error(op);
    if (fidelity <= 0.0) {
      return 0.0;
    }
  }
  return fidelity;
}

double critical_depth_reward(const ir::Circuit& circuit) {
  return 1.0 - features::critical_depth_feature(circuit);
}

double combination_reward(const ir::Circuit& circuit,
                          const device::Device& device) {
  return (expected_fidelity(circuit, device) +
          critical_depth_reward(circuit)) /
         2.0;
}

double gate_count_reward(const ir::Circuit& circuit) {
  const double weighted =
      static_cast<double>(circuit.gate_count()) +
      2.0 * static_cast<double>(circuit.two_qubit_gate_count());
  return 1.0 / (1.0 + weighted / 50.0);
}

double depth_reward(const ir::Circuit& circuit) {
  return 1.0 / (1.0 + static_cast<double>(circuit.depth()) / 50.0);
}

double compute_reward(RewardKind kind, const ir::Circuit& circuit,
                      const device::Device& device) {
  switch (kind) {
    case RewardKind::kFidelity:
      return expected_fidelity(circuit, device);
    case RewardKind::kCriticalDepth:
      return critical_depth_reward(circuit);
    case RewardKind::kCombination:
      return combination_reward(circuit, device);
    case RewardKind::kGateCount:
      return gate_count_reward(circuit);
    case RewardKind::kDepth:
      return depth_reward(circuit);
  }
  throw std::invalid_argument("compute_reward: unknown kind");
}

}  // namespace qrc::reward
