/// \file reward.hpp
/// \brief The three optimisation objectives from the paper's Section IV-A:
///        expected fidelity, critical depth (as 1 - feature), and their
///        combination. All rewards live in [0, 1]; higher is better.
#pragma once

#include <cstdint>
#include <string_view>

#include "device/device.hpp"
#include "ir/circuit.hpp"

namespace qrc::reward {

/// Objective selector. The paper evaluates the first three; gate count and
/// depth are the further target metrics Section III-B names, provided as
/// extension objectives.
enum class RewardKind : std::uint8_t {
  kFidelity,
  kCriticalDepth,
  kCombination,
  kGateCount,  ///< extension: fewer gates is better
  kDepth,      ///< extension: shallower is better
};

[[nodiscard]] std::string_view reward_name(RewardKind kind);

/// Expected fidelity: the product over all operations of the success
/// probability (1 - error rate), using the device calibration. Gates on
/// uncoupled pairs or non-native 3+ qubit gates contribute probability 0,
/// so inexecutable circuits score 0.
[[nodiscard]] double expected_fidelity(const ir::Circuit& circuit,
                                       const device::Device& device);

/// 1 - critical_depth feature: rewards circuits whose two-qubit gates are
/// spread off the critical path.
[[nodiscard]] double critical_depth_reward(const ir::Circuit& circuit);

/// (fidelity + critical-depth) / 2.
[[nodiscard]] double combination_reward(const ir::Circuit& circuit,
                                        const device::Device& device);

/// 1 / (1 + gates/50): bounded in (0, 1], strictly decreasing in the
/// unitary gate count (two-qubit gates weighted 3x, reflecting their cost).
[[nodiscard]] double gate_count_reward(const ir::Circuit& circuit);

/// 1 / (1 + depth/50): bounded in (0, 1], strictly decreasing in depth.
[[nodiscard]] double depth_reward(const ir::Circuit& circuit);

/// Dispatch on `kind`.
[[nodiscard]] double compute_reward(RewardKind kind,
                                    const ir::Circuit& circuit,
                                    const device::Device& device);

}  // namespace qrc::reward
