#include "rl/thread_pool.hpp"

#include <stdexcept>

#include "obs/profiler.hpp"

namespace qrc::rl {

WorkerPool::WorkerPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  // The calling thread works too, so spawn one fewer.
  for (int i = 0; i + 1 < num_threads_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void WorkerPool::run_indices() {
  while (true) {
    const int i = next_index_.fetch_add(1, std::memory_order_relaxed);
    if (i >= job_size_) {
      return;
    }
    try {
      (*job_)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) {
        first_error_ = std::current_exception();
      }
    }
  }
}

void WorkerPool::worker_loop() {
  // Pool threads run the hot kernels, so they dominate sampled stacks;
  // enrolling caches the stack bounds the SIGPROF fp-walk validates
  // against (unenrolled threads degrade to PC-only samples).
  obs::Profiler::enroll_current_thread();
  std::uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) {
        return;
      }
      seen_generation = generation_;
    }
    run_indices();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --workers_active_;
    }
    done_cv_.notify_one();
  }
}

void WorkerPool::parallel_for(int n, const std::function<void(int)>& fn) {
  if (n <= 0) {
    return;
  }
  if (threads_.empty()) {
    for (int i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_size_ = n;
    next_index_.store(0, std::memory_order_relaxed);
    workers_active_ = static_cast<int>(threads_.size());
    first_error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();
  run_indices();  // the caller participates
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return workers_active_ == 0; });
    job_ = nullptr;
    error = first_error_;
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

}  // namespace qrc::rl
