/// \file thread_pool.hpp
/// \brief Persistent worker pool executing index-parallel jobs. Built for
///        the vectorized rollout engine: one job is "run fn(i) for every
///        i in [0, n)" where fn only touches state owned by index i, so
///        results are bitwise-identical regardless of thread count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qrc::rl {

/// Fixed-size pool of worker threads. A pool of size <= 1 executes jobs
/// inline on the calling thread (no threads spawned, zero sync overhead),
/// which keeps the serial path free of threading costs.
class WorkerPool {
 public:
  explicit WorkerPool(int num_threads);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Number of threads that execute jobs (>= 1; includes the caller).
  [[nodiscard]] int size() const { return num_threads_; }

  /// Runs fn(i) for every i in [0, n), distributing indices across the
  /// pool (the calling thread participates). Blocks until every index is
  /// done. If any invocation throws, the first exception is rethrown on
  /// the caller after the job completes.
  ///
  /// fn must only write to state owned by its index; under that contract
  /// the outcome is deterministic for any pool size.
  void parallel_for(int n, const std::function<void(int)>& fn);

 private:
  void worker_loop();
  void run_indices();

  int num_threads_ = 1;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;

  // Current job (valid while workers_active_ > 0).
  const std::function<void(int)>* job_ = nullptr;
  int job_size_ = 0;
  std::atomic<int> next_index_{0};
  int workers_active_ = 0;
  std::exception_ptr first_error_;
};

}  // namespace qrc::rl
