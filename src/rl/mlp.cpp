#include "rl/mlp.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <random>
#include <stdexcept>

namespace qrc::rl {

Mlp::Mlp(std::vector<int> sizes, std::uint64_t seed)
    : sizes_(std::move(sizes)) {
  if (sizes_.size() < 2) {
    throw std::invalid_argument("Mlp: need at least input and output sizes");
  }
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  for (std::size_t i = 0; i + 1 < sizes_.size(); ++i) {
    Layer layer;
    layer.in = sizes_[i];
    layer.out = sizes_[i + 1];
    const double scale = std::sqrt(2.0 / static_cast<double>(layer.in));
    layer.w.resize(static_cast<std::size_t>(layer.in * layer.out));
    for (double& v : layer.w) {
      v = gauss(rng) * scale;
    }
    layer.b.assign(static_cast<std::size_t>(layer.out), 0.0);
    layer.gw.assign(layer.w.size(), 0.0);
    layer.gb.assign(layer.b.size(), 0.0);
    layers_.push_back(std::move(layer));
  }
  acts_.resize(layers_.size() + 1);
}

std::vector<double> Mlp::forward(std::span<const double> input) const {
  if (static_cast<int>(input.size()) != input_size()) {
    throw std::invalid_argument("Mlp::forward: input size mismatch");
  }
  std::vector<double> cur(input.begin(), input.end());
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const Layer& layer = layers_[li];
    std::vector<double> next(static_cast<std::size_t>(layer.out));
    for (int o = 0; o < layer.out; ++o) {
      double acc = layer.b[static_cast<std::size_t>(o)];
      const double* row = &layer.w[static_cast<std::size_t>(o * layer.in)];
      for (int i = 0; i < layer.in; ++i) {
        acc += row[i] * cur[static_cast<std::size_t>(i)];
      }
      next[static_cast<std::size_t>(o)] =
          (li + 1 < layers_.size()) ? std::tanh(acc) : acc;
    }
    cur = std::move(next);
  }
  return cur;
}

std::vector<double> Mlp::forward_cached(std::span<const double> input) {
  if (static_cast<int>(input.size()) != input_size()) {
    throw std::invalid_argument("Mlp::forward_cached: input size mismatch");
  }
  acts_[0].assign(input.begin(), input.end());
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const Layer& layer = layers_[li];
    auto& out = acts_[li + 1];
    out.assign(static_cast<std::size_t>(layer.out), 0.0);
    const auto& in = acts_[li];
    for (int o = 0; o < layer.out; ++o) {
      double acc = layer.b[static_cast<std::size_t>(o)];
      const double* row = &layer.w[static_cast<std::size_t>(o * layer.in)];
      for (int i = 0; i < layer.in; ++i) {
        acc += row[i] * in[static_cast<std::size_t>(i)];
      }
      out[static_cast<std::size_t>(o)] =
          (li + 1 < layers_.size()) ? std::tanh(acc) : acc;
    }
  }
  return acts_.back();
}

void Mlp::backward(std::span<const double> grad_output) {
  if (static_cast<int>(grad_output.size()) != output_size()) {
    throw std::invalid_argument("Mlp::backward: gradient size mismatch");
  }
  std::vector<double> grad(grad_output.begin(), grad_output.end());
  for (int li = static_cast<int>(layers_.size()) - 1; li >= 0; --li) {
    Layer& layer = layers_[static_cast<std::size_t>(li)];
    const auto& in = acts_[static_cast<std::size_t>(li)];
    const auto& out = acts_[static_cast<std::size_t>(li) + 1];
    // For hidden layers the stored activation is tanh(z); d tanh = 1 - a^2.
    std::vector<double> dz(static_cast<std::size_t>(layer.out));
    const bool is_output = li == static_cast<int>(layers_.size()) - 1;
    for (int o = 0; o < layer.out; ++o) {
      const double a = out[static_cast<std::size_t>(o)];
      dz[static_cast<std::size_t>(o)] =
          grad[static_cast<std::size_t>(o)] *
          (is_output ? 1.0 : (1.0 - a * a));
    }
    std::vector<double> grad_in(static_cast<std::size_t>(layer.in), 0.0);
    for (int o = 0; o < layer.out; ++o) {
      const double d = dz[static_cast<std::size_t>(o)];
      double* grow = &layer.gw[static_cast<std::size_t>(o * layer.in)];
      const double* wrow = &layer.w[static_cast<std::size_t>(o * layer.in)];
      for (int i = 0; i < layer.in; ++i) {
        grow[i] += d * in[static_cast<std::size_t>(i)];
        grad_in[static_cast<std::size_t>(i)] += d * wrow[i];
      }
      layer.gb[static_cast<std::size_t>(o)] += d;
    }
    grad = std::move(grad_in);
  }
}

void Mlp::zero_grad() {
  for (Layer& layer : layers_) {
    std::fill(layer.gw.begin(), layer.gw.end(), 0.0);
    std::fill(layer.gb.begin(), layer.gb.end(), 0.0);
  }
}

std::size_t Mlp::num_parameters() const {
  std::size_t n = 0;
  for (const Layer& layer : layers_) {
    n += layer.w.size() + layer.b.size();
  }
  return n;
}

void Mlp::collect_parameters(std::vector<double*>& params,
                             std::vector<double*>& grads) {
  for (Layer& layer : layers_) {
    for (std::size_t i = 0; i < layer.w.size(); ++i) {
      params.push_back(&layer.w[i]);
      grads.push_back(&layer.gw[i]);
    }
    for (std::size_t i = 0; i < layer.b.size(); ++i) {
      params.push_back(&layer.b[i]);
      grads.push_back(&layer.gb[i]);
    }
  }
}

void Mlp::save(std::ostream& os) const {
  os << "mlp " << sizes_.size() << "\n";
  for (const int s : sizes_) {
    os << s << " ";
  }
  os << "\n";
  os.precision(17);
  for (const Layer& layer : layers_) {
    for (const double v : layer.w) {
      os << v << " ";
    }
    for (const double v : layer.b) {
      os << v << " ";
    }
    os << "\n";
  }
}

Mlp Mlp::load(std::istream& is) {
  std::string tag;
  std::size_t n_sizes = 0;
  is >> tag >> n_sizes;
  if (tag != "mlp" || n_sizes < 2 || n_sizes > 64) {
    throw std::runtime_error("Mlp::load: bad header");
  }
  std::vector<int> sizes(n_sizes);
  for (int& s : sizes) {
    is >> s;
    if (s < 1 || s > 65536) {
      throw std::runtime_error("Mlp::load: bad layer size");
    }
  }
  Mlp out(sizes, 0);
  for (Layer& layer : out.layers_) {
    for (double& v : layer.w) {
      is >> v;
    }
    for (double& v : layer.b) {
      is >> v;
    }
  }
  if (!is) {
    throw std::runtime_error("Mlp::load: truncated parameter data");
  }
  return out;
}

}  // namespace qrc::rl
