#include "rl/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <random>
#include <stdexcept>

#include "rl/thread_pool.hpp"

namespace qrc::rl {

Mlp::Mlp(std::vector<int> sizes, std::uint64_t seed)
    : sizes_(std::move(sizes)) {
  if (sizes_.size() < 2) {
    throw std::invalid_argument("Mlp: need at least input and output sizes");
  }
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  for (std::size_t i = 0; i + 1 < sizes_.size(); ++i) {
    Layer layer;
    layer.in = sizes_[i];
    layer.out = sizes_[i + 1];
    const double scale = std::sqrt(2.0 / static_cast<double>(layer.in));
    layer.w.resize(static_cast<std::size_t>(layer.in * layer.out));
    for (double& v : layer.w) {
      v = gauss(rng) * scale;
    }
    layer.b.assign(static_cast<std::size_t>(layer.out), 0.0);
    layer.gw.assign(layer.w.size(), 0.0);
    layer.gb.assign(layer.b.size(), 0.0);
    layers_.push_back(std::move(layer));
  }
  acts_.resize(layers_.size() + 1);
}

std::vector<double> Mlp::forward(std::span<const double> input) const {
  if (static_cast<int>(input.size()) != input_size()) {
    throw std::invalid_argument("Mlp::forward: input size mismatch");
  }
  std::vector<double> cur(input.begin(), input.end());
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const Layer& layer = layers_[li];
    std::vector<double> next(static_cast<std::size_t>(layer.out));
    for (int o = 0; o < layer.out; ++o) {
      double acc = layer.b[static_cast<std::size_t>(o)];
      const double* row = &layer.w[static_cast<std::size_t>(o * layer.in)];
      for (int i = 0; i < layer.in; ++i) {
        acc += row[i] * cur[static_cast<std::size_t>(i)];
      }
      next[static_cast<std::size_t>(o)] =
          (li + 1 < layers_.size()) ? std::tanh(acc) : acc;
    }
    cur = std::move(next);
  }
  return cur;
}

std::vector<double> Mlp::forward_cached(std::span<const double> input) {
  if (static_cast<int>(input.size()) != input_size()) {
    throw std::invalid_argument("Mlp::forward_cached: input size mismatch");
  }
  acts_[0].assign(input.begin(), input.end());
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const Layer& layer = layers_[li];
    auto& out = acts_[li + 1];
    out.assign(static_cast<std::size_t>(layer.out), 0.0);
    const auto& in = acts_[li];
    for (int o = 0; o < layer.out; ++o) {
      double acc = layer.b[static_cast<std::size_t>(o)];
      const double* row = &layer.w[static_cast<std::size_t>(o * layer.in)];
      for (int i = 0; i < layer.in; ++i) {
        acc += row[i] * in[static_cast<std::size_t>(i)];
      }
      out[static_cast<std::size_t>(o)] =
          (li + 1 < layers_.size()) ? std::tanh(acc) : acc;
    }
  }
  return acts_.back();
}

void Mlp::forward_rows(std::span<const double> inputs, int batch,
                       int row_begin, int row_end,
                       std::vector<std::vector<double>>& acts) const {
  (void)batch;
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const Layer& layer = layers_[li];
    const double* in = li == 0 ? inputs.data() : acts[li].data();
    double* out = acts[li + 1].data();
    const bool hidden = li + 1 < layers_.size();
    for (int r = row_begin; r < row_end; ++r) {
      const double* row_in = in + static_cast<std::size_t>(r) *
                                      static_cast<std::size_t>(layer.in);
      double* row_out = out + static_cast<std::size_t>(r) *
                                  static_cast<std::size_t>(layer.out);
      // Exactly the scalar forward() loop per row: bitwise-identical
      // accumulation order keeps the batched path interchangeable with N
      // scalar calls.
      for (int o = 0; o < layer.out; ++o) {
        double acc = layer.b[static_cast<std::size_t>(o)];
        const double* wrow = &layer.w[static_cast<std::size_t>(o * layer.in)];
        for (int i = 0; i < layer.in; ++i) {
          acc += wrow[i] * row_in[i];
        }
        row_out[o] = hidden ? std::tanh(acc) : acc;
      }
    }
  }
}

namespace {

/// Rows per worker chunk of a batched forward; amortizes pool dispatch
/// while leaving enough chunks for load balancing.
constexpr int kRowBlock = 8;

/// Sizes the per-layer row-major activation buffers. The input-layer
/// buffer (k = 0) is only needed when the activations are kept for a
/// backward pass; the plain forward reads the caller's input directly.
void size_batch_activations(const std::vector<int>& sizes, int batch,
                            std::vector<std::vector<double>>& acts,
                            bool with_input) {
  acts.resize(sizes.size());
  for (std::size_t k = with_input ? 0 : 1; k < sizes.size(); ++k) {
    acts[k].resize(static_cast<std::size_t>(batch) *
                   static_cast<std::size_t>(sizes[k]));
  }
}

}  // namespace

void Mlp::run_batch(std::span<const double> inputs, int batch,
                    std::vector<std::vector<double>>& acts,
                    WorkerPool* pool) const {
  if (pool != nullptr && pool->size() > 1 && batch > 1) {
    const int blocks = (batch + kRowBlock - 1) / kRowBlock;
    pool->parallel_for(blocks, [&](int blk) {
      const int begin = blk * kRowBlock;
      const int end = std::min(batch, begin + kRowBlock);
      forward_rows(inputs, batch, begin, end, acts);
    });
  } else {
    forward_rows(inputs, batch, 0, batch, acts);
  }
}

void Mlp::forward_batch(std::span<const double> inputs, int batch,
                        std::vector<double>& outputs,
                        WorkerPool* pool) const {
  if (batch < 0 ||
      inputs.size() != static_cast<std::size_t>(batch) *
                           static_cast<std::size_t>(input_size())) {
    throw std::invalid_argument("Mlp::forward_batch: input size mismatch");
  }
  if (batch == 0) {
    outputs.clear();
    return;
  }
  std::vector<std::vector<double>> acts;
  size_batch_activations(sizes_, batch, acts, /*with_input=*/false);
  run_batch(inputs, batch, acts, pool);
  outputs = std::move(acts.back());
}

const std::vector<double>& Mlp::forward_batch_cached(
    std::span<const double> inputs, int batch, WorkerPool* pool) {
  if (batch < 1 ||
      inputs.size() != static_cast<std::size_t>(batch) *
                           static_cast<std::size_t>(input_size())) {
    throw std::invalid_argument(
        "Mlp::forward_batch_cached: input size mismatch");
  }
  batch_size_ = batch;
  size_batch_activations(sizes_, batch, batch_acts_, /*with_input=*/true);
  batch_acts_[0].assign(inputs.begin(), inputs.end());
  run_batch(batch_acts_[0], batch, batch_acts_, pool);
  return batch_acts_.back();
}

void Mlp::backward_batch(std::span<const double> grad_outputs, int batch) {
  if (batch != batch_size_ ||
      grad_outputs.size() != static_cast<std::size_t>(batch) *
                                 static_cast<std::size_t>(output_size())) {
    throw std::invalid_argument("Mlp::backward_batch: gradient size mismatch");
  }
  // Row r of the batch replays the scalar backward() on row r's cached
  // activations. Rows run in ascending order so each gradient accumulator
  // receives its per-sample contributions in the same sequence as `batch`
  // scalar backward() calls — bitwise-identical accumulation.
  std::vector<double> grad;
  std::vector<double> grad_in;
  std::vector<double> dz;
  for (int r = 0; r < batch; ++r) {
    const double* g0 = grad_outputs.data() +
                       static_cast<std::size_t>(r) *
                           static_cast<std::size_t>(output_size());
    grad.assign(g0, g0 + output_size());
    for (int li = static_cast<int>(layers_.size()) - 1; li >= 0; --li) {
      Layer& layer = layers_[static_cast<std::size_t>(li)];
      const double* in =
          batch_acts_[static_cast<std::size_t>(li)].data() +
          static_cast<std::size_t>(r) * static_cast<std::size_t>(layer.in);
      const double* out =
          batch_acts_[static_cast<std::size_t>(li) + 1].data() +
          static_cast<std::size_t>(r) * static_cast<std::size_t>(layer.out);
      const bool is_output = li == static_cast<int>(layers_.size()) - 1;
      dz.resize(static_cast<std::size_t>(layer.out));
      for (int o = 0; o < layer.out; ++o) {
        const double a = out[o];
        dz[static_cast<std::size_t>(o)] =
            grad[static_cast<std::size_t>(o)] *
            (is_output ? 1.0 : (1.0 - a * a));
      }
      grad_in.assign(static_cast<std::size_t>(layer.in), 0.0);
      for (int o = 0; o < layer.out; ++o) {
        const double d = dz[static_cast<std::size_t>(o)];
        double* grow = &layer.gw[static_cast<std::size_t>(o * layer.in)];
        const double* wrow = &layer.w[static_cast<std::size_t>(o * layer.in)];
        for (int i = 0; i < layer.in; ++i) {
          grow[i] += d * in[i];
          grad_in[static_cast<std::size_t>(i)] += d * wrow[i];
        }
        layer.gb[static_cast<std::size_t>(o)] += d;
      }
      std::swap(grad, grad_in);
    }
  }
}

void Mlp::backward(std::span<const double> grad_output) {
  if (static_cast<int>(grad_output.size()) != output_size()) {
    throw std::invalid_argument("Mlp::backward: gradient size mismatch");
  }
  std::vector<double> grad(grad_output.begin(), grad_output.end());
  for (int li = static_cast<int>(layers_.size()) - 1; li >= 0; --li) {
    Layer& layer = layers_[static_cast<std::size_t>(li)];
    const auto& in = acts_[static_cast<std::size_t>(li)];
    const auto& out = acts_[static_cast<std::size_t>(li) + 1];
    // For hidden layers the stored activation is tanh(z); d tanh = 1 - a^2.
    std::vector<double> dz(static_cast<std::size_t>(layer.out));
    const bool is_output = li == static_cast<int>(layers_.size()) - 1;
    for (int o = 0; o < layer.out; ++o) {
      const double a = out[static_cast<std::size_t>(o)];
      dz[static_cast<std::size_t>(o)] =
          grad[static_cast<std::size_t>(o)] *
          (is_output ? 1.0 : (1.0 - a * a));
    }
    std::vector<double> grad_in(static_cast<std::size_t>(layer.in), 0.0);
    for (int o = 0; o < layer.out; ++o) {
      const double d = dz[static_cast<std::size_t>(o)];
      double* grow = &layer.gw[static_cast<std::size_t>(o * layer.in)];
      const double* wrow = &layer.w[static_cast<std::size_t>(o * layer.in)];
      for (int i = 0; i < layer.in; ++i) {
        grow[i] += d * in[static_cast<std::size_t>(i)];
        grad_in[static_cast<std::size_t>(i)] += d * wrow[i];
      }
      layer.gb[static_cast<std::size_t>(o)] += d;
    }
    grad = std::move(grad_in);
  }
}

void Mlp::zero_grad() {
  for (Layer& layer : layers_) {
    std::fill(layer.gw.begin(), layer.gw.end(), 0.0);
    std::fill(layer.gb.begin(), layer.gb.end(), 0.0);
  }
}

std::size_t Mlp::num_parameters() const {
  std::size_t n = 0;
  for (const Layer& layer : layers_) {
    n += layer.w.size() + layer.b.size();
  }
  return n;
}

void Mlp::collect_parameters(std::vector<double*>& params,
                             std::vector<double*>& grads) {
  for (Layer& layer : layers_) {
    for (std::size_t i = 0; i < layer.w.size(); ++i) {
      params.push_back(&layer.w[i]);
      grads.push_back(&layer.gw[i]);
    }
    for (std::size_t i = 0; i < layer.b.size(); ++i) {
      params.push_back(&layer.b[i]);
      grads.push_back(&layer.gb[i]);
    }
  }
}

void Mlp::save(std::ostream& os) const {
  os << "mlp " << sizes_.size() << "\n";
  for (const int s : sizes_) {
    os << s << " ";
  }
  os << "\n";
  os.precision(17);
  for (const Layer& layer : layers_) {
    for (const double v : layer.w) {
      os << v << " ";
    }
    for (const double v : layer.b) {
      os << v << " ";
    }
    os << "\n";
  }
}

Mlp Mlp::load(std::istream& is) {
  std::string tag;
  std::size_t n_sizes = 0;
  is >> tag >> n_sizes;
  if (tag != "mlp" || n_sizes < 2 || n_sizes > 64) {
    throw std::runtime_error("Mlp::load: bad header");
  }
  std::vector<int> sizes(n_sizes);
  for (int& s : sizes) {
    is >> s;
    if (s < 1 || s > 65536) {
      throw std::runtime_error("Mlp::load: bad layer size");
    }
  }
  Mlp out(sizes, 0);
  for (Layer& layer : out.layers_) {
    for (double& v : layer.w) {
      is >> v;
    }
    for (double& v : layer.b) {
      is >> v;
    }
  }
  if (!is) {
    throw std::runtime_error("Mlp::load: truncated parameter data");
  }
  return out;
}

}  // namespace qrc::rl
