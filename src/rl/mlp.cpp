#include "rl/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <ostream>
#include <random>
#include <stdexcept>
#include <string>

#include "rl/thread_pool.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define QRC_MLP_X86 1
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#define QRC_MLP_NEON 1
#endif

namespace qrc::rl {

namespace {

// ---- Dense row kernels ----------------------------------------------------
//
// All kernels compute, for one sample x, y[o] = b[o] + sum_i w[o][i] * x[i]
// with the i-accumulation strictly sequential and one IEEE multiply + one
// IEEE add per step (never an FMA; the library is built with
// -ffp-contract=off so the compiler cannot fuse them either). The vector
// kernels put adjacent *output neurons* in adjacent lanes — each lane
// executes exactly the scalar op sequence of its neuron — so every variant
// is bitwise-identical to the portable one. The hidden-layer tanh is the
// same std::tanh per element everywhere.

/// Reference kernel over the row-major [out x in] weights.
void dense_row_portable(const double* w, const double* b, int in_n, int out_n,
                        const double* x, double* y, bool hidden) {
  for (int o = 0; o < out_n; ++o) {
    double acc = b[o];
    const double* wrow = w + static_cast<std::size_t>(o) *
                                 static_cast<std::size_t>(in_n);
    for (int i = 0; i < in_n; ++i) {
      acc += wrow[i] * x[i];
    }
    y[o] = hidden ? std::tanh(acc) : acc;
  }
}

/// Scalar tail over the transposed [in x out] weights (strided loads).
void dense_row_tail(const double* wt, const double* b, int in_n, int out_n,
                    int o_begin, const double* x, double* y) {
  for (int o = o_begin; o < out_n; ++o) {
    double acc = b[o];
    const double* wp = wt + o;
    for (int i = 0; i < in_n; ++i, wp += out_n) {
      acc += *wp * x[i];
    }
    y[o] = acc;
  }
}

#if defined(QRC_MLP_X86)
__attribute__((target("avx2")))
void dense_row_avx2(const double* wt, const double* b, int in_n, int out_n,
                    const double* x, double* y, bool hidden) {
  int o = 0;
  for (; o + 4 <= out_n; o += 4) {
    __m256d acc = _mm256_loadu_pd(b + o);
    const double* wp = wt + o;
    for (int i = 0; i < in_n; ++i, wp += out_n) {
      const __m256d prod =
          _mm256_mul_pd(_mm256_loadu_pd(wp), _mm256_set1_pd(x[i]));
      acc = _mm256_add_pd(acc, prod);
    }
    _mm256_storeu_pd(y + o, acc);
  }
  dense_row_tail(wt, b, in_n, out_n, o, x, y);
  if (hidden) {
    for (int j = 0; j < out_n; ++j) {
      y[j] = std::tanh(y[j]);
    }
  }
}
#endif

#if defined(QRC_MLP_NEON)
void dense_row_neon(const double* wt, const double* b, int in_n, int out_n,
                    const double* x, double* y, bool hidden) {
  int o = 0;
  for (; o + 2 <= out_n; o += 2) {
    float64x2_t acc = vld1q_f64(b + o);
    const double* wp = wt + o;
    for (int i = 0; i < in_n; ++i, wp += out_n) {
      const float64x2_t prod = vmulq_f64(vld1q_f64(wp), vdupq_n_f64(x[i]));
      acc = vaddq_f64(acc, prod);
    }
    vst1q_f64(y + o, acc);
  }
  dense_row_tail(wt, b, in_n, out_n, o, x, y);
  if (hidden) {
    for (int j = 0; j < out_n; ++j) {
      y[j] = std::tanh(y[j]);
    }
  }
}
#endif

enum class SimdIsa { kPortable, kAvx2, kNeon };

SimdIsa detect_isa() {
  if (const char* env = std::getenv("QRC_SIMD")) {
    const std::string want(env);
    if (want == "portable" || want == "scalar") {
      return SimdIsa::kPortable;
    }
    if (want == "avx2") {
#if defined(QRC_MLP_X86)
      if (__builtin_cpu_supports("avx2")) {
        return SimdIsa::kAvx2;
      }
#endif
      return SimdIsa::kPortable;
    }
    if (want == "neon") {
#if defined(QRC_MLP_NEON)
      return SimdIsa::kNeon;
#else
      return SimdIsa::kPortable;
#endif
    }
    // Unknown value: fall through to auto-detection.
  }
#if defined(QRC_MLP_X86)
  if (__builtin_cpu_supports("avx2")) {
    return SimdIsa::kAvx2;
  }
#endif
#if defined(QRC_MLP_NEON)
  return SimdIsa::kNeon;
#else
  return SimdIsa::kPortable;
#endif
}

/// The kernel for this process, chosen once (first use).
SimdIsa active_isa() {
  static const SimdIsa isa = detect_isa();
  return isa;
}

/// Builds the per-layer [in x out] transposes used by the vector kernels.
template <typename LayerT>
void transpose_weights(const std::vector<LayerT>& layers,
                       std::vector<std::vector<double>>& wt) {
  wt.resize(layers.size());
  for (std::size_t li = 0; li < layers.size(); ++li) {
    const auto& layer = layers[li];
    auto& t = wt[li];
    t.resize(layer.w.size());
    for (int o = 0; o < layer.out; ++o) {
      const double* wrow = layer.w.data() + static_cast<std::size_t>(o) *
                                                static_cast<std::size_t>(
                                                    layer.in);
      for (int i = 0; i < layer.in; ++i) {
        t[static_cast<std::size_t>(i) * static_cast<std::size_t>(layer.out) +
          static_cast<std::size_t>(o)] = wrow[i];
      }
    }
  }
}

}  // namespace

const char* simd_kernel_name() {
  switch (active_isa()) {
    case SimdIsa::kAvx2:
      return "avx2";
    case SimdIsa::kNeon:
      return "neon";
    default:
      return "portable";
  }
}

Mlp::Mlp(std::vector<int> sizes, std::uint64_t seed)
    : sizes_(std::move(sizes)) {
  if (sizes_.size() < 2) {
    throw std::invalid_argument("Mlp: need at least input and output sizes");
  }
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  for (std::size_t i = 0; i + 1 < sizes_.size(); ++i) {
    Layer layer;
    layer.in = sizes_[i];
    layer.out = sizes_[i + 1];
    const double scale = std::sqrt(2.0 / static_cast<double>(layer.in));
    layer.w.resize(static_cast<std::size_t>(layer.in * layer.out));
    for (double& v : layer.w) {
      v = gauss(rng) * scale;
    }
    layer.b.assign(static_cast<std::size_t>(layer.out), 0.0);
    layer.gw.assign(layer.w.size(), 0.0);
    layer.gb.assign(layer.b.size(), 0.0);
    layers_.push_back(std::move(layer));
  }
  acts_.resize(layers_.size() + 1);
  rebuild_transposes();
}

void Mlp::rebuild_transposes() { transpose_weights(layers_, wt_); }

const double* const* Mlp::vector_weights(
    std::vector<const double*>& ptrs) const {
  if (active_isa() == SimdIsa::kPortable) {
    return nullptr;
  }
  ptrs.resize(layers_.size());
  if (!weights_shared_) {
    for (std::size_t li = 0; li < layers_.size(); ++li) {
      ptrs[li] = wt_[li].data();
    }
    return ptrs.data();
  }
  // Training mode: the optimizer owns raw weight pointers, so re-transpose
  // on every batched forward. Thread-local scratch keeps concurrent const
  // calls on a shared instance race-free.
  thread_local std::vector<std::vector<double>> scratch;
  transpose_weights(layers_, scratch);
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    ptrs[li] = scratch[li].data();
  }
  return ptrs.data();
}

std::vector<double> Mlp::forward(std::span<const double> input) const {
  if (static_cast<int>(input.size()) != input_size()) {
    throw std::invalid_argument("Mlp::forward: input size mismatch");
  }
  std::vector<double> cur(input.begin(), input.end());
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const Layer& layer = layers_[li];
    std::vector<double> next(static_cast<std::size_t>(layer.out));
    dense_row_portable(layer.w.data(), layer.b.data(), layer.in, layer.out,
                       cur.data(), next.data(),
                       /*hidden=*/li + 1 < layers_.size());
    cur = std::move(next);
  }
  return cur;
}

std::vector<double> Mlp::forward_cached(std::span<const double> input) {
  if (static_cast<int>(input.size()) != input_size()) {
    throw std::invalid_argument("Mlp::forward_cached: input size mismatch");
  }
  acts_[0].assign(input.begin(), input.end());
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const Layer& layer = layers_[li];
    auto& out = acts_[li + 1];
    out.assign(static_cast<std::size_t>(layer.out), 0.0);
    dense_row_portable(layer.w.data(), layer.b.data(), layer.in, layer.out,
                       acts_[li].data(), out.data(),
                       /*hidden=*/li + 1 < layers_.size());
  }
  return acts_.back();
}

void Mlp::forward_rows(double* const* levels, const double* const* wt,
                       int row_begin, int row_end) const {
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const Layer& layer = layers_[li];
    const double* in = levels[li];
    double* out = levels[li + 1];
    const bool hidden = li + 1 < layers_.size();
    for (int r = row_begin; r < row_end; ++r) {
      const double* x = in + static_cast<std::size_t>(r) *
                                 static_cast<std::size_t>(layer.in);
      double* y = out + static_cast<std::size_t>(r) *
                            static_cast<std::size_t>(layer.out);
      if (wt == nullptr) {
        dense_row_portable(layer.w.data(), layer.b.data(), layer.in,
                           layer.out, x, y, hidden);
#if defined(QRC_MLP_X86)
      } else if (active_isa() == SimdIsa::kAvx2) {
        dense_row_avx2(wt[li], layer.b.data(), layer.in, layer.out, x, y,
                       hidden);
#endif
#if defined(QRC_MLP_NEON)
      } else if (active_isa() == SimdIsa::kNeon) {
        dense_row_neon(wt[li], layer.b.data(), layer.in, layer.out, x, y,
                       hidden);
#endif
      } else {
        dense_row_portable(layer.w.data(), layer.b.data(), layer.in,
                           layer.out, x, y, hidden);
      }
    }
  }
}

namespace {

/// Rows per worker chunk of a batched forward; amortizes pool dispatch
/// while leaving enough chunks for load balancing.
constexpr int kRowBlock = 8;

}  // namespace

void Mlp::run_batch(double* const* levels, const double* const* wt, int batch,
                    WorkerPool* pool) const {
  if (pool != nullptr && pool->size() > 1 && batch > 1) {
    const int blocks = (batch + kRowBlock - 1) / kRowBlock;
    pool->parallel_for(blocks, [&](int blk) {
      const int begin = blk * kRowBlock;
      const int end = std::min(batch, begin + kRowBlock);
      forward_rows(levels, wt, begin, end);
    });
  } else {
    forward_rows(levels, wt, 0, batch);
  }
}

void Mlp::forward_batch(std::span<const double> inputs, int batch,
                        std::vector<double>& outputs,
                        WorkerPool* pool) const {
  if (batch < 0 ||
      inputs.size() != static_cast<std::size_t>(batch) *
                           static_cast<std::size_t>(input_size())) {
    throw std::invalid_argument("Mlp::forward_batch: input size mismatch");
  }
  if (batch == 0) {
    outputs.clear();
    return;
  }
  const std::size_t levels_n = layers_.size() + 1;
  outputs.resize(static_cast<std::size_t>(batch) *
                 static_cast<std::size_t>(output_size()));
  // Intermediate activations live in one flat thread-local arena reused
  // across calls (per caller thread, so concurrent const calls on a shared
  // instance stay independent); the last layer writes straight into the
  // caller's output buffer.
  thread_local std::vector<double> arena;
  thread_local std::vector<double*> levels;
  thread_local std::vector<const double*> wt_ptrs;
  levels.assign(levels_n, nullptr);
  std::size_t total = 0;
  for (std::size_t k = 1; k + 1 < levels_n; ++k) {
    total += static_cast<std::size_t>(batch) *
             static_cast<std::size_t>(sizes_[k]);
  }
  if (arena.size() < total) {
    arena.resize(total);
  }
  // Level 0 is read-only throughout forward_rows; the cast only lets the
  // input share the levels array with the writable buffers.
  levels[0] = const_cast<double*>(inputs.data());
  std::size_t off = 0;
  for (std::size_t k = 1; k + 1 < levels_n; ++k) {
    levels[k] = arena.data() + off;
    off += static_cast<std::size_t>(batch) *
           static_cast<std::size_t>(sizes_[k]);
  }
  levels[levels_n - 1] = outputs.data();
  run_batch(levels.data(), vector_weights(wt_ptrs), batch, pool);
}

const std::vector<double>& Mlp::forward_batch_cached(
    std::span<const double> inputs, int batch, WorkerPool* pool) {
  if (batch < 1 ||
      inputs.size() != static_cast<std::size_t>(batch) *
                           static_cast<std::size_t>(input_size())) {
    throw std::invalid_argument(
        "Mlp::forward_batch_cached: input size mismatch");
  }
  batch_size_ = batch;
  const std::size_t num_layers = layers_.size();
  // Levels 0..L-1 (input + hidden activations) pack into one flat arena
  // kept for backward_batch; the output level stays its own vector so the
  // returned reference survives unrelated calls.
  batch_off_.assign(num_layers, 0);
  std::size_t total = 0;
  for (std::size_t k = 0; k < num_layers; ++k) {
    batch_off_[k] = total;
    total += static_cast<std::size_t>(batch) *
             static_cast<std::size_t>(sizes_[k]);
  }
  if (batch_arena_.size() < total) {
    batch_arena_.resize(total);
  }
  batch_out_.resize(static_cast<std::size_t>(batch) *
                    static_cast<std::size_t>(output_size()));
  std::copy(inputs.begin(), inputs.end(),
            batch_arena_.begin() +
                static_cast<std::ptrdiff_t>(batch_off_[0]));
  thread_local std::vector<double*> levels;
  thread_local std::vector<const double*> wt_ptrs;
  levels.assign(num_layers + 1, nullptr);
  for (std::size_t k = 0; k < num_layers; ++k) {
    levels[k] = batch_arena_.data() + batch_off_[k];
  }
  levels[num_layers] = batch_out_.data();
  run_batch(levels.data(), vector_weights(wt_ptrs), batch, pool);
  return batch_out_;
}

void Mlp::backward_batch(std::span<const double> grad_outputs, int batch) {
  if (batch != batch_size_ ||
      grad_outputs.size() != static_cast<std::size_t>(batch) *
                                 static_cast<std::size_t>(output_size())) {
    throw std::invalid_argument("Mlp::backward_batch: gradient size mismatch");
  }
  // Row r of the batch replays the scalar backward() on row r's cached
  // activations. Rows run in ascending order so each gradient accumulator
  // receives its per-sample contributions in the same sequence as `batch`
  // scalar backward() calls — bitwise-identical accumulation.
  const auto num_layers = static_cast<int>(layers_.size());
  const auto cached_level = [&](int k) -> const double* {
    return k == num_layers ? batch_out_.data()
                           : batch_arena_.data() + batch_off_[
                                 static_cast<std::size_t>(k)];
  };
  std::vector<double> grad;
  std::vector<double> grad_in;
  std::vector<double> dz;
  for (int r = 0; r < batch; ++r) {
    const double* g0 = grad_outputs.data() +
                       static_cast<std::size_t>(r) *
                           static_cast<std::size_t>(output_size());
    grad.assign(g0, g0 + output_size());
    for (int li = num_layers - 1; li >= 0; --li) {
      Layer& layer = layers_[static_cast<std::size_t>(li)];
      const double* in =
          cached_level(li) +
          static_cast<std::size_t>(r) * static_cast<std::size_t>(layer.in);
      const double* out =
          cached_level(li + 1) +
          static_cast<std::size_t>(r) * static_cast<std::size_t>(layer.out);
      const bool is_output = li == num_layers - 1;
      dz.resize(static_cast<std::size_t>(layer.out));
      for (int o = 0; o < layer.out; ++o) {
        const double a = out[o];
        dz[static_cast<std::size_t>(o)] =
            grad[static_cast<std::size_t>(o)] *
            (is_output ? 1.0 : (1.0 - a * a));
      }
      grad_in.assign(static_cast<std::size_t>(layer.in), 0.0);
      for (int o = 0; o < layer.out; ++o) {
        const double d = dz[static_cast<std::size_t>(o)];
        double* grow = &layer.gw[static_cast<std::size_t>(o * layer.in)];
        const double* wrow = &layer.w[static_cast<std::size_t>(o * layer.in)];
        for (int i = 0; i < layer.in; ++i) {
          grow[i] += d * in[i];
          grad_in[static_cast<std::size_t>(i)] += d * wrow[i];
        }
        layer.gb[static_cast<std::size_t>(o)] += d;
      }
      std::swap(grad, grad_in);
    }
  }
}

void Mlp::backward(std::span<const double> grad_output) {
  if (static_cast<int>(grad_output.size()) != output_size()) {
    throw std::invalid_argument("Mlp::backward: gradient size mismatch");
  }
  std::vector<double> grad(grad_output.begin(), grad_output.end());
  for (int li = static_cast<int>(layers_.size()) - 1; li >= 0; --li) {
    Layer& layer = layers_[static_cast<std::size_t>(li)];
    const auto& in = acts_[static_cast<std::size_t>(li)];
    const auto& out = acts_[static_cast<std::size_t>(li) + 1];
    // For hidden layers the stored activation is tanh(z); d tanh = 1 - a^2.
    std::vector<double> dz(static_cast<std::size_t>(layer.out));
    const bool is_output = li == static_cast<int>(layers_.size()) - 1;
    for (int o = 0; o < layer.out; ++o) {
      const double a = out[static_cast<std::size_t>(o)];
      dz[static_cast<std::size_t>(o)] =
          grad[static_cast<std::size_t>(o)] *
          (is_output ? 1.0 : (1.0 - a * a));
    }
    std::vector<double> grad_in(static_cast<std::size_t>(layer.in), 0.0);
    for (int o = 0; o < layer.out; ++o) {
      const double d = dz[static_cast<std::size_t>(o)];
      double* grow = &layer.gw[static_cast<std::size_t>(o * layer.in)];
      const double* wrow = &layer.w[static_cast<std::size_t>(o * layer.in)];
      for (int i = 0; i < layer.in; ++i) {
        grow[i] += d * in[static_cast<std::size_t>(i)];
        grad_in[static_cast<std::size_t>(i)] += d * wrow[i];
      }
      layer.gb[static_cast<std::size_t>(o)] += d;
    }
    grad = std::move(grad_in);
  }
}

void Mlp::zero_grad() {
  for (Layer& layer : layers_) {
    std::fill(layer.gw.begin(), layer.gw.end(), 0.0);
    std::fill(layer.gb.begin(), layer.gb.end(), 0.0);
  }
}

std::size_t Mlp::num_parameters() const {
  std::size_t n = 0;
  for (const Layer& layer : layers_) {
    n += layer.w.size() + layer.b.size();
  }
  return n;
}

void Mlp::collect_parameters(std::vector<double*>& params,
                             std::vector<double*>& grads) {
  // From here on the optimizer may rewrite weights through these pointers
  // at any time; vector_weights() switches to per-call re-transposition.
  weights_shared_ = true;
  for (Layer& layer : layers_) {
    for (std::size_t i = 0; i < layer.w.size(); ++i) {
      params.push_back(&layer.w[i]);
      grads.push_back(&layer.gw[i]);
    }
    for (std::size_t i = 0; i < layer.b.size(); ++i) {
      params.push_back(&layer.b[i]);
      grads.push_back(&layer.gb[i]);
    }
  }
}

void Mlp::save(std::ostream& os) const {
  os << "mlp " << sizes_.size() << "\n";
  for (const int s : sizes_) {
    os << s << " ";
  }
  os << "\n";
  os.precision(17);
  for (const Layer& layer : layers_) {
    for (const double v : layer.w) {
      os << v << " ";
    }
    for (const double v : layer.b) {
      os << v << " ";
    }
    os << "\n";
  }
}

Mlp Mlp::load(std::istream& is) {
  std::string tag;
  std::size_t n_sizes = 0;
  is >> tag >> n_sizes;
  if (tag != "mlp" || n_sizes < 2 || n_sizes > 64) {
    throw std::runtime_error("Mlp::load: bad header");
  }
  std::vector<int> sizes(n_sizes);
  for (int& s : sizes) {
    is >> s;
    if (s < 1 || s > 65536) {
      throw std::runtime_error("Mlp::load: bad layer size");
    }
  }
  Mlp out(sizes, 0);
  for (Layer& layer : out.layers_) {
    for (double& v : layer.w) {
      is >> v;
    }
    for (double& v : layer.b) {
      is >> v;
    }
  }
  if (!is) {
    throw std::runtime_error("Mlp::load: truncated parameter data");
  }
  out.rebuild_transposes();
  return out;
}

}  // namespace qrc::rl
