#include "rl/vec_env.hpp"

#include <algorithm>
#include <stdexcept>

namespace qrc::rl {

VecEnv::VecEnv(const std::function<std::unique_ptr<Env>(int)>& factory,
               int num_envs, int num_workers)
    : pool_(num_workers) {
  if (num_envs < 1) {
    throw std::invalid_argument("VecEnv: need at least one env");
  }
  envs_.reserve(static_cast<std::size_t>(num_envs));
  for (int i = 0; i < num_envs; ++i) {
    auto env = factory(i);
    if (env == nullptr) {
      throw std::invalid_argument("VecEnv: factory returned null env");
    }
    envs_.push_back(std::move(env));
  }
  const int obs_size = envs_.front()->observation_size();
  const int actions = envs_.front()->num_actions();
  for (const auto& env : envs_) {
    if (env->observation_size() != obs_size ||
        env->num_actions() != actions) {
      throw std::invalid_argument("VecEnv: envs disagree on spaces");
    }
  }
  obs_.resize(envs_.size());
  masks_.resize(envs_.size());
  results_.resize(envs_.size());
}

int VecEnv::observation_size() const {
  return envs_.front()->observation_size();
}

int VecEnv::num_actions() const { return envs_.front()->num_actions(); }

const std::vector<std::vector<double>>& VecEnv::reset() {
  pool_.parallel_for(num_envs(), [&](int i) {
    const auto idx = static_cast<std::size_t>(i);
    obs_[idx] = envs_[idx]->reset();
    masks_[idx] = envs_[idx]->action_mask();
  });
  return obs_;
}

void VecEnv::gather_observations(std::vector<double>& out) const {
  const auto width = static_cast<std::size_t>(observation_size());
  out.resize(envs_.size() * width);
  for (std::size_t e = 0; e < obs_.size(); ++e) {
    std::copy(obs_[e].begin(), obs_[e].end(), out.begin() + e * width);
  }
}

const std::vector<StepResult>& VecEnv::step(
    const std::vector<int>& actions) {
  if (static_cast<int>(actions.size()) != num_envs()) {
    throw std::invalid_argument("VecEnv::step: one action per env required");
  }
  return step_with(
      [&](int i) { return actions[static_cast<std::size_t>(i)]; });
}

const std::vector<StepResult>& VecEnv::step_with(
    const std::function<int(int)>& choose_action,
    const std::function<void(int, const StepResult&)>& on_result) {
  pool_.parallel_for(num_envs(), [&](int i) {
    const auto idx = static_cast<std::size_t>(i);
    results_[idx] = envs_[idx]->step(choose_action(i));
    if (results_[idx].done || results_[idx].truncated) {
      obs_[idx] = envs_[idx]->reset();
    } else {
      obs_[idx] = results_[idx].observation;
    }
    masks_[idx] = envs_[idx]->action_mask();
    if (on_result) {
      on_result(i, results_[idx]);
    }
  });
  return results_;
}

}  // namespace qrc::rl
