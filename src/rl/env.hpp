/// \file env.hpp
/// \brief Gym-style environment interface with action masking, implemented
///        by the compilation MDP (core/) and the toy environments in tests.
#pragma once

#include <vector>

namespace qrc::rl {

/// Result of one environment step.
struct StepResult {
  std::vector<double> observation;
  double reward = 0.0;
  bool done = false;       ///< reached a terminal state
  bool truncated = false;  ///< cut off by a step limit
};

/// Episodic environment with a discrete, maskable action space.
class Env {
 public:
  virtual ~Env() = default;
  Env() = default;
  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  [[nodiscard]] virtual int observation_size() const = 0;
  [[nodiscard]] virtual int num_actions() const = 0;

  /// Starts a new episode and returns the initial observation.
  virtual std::vector<double> reset() = 0;

  /// Valid actions in the current state (at least one must be valid).
  [[nodiscard]] virtual std::vector<bool> action_mask() const = 0;

  /// Applies an action. Precondition: the action is valid and the episode
  /// is not over.
  virtual StepResult step(int action) = 0;
};

}  // namespace qrc::rl
