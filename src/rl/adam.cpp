#include "rl/adam.hpp"

#include <cmath>
#include <stdexcept>

namespace qrc::rl {

Adam::Adam(std::vector<double*> params, std::vector<double*> grads,
           AdamConfig config)
    : params_(std::move(params)), grads_(std::move(grads)), config_(config) {
  if (params_.size() != grads_.size()) {
    throw std::invalid_argument("Adam: params/grads size mismatch");
  }
  m_.assign(params_.size(), 0.0);
  v_.assign(params_.size(), 0.0);
}

void Adam::step(double max_grad_norm) {
  ++t_;
  double scale = 1.0;
  if (max_grad_norm > 0.0) {
    double norm2 = 0.0;
    for (const double* g : grads_) {
      norm2 += (*g) * (*g);
    }
    const double norm = std::sqrt(norm2);
    if (norm > max_grad_norm) {
      scale = max_grad_norm / (norm + 1e-12);
    }
  }
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const double g = *grads_[i] * scale;
    m_[i] = config_.beta1 * m_[i] + (1.0 - config_.beta1) * g;
    v_[i] = config_.beta2 * v_[i] + (1.0 - config_.beta2) * g * g;
    const double mhat = m_[i] / bc1;
    const double vhat = v_[i] / bc2;
    *params_[i] -= config_.lr * mhat / (std::sqrt(vhat) + config_.eps);
  }
}

}  // namespace qrc::rl
