#include "rl/categorical.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qrc::rl {

MaskedCategorical::MaskedCategorical(std::span<const double> logits,
                                     const std::vector<bool>& mask) {
  if (logits.size() != mask.size() || logits.empty()) {
    throw std::invalid_argument("MaskedCategorical: size mismatch");
  }
  valid_.assign(mask.begin(), mask.end());
  // Stable softmax over valid entries.
  double max_logit = -1e300;
  bool any = false;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    if (valid_[i]) {
      max_logit = std::max(max_logit, logits[i]);
      any = true;
    }
  }
  if (!any) {
    throw std::invalid_argument("MaskedCategorical: no valid action");
  }
  probs_.assign(logits.size(), 0.0);
  double z = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    if (valid_[i]) {
      probs_[i] = std::exp(logits[i] - max_logit);
      z += probs_[i];
    }
  }
  for (double& p : probs_) {
    p /= z;
  }
}

int MaskedCategorical::sample(std::mt19937_64& rng) const {
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  const double u = uniform(rng);
  double acc = 0.0;
  int last_valid = -1;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    if (!valid_[i]) {
      continue;
    }
    last_valid = static_cast<int>(i);
    acc += probs_[i];
    if (u <= acc) {
      return static_cast<int>(i);
    }
  }
  return last_valid;  // numerical tail
}

int MaskedCategorical::argmax() const {
  int best = -1;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    if (valid_[i] && (best < 0 || probs_[i] > probs_[static_cast<std::size_t>(
                                                  best)])) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

double MaskedCategorical::log_prob(int action) const {
  const double p = probs_[static_cast<std::size_t>(action)];
  if (!valid_[static_cast<std::size_t>(action)] || p <= 0.0) {
    return -1e30;
  }
  return std::log(p);
}

double MaskedCategorical::entropy() const {
  double h = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    if (valid_[i] && probs_[i] > 0.0) {
      h -= probs_[i] * std::log(probs_[i]);
    }
  }
  return h;
}

std::vector<double> MaskedCategorical::log_prob_grad(int action) const {
  std::vector<double> grad(probs_.size(), 0.0);
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    if (valid_[i]) {
      grad[i] = -probs_[i];
    }
  }
  grad[static_cast<std::size_t>(action)] += 1.0;
  return grad;
}

std::vector<double> MaskedCategorical::entropy_grad() const {
  const double h = entropy();
  std::vector<double> grad(probs_.size(), 0.0);
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    if (valid_[i] && probs_[i] > 0.0) {
      grad[i] = -probs_[i] * (std::log(probs_[i]) + h);
    }
  }
  return grad;
}

}  // namespace qrc::rl
