#include "rl/categorical.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qrc::rl {

MaskedCategorical::MaskedCategorical(std::span<const double> logits,
                                     const std::vector<bool>& mask) {
  if (logits.size() != mask.size() || logits.empty()) {
    throw std::invalid_argument("MaskedCategorical: size mismatch");
  }
  valid_.assign(mask.begin(), mask.end());
  // Stable softmax over valid entries.
  double max_logit = -1e300;
  bool any = false;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    if (valid_[i]) {
      max_logit = std::max(max_logit, logits[i]);
      any = true;
    }
  }
  if (!any) {
    throw std::invalid_argument("MaskedCategorical: no valid action");
  }
  probs_.assign(logits.size(), 0.0);
  double z = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    if (valid_[i]) {
      probs_[i] = std::exp(logits[i] - max_logit);
      z += probs_[i];
    }
  }
  for (double& p : probs_) {
    p /= z;
  }
}

int MaskedCategorical::sample(std::mt19937_64& rng) const {
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  const double u = uniform(rng);
  double acc = 0.0;
  int last_valid = -1;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    if (!valid_[i]) {
      continue;
    }
    last_valid = static_cast<int>(i);
    acc += probs_[i];
    if (u <= acc) {
      return static_cast<int>(i);
    }
  }
  return last_valid;  // numerical tail
}

int MaskedCategorical::argmax() const {
  int best = -1;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    if (valid_[i] && (best < 0 || probs_[i] > probs_[static_cast<std::size_t>(
                                                  best)])) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

double MaskedCategorical::log_prob(int action) const {
  const double p = probs_[static_cast<std::size_t>(action)];
  if (!valid_[static_cast<std::size_t>(action)] || p <= 0.0) {
    return -1e30;
  }
  return std::log(p);
}

double MaskedCategorical::entropy() const {
  double h = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    if (valid_[i] && probs_[i] > 0.0) {
      h -= probs_[i] * std::log(probs_[i]);
    }
  }
  return h;
}

std::vector<double> MaskedCategorical::log_prob_grad(int action) const {
  std::vector<double> grad(probs_.size(), 0.0);
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    if (valid_[i]) {
      grad[i] = -probs_[i];
    }
  }
  grad[static_cast<std::size_t>(action)] += 1.0;
  return grad;
}

std::vector<double> MaskedCategorical::entropy_grad() const {
  const double h = entropy();
  std::vector<double> grad(probs_.size(), 0.0);
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    if (valid_[i] && probs_[i] > 0.0) {
      grad[i] = -probs_[i] * (std::log(probs_[i]) + h);
    }
  }
  return grad;
}

BatchedMaskedCategorical::BatchedMaskedCategorical(
    std::span<const double> logits,
    const std::vector<std::vector<bool>>& masks)
    : batch_(static_cast<int>(masks.size())) {
  if (batch_ == 0) {
    throw std::invalid_argument("BatchedMaskedCategorical: empty batch");
  }
  num_actions_ = static_cast<int>(masks.front().size());
  const auto n = static_cast<std::size_t>(num_actions_);
  if (num_actions_ == 0 ||
      logits.size() != static_cast<std::size_t>(batch_) * n) {
    throw std::invalid_argument("BatchedMaskedCategorical: size mismatch");
  }
  probs_.assign(logits.size(), 0.0);
  valid_.assign(logits.size(), 0);
  for (int r = 0; r < batch_; ++r) {
    const auto& mask = masks[static_cast<std::size_t>(r)];
    if (mask.size() != n) {
      throw std::invalid_argument("BatchedMaskedCategorical: ragged masks");
    }
    const double* row_logits = logits.data() + static_cast<std::size_t>(r) * n;
    double* row_probs = probs_.data() + static_cast<std::size_t>(r) * n;
    std::uint8_t* row_valid = valid_.data() + static_cast<std::size_t>(r) * n;
    // Stable softmax over valid entries — the MaskedCategorical
    // constructor, verbatim, per row.
    double max_logit = -1e300;
    bool any = false;
    for (std::size_t i = 0; i < n; ++i) {
      row_valid[i] = mask[i] ? 1 : 0;
      if (mask[i]) {
        max_logit = std::max(max_logit, row_logits[i]);
        any = true;
      }
    }
    if (!any) {
      throw std::invalid_argument("BatchedMaskedCategorical: no valid action");
    }
    double z = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (row_valid[i] != 0) {
        row_probs[i] = std::exp(row_logits[i] - max_logit);
        z += row_probs[i];
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      row_probs[i] /= z;
    }
  }
}

int BatchedMaskedCategorical::sample(int r, std::mt19937_64& rng) const {
  const auto row = probs(r);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  const double u = uniform(rng);
  double acc = 0.0;
  int last_valid = -1;
  for (int i = 0; i < num_actions_; ++i) {
    if (!valid(r, i)) {
      continue;
    }
    last_valid = i;
    acc += row[static_cast<std::size_t>(i)];
    if (u <= acc) {
      return i;
    }
  }
  return last_valid;  // numerical tail
}

int BatchedMaskedCategorical::argmax(int r) const {
  const auto row = probs(r);
  int best = -1;
  for (int i = 0; i < num_actions_; ++i) {
    if (valid(r, i) &&
        (best < 0 || row[static_cast<std::size_t>(i)] >
                         row[static_cast<std::size_t>(best)])) {
      best = i;
    }
  }
  return best;
}

double BatchedMaskedCategorical::log_prob(int r, int action) const {
  const double p = probs(r)[static_cast<std::size_t>(action)];
  if (!valid(r, action) || p <= 0.0) {
    return -1e30;
  }
  return std::log(p);
}

double BatchedMaskedCategorical::entropy(int r) const {
  const auto row = probs(r);
  double h = 0.0;
  for (int i = 0; i < num_actions_; ++i) {
    const double p = row[static_cast<std::size_t>(i)];
    if (valid(r, i) && p > 0.0) {
      h -= p * std::log(p);
    }
  }
  return h;
}

void BatchedMaskedCategorical::log_prob_grad(int r, int action,
                                             std::span<double> out) const {
  const auto row = probs(r);
  for (int i = 0; i < num_actions_; ++i) {
    out[static_cast<std::size_t>(i)] =
        valid(r, i) ? -row[static_cast<std::size_t>(i)] : 0.0;
  }
  out[static_cast<std::size_t>(action)] += 1.0;
}

void BatchedMaskedCategorical::entropy_grad(int r,
                                            std::span<double> out) const {
  const double h = entropy(r);
  const auto row = probs(r);
  for (int i = 0; i < num_actions_; ++i) {
    const double p = row[static_cast<std::size_t>(i)];
    out[static_cast<std::size_t>(i)] =
        (valid(r, i) && p > 0.0) ? -p * (std::log(p) + h) : 0.0;
  }
}

}  // namespace qrc::rl
