/// \file ppo.hpp
/// \brief Proximal Policy Optimization (Schulman et al., 2017) with the
///        clipped surrogate objective, GAE(lambda) advantages, entropy
///        regularisation and action masking — the learner the paper drives
///        through Stable-Baselines3, rebuilt natively.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "rl/adam.hpp"
#include "rl/env.hpp"
#include "rl/mlp.hpp"

namespace qrc::obs {
class MetricsRegistry;
}  // namespace qrc::obs

namespace qrc::rl {

struct PpoConfig {
  int total_timesteps = 100000;
  int steps_per_update = 1024;  ///< rollout horizon
  int minibatch_size = 64;
  int epochs_per_update = 10;
  double gamma = 0.99;
  double gae_lambda = 0.95;
  double clip_range = 0.2;
  double learning_rate = 3e-4;
  double entropy_coef = 0.01;
  double value_coef = 0.5;
  double max_grad_norm = 0.5;
  std::vector<int> hidden_sizes = {64, 64};
  std::uint64_t seed = 1;
};

/// Per-update training statistics. Every field is a pure observation of
/// quantities the update computes anyway (or wall-clock timing), so
/// collecting them never perturbs the trained weights.
struct PpoUpdateStats {
  int update_index = 0;  ///< 0-based position in the training run
  int timesteps = 0;     ///< cumulative env steps after this update
  double mean_episode_reward = 0.0;
  double mean_episode_length = 0.0;  ///< steps, over episodes ended this update
  double policy_loss = 0.0;
  double value_loss = 0.0;
  double entropy = 0.0;
  /// Mean of (old_log_prob - new_log_prob) over all epoch samples — the
  /// usual first-order KL estimate (Schulman's approx_kl).
  double approx_kl = 0.0;
  /// Fraction of epoch samples whose ratio left [1-clip, 1+clip].
  double clip_fraction = 0.0;
  double env_steps_per_sec = 0.0;  ///< rollout + optimisation wall rate
  std::int64_t update_duration_us = 0;
  int episodes = 0;
};

/// The trained agent: policy and value networks plus the config used.
class PpoAgent {
 public:
  PpoAgent(int obs_size, int num_actions, const PpoConfig& config);

  /// Greedy (deterministic) action for inference.
  [[nodiscard]] int act_greedy(std::span<const double> observation,
                               const std::vector<bool>& mask) const;

  /// Action probabilities under the masked policy (for ranked selection).
  [[nodiscard]] std::vector<double> action_probabilities(
      std::span<const double> observation,
      const std::vector<bool>& mask) const;

  /// Stochastic action (used during training).
  [[nodiscard]] int act_sample(std::span<const double> observation,
                               const std::vector<bool>& mask,
                               std::mt19937_64& rng) const;

  [[nodiscard]] double value(std::span<const double> observation) const;

  void save(std::ostream& os) const;
  static PpoAgent load(std::istream& is);

  [[nodiscard]] Mlp& policy() { return policy_; }
  [[nodiscard]] Mlp& value_net() { return value_; }
  [[nodiscard]] const Mlp& policy() const { return policy_; }
  [[nodiscard]] const Mlp& value_net() const { return value_; }
  [[nodiscard]] const PpoConfig& config() const { return config_; }

 private:
  PpoConfig config_;
  Mlp policy_;
  Mlp value_;
};

/// Runs PPO on `env` and returns the trained agent plus per-update stats.
/// `progress` (optional) is invoked after every update. `metrics`
/// (optional) receives the qrc_train_* families after every update;
/// instrumentation observes values the update already computed, so results
/// are bitwise-identical with or without it.
PpoAgent train_ppo(
    Env& env, const PpoConfig& config,
    std::vector<PpoUpdateStats>* stats_out = nullptr,
    const std::function<void(const PpoUpdateStats&)>& progress = {},
    obs::MetricsRegistry* metrics = nullptr);

class VecEnv;

/// Vectorized PPO: fills the `steps_per_update` horizon from all of
/// `envs`' environments concurrently (the horizon is rounded down to a
/// multiple of num_envs, minimum one round per env). Each lockstep round
/// gathers all N observations and issues ONE batched policy forward and
/// ONE batched value forward (row-parallel on the VecEnv's worker pool)
/// instead of N scalar ones; actions are drawn from a batched masked
/// categorical with per-env RNG streams, and env stepping runs on the same
/// pool. The PPO epochs likewise use batched forward/backward passes per
/// minibatch. All batched math is bitwise-identical to the per-sample
/// path, so the result is bitwise-deterministic for a fixed
/// (config.seed, envs.num_envs()) pair, independent of the worker count.
PpoAgent train_ppo_vec(
    VecEnv& envs, const PpoConfig& config,
    std::vector<PpoUpdateStats>* stats_out = nullptr,
    const std::function<void(const PpoUpdateStats&)>& progress = {},
    obs::MetricsRegistry* metrics = nullptr);

}  // namespace qrc::rl
