#include "rl/ppo.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>
#include <span>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "rl/categorical.hpp"
#include "rl/thread_pool.hpp"
#include "rl/vec_env.hpp"

namespace qrc::rl {

namespace {

std::vector<int> network_sizes(int obs, const std::vector<int>& hidden,
                               int out) {
  std::vector<int> sizes{obs};
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(out);
  return sizes;
}

/// One transition of the rollout buffer.
struct Transition {
  std::vector<double> obs;
  std::vector<bool> mask;
  int action = 0;
  double log_prob = 0.0;
  double value = 0.0;
  double reward = 0.0;
  bool episode_end = false;   ///< done or truncated after this step
  double bootstrap = 0.0;     ///< value of the next state when truncated
};

/// GAE(lambda) over one contiguous trajectory segment (one env's slice of
/// the rollout). `value_after_last` is V(s_{T}) for the state following
/// the segment's last transition (ignored when that transition ended an
/// episode — the in-loop reset applies then, exactly as in the serial
/// path).
void compute_gae_segment(std::span<const Transition> segment,
                         double value_after_last, const PpoConfig& config,
                         std::span<double> advantages,
                         std::span<double> returns) {
  const std::size_t n = segment.size();
  double next_value = value_after_last;
  double gae = 0.0;
  for (std::size_t i = n; i-- > 0;) {
    const Transition& tr = segment[i];
    if (tr.episode_end) {
      next_value = tr.bootstrap;  // 0 unless truncated
      gae = 0.0;
    }
    const double delta = tr.reward + config.gamma * next_value - tr.value;
    gae = delta + config.gamma * config.gae_lambda * gae;
    advantages[i] = gae;
    returns[i] = gae + tr.value;
    next_value = tr.value;
  }
}

void normalize_advantages(std::vector<double>& advantages) {
  const auto n = static_cast<double>(advantages.size());
  const double mean =
      std::accumulate(advantages.begin(), advantages.end(), 0.0) / n;
  double var = 0.0;
  for (const double a : advantages) {
    var += (a - mean) * (a - mean);
  }
  const double stddev = std::sqrt(var / n) + 1e-8;
  for (double& a : advantages) {
    a = (a - mean) / stddev;
  }
}

/// The clipped-surrogate optimization epochs over one rollout buffer.
/// Identical for the serial and vectorized paths; fills the loss fields
/// of `stats`. Each minibatch runs one batched policy forward, one batched
/// value forward and one batched backward per network instead of
/// per-sample passes; every per-sample quantity and every gradient
/// accumulation keeps the scalar operation order, so the update is
/// bitwise-identical to the per-sample loop it replaces. `pool` (optional)
/// spreads the batched forwards across workers.
void run_ppo_epochs(const std::vector<Transition>& buffer,
                    const std::vector<double>& advantages,
                    const std::vector<double>& returns,
                    const PpoConfig& config, Mlp& policy, Mlp& value_net,
                    Adam& optimizer, std::mt19937_64& rng,
                    PpoUpdateStats& stats, WorkerPool* pool = nullptr) {
  const std::size_t n = buffer.size();
  const auto obs_size = static_cast<std::size_t>(policy.input_size());
  const auto n_act = static_cast<std::size_t>(policy.output_size());
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> obs_batch;
  std::vector<std::vector<bool>> mask_batch;
  std::vector<double> grad_logits;
  std::vector<double> value_grads;
  std::vector<double> logp_grad(n_act);
  std::vector<double> ent_grad(n_act);
  int loss_samples = 0;
  for (int epoch = 0; epoch < config.epochs_per_update; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng);
    for (std::size_t start = 0; start < n;
         start += static_cast<std::size_t>(config.minibatch_size)) {
      const std::size_t end = std::min(
          n, start + static_cast<std::size_t>(config.minibatch_size));
      const int bsz = static_cast<int>(end - start);
      policy.zero_grad();
      value_net.zero_grad();
      const double inv_batch = 1.0 / static_cast<double>(bsz);

      // Gather the minibatch into row-major buffers.
      obs_batch.resize(static_cast<std::size_t>(bsz) * obs_size);
      mask_batch.resize(static_cast<std::size_t>(bsz));
      for (int k = 0; k < bsz; ++k) {
        const Transition& tr = buffer[order[start + static_cast<std::size_t>(k)]];
        std::copy(tr.obs.begin(), tr.obs.end(),
                  obs_batch.begin() + static_cast<std::size_t>(k) * obs_size);
        mask_batch[static_cast<std::size_t>(k)] = tr.mask;
      }

      // One batched forward per network for the whole minibatch.
      const auto& logits = policy.forward_batch_cached(obs_batch, bsz, pool);
      const BatchedMaskedCategorical dist(logits, mask_batch);
      const auto& values = value_net.forward_batch_cached(obs_batch, bsz, pool);

      grad_logits.assign(static_cast<std::size_t>(bsz) * n_act, 0.0);
      value_grads.resize(static_cast<std::size_t>(bsz));
      for (int k = 0; k < bsz; ++k) {
        const std::size_t idx = order[start + static_cast<std::size_t>(k)];
        const Transition& tr = buffer[idx];
        const double adv = advantages[idx];
        const double ret = returns[idx];

        // Policy gradient wrt row k's logits.
        const double logp = dist.log_prob(k, tr.action);
        const double ratio = std::exp(logp - tr.log_prob);
        const double clipped = std::clamp(ratio, 1.0 - config.clip_range,
                                          1.0 + config.clip_range);
        const bool use_unclipped = ratio * adv <= clipped * adv;
        // Loss = -min(r*A, clip(r)*A) - ent_coef * H.
        const double dl_dratio = use_unclipped ? -adv : 0.0;
        dist.log_prob_grad(k, tr.action, logp_grad);
        dist.entropy_grad(k, ent_grad);
        double* grow =
            grad_logits.data() + static_cast<std::size_t>(k) * n_act;
        for (std::size_t j = 0; j < n_act; ++j) {
          grow[j] = (dl_dratio * ratio * logp_grad[j] -
                     config.entropy_coef * ent_grad[j]) *
                    inv_batch;
        }

        // Value gradient for row k.
        const double v = values[static_cast<std::size_t>(k)];
        value_grads[static_cast<std::size_t>(k)] =
            config.value_coef * (v - ret) * inv_batch;

        stats.policy_loss += -std::min(ratio * adv, clipped * adv);
        stats.value_loss += 0.5 * (v - ret) * (v - ret);
        stats.entropy += dist.entropy(k);
        // Diagnostics over already-computed per-sample values; nothing
        // here feeds back into the gradients.
        stats.approx_kl += tr.log_prob - logp;
        if (std::fabs(ratio - 1.0) > config.clip_range) {
          stats.clip_fraction += 1.0;
        }
        ++loss_samples;
      }
      policy.backward_batch(grad_logits, bsz);
      value_net.backward_batch(value_grads, bsz);
      optimizer.step(config.max_grad_norm);
    }
  }
  if (loss_samples > 0) {
    stats.policy_loss /= loss_samples;
    stats.value_loss /= loss_samples;
    stats.entropy /= loss_samples;
    stats.approx_kl /= loss_samples;
    stats.clip_fraction /= loss_samples;
  }
}

/// Finalises the timing fields of one update's stats and publishes the
/// qrc_train_* families. Purely observational — called after the
/// optimiser has already stepped.
void finish_update_stats(PpoUpdateStats& stats, int steps_this_update,
                         std::chrono::steady_clock::time_point update_start,
                         obs::MetricsRegistry* metrics) {
  const auto elapsed = std::chrono::steady_clock::now() - update_start;
  stats.update_duration_us =
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count();
  stats.env_steps_per_sec =
      stats.update_duration_us > 0
          ? static_cast<double>(steps_this_update) * 1e6 /
                static_cast<double>(stats.update_duration_us)
          : 0.0;
  if (metrics == nullptr) return;
  metrics->counter("qrc_train_updates_total", "PPO updates completed.").inc();
  metrics
      ->counter("qrc_train_timesteps_total",
                "Environment steps consumed by training.")
      .inc(static_cast<std::uint64_t>(steps_this_update));
  metrics
      ->counter("qrc_train_episodes_total",
                "Training episodes ended (done or truncated).")
      .inc(static_cast<std::uint64_t>(stats.episodes));
  metrics
      ->float_gauge("qrc_train_policy_loss",
                    "Mean clipped-surrogate policy loss, last update.")
      .set(stats.policy_loss);
  metrics
      ->float_gauge("qrc_train_value_loss",
                    "Mean value-function loss, last update.")
      .set(stats.value_loss);
  metrics
      ->float_gauge("qrc_train_entropy",
                    "Mean policy entropy, last update.")
      .set(stats.entropy);
  metrics
      ->float_gauge("qrc_train_approx_kl",
                    "Mean approximate KL(old||new), last update.")
      .set(stats.approx_kl);
  metrics
      ->float_gauge("qrc_train_clip_fraction",
                    "Fraction of samples with a clipped ratio, last update.")
      .set(stats.clip_fraction);
  metrics
      ->float_gauge("qrc_train_episode_reward_mean",
                    "Mean reward of episodes ended in the last update.")
      .set(stats.mean_episode_reward);
  metrics
      ->float_gauge("qrc_train_episode_length_mean",
                    "Mean length of episodes ended in the last update.")
      .set(stats.mean_episode_length);
  metrics
      ->float_gauge("qrc_train_env_steps_per_sec",
                    "Environment-step throughput of the last update.")
      .set(stats.env_steps_per_sec);
}

}  // namespace

PpoAgent::PpoAgent(int obs_size, int num_actions, const PpoConfig& config)
    : config_(config),
      policy_(network_sizes(obs_size, config.hidden_sizes, num_actions),
              config.seed * 2 + 1),
      value_(network_sizes(obs_size, config.hidden_sizes, 1),
             config.seed * 2 + 2) {}

int PpoAgent::act_greedy(std::span<const double> observation,
                         const std::vector<bool>& mask) const {
  const auto logits = policy_.forward(observation);
  const MaskedCategorical dist(logits, mask);
  return dist.argmax();
}

std::vector<double> PpoAgent::action_probabilities(
    std::span<const double> observation,
    const std::vector<bool>& mask) const {
  const auto logits = policy_.forward(observation);
  const MaskedCategorical dist(logits, mask);
  return dist.probs();
}

int PpoAgent::act_sample(std::span<const double> observation,
                         const std::vector<bool>& mask,
                         std::mt19937_64& rng) const {
  const auto logits = policy_.forward(observation);
  const MaskedCategorical dist(logits, mask);
  return dist.sample(rng);
}

double PpoAgent::value(std::span<const double> observation) const {
  return value_.forward(observation)[0];
}

void PpoAgent::save(std::ostream& os) const {
  os << "ppo_agent 1\n";
  os << config_.gamma << " " << config_.gae_lambda << " "
     << config_.clip_range << " " << config_.learning_rate << "\n";
  policy_.save(os);
  value_.save(os);
}

PpoAgent PpoAgent::load(std::istream& is) {
  std::string tag;
  int version = 0;
  is >> tag >> version;
  if (tag != "ppo_agent" || version != 1) {
    throw std::runtime_error("PpoAgent::load: bad header");
  }
  PpoConfig config;
  is >> config.gamma >> config.gae_lambda >> config.clip_range >>
      config.learning_rate;
  Mlp policy = Mlp::load(is);
  Mlp value = Mlp::load(is);
  PpoAgent agent(policy.input_size(), policy.output_size(), config);
  agent.policy_ = std::move(policy);
  agent.value_ = std::move(value);
  return agent;
}

PpoAgent train_ppo(Env& env, const PpoConfig& config,
                   std::vector<PpoUpdateStats>* stats_out,
                   const std::function<void(const PpoUpdateStats&)>& progress,
                   obs::MetricsRegistry* metrics) {
  PpoAgent agent(env.observation_size(), env.num_actions(), config);
  Mlp& policy = agent.policy();
  Mlp& value_net = agent.value_net();

  std::vector<double*> params;
  std::vector<double*> grads;
  policy.collect_parameters(params, grads);
  value_net.collect_parameters(params, grads);
  Adam optimizer(params, grads, {.lr = config.learning_rate});

  std::mt19937_64 rng(config.seed * 9176 + 3);

  std::vector<double> obs = env.reset();
  std::vector<bool> mask = env.action_mask();
  double episode_reward = 0.0;
  int episode_length = 0;

  int timesteps_done = 0;
  int update_index = 0;
  while (timesteps_done < config.total_timesteps) {
    const auto update_start = std::chrono::steady_clock::now();
    // ---- Rollout collection ----
    std::vector<Transition> buffer;
    buffer.reserve(static_cast<std::size_t>(config.steps_per_update));
    double reward_sum = 0.0;
    std::int64_t length_sum = 0;
    int episodes = 0;
    for (int t = 0; t < config.steps_per_update; ++t) {
      const auto logits = policy.forward(obs);
      const MaskedCategorical dist(logits, mask);
      const int action = dist.sample(rng);

      Transition tr;
      tr.obs = obs;
      tr.mask = mask;
      tr.action = action;
      tr.log_prob = dist.log_prob(action);
      tr.value = value_net.forward(obs)[0];

      const StepResult result = env.step(action);
      tr.reward = result.reward;
      episode_reward += result.reward;
      ++episode_length;
      tr.episode_end = result.done || result.truncated;
      if (result.truncated && !result.done) {
        tr.bootstrap = value_net.forward(result.observation)[0];
      }
      buffer.push_back(std::move(tr));

      if (result.done || result.truncated) {
        reward_sum += episode_reward;
        length_sum += episode_length;
        episode_reward = 0.0;
        episode_length = 0;
        ++episodes;
        obs = env.reset();
      } else {
        obs = result.observation;
      }
      mask = env.action_mask();
      ++timesteps_done;
    }

    // ---- GAE(lambda) ----
    const std::size_t n = buffer.size();
    std::vector<double> advantages(n, 0.0);
    std::vector<double> returns(n, 0.0);
    const double tail_value = buffer.back().episode_end
                                  ? buffer.back().bootstrap
                                  : value_net.forward(obs)[0];
    compute_gae_segment(buffer, tail_value, config, advantages, returns);
    normalize_advantages(advantages);

    // ---- PPO epochs ----
    PpoUpdateStats stats;
    stats.update_index = update_index++;
    stats.timesteps = timesteps_done;
    stats.episodes = episodes;
    stats.mean_episode_reward =
        episodes > 0 ? reward_sum / static_cast<double>(episodes) : 0.0;
    stats.mean_episode_length =
        episodes > 0 ? static_cast<double>(length_sum) /
                           static_cast<double>(episodes)
                     : 0.0;
    run_ppo_epochs(buffer, advantages, returns, config, policy, value_net,
                   optimizer, rng, stats);
    finish_update_stats(stats, config.steps_per_update, update_start, metrics);
    if (stats_out != nullptr) {
      stats_out->push_back(stats);
    }
    if (progress) {
      progress(stats);
    }
  }
  return agent;
}

PpoAgent train_ppo_vec(
    VecEnv& envs, const PpoConfig& config,
    std::vector<PpoUpdateStats>* stats_out,
    const std::function<void(const PpoUpdateStats&)>& progress,
    obs::MetricsRegistry* metrics) {
  const int num_envs = envs.num_envs();
  PpoAgent agent(envs.observation_size(), envs.num_actions(), config);
  Mlp& policy = agent.policy();
  Mlp& value_net = agent.value_net();

  std::vector<double*> params;
  std::vector<double*> grads;
  policy.collect_parameters(params, grads);
  value_net.collect_parameters(params, grads);
  Adam optimizer(params, grads, {.lr = config.learning_rate});

  // The update RNG matches the serial path; each env draws actions from
  // its own stream so the collected experience is independent of how the
  // envs are scheduled onto workers.
  std::mt19937_64 update_rng(config.seed * 9176 + 3);
  std::vector<std::mt19937_64> env_rngs;
  env_rngs.reserve(static_cast<std::size_t>(num_envs));
  for (int e = 0; e < num_envs; ++e) {
    env_rngs.emplace_back(config.seed * 9176 + 3 +
                          9973 * static_cast<std::uint64_t>(e + 1));
  }

  envs.reset();
  std::vector<double> episode_reward(static_cast<std::size_t>(num_envs), 0.0);
  std::vector<int> episode_length(static_cast<std::size_t>(num_envs), 0);

  const int rounds = std::max(1, config.steps_per_update / num_envs);
  std::vector<std::vector<Transition>> env_buf(
      static_cast<std::size_t>(num_envs));

  const auto obs_size = static_cast<std::size_t>(envs.observation_size());
  WorkerPool& pool = envs.pool();
  // Round-scoped scratch, hoisted out of the hot loop.
  std::vector<double> obs_batch;
  std::vector<double> logits_batch;
  std::vector<double> values_batch;
  std::vector<double> boot_obs;
  std::vector<double> boot_values;
  std::vector<int> boot_envs;
  std::vector<int> actions(static_cast<std::size_t>(num_envs), 0);

  int timesteps_done = 0;
  int update_index = 0;
  while (timesteps_done < config.total_timesteps) {
    const auto update_start = std::chrono::steady_clock::now();
    // ---- Rollout collection: all envs advance in lockstep rounds ----
    for (auto& buf : env_buf) {
      buf.clear();
      buf.reserve(static_cast<std::size_t>(rounds));
    }
    double reward_sum = 0.0;
    std::int64_t length_sum = 0;
    int episodes = 0;
    for (int r = 0; r < rounds; ++r) {
      // One batched policy forward and one batched value forward over all
      // N observations of the round — the MLP is evaluated as a single
      // row-parallel [N x obs] pass instead of N scalar calls.
      envs.gather_observations(obs_batch);
      const auto& masks = envs.action_masks();
      policy.forward_batch(obs_batch, num_envs, logits_batch, &pool);
      value_net.forward_batch(obs_batch, num_envs, values_batch, &pool);
      const BatchedMaskedCategorical dist(logits_batch, masks);
      // Sampling consumes each env's own RNG stream in fixed env order, so
      // the collected experience is identical to per-env scalar inference.
      for (int e = 0; e < num_envs; ++e) {
        const auto idx = static_cast<std::size_t>(e);
        Transition tr;
        tr.obs = envs.observations()[idx];
        tr.mask = masks[idx];
        tr.action = dist.sample(e, env_rngs[idx]);
        tr.log_prob = dist.log_prob(e, tr.action);
        tr.value = values_batch[idx];
        actions[idx] = tr.action;
        env_buf[idx].push_back(std::move(tr));
      }
      const auto& results = envs.step(actions);
      // Value bootstrap for time-limit truncations, batched over the
      // (typically few) envs that hit the limit this round.
      boot_envs.clear();
      for (int e = 0; e < num_envs; ++e) {
        const auto idx = static_cast<std::size_t>(e);
        Transition& tr = env_buf[idx].back();
        tr.reward = results[idx].reward;
        tr.episode_end = results[idx].done || results[idx].truncated;
        if (results[idx].truncated && !results[idx].done) {
          boot_envs.push_back(e);
        }
      }
      if (!boot_envs.empty()) {
        boot_obs.resize(boot_envs.size() * obs_size);
        for (std::size_t i = 0; i < boot_envs.size(); ++i) {
          const auto& term_obs =
              results[static_cast<std::size_t>(boot_envs[i])].observation;
          std::copy(term_obs.begin(), term_obs.end(),
                    boot_obs.begin() + i * obs_size);
        }
        value_net.forward_batch(boot_obs, static_cast<int>(boot_envs.size()),
                                boot_values, &pool);
        for (std::size_t i = 0; i < boot_envs.size(); ++i) {
          env_buf[static_cast<std::size_t>(boot_envs[i])].back().bootstrap =
              boot_values[i];
        }
      }
      // Episode bookkeeping in fixed env order (deterministic sums).
      for (int e = 0; e < num_envs; ++e) {
        const auto idx = static_cast<std::size_t>(e);
        episode_reward[idx] += results[idx].reward;
        ++episode_length[idx];
        if (results[idx].done || results[idx].truncated) {
          reward_sum += episode_reward[idx];
          length_sum += episode_length[idx];
          episode_reward[idx] = 0.0;
          episode_length[idx] = 0;
          ++episodes;
        }
      }
      timesteps_done += num_envs;
    }

    // ---- GAE(lambda), one segment per env ----
    // Tail values V(s_T) for envs whose last transition did not end an
    // episode, in one batched value forward.
    std::vector<double> tail_values(static_cast<std::size_t>(num_envs), 0.0);
    boot_envs.clear();
    for (int e = 0; e < num_envs; ++e) {
      if (!env_buf[static_cast<std::size_t>(e)].back().episode_end) {
        boot_envs.push_back(e);
      }
    }
    if (!boot_envs.empty()) {
      boot_obs.resize(boot_envs.size() * obs_size);
      for (std::size_t i = 0; i < boot_envs.size(); ++i) {
        const auto& live_obs =
            envs.observations()[static_cast<std::size_t>(boot_envs[i])];
        std::copy(live_obs.begin(), live_obs.end(),
                  boot_obs.begin() + i * obs_size);
      }
      value_net.forward_batch(boot_obs, static_cast<int>(boot_envs.size()),
                              boot_values, &pool);
      for (std::size_t i = 0; i < boot_envs.size(); ++i) {
        tail_values[static_cast<std::size_t>(boot_envs[i])] = boot_values[i];
      }
    }
    std::vector<Transition> buffer;
    buffer.reserve(static_cast<std::size_t>(rounds * num_envs));
    std::vector<double> advantages(
        static_cast<std::size_t>(rounds * num_envs), 0.0);
    std::vector<double> returns(advantages.size(), 0.0);
    std::size_t offset = 0;
    for (int e = 0; e < num_envs; ++e) {
      const auto idx = static_cast<std::size_t>(e);
      const std::size_t len = env_buf[idx].size();
      compute_gae_segment(
          env_buf[idx], tail_values[idx], config,
          std::span<double>(advantages).subspan(offset, len),
          std::span<double>(returns).subspan(offset, len));
      for (Transition& tr : env_buf[idx]) {
        buffer.push_back(std::move(tr));
      }
      offset += len;
    }
    normalize_advantages(advantages);

    // ---- PPO epochs (identical to the serial path) ----
    PpoUpdateStats stats;
    stats.update_index = update_index++;
    stats.timesteps = timesteps_done;
    stats.episodes = episodes;
    stats.mean_episode_reward =
        episodes > 0 ? reward_sum / static_cast<double>(episodes) : 0.0;
    stats.mean_episode_length =
        episodes > 0 ? static_cast<double>(length_sum) /
                           static_cast<double>(episodes)
                     : 0.0;
    run_ppo_epochs(buffer, advantages, returns, config, policy, value_net,
                   optimizer, update_rng, stats, &pool);
    finish_update_stats(stats, rounds * num_envs, update_start, metrics);
    if (stats_out != nullptr) {
      stats_out->push_back(stats);
    }
    if (progress) {
      progress(stats);
    }
  }
  return agent;
}

}  // namespace qrc::rl
