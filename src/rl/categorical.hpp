/// \file categorical.hpp
/// \brief Masked categorical distribution over action logits: sampling,
///        log-probabilities, entropy and the gradient of log pi wrt the
///        logits — the glue between the policy net and PPO.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace qrc::rl {

/// A categorical distribution over `n` actions where invalid actions
/// (mask false) have probability exactly zero. At least one action must be
/// valid.
class MaskedCategorical {
 public:
  MaskedCategorical(std::span<const double> logits,
                    const std::vector<bool>& mask);

  [[nodiscard]] int num_actions() const {
    return static_cast<int>(probs_.size());
  }
  [[nodiscard]] const std::vector<double>& probs() const { return probs_; }

  [[nodiscard]] int sample(std::mt19937_64& rng) const;
  [[nodiscard]] int argmax() const;
  [[nodiscard]] double log_prob(int action) const;
  [[nodiscard]] double entropy() const;

  /// d log pi(action) / d logits_j = (j == action) - p_j on valid actions,
  /// 0 on masked ones.
  [[nodiscard]] std::vector<double> log_prob_grad(int action) const;

  /// d entropy / d logits_j = -p_j (log p_j + H) on valid actions.
  [[nodiscard]] std::vector<double> entropy_grad() const;

 private:
  std::vector<double> probs_;
  std::vector<bool> valid_;
};

}  // namespace qrc::rl
