/// \file categorical.hpp
/// \brief Masked categorical distribution over action logits: sampling,
///        log-probabilities, entropy and the gradient of log pi wrt the
///        logits — the glue between the policy net and PPO.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace qrc::rl {

/// A categorical distribution over `n` actions where invalid actions
/// (mask false) have probability exactly zero. At least one action must be
/// valid.
class MaskedCategorical {
 public:
  MaskedCategorical(std::span<const double> logits,
                    const std::vector<bool>& mask);

  [[nodiscard]] int num_actions() const {
    return static_cast<int>(probs_.size());
  }
  [[nodiscard]] const std::vector<double>& probs() const { return probs_; }

  [[nodiscard]] int sample(std::mt19937_64& rng) const;
  [[nodiscard]] int argmax() const;
  [[nodiscard]] double log_prob(int action) const;
  [[nodiscard]] double entropy() const;

  /// d log pi(action) / d logits_j = (j == action) - p_j on valid actions,
  /// 0 on masked ones.
  [[nodiscard]] std::vector<double> log_prob_grad(int action) const;

  /// d entropy / d logits_j = -p_j (log p_j + H) on valid actions.
  [[nodiscard]] std::vector<double> entropy_grad() const;

 private:
  std::vector<double> probs_;
  std::vector<bool> valid_;
};

/// A batch of N masked categorical distributions over shared storage: row
/// r of the row-major [batch x num_actions] logits paired with masks[r].
/// Every per-row quantity (probabilities, samples, log-probs, entropy and
/// gradients) is computed with exactly the operation order of
/// MaskedCategorical, so the batched distribution is bitwise-identical to
/// N scalar ones — the contract that lets the batched rollout and epoch
/// loops replace per-sample inference without changing results.
class BatchedMaskedCategorical {
 public:
  /// \param logits row-major batch x num_actions (batch = masks.size()).
  BatchedMaskedCategorical(std::span<const double> logits,
                           const std::vector<std::vector<bool>>& masks);

  [[nodiscard]] int batch_size() const { return batch_; }
  [[nodiscard]] int num_actions() const { return num_actions_; }

  /// Probabilities of row `r` (masked actions are exactly zero).
  [[nodiscard]] std::span<const double> probs(int r) const {
    return std::span<const double>(probs_).subspan(
        static_cast<std::size_t>(r) * static_cast<std::size_t>(num_actions_),
        static_cast<std::size_t>(num_actions_));
  }

  [[nodiscard]] int sample(int r, std::mt19937_64& rng) const;
  [[nodiscard]] int argmax(int r) const;
  [[nodiscard]] double log_prob(int r, int action) const;
  [[nodiscard]] double entropy(int r) const;

  /// Writes d log pi_r(action) / d logits into `out` (num_actions wide).
  void log_prob_grad(int r, int action, std::span<double> out) const;

  /// Writes d H_r / d logits into `out` (num_actions wide).
  void entropy_grad(int r, std::span<double> out) const;

 private:
  [[nodiscard]] bool valid(int r, int a) const {
    return valid_[static_cast<std::size_t>(r) *
                      static_cast<std::size_t>(num_actions_) +
                  static_cast<std::size_t>(a)] != 0;
  }

  int batch_ = 0;
  int num_actions_ = 0;
  std::vector<double> probs_;          // row-major batch x num_actions
  std::vector<std::uint8_t> valid_;    // row-major batch x num_actions
};

}  // namespace qrc::rl
