/// \file mlp.hpp
/// \brief Minimal dense network with tanh hidden activations, manual
///        backpropagation and text serialisation — the function
///        approximator behind the PPO policy and value heads.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

namespace qrc::rl {

class WorkerPool;

/// Fully connected network: linear layers with tanh on all hidden layers
/// and a linear output layer. Parameters and gradients are stored per
/// layer; backward() accumulates gradients (call zero_grad() between
/// batches).
///
/// Besides the per-sample entry points, the network has a batched path
/// (forward_batch / forward_batch_cached / backward_batch) operating on
/// row-major [batch x width] buffers. Each row is computed with exactly
/// the same operation order as the scalar path, so batched results are
/// bitwise-identical to N scalar calls — with or without a WorkerPool
/// splitting the rows across threads.
class Mlp {
 public:
  /// \param sizes layer widths, e.g. {7, 64, 64, 30}.
  /// \param seed weight initialisation seed (orthogonal-ish scaled normal).
  Mlp(std::vector<int> sizes, std::uint64_t seed);

  [[nodiscard]] int input_size() const { return sizes_.front(); }
  [[nodiscard]] int output_size() const { return sizes_.back(); }

  /// Plain inference (no caching).
  [[nodiscard]] std::vector<double> forward(
      std::span<const double> input) const;

  /// Forward pass that caches activations for a following backward().
  [[nodiscard]] std::vector<double> forward_cached(
      std::span<const double> input);

  /// Backpropagates dL/d(output) for the sample of the last
  /// forward_cached() call, accumulating parameter gradients.
  void backward(std::span<const double> grad_output);

  /// Batched inference: `inputs` holds `batch` row-major samples of
  /// input_size() each; `outputs` is resized to batch x output_size().
  /// When `pool` is non-null the rows are distributed across its workers
  /// (each row is an independent computation, so the result does not
  /// depend on the worker count).
  void forward_batch(std::span<const double> inputs, int batch,
                     std::vector<double>& outputs,
                     WorkerPool* pool = nullptr) const;

  /// Batched forward pass that caches all per-row activations for a
  /// following backward_batch(). Returns the row-major batch output.
  const std::vector<double>& forward_batch_cached(
      std::span<const double> inputs, int batch, WorkerPool* pool = nullptr);

  /// Backpropagates the row-major dL/d(output) of every sample of the last
  /// forward_batch_cached() call, accumulating parameter gradients. Rows
  /// are processed in ascending order, so the per-parameter accumulation
  /// sequence matches `batch` scalar forward_cached()/backward() pairs
  /// bitwise.
  void backward_batch(std::span<const double> grad_outputs, int batch);

  void zero_grad();

  /// Parameter and gradient access for the optimizer (flat order:
  /// layer 0 weights, layer 0 biases, layer 1 weights, ...).
  [[nodiscard]] std::size_t num_parameters() const;
  void collect_parameters(std::vector<double*>& params,
                          std::vector<double*>& grads);

  /// Text (de)serialisation; layout validated on read.
  void save(std::ostream& os) const;
  static Mlp load(std::istream& is);

 private:
  struct Layer {
    int in = 0;
    int out = 0;
    std::vector<double> w;   // out x in, row major
    std::vector<double> b;   // out
    std::vector<double> gw;  // gradient accumulators
    std::vector<double> gb;
  };

  void forward_rows(std::span<const double> inputs, int batch, int row_begin,
                    int row_end, std::vector<std::vector<double>>& acts) const;
  void run_batch(std::span<const double> inputs, int batch,
                 std::vector<std::vector<double>>& acts,
                 WorkerPool* pool) const;

  std::vector<int> sizes_;
  std::vector<Layer> layers_;
  // Cached activations: acts_[0] = input, acts_[k] = post-activation of
  // layer k-1; preacts_[k] = pre-activation of layer k.
  std::vector<std::vector<double>> acts_;
  // Batched activation cache: batch_acts_[k] is row-major
  // [batch_size_ x width of layer k] (k = 0 is the input).
  std::vector<std::vector<double>> batch_acts_;
  int batch_size_ = 0;
};

}  // namespace qrc::rl
