/// \file mlp.hpp
/// \brief Minimal dense network with tanh hidden activations, manual
///        backpropagation and text serialisation — the function
///        approximator behind the PPO policy and value heads.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

namespace qrc::rl {

class WorkerPool;

/// Name of the dense-kernel ISA selected for this process: "avx2", "neon"
/// or "portable". Chosen once at first use from the host CPU, overridable
/// with QRC_SIMD=portable|avx2|neon (used by benches and the CI
/// runtime-dispatch check).
[[nodiscard]] const char* simd_kernel_name();

/// Fully connected network: linear layers with tanh on all hidden layers
/// and a linear output layer. Parameters and gradients are stored per
/// layer; backward() accumulates gradients (call zero_grad() between
/// batches).
///
/// Besides the per-sample entry points, the network has a batched path
/// (forward_batch / forward_batch_cached / backward_batch) operating on
/// row-major [batch x width] buffers. Each row is computed with exactly
/// the same operation order as the scalar path, so batched results are
/// bitwise-identical to N scalar calls — with or without a WorkerPool
/// splitting the rows across threads.
///
/// The batched dense kernel is explicitly vectorized (AVX2 on x86-64,
/// NEON on aarch64, portable scalar fallback; selected once at runtime,
/// overridable with QRC_SIMD=portable|avx2|neon). Vector lanes run across
/// *output neurons* over a transposed [in x out] weight cache while each
/// neuron's k-accumulation stays sequential (mul then add per step, no
/// FMA), so SIMD results are bitwise-identical to the scalar path.
/// Activations live in flat per-call arenas reused across calls instead
/// of per-call vector-of-vectors.
class Mlp {
 public:
  /// \param sizes layer widths, e.g. {7, 64, 64, 30}.
  /// \param seed weight initialisation seed (orthogonal-ish scaled normal).
  Mlp(std::vector<int> sizes, std::uint64_t seed);

  [[nodiscard]] int input_size() const { return sizes_.front(); }
  [[nodiscard]] int output_size() const { return sizes_.back(); }

  /// Plain inference (no caching).
  [[nodiscard]] std::vector<double> forward(
      std::span<const double> input) const;

  /// Forward pass that caches activations for a following backward().
  [[nodiscard]] std::vector<double> forward_cached(
      std::span<const double> input);

  /// Backpropagates dL/d(output) for the sample of the last
  /// forward_cached() call, accumulating parameter gradients.
  void backward(std::span<const double> grad_output);

  /// Batched inference: `inputs` holds `batch` row-major samples of
  /// input_size() each; `outputs` is resized to batch x output_size().
  /// When `pool` is non-null the rows are distributed across its workers
  /// (each row is an independent computation, so the result does not
  /// depend on the worker count).
  void forward_batch(std::span<const double> inputs, int batch,
                     std::vector<double>& outputs,
                     WorkerPool* pool = nullptr) const;

  /// Batched forward pass that caches all per-row activations for a
  /// following backward_batch(). Returns the row-major batch output.
  const std::vector<double>& forward_batch_cached(
      std::span<const double> inputs, int batch, WorkerPool* pool = nullptr);

  /// Backpropagates the row-major dL/d(output) of every sample of the last
  /// forward_batch_cached() call, accumulating parameter gradients. Rows
  /// are processed in ascending order, so the per-parameter accumulation
  /// sequence matches `batch` scalar forward_cached()/backward() pairs
  /// bitwise.
  void backward_batch(std::span<const double> grad_outputs, int batch);

  void zero_grad();

  /// Parameter and gradient access for the optimizer (flat order:
  /// layer 0 weights, layer 0 biases, layer 1 weights, ...).
  [[nodiscard]] std::size_t num_parameters() const;
  void collect_parameters(std::vector<double*>& params,
                          std::vector<double*>& grads);

  /// Text (de)serialisation; layout validated on read.
  void save(std::ostream& os) const;
  static Mlp load(std::istream& is);

 private:
  struct Layer {
    int in = 0;
    int out = 0;
    std::vector<double> w;   // out x in, row major
    std::vector<double> b;   // out
    std::vector<double> gw;  // gradient accumulators
    std::vector<double> gb;
  };

  /// Runs rows [row_begin, row_end) through every layer. `levels[k]` is
  /// the base of the row-major [batch x sizes_[k]] buffer of level k
  /// (level 0 = input, never written). `wt` is the per-layer transposed
  /// [in x out] weight array for the vectorized kernel, or nullptr to
  /// force the portable row-major path.
  void forward_rows(double* const* levels, const double* const* wt,
                    int row_begin, int row_end) const;
  void run_batch(double* const* levels, const double* const* wt, int batch,
                 WorkerPool* pool) const;

  /// Fills `ptrs` with the per-layer transposed weights the vector kernel
  /// should use and returns ptrs.data(), or nullptr when the portable
  /// kernel is active. While the optimizer may be mutating weights
  /// in place (weights_shared_), the transpose is rebuilt into
  /// thread-local scratch on every call instead of trusting wt_.
  const double* const* vector_weights(std::vector<const double*>& ptrs) const;
  void rebuild_transposes();

  std::vector<int> sizes_;
  std::vector<Layer> layers_;
  /// Transposed weights, wt_[li][i * out + o] = w[o * in + i]: lets the
  /// vector kernel load consecutive output-neuron weights per input step.
  /// Valid while the optimizer holds no pointers (see weights_shared_).
  std::vector<std::vector<double>> wt_;
  /// Set once collect_parameters() hands out raw pointers: weights may
  /// change at any time afterwards, so wt_ can no longer be trusted.
  bool weights_shared_ = false;
  // Cached activations: acts_[0] = input, acts_[k] = post-activation of
  // layer k-1; preacts_[k] = pre-activation of layer k.
  std::vector<std::vector<double>> acts_;
  // Batched activation cache of forward_batch_cached, reused across
  // calls: one flat arena holding levels 0..L-1 (input + hidden
  // activations) at batch_off_[k], and the final output in its own
  // buffer so the returned reference stays a real vector.
  std::vector<double> batch_arena_;
  std::vector<std::size_t> batch_off_;
  std::vector<double> batch_out_;
  int batch_size_ = 0;
};

}  // namespace qrc::rl
