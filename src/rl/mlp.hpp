/// \file mlp.hpp
/// \brief Minimal dense network with tanh hidden activations, manual
///        backpropagation and text serialisation — the function
///        approximator behind the PPO policy and value heads.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

namespace qrc::rl {

/// Fully connected network: linear layers with tanh on all hidden layers
/// and a linear output layer. Parameters and gradients are stored per
/// layer; backward() accumulates gradients (call zero_grad() between
/// batches).
class Mlp {
 public:
  /// \param sizes layer widths, e.g. {7, 64, 64, 30}.
  /// \param seed weight initialisation seed (orthogonal-ish scaled normal).
  Mlp(std::vector<int> sizes, std::uint64_t seed);

  [[nodiscard]] int input_size() const { return sizes_.front(); }
  [[nodiscard]] int output_size() const { return sizes_.back(); }

  /// Plain inference (no caching).
  [[nodiscard]] std::vector<double> forward(
      std::span<const double> input) const;

  /// Forward pass that caches activations for a following backward().
  [[nodiscard]] std::vector<double> forward_cached(
      std::span<const double> input);

  /// Backpropagates dL/d(output) for the sample of the last
  /// forward_cached() call, accumulating parameter gradients.
  void backward(std::span<const double> grad_output);

  void zero_grad();

  /// Parameter and gradient access for the optimizer (flat order:
  /// layer 0 weights, layer 0 biases, layer 1 weights, ...).
  [[nodiscard]] std::size_t num_parameters() const;
  void collect_parameters(std::vector<double*>& params,
                          std::vector<double*>& grads);

  /// Text (de)serialisation; layout validated on read.
  void save(std::ostream& os) const;
  static Mlp load(std::istream& is);

 private:
  struct Layer {
    int in = 0;
    int out = 0;
    std::vector<double> w;   // out x in, row major
    std::vector<double> b;   // out
    std::vector<double> gw;  // gradient accumulators
    std::vector<double> gb;
  };

  std::vector<int> sizes_;
  std::vector<Layer> layers_;
  // Cached activations: acts_[0] = input, acts_[k] = post-activation of
  // layer k-1; preacts_[k] = pre-activation of layer k.
  std::vector<std::vector<double>> acts_;
};

}  // namespace qrc::rl
