/// \file adam.hpp
/// \brief Adam optimizer over pointers into network parameters, with
///        global-norm gradient clipping.
#pragma once

#include <cstdint>
#include <vector>

namespace qrc::rl {

/// Adam (Kingma & Ba) with bias correction. The optimizer holds raw
/// pointers collected from the networks it optimizes; the networks must
/// outlive it.
struct AdamConfig {
  double lr = 3e-4;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
};

class Adam {
 public:
  Adam(std::vector<double*> params, std::vector<double*> grads,
       AdamConfig config = {});

  /// Applies one update from the accumulated gradients. If
  /// `max_grad_norm` > 0 the gradient is rescaled to that global L2 norm
  /// first. Gradients are left untouched (caller zeroes them).
  void step(double max_grad_norm = 0.0);

  void set_lr(double lr) { config_.lr = lr; }
  [[nodiscard]] double lr() const { return config_.lr; }

 private:
  std::vector<double*> params_;
  std::vector<double*> grads_;
  std::vector<double> m_;
  std::vector<double> v_;
  AdamConfig config_;
  std::int64_t t_ = 0;
};

}  // namespace qrc::rl
