/// \file vec_env.hpp
/// \brief Vectorized environment: N independent Env instances stepped in
///        lockstep on a worker pool, with auto-reset on episode end. The
///        rollout engine behind parallel PPO (SB3's SubprocVecEnv, rebuilt
///        natively on std::thread).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "rl/env.hpp"
#include "rl/thread_pool.hpp"

namespace qrc::rl {

/// Owns N independent environments and steps them concurrently. All envs
/// must agree on observation_size() and num_actions(). Stepping is
/// deterministic for a fixed set of envs regardless of worker count:
/// every write is owned by one env index.
class VecEnv {
 public:
  /// Builds env i from factory(i). Each env should carry its own RNG
  /// stream (derive the seed from i) so rollouts decorrelate.
  /// \param num_workers threads used to step envs (<= 1 means inline).
  VecEnv(const std::function<std::unique_ptr<Env>(int)>& factory,
         int num_envs, int num_workers = 1);

  [[nodiscard]] int num_envs() const { return static_cast<int>(envs_.size()); }
  [[nodiscard]] int observation_size() const;
  [[nodiscard]] int num_actions() const;

  /// Resets every env; observations()/action_masks() reflect the fresh
  /// episodes afterwards.
  const std::vector<std::vector<double>>& reset();

  /// Steps env i with actions[i] for every i, in parallel. Envs whose
  /// episode ended are reset automatically: results()[i].observation keeps
  /// the terminal observation (for value bootstrapping) while
  /// observations()[i] already holds the first observation of the next
  /// episode.
  const std::vector<StepResult>& step(const std::vector<int>& actions);

  /// Fused variant for policy-driven rollouts: a single parallel round in
  /// which the worker owning env i calls choose_action(i) (e.g. a policy
  /// forward + sample against observations()[i]), steps the env,
  /// auto-resets on episode end, then calls on_result(i, result) — all
  /// without intermediate barriers. One synchronization per round instead
  /// of three keeps worker scaling intact when steps are microseconds.
  /// Both callbacks must only touch state owned by index i.
  const std::vector<StepResult>& step_with(
      const std::function<int(int)>& choose_action,
      const std::function<void(int, const StepResult&)>& on_result = {});

  /// Current per-env observations (post-reset for finished episodes).
  [[nodiscard]] const std::vector<std::vector<double>>& observations() const {
    return obs_;
  }
  /// Copies the current observations into a row-major
  /// [num_envs x observation_size] buffer — the input of one batched
  /// policy/value forward per lockstep round.
  void gather_observations(std::vector<double>& out) const;
  /// Current per-env action masks (matching observations()).
  [[nodiscard]] const std::vector<std::vector<bool>>& action_masks() const {
    return masks_;
  }
  /// Results of the last step() call.
  [[nodiscard]] const std::vector<StepResult>& results() const {
    return results_;
  }

  [[nodiscard]] Env& env(int i) { return *envs_[static_cast<std::size_t>(i)]; }

  /// The pool stepping the envs — reusable for other index-parallel work
  /// over the same envs (e.g. batched policy forwards).
  [[nodiscard]] WorkerPool& pool() { return pool_; }

 private:
  std::vector<std::unique_ptr<Env>> envs_;
  WorkerPool pool_;
  std::vector<std::vector<double>> obs_;
  std::vector<std::vector<bool>> masks_;
  std::vector<StepResult> results_;
};

}  // namespace qrc::rl
