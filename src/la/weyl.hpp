/// \file weyl.hpp
/// \brief KAK (Cartan) decomposition of two-qubit unitaries via the magic
///        basis, plus Weyl-chamber canonicalisation and Makhlin local
///        invariants. This powers block consolidation and two-qubit
///        resynthesis.
#pragma once

#include <array>
#include <optional>

#include "la/complex.hpp"
#include "la/mat2.hpp"
#include "la/mat4.hpp"

namespace qrc::la {

/// U = e^{i phase} * (k1_q1 (x) k1_q0) * canonical_gate(x, y, z)
///   * (k2_q1 (x) k2_q0)
/// where (x) is the Kronecker product with qubit 1 on the high bit.
struct KakDecomposition {
  double phase = 0.0;
  Mat2 k1_q1;  ///< post-interaction local on qubit 1
  Mat2 k1_q0;  ///< post-interaction local on qubit 0
  Mat2 k2_q1;  ///< pre-interaction local on qubit 1
  Mat2 k2_q0;  ///< pre-interaction local on qubit 0
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  /// Rebuilds the 4x4 unitary (for verification).
  [[nodiscard]] Mat4 reconstruct() const;

  /// Applies Weyl-chamber moves until pi/4 >= x >= y >= |z| while keeping
  /// reconstruct() invariant. Locals and phase are updated accordingly.
  void canonicalize();
};

/// Computes the KAK decomposition of an arbitrary two-qubit unitary.
/// Returns std::nullopt if the joint diagonalisation fails to converge or
/// the reconstruction check fails (callers must keep the original circuit
/// in that case).
[[nodiscard]] std::optional<KakDecomposition> kak_decompose(const Mat4& u);

/// Makhlin-style local invariants (g1, g2, g3) of a two-qubit unitary:
/// two unitaries are locally equivalent iff their invariants agree.
struct LocalInvariants {
  double g1 = 0.0;
  double g2 = 0.0;
  double g3 = 0.0;

  [[nodiscard]] bool approx_equal(const LocalInvariants& rhs,
                                  double atol = 1e-6) const;
};

[[nodiscard]] LocalInvariants local_invariants(const Mat4& u);

/// Joint diagonalisation of two commuting real symmetric 4x4 matrices by
/// Jacobi rotations (Cardoso-Souloumiac style). On success, q^T * a * q and
/// q^T * b * q are diagonal. Exposed for testing.
/// \returns true on convergence.
bool joint_diagonalize(std::array<std::array<double, 4>, 4>& a,
                       std::array<std::array<double, 4>, 4>& b,
                       std::array<std::array<double, 4>, 4>& q,
                       int max_sweeps = 64, double tol = 1e-22);

}  // namespace qrc::la
