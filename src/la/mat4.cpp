#include "la/mat4.hpp"

#include <cmath>
#include <sstream>

namespace qrc::la {

Mat4 Mat4::identity() {
  Mat4 out;
  for (int i = 0; i < 4; ++i) {
    out(i, i) = 1.0;
  }
  return out;
}

Mat4 Mat4::operator*(const Mat4& rhs) const {
  Mat4 out;
  for (int i = 0; i < 4; ++i) {
    for (int k = 0; k < 4; ++k) {
      const cplx aik = (*this)(i, k);
      if (aik == cplx{0.0, 0.0}) {
        continue;
      }
      for (int j = 0; j < 4; ++j) {
        out(i, j) += aik * rhs(k, j);
      }
    }
  }
  return out;
}

Mat4 Mat4::operator*(cplx scalar) const {
  Mat4 out = *this;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      out(i, j) *= scalar;
    }
  }
  return out;
}

Mat4 Mat4::operator+(const Mat4& rhs) const {
  Mat4 out = *this;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      out(i, j) += rhs(i, j);
    }
  }
  return out;
}

Mat4 Mat4::operator-(const Mat4& rhs) const {
  Mat4 out = *this;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      out(i, j) -= rhs(i, j);
    }
  }
  return out;
}

Mat4 Mat4::adjoint() const {
  Mat4 out;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      out(i, j) = std::conj((*this)(j, i));
    }
  }
  return out;
}

Mat4 Mat4::transpose() const {
  Mat4 out;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      out(i, j) = (*this)(j, i);
    }
  }
  return out;
}

cplx Mat4::trace() const {
  return (*this)(0, 0) + (*this)(1, 1) + (*this)(2, 2) + (*this)(3, 3);
}

namespace {

/// Determinant of a 3x3 minor of `m` obtained by deleting row `r` and
/// column `c`.
cplx minor3(const Mat4& m, int r, int c) {
  std::array<cplx, 9> sub{};
  int idx = 0;
  for (int i = 0; i < 4; ++i) {
    if (i == r) {
      continue;
    }
    for (int j = 0; j < 4; ++j) {
      if (j == c) {
        continue;
      }
      sub[static_cast<std::size_t>(idx++)] = m(i, j);
    }
  }
  return sub[0] * (sub[4] * sub[8] - sub[5] * sub[7]) -
         sub[1] * (sub[3] * sub[8] - sub[5] * sub[6]) +
         sub[2] * (sub[3] * sub[7] - sub[4] * sub[6]);
}

}  // namespace

cplx Mat4::det() const {
  cplx acc = 0.0;
  double sign = 1.0;
  for (int j = 0; j < 4; ++j) {
    acc += sign * (*this)(0, j) * minor3(*this, 0, j);
    sign = -sign;
  }
  return acc;
}

double Mat4::norm() const {
  double acc = 0.0;
  for (const cplx& v : m_) {
    acc += std::norm(v);
  }
  return std::sqrt(acc);
}

bool Mat4::is_unitary(double atol) const {
  const Mat4 prod = (*this) * adjoint();
  return prod.approx_equal(identity(), atol);
}

bool Mat4::approx_equal(const Mat4& rhs, double atol) const {
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (!la::approx_equal((*this)(i, j), rhs(i, j), atol)) {
        return false;
      }
    }
  }
  return true;
}

bool Mat4::equal_up_to_phase(const Mat4& rhs, double atol) const {
  int bi = 0;
  int bj = 0;
  double best = -1.0;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      const double mag = std::abs(rhs(i, j));
      if (mag > best) {
        best = mag;
        bi = i;
        bj = j;
      }
    }
  }
  if (best <= atol) {
    return approx_equal(rhs, atol);
  }
  const cplx ratio = (*this)(bi, bj) / rhs(bi, bj);
  if (std::abs(std::abs(ratio) - 1.0) > atol * 100.0) {
    return false;
  }
  return approx_equal(rhs * ratio, atol * 100.0);
}

std::string Mat4::to_string() const {
  std::ostringstream os;
  os.precision(6);
  for (int i = 0; i < 4; ++i) {
    os << "[ ";
    for (int j = 0; j < 4; ++j) {
      const cplx v = (*this)(i, j);
      os << v.real() << (v.imag() >= 0 ? "+" : "") << v.imag() << "i ";
    }
    os << "]\n";
  }
  return os.str();
}

Mat4 kron(const Mat2& a, const Mat2& b) {
  Mat4 out;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      for (int k = 0; k < 2; ++k) {
        for (int l = 0; l < 2; ++l) {
          out(i * 2 + k, j * 2 + l) = a(i, j) * b(k, l);
        }
      }
    }
  }
  return out;
}

bool decompose_tensor_product(const Mat4& m, Mat2& a, Mat2& b, double atol) {
  // Blocks of m: m = [[a00*B, a01*B], [a10*B, a11*B]]. Find the block with
  // the largest norm to extract B, then recover A entrywise.
  int bi = 0;
  int bj = 0;
  double best = -1.0;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      double acc = 0.0;
      for (int k = 0; k < 2; ++k) {
        for (int l = 0; l < 2; ++l) {
          acc += std::norm(m(i * 2 + k, j * 2 + l));
        }
      }
      if (acc > best) {
        best = acc;
        bi = i;
        bj = j;
      }
    }
  }
  if (best <= atol) {
    return false;
  }
  Mat2 block;
  for (int k = 0; k < 2; ++k) {
    for (int l = 0; l < 2; ++l) {
      block(k, l) = m(bi * 2 + k, bj * 2 + l);
    }
  }
  // Normalise the block to unit determinant magnitude so B is unitary-like.
  const double bnorm = block.norm() / std::sqrt(2.0);
  if (bnorm <= atol) {
    return false;
  }
  b = block * cplx{1.0 / bnorm, 0.0};
  // a(i, j) = <B, block(i, j)> / <B, B> with Frobenius inner product.
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      cplx acc = 0.0;
      for (int k = 0; k < 2; ++k) {
        for (int l = 0; l < 2; ++l) {
          acc += std::conj(b(k, l)) * m(i * 2 + k, j * 2 + l);
        }
      }
      a(i, j) = acc / 2.0;
    }
  }
  return kron(a, b).approx_equal(m, std::max(atol, 1e-7));
}

Mat4 cx01_mat() {
  // Control = qubit 0 (low bit), target = qubit 1 (high bit).
  Mat4 out;
  out(0, 0) = 1.0;  // |00> -> |00>
  out(1, 3) = 1.0;  // |01> -> |11>
  out(2, 2) = 1.0;  // |10> -> |10>
  out(3, 1) = 1.0;  // |11> -> |01>
  return out;
}

Mat4 cx10_mat() {
  // Control = qubit 1 (high bit), target = qubit 0 (low bit).
  Mat4 out;
  out(0, 0) = 1.0;
  out(1, 1) = 1.0;
  out(2, 3) = 1.0;
  out(3, 2) = 1.0;
  return out;
}

Mat4 cz_mat() {
  Mat4 out = Mat4::identity();
  out(3, 3) = -1.0;
  return out;
}

Mat4 swap_mat() {
  Mat4 out;
  out(0, 0) = 1.0;
  out(1, 2) = 1.0;
  out(2, 1) = 1.0;
  out(3, 3) = 1.0;
  return out;
}

Mat4 iswap_mat() {
  Mat4 out;
  out(0, 0) = 1.0;
  out(1, 2) = cplx{0.0, 1.0};
  out(2, 1) = cplx{0.0, 1.0};
  out(3, 3) = 1.0;
  return out;
}

Mat4 canonical_gate(double x, double y, double z) {
  // XX, YY, ZZ commute and square to identity, so
  // exp(i(x XX + y YY + z ZZ)) = prod over terms of (cos t I + i sin t P).
  const Mat4 xx = kron(x_mat(), x_mat());
  const Mat4 yy = kron(y_mat(), y_mat());
  const Mat4 zz = kron(z_mat(), z_mat());
  const auto term = [](const Mat4& p, double t) {
    Mat4 out = Mat4::identity() * cplx{std::cos(t), 0.0};
    out = out + p * cplx{0.0, std::sin(t)};
    return out;
  };
  return term(xx, x) * term(yy, y) * term(zz, z);
}

}  // namespace qrc::la
