/// \file mat4.hpp
/// \brief Dense 4x4 complex matrix used for two-qubit gate algebra:
///        products, Kronecker composition, magic-basis transforms and
///        global-phase-insensitive comparison.
#pragma once

#include <array>
#include <string>

#include "la/complex.hpp"
#include "la/mat2.hpp"

namespace qrc::la {

/// A 4x4 complex matrix stored row-major. The basis convention is
/// |q1 q0>, i.e. qubit 0 is the least-significant bit of the row/column
/// index. kron(a, b) therefore places `a` on qubit 1 and `b` on qubit 0.
class Mat4 {
 public:
  constexpr Mat4() = default;

  [[nodiscard]] static Mat4 identity();

  [[nodiscard]] cplx operator()(int row, int col) const {
    return m_[static_cast<std::size_t>(row * 4 + col)];
  }
  [[nodiscard]] cplx& operator()(int row, int col) {
    return m_[static_cast<std::size_t>(row * 4 + col)];
  }

  [[nodiscard]] Mat4 operator*(const Mat4& rhs) const;
  [[nodiscard]] Mat4 operator*(cplx scalar) const;
  [[nodiscard]] Mat4 operator+(const Mat4& rhs) const;
  [[nodiscard]] Mat4 operator-(const Mat4& rhs) const;

  [[nodiscard]] Mat4 adjoint() const;
  [[nodiscard]] Mat4 transpose() const;

  [[nodiscard]] cplx trace() const;
  [[nodiscard]] cplx det() const;

  [[nodiscard]] double norm() const;

  [[nodiscard]] bool is_unitary(double atol = kAtol) const;
  [[nodiscard]] bool approx_equal(const Mat4& rhs, double atol = kAtol) const;
  [[nodiscard]] bool equal_up_to_phase(const Mat4& rhs,
                                       double atol = kAtol) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::array<cplx, 16> m_{};
};

/// Kronecker product: result acts as `a` on qubit 1 (high bit) and `b` on
/// qubit 0 (low bit).
[[nodiscard]] Mat4 kron(const Mat2& a, const Mat2& b);

/// Attempts to factor `m` as kron(a, b) with 2x2 unitaries. Succeeds (returns
/// true) iff `m` is a tensor product up to numerical tolerance; the factors
/// are normalised so that each has unit determinant magnitude.
[[nodiscard]] bool decompose_tensor_product(const Mat4& m, Mat2& a, Mat2& b,
                                            double atol = 1e-7);

/// CNOT with control qubit 0 (low bit) and target qubit 1 (high bit).
[[nodiscard]] Mat4 cx01_mat();
/// CNOT with control qubit 1 (high bit) and target qubit 0 (low bit).
[[nodiscard]] Mat4 cx10_mat();
[[nodiscard]] Mat4 cz_mat();
[[nodiscard]] Mat4 swap_mat();
[[nodiscard]] Mat4 iswap_mat();

/// exp(i (x XX + y YY + z ZZ)) — the canonical two-qubit interaction.
[[nodiscard]] Mat4 canonical_gate(double x, double y, double z);

}  // namespace qrc::la
