/// \file mat2.hpp
/// \brief Dense 2x2 complex matrix with the operations needed for
///        single-qubit gate algebra (products, adjoints, rotations,
///        global-phase-insensitive comparison).
#pragma once

#include <array>
#include <string>

#include "la/complex.hpp"

namespace qrc::la {

/// A 2x2 complex matrix stored row-major. Value type: cheap to copy.
class Mat2 {
 public:
  /// Zero matrix.
  constexpr Mat2() = default;

  /// Element-wise constructor, row major: [[a, b], [c, d]].
  constexpr Mat2(cplx a, cplx b, cplx c, cplx d) : m_{a, b, c, d} {}

  [[nodiscard]] static constexpr Mat2 identity() {
    return Mat2{1.0, 0.0, 0.0, 1.0};
  }

  [[nodiscard]] cplx operator()(int row, int col) const {
    return m_[static_cast<std::size_t>(row * 2 + col)];
  }
  [[nodiscard]] cplx& operator()(int row, int col) {
    return m_[static_cast<std::size_t>(row * 2 + col)];
  }

  [[nodiscard]] Mat2 operator*(const Mat2& rhs) const;
  [[nodiscard]] Mat2 operator*(cplx scalar) const;
  [[nodiscard]] Mat2 operator+(const Mat2& rhs) const;
  [[nodiscard]] Mat2 operator-(const Mat2& rhs) const;

  /// Conjugate transpose.
  [[nodiscard]] Mat2 adjoint() const;

  [[nodiscard]] cplx det() const;
  [[nodiscard]] cplx trace() const;

  /// Frobenius norm.
  [[nodiscard]] double norm() const;

  /// \returns true if this * adjoint() == identity within atol.
  [[nodiscard]] bool is_unitary(double atol = kAtol) const;

  /// Exact element-wise comparison within atol.
  [[nodiscard]] bool approx_equal(const Mat2& rhs, double atol = kAtol) const;

  /// Comparison up to a global phase factor e^{i phi}.
  [[nodiscard]] bool equal_up_to_phase(const Mat2& rhs,
                                       double atol = kAtol) const;

  /// Human-readable multi-line form for diagnostics.
  [[nodiscard]] std::string to_string() const;

 private:
  std::array<cplx, 4> m_{};
};

/// Rotation about Z: exp(-i theta Z / 2) = diag(e^{-i theta/2}, e^{+i theta/2}).
[[nodiscard]] Mat2 rz_mat(double theta);
/// Rotation about Y: exp(-i theta Y / 2).
[[nodiscard]] Mat2 ry_mat(double theta);
/// Rotation about X: exp(-i theta X / 2).
[[nodiscard]] Mat2 rx_mat(double theta);
/// Phase gate diag(1, e^{i lambda}).
[[nodiscard]] Mat2 p_mat(double lambda);
/// The generic single-qubit gate U3(theta, phi, lambda).
[[nodiscard]] Mat2 u3_mat(double theta, double phi, double lambda);

[[nodiscard]] Mat2 x_mat();
[[nodiscard]] Mat2 y_mat();
[[nodiscard]] Mat2 z_mat();
[[nodiscard]] Mat2 h_mat();
[[nodiscard]] Mat2 s_mat();
[[nodiscard]] Mat2 sdg_mat();
[[nodiscard]] Mat2 t_mat();
[[nodiscard]] Mat2 tdg_mat();
/// Square root of X with sx*sx == X (principal branch, global phase e^{i pi/4}
/// relative to Rx(pi/2)).
[[nodiscard]] Mat2 sx_mat();
[[nodiscard]] Mat2 sxdg_mat();

}  // namespace qrc::la
