#include "la/euler.hpp"

#include <cmath>

namespace qrc::la {

namespace {

/// Global phase aligning `target` with `candidate` measured on the
/// largest-magnitude entry of `candidate`.
double phase_between(const Mat2& target, const Mat2& candidate) {
  int bi = 0;
  int bj = 0;
  double best = -1.0;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      const double mag = std::abs(candidate(i, j));
      if (mag > best) {
        best = mag;
        bi = i;
        bj = j;
      }
    }
  }
  return std::arg(target(bi, bj) / candidate(bi, bj));
}

}  // namespace

ZyzAngles zyz_decompose(const Mat2& u) {
  // Scale to SU(2): su = u / sqrt(det(u)).
  const cplx d = u.det();
  const cplx scale = std::exp(cplx{0.0, -std::arg(d) / 2.0}) /
                     std::sqrt(std::abs(d));
  const Mat2 su = u * scale;

  ZyzAngles out;
  const double c = std::abs(su(0, 0));
  const double s = std::abs(su(1, 0));
  out.gamma = 2.0 * std::atan2(s, c);

  if (s < kAtol) {
    // Diagonal: only beta + delta determined. Put everything into beta.
    out.delta = 0.0;
    out.beta = 2.0 * std::arg(su(1, 1));
  } else if (c < kAtol) {
    // Anti-diagonal: only beta - delta determined.
    out.delta = 0.0;
    out.beta = 2.0 * std::arg(su(1, 0));
  } else {
    const double sum = 2.0 * std::arg(su(1, 1));   // beta + delta
    const double diff = 2.0 * std::arg(su(1, 0));  // beta - delta
    out.beta = normalize_angle((sum + diff) / 2.0);
    out.delta = normalize_angle((sum - diff) / 2.0);
  }
  out.gamma = normalize_angle(out.gamma);
  out.beta = normalize_angle(out.beta);

  const Mat2 rebuilt = rz_mat(out.beta) * ry_mat(out.gamma) * rz_mat(out.delta);
  out.phase = phase_between(u, rebuilt);
  return out;
}

ZxzAngles zxz_decompose(const Mat2& u) {
  // Ry(gamma) = Rz(pi/2) Rx(gamma) Rz(-pi/2), so
  // Rz(b) Ry(g) Rz(d) = Rz(b + pi/2) Rx(g) Rz(d - pi/2).
  const ZyzAngles zyz = zyz_decompose(u);
  ZxzAngles out;
  out.beta = normalize_angle(zyz.beta + kPi / 2.0);
  out.gamma = zyz.gamma;
  out.delta = normalize_angle(zyz.delta - kPi / 2.0);
  const Mat2 rebuilt = rz_mat(out.beta) * rx_mat(out.gamma) * rz_mat(out.delta);
  out.phase = phase_between(u, rebuilt);
  return out;
}

U3Angles u3_decompose(const Mat2& u) {
  const ZyzAngles zyz = zyz_decompose(u);
  U3Angles out;
  out.theta = zyz.gamma;
  out.phi = zyz.beta;
  out.lambda = zyz.delta;
  const Mat2 rebuilt = u3_mat(out.theta, out.phi, out.lambda);
  out.phase = phase_between(u, rebuilt);
  return out;
}

ZxzxzAngles zxzxz_decompose(const Mat2& u) {
  // U3(theta, phi, lambda) = e^{i g} Rz(phi + pi) SX Rz(theta + pi) SX
  // Rz(lambda) up to global phase (the standard ZXZXZ identity).
  const U3Angles u3 = u3_decompose(u);
  ZxzxzAngles out;
  out.a1 = normalize_angle(u3.phi + kPi);
  out.a2 = normalize_angle(u3.theta + kPi);
  out.a3 = normalize_angle(u3.lambda);
  const Mat2 rebuilt = rz_mat(out.a1) * sx_mat() * rz_mat(out.a2) * sx_mat() *
                       rz_mat(out.a3);
  out.phase = phase_between(u, rebuilt);
  return out;
}

Mat2 zyz_compose(const ZyzAngles& a) {
  return (rz_mat(a.beta) * ry_mat(a.gamma) * rz_mat(a.delta)) *
         std::exp(cplx{0.0, a.phase});
}

Mat2 zxz_compose(const ZxzAngles& a) {
  return (rz_mat(a.beta) * rx_mat(a.gamma) * rz_mat(a.delta)) *
         std::exp(cplx{0.0, a.phase});
}

Mat2 u3_compose(const U3Angles& a) {
  return u3_mat(a.theta, a.phi, a.lambda) * std::exp(cplx{0.0, a.phase});
}

Mat2 zxzxz_compose(const ZxzxzAngles& a) {
  return (rz_mat(a.a1) * sx_mat() * rz_mat(a.a2) * sx_mat() * rz_mat(a.a3)) *
         std::exp(cplx{0.0, a.phase});
}

}  // namespace qrc::la
