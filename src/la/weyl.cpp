#include "la/weyl.hpp"

#include <algorithm>
#include <cmath>

namespace qrc::la {

namespace {

using Real4 = std::array<std::array<double, 4>, 4>;

/// The magic basis change matrix B: columns are the magic Bell states.
/// B = 1/sqrt(2) * [[1, 0, 0, i], [0, i, 1, 0], [0, i, -1, 0], [1, 0, 0, -i]].
Mat4 magic_basis() {
  const double s = 1.0 / std::sqrt(2.0);
  Mat4 b;
  b(0, 0) = s;
  b(0, 3) = cplx{0.0, s};
  b(1, 1) = cplx{0.0, s};
  b(1, 2) = s;
  b(2, 1) = cplx{0.0, s};
  b(2, 2) = -s;
  b(3, 0) = s;
  b(3, 3) = cplx{0.0, -s};
  return b;
}

/// Diagonal of Bdag * (sigma (x) sigma) * B for sigma in {X, Y, Z}; these are
/// real +-1 vectors because the magic basis diagonalises the canonical gates.
struct MagicDiagonals {
  std::array<double, 4> wx{};
  std::array<double, 4> wy{};
  std::array<double, 4> wz{};
};

MagicDiagonals magic_diagonals() {
  const Mat4 b = magic_basis();
  const Mat4 bdag = b.adjoint();
  MagicDiagonals out;
  const Mat4 xx = bdag * kron(x_mat(), x_mat()) * b;
  const Mat4 yy = bdag * kron(y_mat(), y_mat()) * b;
  const Mat4 zz = bdag * kron(z_mat(), z_mat()) * b;
  for (int i = 0; i < 4; ++i) {
    out.wx[static_cast<std::size_t>(i)] = xx(i, i).real();
    out.wy[static_cast<std::size_t>(i)] = yy(i, i).real();
    out.wz[static_cast<std::size_t>(i)] = zz(i, i).real();
  }
  return out;
}

/// Solves the 4x4 linear system m * v = rhs by Gaussian elimination with
/// partial pivoting. Returns false if singular.
bool solve4(std::array<std::array<double, 4>, 4> m, std::array<double, 4> rhs,
            std::array<double, 4>& v) {
  for (int col = 0; col < 4; ++col) {
    int pivot = col;
    for (int r = col + 1; r < 4; ++r) {
      if (std::abs(m[static_cast<std::size_t>(r)][static_cast<std::size_t>(
              col)]) > std::abs(m[static_cast<std::size_t>(
                           pivot)][static_cast<std::size_t>(col)])) {
        pivot = r;
      }
    }
    if (std::abs(m[static_cast<std::size_t>(pivot)]
                  [static_cast<std::size_t>(col)]) < 1e-12) {
      return false;
    }
    std::swap(m[static_cast<std::size_t>(col)],
              m[static_cast<std::size_t>(pivot)]);
    std::swap(rhs[static_cast<std::size_t>(col)],
              rhs[static_cast<std::size_t>(pivot)]);
    for (int r = 0; r < 4; ++r) {
      if (r == col) {
        continue;
      }
      const double f = m[static_cast<std::size_t>(r)]
                        [static_cast<std::size_t>(col)] /
                       m[static_cast<std::size_t>(col)]
                        [static_cast<std::size_t>(col)];
      for (int c = col; c < 4; ++c) {
        m[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] -=
            f * m[static_cast<std::size_t>(col)][static_cast<std::size_t>(c)];
      }
      rhs[static_cast<std::size_t>(r)] -= f * rhs[static_cast<std::size_t>(col)];
    }
  }
  for (int i = 0; i < 4; ++i) {
    v[static_cast<std::size_t>(i)] =
        rhs[static_cast<std::size_t>(i)] /
        m[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)];
  }
  return true;
}

double det3x3_real(const Real4& m, int skip_row, int skip_col) {
  std::array<double, 9> sub{};
  int idx = 0;
  for (int i = 0; i < 4; ++i) {
    if (i == skip_row) {
      continue;
    }
    for (int j = 0; j < 4; ++j) {
      if (j == skip_col) {
        continue;
      }
      sub[static_cast<std::size_t>(idx++)] =
          m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    }
  }
  return sub[0] * (sub[4] * sub[8] - sub[5] * sub[7]) -
         sub[1] * (sub[3] * sub[8] - sub[5] * sub[6]) +
         sub[2] * (sub[3] * sub[7] - sub[4] * sub[6]);
}

double det4_real(const Real4& m) {
  double acc = 0.0;
  double sign = 1.0;
  for (int j = 0; j < 4; ++j) {
    acc += sign * m[0][static_cast<std::size_t>(j)] * det3x3_real(m, 0, j);
    sign = -sign;
  }
  return acc;
}

}  // namespace

bool joint_diagonalize(Real4& a, Real4& b, Real4& q, int max_sweeps,
                       double tol) {
  // Initialise q to identity.
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      q[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          (i == j) ? 1.0 : 0.0;
    }
  }
  const auto off = [&]() {
    double acc = 0.0;
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        if (i != j) {
          acc += a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] *
                     a[static_cast<std::size_t>(i)]
                      [static_cast<std::size_t>(j)] +
                 b[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] *
                     b[static_cast<std::size_t>(i)]
                      [static_cast<std::size_t>(j)];
        }
      }
    }
    return acc;
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off() < tol) {
      return true;
    }
    for (int p = 0; p < 4; ++p) {
      for (int r = p + 1; r < 4; ++r) {
        const auto sp = static_cast<std::size_t>(p);
        const auto sr = static_cast<std::size_t>(r);
        // Minimise sum over both matrices of the rotated off-diagonal
        // (p, r) entry: entry(theta) = u cos(2t) - v sin(2t) with
        // u = m_pr and v = (m_pp - m_rr) / 2.
        double cp = 0.0;  // sum u * v
        double cq = 0.0;  // sum (v^2 - u^2)
        for (const Real4* m : {&a, &b}) {
          const double u = (*m)[sp][sr];
          const double v = ((*m)[sp][sp] - (*m)[sr][sr]) / 2.0;
          cp += u * v;
          cq += v * v - u * u;
        }
        // Stationary points of the quadratic form: tan(4t) = 2 P / Q;
        // evaluate both candidate roots and keep the minimiser.
        double theta = 0.25 * std::atan2(2.0 * cp, cq);
        const auto objective = [&](double t) {
          double acc = 0.0;
          const double c = std::cos(2.0 * t);
          const double s = std::sin(2.0 * t);
          for (const Real4* m : {&a, &b}) {
            const double u = (*m)[sp][sr];
            const double v = ((*m)[sp][sp] - (*m)[sr][sr]) / 2.0;
            const double e = u * c - v * s;
            acc += e * e;
          }
          return acc;
        };
        if (objective(theta + kPi / 4.0) < objective(theta)) {
          theta += kPi / 4.0;
        }
        const double c = std::cos(theta);
        const double s = std::sin(theta);
        if (std::abs(s) < 1e-15) {
          continue;
        }
        // Apply the Givens rotation G (rows/cols p and r) to both matrices:
        // m <- G^T m G, and accumulate q <- q G.
        for (Real4* m : {&a, &b}) {
          for (int k = 0; k < 4; ++k) {
            const auto sk = static_cast<std::size_t>(k);
            const double mk_p = (*m)[sk][sp];
            const double mk_r = (*m)[sk][sr];
            (*m)[sk][sp] = c * mk_p + s * mk_r;
            (*m)[sk][sr] = -s * mk_p + c * mk_r;
          }
          for (int k = 0; k < 4; ++k) {
            const auto sk = static_cast<std::size_t>(k);
            const double mp_k = (*m)[sp][sk];
            const double mr_k = (*m)[sr][sk];
            (*m)[sp][sk] = c * mp_k + s * mr_k;
            (*m)[sr][sk] = -s * mp_k + c * mr_k;
          }
        }
        for (int k = 0; k < 4; ++k) {
          const auto sk = static_cast<std::size_t>(k);
          const double qk_p = q[sk][sp];
          const double qk_r = q[sk][sr];
          q[sk][sp] = c * qk_p + s * qk_r;
          q[sk][sr] = -s * qk_p + c * qk_r;
        }
      }
    }
  }
  return off() < tol * 100.0;
}

Mat4 KakDecomposition::reconstruct() const {
  const Mat4 k1 = kron(k1_q1, k1_q0);
  const Mat4 k2 = kron(k2_q1, k2_q0);
  return (k1 * canonical_gate(x, y, z) * k2) * std::exp(cplx{0.0, phase});
}

namespace {

/// Applies one of the canonical coordinate moves to `d`, preserving
/// reconstruct(). Coordinates are referenced by index 0 = x, 1 = y, 2 = z.
struct CoordRef {
  double* v[3];
};

}  // namespace

void KakDecomposition::canonicalize() {
  double* coord[3] = {&x, &y, &z};

  // Move 1: shift coordinate i by -pi/2 * k, folding (sigma (x) sigma)^k into
  // the pre-interaction locals and adjusting the global phase.
  const Mat2 paulis[3] = {x_mat(), y_mat(), z_mat()};
  for (int i = 0; i < 3; ++i) {
    const double k = std::round(*coord[i] / (kPi / 2.0));
    if (k == 0.0) {
      continue;
    }
    *coord[i] -= k * (kPi / 2.0);
    // canonical(c + k*pi/2 along i) = canonical(c) * (i * sigma sigma)^k,
    // so folding k powers of (sigma (x) sigma) into K2 and i^k into phase.
    const int km = static_cast<int>(((static_cast<long long>(k) % 4) + 4) % 4);
    for (int rep = 0; rep < km; ++rep) {
      k2_q1 = paulis[i] * k2_q1;
      k2_q0 = paulis[i] * k2_q0;
    }
    phase += k * kPi / 2.0;
  }

  // Move 2 helpers: sign flips of coordinate pairs by conjugating with a
  // single-side Pauli. Conjugating with (P (x) I) where P anticommutes with
  // the two flipped sigmas:
  //   flip (x, y): P = Z, flip (x, z): P = Y, flip (y, z): P = X.
  const auto flip_pair = [&](int i, int j) {
    int other = 3 - i - j;
    const Mat2 p = paulis[other];
    *coord[i] = -*coord[i];
    *coord[j] = -*coord[j];
    k1_q1 = k1_q1 * p;
    k2_q1 = p * k2_q1;
  };

  // Move 3 helpers: swap two coordinates by conjugating with (V (x) V).
  //   swap (x, y): V = S, swap (x, z): V = H, swap (y, z): V = Rx(pi/2).
  const auto swap_pair = [&](int i, int j) {
    Mat2 v;
    if ((i == 0 && j == 1) || (i == 1 && j == 0)) {
      v = s_mat();
    } else if ((i == 0 && j == 2) || (i == 2 && j == 0)) {
      v = h_mat();
    } else {
      v = rx_mat(kPi / 2.0);
    }
    // canonical(..swapped..) = (V (x) V) canonical(c) (V (x) V)^dag, so
    // canonical(c) = (V^dag (x) V^dag) canonical(..swapped..) (V (x) V).
    std::swap(*coord[i], *coord[j]);
    const Mat2 vd = v.adjoint();
    k1_q1 = k1_q1 * vd;
    k1_q0 = k1_q0 * vd;
    k2_q1 = v * k2_q1;
    k2_q0 = v * k2_q0;
  };

  // Sort by absolute value descending: |x| >= |y| >= |z|.
  for (int pass = 0; pass < 2; ++pass) {
    if (std::abs(*coord[0]) < std::abs(*coord[1])) {
      swap_pair(0, 1);
    }
    if (std::abs(*coord[1]) < std::abs(*coord[2])) {
      swap_pair(1, 2);
    }
  }
  // Make x and y non-negative (flip signs in pairs).
  if (*coord[0] < 0.0 && *coord[1] < 0.0) {
    flip_pair(0, 1);
  } else if (*coord[0] < 0.0) {
    flip_pair(0, 2);
  } else if (*coord[1] < 0.0) {
    flip_pair(1, 2);
  }
  // x may now sit exactly at -pi/4 + eps boundary cases; where x < y due to
  // earlier flips, re-sort once more (flips preserve absolute values, so a
  // single extra pass suffices).
  if (*coord[0] < *coord[1]) {
    swap_pair(0, 1);
  }
  if (*coord[1] < std::abs(*coord[2])) {
    // |y| >= |z| is guaranteed; y < |z| can only happen via tiny numerical
    // noise, so clamp by swapping.
    if (*coord[1] < *coord[2]) {
      swap_pair(1, 2);
    }
  }
}

std::optional<KakDecomposition> kak_decompose(const Mat4& u) {
  if (!u.is_unitary(1e-8)) {
    return std::nullopt;
  }
  // Scale into SU(4).
  const cplx d = u.det();
  const double darg = std::arg(d);
  const cplx g = std::exp(cplx{0.0, darg / 4.0}) *
                 std::pow(std::abs(d), 0.25);
  const Mat4 su = u * (cplx{1.0, 0.0} / g);

  const Mat4 b = magic_basis();
  const Mat4 bdag = b.adjoint();
  const Mat4 up = bdag * su * b;          // U' in the magic basis
  const Mat4 m2 = up.transpose() * up;    // complex symmetric unitary

  Real4 re{};
  Real4 im{};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      re[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          m2(i, j).real();
      im[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          m2(i, j).imag();
    }
  }
  Real4 q{};
  if (!joint_diagonalize(re, im, q)) {
    return std::nullopt;
  }

  // Ensure det(Q) = +1 by flipping one column.
  if (det4_real(q) < 0.0) {
    for (int i = 0; i < 4; ++i) {
      q[static_cast<std::size_t>(i)][0] = -q[static_cast<std::size_t>(i)][0];
    }
  }

  // Eigenphases: the diagonal of Q^T M2 Q is e^{2 i theta_j}.
  std::array<double, 4> theta{};
  for (int j = 0; j < 4; ++j) {
    const auto sj = static_cast<std::size_t>(j);
    const cplx dj{re[sj][sj], im[sj][sj]};
    theta[sj] = std::arg(dj) / 2.0;
  }

  // O = U' Q e^{-i Theta} must be real orthogonal with det +1. If
  // det(O) = -1, shift theta_0 by pi (flips the first column of O).
  Mat4 qm;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      qm(i, j) = q[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    }
  }
  const auto build_o = [&](const std::array<double, 4>& th) {
    Mat4 o = up * qm;
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        o(i, j) *= std::exp(cplx{0.0, -th[static_cast<std::size_t>(j)]});
      }
    }
    return o;
  };
  Mat4 o = build_o(theta);
  // Check realness.
  double max_imag = 0.0;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      max_imag = std::max(max_imag, std::abs(o(i, j).imag()));
    }
  }
  if (max_imag > 1e-6) {
    return std::nullopt;
  }
  Real4 o_real{};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      o_real[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          o(i, j).real();
    }
  }
  if (det4_real(o_real) < 0.0) {
    theta[0] += kPi;
    o = build_o(theta);
  }

  // Solve theta_j = t + x*wx_j + y*wy_j + z*wz_j for (t, x, y, z).
  static const MagicDiagonals kDiag = magic_diagonals();
  std::array<std::array<double, 4>, 4> sys{};
  for (int j = 0; j < 4; ++j) {
    const auto sj = static_cast<std::size_t>(j);
    sys[sj][0] = 1.0;
    sys[sj][1] = kDiag.wx[sj];
    sys[sj][2] = kDiag.wy[sj];
    sys[sj][3] = kDiag.wz[sj];
  }
  std::array<double, 4> sol{};
  if (!solve4(sys, theta, sol)) {
    return std::nullopt;
  }

  KakDecomposition out;
  out.phase = darg / 4.0 + sol[0];
  out.x = sol[1];
  out.y = sol[2];
  out.z = sol[3];

  // Locals: K1 = B O B^dag, K2 = B Q^T B^dag, both SU(2) (x) SU(2).
  const Mat4 k1m = b * o * bdag;
  const Mat4 k2m = b * qm.transpose() * bdag;
  if (!decompose_tensor_product(k1m, out.k1_q1, out.k1_q0, 1e-5) ||
      !decompose_tensor_product(k2m, out.k2_q1, out.k2_q0, 1e-5)) {
    return std::nullopt;
  }

  // Final verification; adjust the residual global phase exactly.
  const Mat4 rebuilt = out.reconstruct();
  int bi = 0;
  int bj = 0;
  double best = -1.0;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (std::abs(rebuilt(i, j)) > best) {
        best = std::abs(rebuilt(i, j));
        bi = i;
        bj = j;
      }
    }
  }
  out.phase += std::arg(u(bi, bj) / rebuilt(bi, bj));
  if (!out.reconstruct().approx_equal(u, 1e-6)) {
    return std::nullopt;
  }
  return out;
}

bool LocalInvariants::approx_equal(const LocalInvariants& rhs,
                                   double atol) const {
  return std::abs(g1 - rhs.g1) <= atol && std::abs(g2 - rhs.g2) <= atol &&
         std::abs(g3 - rhs.g3) <= atol;
}

LocalInvariants local_invariants(const Mat4& u) {
  // Makhlin invariants: with m = B^dag (U / det(U)^{1/4}) B and M = m^T m,
  //   g1 + i g2 = tr(M)^2 / 16, g3 = (tr(M)^2 - tr(M M)) / 4.
  const cplx d = u.det();
  const cplx g = std::exp(cplx{0.0, std::arg(d) / 4.0}) *
                 std::pow(std::abs(d), 0.25);
  const Mat4 su = u * (cplx{1.0, 0.0} / g);
  const Mat4 b = magic_basis();
  const Mat4 m = b.adjoint() * su * b;
  const Mat4 mm = m.transpose() * m;
  const cplx tr = mm.trace();
  const cplx tr2 = (mm * mm).trace();
  LocalInvariants out;
  const cplx g12 = tr * tr / 16.0;
  out.g1 = g12.real();
  out.g2 = g12.imag();
  out.g3 = ((tr * tr - tr2) / 4.0).real();
  return out;
}

}  // namespace qrc::la
