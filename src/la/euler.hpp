/// \file euler.hpp
/// \brief Euler-angle decompositions of single-qubit unitaries used by the
///        synthesis passes: ZYZ, ZXZ, and the rz/sx "ZXZXZ" form native to
///        IBM- and OQC-style devices.
#pragma once

#include <array>

#include "la/complex.hpp"
#include "la/mat2.hpp"

namespace qrc::la {

/// U = e^{i phase} * Rz(beta) * Ry(gamma) * Rz(delta).
struct ZyzAngles {
  double phase = 0.0;
  double beta = 0.0;
  double gamma = 0.0;
  double delta = 0.0;
};

/// U = e^{i phase} * Rz(beta) * Rx(gamma) * Rz(delta).
struct ZxzAngles {
  double phase = 0.0;
  double beta = 0.0;
  double gamma = 0.0;
  double delta = 0.0;
};

/// U = e^{i phase} * U3(theta, phi, lambda).
struct U3Angles {
  double phase = 0.0;
  double theta = 0.0;
  double phi = 0.0;
  double lambda = 0.0;
};

/// U = e^{i phase} * Rz(a1) * SX * Rz(a2) * SX * Rz(a3)
/// (the decomposition into the IBM native 1q basis).
struct ZxzxzAngles {
  double phase = 0.0;
  double a1 = 0.0;
  double a2 = 0.0;
  double a3 = 0.0;
};

/// Decomposes an arbitrary 2x2 unitary. Preconditions: `u` unitary.
[[nodiscard]] ZyzAngles zyz_decompose(const Mat2& u);

/// Decomposes an arbitrary 2x2 unitary into Rz Rx Rz.
[[nodiscard]] ZxzAngles zxz_decompose(const Mat2& u);

/// Decomposes an arbitrary 2x2 unitary into the U3 parameterisation.
[[nodiscard]] U3Angles u3_decompose(const Mat2& u);

/// Decomposes an arbitrary 2x2 unitary into Rz-SX-Rz-SX-Rz.
[[nodiscard]] ZxzxzAngles zxzxz_decompose(const Mat2& u);

/// Rebuilds the unitary from its ZYZ angles (for verification).
[[nodiscard]] Mat2 zyz_compose(const ZyzAngles& a);
[[nodiscard]] Mat2 zxz_compose(const ZxzAngles& a);
[[nodiscard]] Mat2 u3_compose(const U3Angles& a);
[[nodiscard]] Mat2 zxzxz_compose(const ZxzxzAngles& a);

}  // namespace qrc::la
