#include "la/mat2.hpp"

#include <cmath>
#include <sstream>

namespace qrc::la {

Mat2 Mat2::operator*(const Mat2& rhs) const {
  Mat2 out;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      cplx acc = 0.0;
      for (int k = 0; k < 2; ++k) {
        acc += (*this)(i, k) * rhs(k, j);
      }
      out(i, j) = acc;
    }
  }
  return out;
}

Mat2 Mat2::operator*(cplx scalar) const {
  Mat2 out = *this;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      out(i, j) *= scalar;
    }
  }
  return out;
}

Mat2 Mat2::operator+(const Mat2& rhs) const {
  Mat2 out = *this;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      out(i, j) += rhs(i, j);
    }
  }
  return out;
}

Mat2 Mat2::operator-(const Mat2& rhs) const {
  Mat2 out = *this;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      out(i, j) -= rhs(i, j);
    }
  }
  return out;
}

Mat2 Mat2::adjoint() const {
  Mat2 out;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      out(i, j) = std::conj((*this)(j, i));
    }
  }
  return out;
}

cplx Mat2::det() const { return m_[0] * m_[3] - m_[1] * m_[2]; }

cplx Mat2::trace() const { return m_[0] + m_[3]; }

double Mat2::norm() const {
  double acc = 0.0;
  for (const cplx& v : m_) {
    acc += std::norm(v);
  }
  return std::sqrt(acc);
}

bool Mat2::is_unitary(double atol) const {
  const Mat2 prod = (*this) * adjoint();
  return prod.approx_equal(identity(), atol);
}

bool Mat2::approx_equal(const Mat2& rhs, double atol) const {
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      if (!la::approx_equal((*this)(i, j), rhs(i, j), atol)) {
        return false;
      }
    }
  }
  return true;
}

bool Mat2::equal_up_to_phase(const Mat2& rhs, double atol) const {
  // Find the largest-magnitude entry of rhs and align phases on it.
  int bi = 0;
  int bj = 0;
  double best = -1.0;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      const double mag = std::abs(rhs(i, j));
      if (mag > best) {
        best = mag;
        bi = i;
        bj = j;
      }
    }
  }
  if (best <= atol) {
    return approx_equal(rhs, atol);
  }
  const cplx ratio = (*this)(bi, bj) / rhs(bi, bj);
  if (std::abs(std::abs(ratio) - 1.0) > atol * 10.0) {
    return false;
  }
  return approx_equal(rhs * ratio, atol * 10.0);
}

std::string Mat2::to_string() const {
  std::ostringstream os;
  os.precision(6);
  for (int i = 0; i < 2; ++i) {
    os << "[ ";
    for (int j = 0; j < 2; ++j) {
      const cplx v = (*this)(i, j);
      os << v.real() << (v.imag() >= 0 ? "+" : "") << v.imag() << "i ";
    }
    os << "]\n";
  }
  return os.str();
}

Mat2 rz_mat(double theta) {
  const cplx e = std::exp(cplx{0.0, -theta / 2.0});
  return Mat2{e, 0.0, 0.0, std::conj(e)};
}

Mat2 ry_mat(double theta) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return Mat2{c, -s, s, c};
}

Mat2 rx_mat(double theta) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return Mat2{c, cplx{0.0, -s}, cplx{0.0, -s}, c};
}

Mat2 p_mat(double lambda) {
  return Mat2{1.0, 0.0, 0.0, std::exp(cplx{0.0, lambda})};
}

Mat2 u3_mat(double theta, double phi, double lambda) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return Mat2{c, -std::exp(cplx{0.0, lambda}) * s,
              std::exp(cplx{0.0, phi}) * s,
              std::exp(cplx{0.0, phi + lambda}) * c};
}

Mat2 x_mat() { return Mat2{0.0, 1.0, 1.0, 0.0}; }
Mat2 y_mat() { return Mat2{0.0, cplx{0.0, -1.0}, cplx{0.0, 1.0}, 0.0}; }
Mat2 z_mat() { return Mat2{1.0, 0.0, 0.0, -1.0}; }

Mat2 h_mat() {
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  return Mat2{inv_sqrt2, inv_sqrt2, inv_sqrt2, -inv_sqrt2};
}

Mat2 s_mat() { return Mat2{1.0, 0.0, 0.0, cplx{0.0, 1.0}}; }
Mat2 sdg_mat() { return Mat2{1.0, 0.0, 0.0, cplx{0.0, -1.0}}; }

Mat2 t_mat() {
  return Mat2{1.0, 0.0, 0.0, std::exp(cplx{0.0, kPi / 4.0})};
}
Mat2 tdg_mat() {
  return Mat2{1.0, 0.0, 0.0, std::exp(cplx{0.0, -kPi / 4.0})};
}

Mat2 sx_mat() {
  const cplx p{0.5, 0.5};
  const cplx m{0.5, -0.5};
  return Mat2{p, m, m, p};
}

Mat2 sxdg_mat() { return sx_mat().adjoint(); }

}  // namespace qrc::la
