/// \file complex.hpp
/// \brief Scalar complex type and numeric tolerances shared across the
///        linear-algebra substrate.
#pragma once

#include <cmath>
#include <complex>
#include <numbers>

namespace qrc::la {

/// Complex scalar used throughout the library.
using cplx = std::complex<double>;

/// Default absolute tolerance for floating-point comparisons of matrix
/// entries and angles. Chosen so that chains of ~100 decompositions stay
/// well inside the tolerance.
inline constexpr double kAtol = 1e-9;

/// Looser tolerance for verification after long pass pipelines.
inline constexpr double kLooseAtol = 1e-7;

inline constexpr double kPi = std::numbers::pi;

/// \returns true if |a - b| <= atol componentwise.
[[nodiscard]] inline bool approx_equal(cplx a, cplx b, double atol = kAtol) {
  return std::abs(a - b) <= atol;
}

/// \returns true if |a| <= atol.
[[nodiscard]] inline bool approx_zero(cplx a, double atol = kAtol) {
  return std::abs(a) <= atol;
}

/// Normalises an angle into the half-open interval (-pi, pi].
[[nodiscard]] inline double normalize_angle(double theta) {
  double t = std::remainder(theta, 2.0 * kPi);
  if (t <= -kPi) {
    t += 2.0 * kPi;
  }
  return t;
}

/// \returns true if theta is an integer multiple of 2*pi (i.e. the rotation
/// it parameterises is the identity up to global phase for Rz/Rx/Ry).
[[nodiscard]] inline bool angle_is_zero(double theta, double atol = kAtol) {
  return std::abs(normalize_angle(theta)) <= atol;
}

}  // namespace qrc::la
