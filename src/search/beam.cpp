// Beam search over the compilation MDP: a width-K frontier advances one
// MDP step per iteration. Every frontier state gets ONE batched policy
// forward (priors), each entry expands its top-`branch` actions, and all
// surviving children get ONE batched value forward; children are pruned
// to the K best by cumulative log prior + value bootstrap. The
// cycle-avoidance bookkeeping (per-path visited fingerprints, exhausted
// actions, retry-next-best) mirrors the greedy rollout core exactly, so
// beam(1) with the default branch reproduces Predictor::compile
// bit-for-bit — including which no-op actions it burns steps on.

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "core/rollout.hpp"
#include "obs/perf_counters.hpp"
#include "rl/thread_pool.hpp"
#include "search/internal.hpp"

namespace qrc::search::internal {

namespace {

struct BeamEntry {
  core::CompilationState state;
  std::vector<double> obs;
  double score = 0.0;  ///< cumulative log prior along the path
  /// PathArena node of this entry: encodes the attempted-action trace and
  /// the visited-fingerprint set of the whole path in one int, shared
  /// with the parent instead of copied per child.
  int path = -1;
  std::set<int> exhausted;  ///< actions banned as no-ops
  std::string key;  ///< transposition key ("" for stalled survivors)
};

/// One proposed (entry, action) expansion and its stepped outcome.
struct Candidate {
  int entry = 0;
  int action = -1;
  double log_prior = 0.0;
  core::CompilationState child;
  core::Fingerprint fp;   ///< fingerprint of the stepped child
  bool stalled = false;   ///< child fingerprint already on the path
  bool terminal = false;  ///< child reached MdpState::kDone
  std::vector<double> obs;
  std::string key;  ///< transposition key (progressed, non-terminal only)
};

}  // namespace

SearchResult beam_search(const ir::Circuit& circuit,
                         const SearchContext& context,
                         const SearchOptions& options, rl::WorkerPool& pool,
                         const ProgressFn& progress) {
  const auto start = std::chrono::steady_clock::now();
  const core::ActionRegistry& registry = core::ActionRegistry::instance();
  const int width = options.beam_width;
  const int branch =
      options.beam_branch > 0 ? options.beam_branch : options.beam_width;
  const int max_depth =
      options.max_depth > 0 ? options.max_depth : context.max_steps;
  const std::uint64_t seed =
      options.seed != 0 ? options.seed : context.seed;
  const Deadline deadline(options.deadline_ms);

  SearchResult result;
  result.stats.strategy = Strategy::kBeam;
  result.stats.budget = width;
  BatchEvaluator evaluator(context, pool);
  TranspositionTable table;

  PathArena paths;
  std::vector<BeamEntry> frontier(1);
  frontier[0].state.circuit = circuit;
  frontier[0].obs = core::CompilationEnv::observe_state(frontier[0].state);
  frontier[0].path =
      paths.add(-1, -1, core::fingerprint_of(frontier[0].state));
  (void)table.lookup_or_insert(state_key(frontier[0].state), 0);

  const auto obs_size = static_cast<std::size_t>(frontier[0].obs.size());
  const int num_actions = registry.size();

  std::vector<double> obs_batch;
  std::vector<std::vector<bool>> mask_batch;
  std::vector<double> probs;
  std::vector<int> ranked;
  for (int depth = 0; depth < max_depth && !frontier.empty(); ++depth) {
    if (deadline.expired()) {
      result.stats.deadline_hit = true;
      break;
    }
    const int n = static_cast<int>(frontier.size());
    obs_batch.resize(static_cast<std::size_t>(n) * obs_size);
    mask_batch.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const auto& entry = frontier[static_cast<std::size_t>(i)];
      std::copy(entry.obs.begin(), entry.obs.end(),
                obs_batch.begin() + static_cast<std::size_t>(i) * obs_size);
      mask_batch[static_cast<std::size_t>(i)] = registry.mask(entry.state);
    }
    evaluator.evaluate(obs_batch, n, mask_batch, &probs, nullptr,
                       result.stats);

    // Per entry: top-`branch` valid un-exhausted actions by prior
    // (ties -> lower action id, matching the greedy argmax).
    std::vector<Candidate> candidates;
    for (int i = 0; i < n; ++i) {
      const auto& entry = frontier[static_cast<std::size_t>(i)];
      const double* row =
          probs.data() + static_cast<std::size_t>(i) *
                             static_cast<std::size_t>(num_actions);
      ranked.clear();
      for (int a = 0; a < num_actions; ++a) {
        if (mask_batch[static_cast<std::size_t>(i)]
                      [static_cast<std::size_t>(a)] &&
            !entry.exhausted.contains(a)) {
          ranked.push_back(a);
        }
      }
      std::stable_sort(ranked.begin(), ranked.end(), [&](int a, int b) {
        return row[static_cast<std::size_t>(a)] >
               row[static_cast<std::size_t>(b)];
      });
      const int take = std::min(branch, static_cast<int>(ranked.size()));
      for (int r = 0; r < take; ++r) {
        Candidate c;
        c.entry = i;
        c.action = ranked[static_cast<std::size_t>(r)];
        c.log_prior =
            std::log(row[static_cast<std::size_t>(c.action)]);
        candidates.push_back(std::move(c));
      }
    }
    if (candidates.empty()) {
      break;  // every entry has banned all of its valid actions
    }

    // Step all candidates in parallel — each owns its slot. Stalled
    // detection, observation and the transposition key are computed here
    // too (index-parallel, so the pool size cannot change anything).
    const std::uint64_t step_seed =
        core::CompilationEnv::step_seed(seed, 1, depth);
    {
      obs::PerfScope perf(obs::PerfKernel::kSearchExpand);
      pool.parallel_for(static_cast<int>(candidates.size()), [&](int ci) {
        auto& c = candidates[static_cast<std::size_t>(ci)];
        const auto& entry = frontier[static_cast<std::size_t>(c.entry)];
        c.child = core::CompilationEnv::peek_step(entry.state, c.action,
                                                  step_seed);
        c.fp = core::fingerprint_of(c.child);
        c.stalled = paths.contains(entry.path, c.fp);
        if (c.stalled) {
          // The fingerprint matched a path state, but the pass may still
          // have rewritten the circuit (the fingerprint is coarse): keep
          // the post-step observation so the survivor carries the stepped
          // state, exactly like the greedy core does. A stalled child is
          // never Done (Done changes the fingerprint's MDP phase).
          c.obs = core::CompilationEnv::observe_state(c.child);
          return;
        }
        c.terminal = c.child.state() == core::MdpState::kDone;
        if (!c.terminal) {
          c.obs = core::CompilationEnv::observe_state(c.child);
          c.key = state_key(c.child);
        }
      });
    }
    result.stats.nodes_expanded += candidates.size();
    result.stats.depth_reached = depth + 1;

    // Resolve candidates in deterministic order into the next frontier.
    std::vector<BeamEntry> next;
    std::vector<int> stall_slot(frontier.size(), -1);
    for (auto& c : candidates) {
      const auto& entry = frontier[static_cast<std::size_t>(c.entry)];
      if (c.stalled) {
        // The action proved a no-op: the entry persists with the action
        // banned (and the step burned), exactly like the greedy core. All
        // stalled actions of one entry merge into a single survivor —
        // K duplicate copies of the same stuck state must not crowd
        // genuinely distinct states out of the frontier.
        int& slot = stall_slot[static_cast<std::size_t>(c.entry)];
        if (slot >= 0) {
          next[static_cast<std::size_t>(slot)].exhausted.insert(c.action);
          continue;
        }
        BeamEntry stalled;
        stalled.state = std::move(c.child);  // post-step, like greedy
        stalled.obs = std::move(c.obs);
        stalled.score = entry.score + c.log_prior;
        // The stalled fingerprint is already on the path, so the new node
        // extends the action trace without changing the visited set.
        stalled.path = paths.add(entry.path, c.action, c.fp);
        stalled.exhausted = entry.exhausted;
        stalled.exhausted.insert(c.action);
        slot = static_cast<int>(next.size());
        next.push_back(std::move(stalled));
        continue;
      }
      if (c.terminal) {
        const double reward = terminal_reward(context, c.child);
        ++result.stats.terminals_found;
        if (!result.found_terminal || reward > result.reward) {
          result.found_terminal = true;
          result.reward = reward;
          result.state = std::move(c.child);
          result.actions = paths.trace(entry.path);
          result.actions.push_back(c.action);
        }
        continue;
      }
      if (table.lookup_or_insert(c.key, static_cast<int>(next.size()))
              .has_value()) {
        continue;  // commuting pass order: state already explored
      }
      BeamEntry child;
      child.key = std::move(c.key);
      child.state = std::move(c.child);
      child.obs = std::move(c.obs);
      child.score = entry.score + c.log_prior;
      child.path = paths.add(entry.path, c.action, c.fp);
      next.push_back(std::move(child));
    }

    // Prune to the K best by log prior + value bootstrap — one batched
    // value forward over every survivor ("batched leaf evaluation").
    if (static_cast<int>(next.size()) > width) {
      const int m = static_cast<int>(next.size());
      obs_batch.resize(static_cast<std::size_t>(m) * obs_size);
      for (int i = 0; i < m; ++i) {
        std::copy(next[static_cast<std::size_t>(i)].obs.begin(),
                  next[static_cast<std::size_t>(i)].obs.end(),
                  obs_batch.begin() +
                      static_cast<std::size_t>(i) * obs_size);
      }
      std::vector<double> values;
      evaluator.evaluate(obs_batch, m, {}, nullptr, &values, result.stats);
      std::vector<int> order(next.size());
      for (int i = 0; i < m; ++i) {
        order[static_cast<std::size_t>(i)] = i;
      }
      std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return next[static_cast<std::size_t>(a)].score +
                   options.value_weight * values[static_cast<std::size_t>(a)] >
               next[static_cast<std::size_t>(b)].score +
                   options.value_weight * values[static_cast<std::size_t>(b)];
      });
      std::vector<BeamEntry> pruned;
      pruned.reserve(static_cast<std::size_t>(width));
      for (int r = 0; r < width; ++r) {
        pruned.push_back(
            std::move(next[static_cast<std::size_t>(
                order[static_cast<std::size_t>(r)])]));
      }
      // A pruned child was keyed at expansion but never explored: drop
      // its table entry so a later, better-scoring path may re-derive it.
      for (int r = width; r < m; ++r) {
        table.forget(
            next[static_cast<std::size_t>(order[static_cast<std::size_t>(r)])]
                .key);
      }
      next = std::move(pruned);
    }
    frontier = std::move(next);

    if (progress) {
      SearchProgress snapshot;
      snapshot.strategy = Strategy::kBeam;
      snapshot.quantum = depth + 1;
      snapshot.nodes_expanded = result.stats.nodes_expanded;
      snapshot.found_terminal = result.found_terminal;
      snapshot.best_reward = result.reward;
      snapshot.elapsed_us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      progress(snapshot);
    }
  }

  result.stats.transposition_hits = table.hits();
  result.stats.transposition_entries = table.entries();
  if (result.found_terminal) {
    result.stats.best_reward = result.reward;
  }
  result.stats.elapsed_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace qrc::search::internal
