/// \file internal.hpp
/// \brief Shared plumbing of the beam and MCTS strategies: the
///        transposition table, the batched policy/value evaluator, and
///        the deadline clock. Internal to src/search/.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/compilation_env.hpp"
#include "core/rollout.hpp"
#include "search/engine.hpp"

namespace qrc::search::internal {

/// Append-only arena of search-path nodes linked by parent index. A path
/// (the action trace and the set of fingerprints visited along it) is
/// identified by one int, so expanding a child shares the whole parent
/// path instead of copying a std::vector<int> of actions plus a
/// std::set<Fingerprint> per candidate. Membership checks walk the parent
/// chain — O(depth), with depth bounded by the step cap.
class PathArena {
 public:
  /// Adds a node; `parent` is -1 for the root, `action` the action taken
  /// to reach the node (-1 for the root), `fp` the fingerprint of the
  /// node's state. Returns the node id.
  int add(int parent, int action, const core::Fingerprint& fp) {
    nodes_.push_back({fp, parent, action});
    return static_cast<int>(nodes_.size()) - 1;
  }

  /// True if `fp` appears on the path from `node` back to the root.
  [[nodiscard]] bool contains(int node, const core::Fingerprint& fp) const {
    for (int i = node; i >= 0; i = nodes_[static_cast<std::size_t>(i)].parent) {
      if (nodes_[static_cast<std::size_t>(i)].fp == fp) {
        return true;
      }
    }
    return false;
  }

  /// The root-to-node action trace.
  [[nodiscard]] std::vector<int> trace(int node) const {
    std::vector<int> out;
    for (int i = node; i >= 0; i = nodes_[static_cast<std::size_t>(i)].parent) {
      if (nodes_[static_cast<std::size_t>(i)].action >= 0) {
        out.push_back(nodes_[static_cast<std::size_t>(i)].action);
      }
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

 private:
  struct Node {
    core::Fingerprint fp;
    int parent;
    int action;
  };
  std::vector<Node> nodes_;
};

/// String-keyed transposition table mapping state_key() to a caller-chosen
/// id, with hit accounting for SearchStats.
class TranspositionTable {
 public:
  /// Returns the existing id for `key`, or stores `next_id` and returns
  /// nullopt. Hits are counted either way.
  std::optional<int> lookup_or_insert(std::string key, int next_id) {
    const auto [it, inserted] = table_.try_emplace(std::move(key), next_id);
    if (inserted) {
      return std::nullopt;
    }
    ++hits_;
    return it->second;
  }

  /// Un-registers a key (no-op for ""). Beam uses this for children that
  /// were keyed at expansion but then pruned out of the frontier: a
  /// pruned state was never actually explored, so a later, higher-scoring
  /// path that re-derives it must not be blocked.
  void forget(const std::string& key) {
    if (!key.empty()) {
      table_.erase(key);
    }
  }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t entries() const { return table_.size(); }

 private:
  std::unordered_map<std::string, int> table_;
  std::uint64_t hits_ = 0;
};

/// Batched policy-prior and value evaluation over a set of states; one
/// Mlp::forward_batch per network per call, rows spread over the pool.
/// Masked action probabilities follow rl::MaskedCategorical bitwise.
class BatchEvaluator {
 public:
  BatchEvaluator(const SearchContext& context, rl::WorkerPool& pool)
      : context_(context), pool_(pool) {}

  /// `observations` is row-major [batch x obs_size]. Fills per-row masked
  /// action probabilities (row-major [batch x num_actions]) and values.
  /// Either output may be skipped by passing nullptr.
  void evaluate(const std::vector<double>& observations, int batch,
                const std::vector<std::vector<bool>>& masks,
                std::vector<double>* probs_out,
                std::vector<double>* values_out, SearchStats& stats);

 private:
  const SearchContext& context_;
  rl::WorkerPool& pool_;
  std::vector<double> logits_;
  std::vector<double> value_rows_;
};

/// Wall-clock deadline; `expired()` is checked once per search quantum
/// (beam depth / MCTS batch), so overshoot is bounded by one quantum.
class Deadline {
 public:
  explicit Deadline(std::int64_t budget_ms)
      : unlimited_(budget_ms <= 0),
        end_(std::chrono::steady_clock::now() +
             std::chrono::milliseconds(budget_ms)) {}

  [[nodiscard]] bool expired() const {
    return !unlimited_ && std::chrono::steady_clock::now() >= end_;
  }

 private:
  bool unlimited_;
  std::chrono::steady_clock::time_point end_;
};

/// Terminal reward of a Done state under the context's objective.
[[nodiscard]] double terminal_reward(const SearchContext& context,
                                     const core::CompilationState& state);

SearchResult beam_search(const ir::Circuit& circuit,
                         const SearchContext& context,
                         const SearchOptions& options, rl::WorkerPool& pool,
                         const ProgressFn& progress);

SearchResult mcts_search(const ir::Circuit& circuit,
                         const SearchContext& context,
                         const SearchOptions& options, rl::WorkerPool& pool,
                         const ProgressFn& progress);

}  // namespace qrc::search::internal
