/// \file internal.hpp
/// \brief Shared plumbing of the beam and MCTS strategies: the
///        transposition table, the batched policy/value evaluator, and
///        the deadline clock. Internal to src/search/.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/compilation_env.hpp"
#include "search/engine.hpp"

namespace qrc::search::internal {

/// String-keyed transposition table mapping state_key() to a caller-chosen
/// id, with hit accounting for SearchStats.
class TranspositionTable {
 public:
  /// Returns the existing id for `key`, or stores `next_id` and returns
  /// nullopt. Hits are counted either way.
  std::optional<int> lookup_or_insert(std::string key, int next_id) {
    const auto [it, inserted] = table_.try_emplace(std::move(key), next_id);
    if (inserted) {
      return std::nullopt;
    }
    ++hits_;
    return it->second;
  }

  /// Un-registers a key (no-op for ""). Beam uses this for children that
  /// were keyed at expansion but then pruned out of the frontier: a
  /// pruned state was never actually explored, so a later, higher-scoring
  /// path that re-derives it must not be blocked.
  void forget(const std::string& key) {
    if (!key.empty()) {
      table_.erase(key);
    }
  }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t entries() const { return table_.size(); }

 private:
  std::unordered_map<std::string, int> table_;
  std::uint64_t hits_ = 0;
};

/// Batched policy-prior and value evaluation over a set of states; one
/// Mlp::forward_batch per network per call, rows spread over the pool.
/// Masked action probabilities follow rl::MaskedCategorical bitwise.
class BatchEvaluator {
 public:
  BatchEvaluator(const SearchContext& context, rl::WorkerPool& pool)
      : context_(context), pool_(pool) {}

  /// `observations` is row-major [batch x obs_size]. Fills per-row masked
  /// action probabilities (row-major [batch x num_actions]) and values.
  /// Either output may be skipped by passing nullptr.
  void evaluate(const std::vector<double>& observations, int batch,
                const std::vector<std::vector<bool>>& masks,
                std::vector<double>* probs_out,
                std::vector<double>* values_out, SearchStats& stats);

 private:
  const SearchContext& context_;
  rl::WorkerPool& pool_;
  std::vector<double> logits_;
  std::vector<double> value_rows_;
};

/// Wall-clock deadline; `expired()` is checked once per search quantum
/// (beam depth / MCTS batch), so overshoot is bounded by one quantum.
class Deadline {
 public:
  explicit Deadline(std::int64_t budget_ms)
      : unlimited_(budget_ms <= 0),
        end_(std::chrono::steady_clock::now() +
             std::chrono::milliseconds(budget_ms)) {}

  [[nodiscard]] bool expired() const {
    return !unlimited_ && std::chrono::steady_clock::now() >= end_;
  }

 private:
  bool unlimited_;
  std::chrono::steady_clock::time_point end_;
};

/// Terminal reward of a Done state under the context's objective.
[[nodiscard]] double terminal_reward(const SearchContext& context,
                                     const core::CompilationState& state);

SearchResult beam_search(const ir::Circuit& circuit,
                         const SearchContext& context,
                         const SearchOptions& options, rl::WorkerPool& pool,
                         const ProgressFn& progress);

SearchResult mcts_search(const ir::Circuit& circuit,
                         const SearchContext& context,
                         const SearchOptions& options, rl::WorkerPool& pool,
                         const ProgressFn& progress);

}  // namespace qrc::search::internal
