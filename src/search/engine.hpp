/// \file engine.hpp
/// \brief Entry point of the policy-guided search engine: run one beam or
///        MCTS search over the compilation MDP for a circuit, using the
///        trained policy network for priors and the value network for
///        leaf bootstraps. The engine plans over bare CompilationStates
///        (CompilationEnv::peek_step) and batches every network
///        evaluation of a frontier / leaf batch into one
///        Mlp::forward_batch call with rows spread over a WorkerPool —
///        results are bitwise-deterministic for a fixed (seed, options)
///        pair regardless of the pool size (deadline-bounded runs
///        excepted: they stop on wall clock).
#pragma once

#include <string>
#include <vector>

#include "core/compilation_state.hpp"
#include "search/search.hpp"

namespace qrc::rl {
class Mlp;
class WorkerPool;
}  // namespace qrc::rl

namespace qrc::reward {
enum class RewardKind : std::uint8_t;
}

namespace qrc::search {

/// Everything the engine needs from the trained model. All pointers are
/// non-owning and must outlive the search.
struct SearchContext {
  const rl::Mlp* policy = nullptr;  ///< action priors
  const rl::Mlp* value = nullptr;   ///< leaf bootstraps
  reward::RewardKind reward{};      ///< terminal objective
  std::uint64_t seed = 1;           ///< drives stochastic passes
  int max_steps = 40;               ///< default depth horizon
};

/// Outcome of one search run. When no terminal was found within the
/// budget, `found_terminal` is false and the caller falls back to its
/// greedy baseline (the anytime contract: search never loses reward).
struct SearchResult {
  bool found_terminal = false;
  core::CompilationState state;  ///< best terminal state
  std::vector<int> actions;      ///< action ids along its trajectory
  double reward = 0.0;
  SearchStats stats;
};

/// Transposition key of an MDP state: the exact circuit fingerprint
/// (ir::canonical_key) extended with the platform/device/layout
/// bookkeeping that distinguishes otherwise-identical circuits at
/// different compilation phases. States reached by commuting pass orders
/// collide on purpose — they are the same search node.
[[nodiscard]] std::string state_key(const core::CompilationState& state);

/// Runs the configured strategy. `pool` hosts the batched network
/// forwards and the parallel child expansions; it never affects results.
/// `progress`, when non-empty, is called once per search quantum (beam
/// depth / MCTS batch) with the best-so-far snapshot — observation only,
/// it cannot change the search outcome.
/// \throws std::invalid_argument on nonsense options (width < 1, ...).
[[nodiscard]] SearchResult run_search(const ir::Circuit& circuit,
                                      const SearchContext& context,
                                      const SearchOptions& options,
                                      rl::WorkerPool& pool,
                                      const ProgressFn& progress = {});

}  // namespace qrc::search
