#include "search/engine.hpp"

#include <stdexcept>

#include "ir/qasm.hpp"
#include "obs/perf_counters.hpp"
#include "obs/trace.hpp"
#include "reward/reward.hpp"
#include "rl/categorical.hpp"
#include "rl/mlp.hpp"
#include "search/internal.hpp"

namespace qrc::search {

std::string state_key(const core::CompilationState& state) {
  std::string key = ir::canonical_key(state.circuit);
  key += '\n';
  key += state.platform.has_value()
             ? std::to_string(static_cast<int>(*state.platform))
             : std::string("-");
  key += '\n';
  key += state.device != nullptr ? state.device->name() : std::string("-");
  key += '\n';
  if (state.initial_layout.has_value()) {
    for (const int q : *state.initial_layout) {
      key += std::to_string(q);
      key += ',';
    }
  } else {
    key += '-';
  }
  key += '\n';
  for (const int q : state.final_layout) {
    key += std::to_string(q);
    key += ',';
  }
  key += state.layout_applied ? "\nL" : "\n-";
  return key;
}

namespace internal {

void BatchEvaluator::evaluate(const std::vector<double>& observations,
                              int batch,
                              const std::vector<std::vector<bool>>& masks,
                              std::vector<double>* probs_out,
                              std::vector<double>* values_out,
                              SearchStats& stats) {
  if (batch == 0) {
    if (probs_out != nullptr) {
      probs_out->clear();
    }
    if (values_out != nullptr) {
      values_out->clear();
    }
    return;
  }
  obs::DetailTimer timer("leaf_eval");
  obs::PerfScope perf(obs::PerfKernel::kMlpForward);
  if (probs_out != nullptr) {
    context_.policy->forward_batch(observations, batch, logits_, &pool_);
    const rl::BatchedMaskedCategorical dist(logits_, masks);
    probs_out->assign(logits_.size(), 0.0);
    for (int r = 0; r < batch; ++r) {
      const auto row = dist.probs(r);
      std::copy(row.begin(), row.end(),
                probs_out->begin() +
                    static_cast<std::size_t>(r) *
                        static_cast<std::size_t>(dist.num_actions()));
    }
    stats.policy_evals += static_cast<std::uint64_t>(batch);
  }
  if (values_out != nullptr) {
    context_.value->forward_batch(observations, batch, value_rows_, &pool_);
    values_out->resize(static_cast<std::size_t>(batch));
    for (int r = 0; r < batch; ++r) {
      (*values_out)[static_cast<std::size_t>(r)] =
          value_rows_[static_cast<std::size_t>(r)];
    }
    stats.value_evals += static_cast<std::uint64_t>(batch);
  }
}

double terminal_reward(const SearchContext& context,
                       const core::CompilationState& state) {
  return reward::compute_reward(context.reward, state.circuit,
                                *state.device);
}

}  // namespace internal

SearchResult run_search(const ir::Circuit& circuit,
                        const SearchContext& context,
                        const SearchOptions& options, rl::WorkerPool& pool,
                        const ProgressFn& progress) {
  if (context.policy == nullptr || context.value == nullptr) {
    throw std::invalid_argument("run_search: context needs both networks");
  }
  if (options.beam_width < 1 || options.beam_branch < 0 ||
      options.simulations < 1 || options.mcts_batch < 1 ||
      options.max_depth < 0 || options.deadline_ms < 0) {
    throw std::invalid_argument("run_search: nonsense search options");
  }
  switch (options.strategy) {
    case Strategy::kBeam:
      return internal::beam_search(circuit, context, options, pool, progress);
    case Strategy::kMcts:
      return internal::mcts_search(circuit, context, options, pool, progress);
  }
  throw std::invalid_argument("run_search: unknown strategy");
}

}  // namespace qrc::search
