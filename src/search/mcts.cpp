// Monte-Carlo tree search over the compilation MDP with PUCT selection
// (AlphaZero-style): policy-network priors guide exploration, leaves are
// bootstrapped with the value network, and terminal states back up their
// true compilation reward. Simulations run in batches: selection is
// sequential under virtual loss (so the batch diversifies), then all new
// leaf states are stepped index-parallel over the worker pool and
// evaluated in ONE batched policy + ONE batched value forward, then
// backpropagation replays the batch in order. Every phase is either
// sequential or index-parallel, so results are bitwise-deterministic for
// a fixed (seed, options) pair regardless of the pool size. A
// transposition table keyed on state_key() merges states reached by
// commuting pass orders into one node (evaluated once); the selection
// path guards against cycles through no-op actions.

#include <algorithm>
#include <cmath>
#include <utility>

#include "rl/thread_pool.hpp"
#include "search/internal.hpp"

namespace qrc::search::internal {

namespace {

struct Edge {
  int action = -1;
  double prior = 0.0;
  int child = -1;  ///< node id, -1 until expanded
  int visits = 0;
  double total_value = 0.0;
  int virtual_loss = 0;  ///< in-flight selections this batch
};

struct Node {
  core::CompilationState state;
  std::vector<double> obs;
  double value = 0.0;  ///< NN bootstrap (non-terminal, once evaluated)
  bool terminal = false;
  double reward = 0.0;  ///< terminal compilation reward
  int depth = 0;
  bool evaluated = false;
  std::vector<Edge> edges;
  int parent = -1;  ///< first-discovery parent, for trace rebuilding
  int parent_action = -1;
};

/// One step of a selection path: the edge taken out of `node`.
struct Hop {
  int node = 0;
  int edge = 0;
};

/// A completed selection: the traversed edges plus how the leaf resolves.
struct Path {
  std::vector<Hop> hops;
  int leaf_node = -1;     ///< resolved leaf (when no expansion pending)
  int pending_leaf = -1;  ///< index into the batch's pending expansions
};

/// A leaf expansion queued for the parallel step + batched evaluation.
struct PendingLeaf {
  int node = 0;
  int edge = 0;
  core::CompilationState child;
  bool terminal = false;
  std::vector<double> obs;
  std::string key;
};

}  // namespace

SearchResult mcts_search(const ir::Circuit& circuit,
                         const SearchContext& context,
                         const SearchOptions& options, rl::WorkerPool& pool,
                         const ProgressFn& progress) {
  const auto start = std::chrono::steady_clock::now();
  const core::ActionRegistry& registry = core::ActionRegistry::instance();
  const int max_depth =
      options.max_depth > 0 ? options.max_depth : context.max_steps;
  const std::uint64_t seed =
      options.seed != 0 ? options.seed : context.seed;
  const Deadline deadline(options.deadline_ms);

  SearchResult result;
  result.stats.strategy = Strategy::kMcts;
  result.stats.budget = options.simulations;
  BatchEvaluator evaluator(context, pool);
  TranspositionTable table;

  std::vector<Node> nodes;
  int best_terminal = -1;

  // Builds the edges of an evaluated node from its masked priors.
  const auto attach_edges = [&](Node& node, const double* priors) {
    const auto mask = registry.mask(node.state);
    for (int a = 0; a < registry.size(); ++a) {
      if (mask[static_cast<std::size_t>(a)]) {
        Edge edge;
        edge.action = a;
        edge.prior = priors[a];
        node.edges.push_back(edge);
      }
    }
  };

  // Evaluates a run of nodes (ids) with one batched policy + value pass.
  std::vector<double> obs_batch;
  std::vector<std::vector<bool>> mask_batch;
  std::vector<double> probs;
  std::vector<double> values;
  const auto evaluate_nodes = [&](const std::vector<int>& ids) {
    if (ids.empty()) {
      return;
    }
    const int n = static_cast<int>(ids.size());
    const auto obs_size =
        static_cast<std::size_t>(nodes[static_cast<std::size_t>(
                                           ids.front())]
                                     .obs.size());
    obs_batch.resize(static_cast<std::size_t>(n) * obs_size);
    mask_batch.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const Node& node = nodes[static_cast<std::size_t>(
          ids[static_cast<std::size_t>(i)])];
      std::copy(node.obs.begin(), node.obs.end(),
                obs_batch.begin() + static_cast<std::size_t>(i) * obs_size);
      mask_batch[static_cast<std::size_t>(i)] = registry.mask(node.state);
    }
    evaluator.evaluate(obs_batch, n, mask_batch, &probs, &values,
                       result.stats);
    for (int i = 0; i < n; ++i) {
      Node& node = nodes[static_cast<std::size_t>(
          ids[static_cast<std::size_t>(i)])];
      node.value = values[static_cast<std::size_t>(i)];
      attach_edges(node, probs.data() + static_cast<std::size_t>(i) *
                                            static_cast<std::size_t>(
                                                registry.size()));
      node.evaluated = true;
    }
  };

  const auto record_terminal = [&](int id) {
    ++result.stats.terminals_found;
    if (best_terminal < 0 ||
        nodes[static_cast<std::size_t>(id)].reward >
            nodes[static_cast<std::size_t>(best_terminal)].reward) {
      best_terminal = id;
    }
  };

  // Root.
  {
    Node root;
    root.state.circuit = circuit;
    root.obs = core::CompilationEnv::observe_state(root.state);
    nodes.push_back(std::move(root));
    (void)table.lookup_or_insert(state_key(nodes[0].state), 0);
    evaluate_nodes({0});
  }

  int sims_done = 0;
  std::vector<bool> on_path(1, false);
  while (sims_done < options.simulations) {
    if (deadline.expired()) {
      result.stats.deadline_hit = true;
      break;
    }
    const int batch =
        std::min(options.mcts_batch, options.simulations - sims_done);

    // ---- selection (sequential, under virtual loss) --------------------
    std::vector<Path> paths;
    std::vector<PendingLeaf> pending;
    on_path.assign(nodes.size(), false);
    for (int b = 0; b < batch; ++b) {
      Path path;
      std::vector<int> marked;
      int current = 0;
      for (;;) {
        Node& node = nodes[static_cast<std::size_t>(current)];
        if (node.terminal || !node.evaluated ||
            node.depth >= max_depth || node.edges.empty()) {
          path.leaf_node = current;  // bootstrap/terminal leaf
          break;
        }
        on_path[static_cast<std::size_t>(current)] = true;
        marked.push_back(current);

        // PUCT over the node's edges; edges looping back onto the
        // selection path are skipped (no-op cycles must not trap the
        // walk). Ties break to the lower edge index.
        double n_sum = 0.0;
        for (const Edge& e : node.edges) {
          n_sum += e.visits + e.virtual_loss;
        }
        const double sqrt_n = std::sqrt(n_sum + 1.0);
        int chosen = -1;
        double best_score = 0.0;
        for (std::size_t e = 0; e < node.edges.size(); ++e) {
          const Edge& edge = node.edges[e];
          if (edge.child >= 0 &&
              on_path[static_cast<std::size_t>(edge.child)]) {
            continue;
          }
          const double in_flight = edge.visits + edge.virtual_loss;
          const double q =
              in_flight > 0.0 ? edge.total_value / in_flight : 0.0;
          const double score =
              q + options.c_puct * edge.prior * sqrt_n / (1.0 + in_flight);
          if (chosen < 0 || score > best_score) {
            chosen = static_cast<int>(e);
            best_score = score;
          }
        }
        if (chosen < 0) {
          path.leaf_node = current;  // fully cycle-blocked: bootstrap
          break;
        }
        Edge& edge = node.edges[static_cast<std::size_t>(chosen)];
        ++edge.virtual_loss;
        path.hops.push_back({current, chosen});
        if (edge.child < 0) {
          // Unexpanded: queue (node, edge) once per batch; duplicate
          // selections share the stepped child.
          int found = -1;
          for (std::size_t p = 0; p < pending.size(); ++p) {
            if (pending[p].node == current &&
                pending[p].edge == chosen) {
              found = static_cast<int>(p);
              break;
            }
          }
          if (found < 0) {
            PendingLeaf leaf;
            leaf.node = current;
            leaf.edge = chosen;
            found = static_cast<int>(pending.size());
            pending.push_back(std::move(leaf));
          }
          path.pending_leaf = found;
          break;
        }
        current = edge.child;
      }
      for (const int id : marked) {
        on_path[static_cast<std::size_t>(id)] = false;
      }
      paths.push_back(std::move(path));
    }

    // ---- expansion (index-parallel over the pool) ----------------------
    pool.parallel_for(static_cast<int>(pending.size()), [&](int p) {
      PendingLeaf& leaf = pending[static_cast<std::size_t>(p)];
      const Node& parent = nodes[static_cast<std::size_t>(leaf.node)];
      const Edge& edge =
          parent.edges[static_cast<std::size_t>(leaf.edge)];
      leaf.child = core::CompilationEnv::peek_step(
          parent.state, edge.action,
          core::CompilationEnv::step_seed(seed, 1, parent.depth));
      leaf.terminal = leaf.child.state() == core::MdpState::kDone;
      if (!leaf.terminal) {
        leaf.obs = core::CompilationEnv::observe_state(leaf.child);
        leaf.key = state_key(leaf.child);
      }
    });
    result.stats.nodes_expanded += pending.size();

    // ---- resolution (sequential, deterministic order) ------------------
    std::vector<int> to_evaluate;
    for (auto& leaf : pending) {
      Node& parent = nodes[static_cast<std::size_t>(leaf.node)];
      Edge& edge = parent.edges[static_cast<std::size_t>(leaf.edge)];
      const int depth = parent.depth + 1;
      result.stats.depth_reached =
          std::max(result.stats.depth_reached, depth);
      if (leaf.terminal) {
        Node node;
        node.state = std::move(leaf.child);
        node.terminal = true;
        node.reward = terminal_reward(context, node.state);
        node.depth = depth;
        node.parent = leaf.node;
        node.parent_action = edge.action;
        edge.child = static_cast<int>(nodes.size());
        nodes.push_back(std::move(node));
        record_terminal(edge.child);
        continue;
      }
      const auto existing = table.lookup_or_insert(
          std::move(leaf.key), static_cast<int>(nodes.size()));
      if (existing.has_value()) {
        edge.child = *existing;  // transposition: evaluated once, shared
        continue;
      }
      Node node;
      node.state = std::move(leaf.child);
      node.obs = std::move(leaf.obs);
      node.depth = depth;
      node.parent = leaf.node;
      node.parent_action = edge.action;
      edge.child = static_cast<int>(nodes.size());
      to_evaluate.push_back(edge.child);
      nodes.push_back(std::move(node));
    }

    // ---- batched leaf evaluation ---------------------------------------
    evaluate_nodes(to_evaluate);

    // ---- backpropagation (sequential, in selection order) --------------
    for (const Path& path : paths) {
      int leaf_id = path.leaf_node;
      if (path.pending_leaf >= 0) {
        const PendingLeaf& leaf =
            pending[static_cast<std::size_t>(path.pending_leaf)];
        leaf_id = nodes[static_cast<std::size_t>(leaf.node)]
                      .edges[static_cast<std::size_t>(leaf.edge)]
                      .child;
      }
      const Node& leaf = nodes[static_cast<std::size_t>(leaf_id)];
      const double value = leaf.terminal ? leaf.reward : leaf.value;
      for (const Hop& hop : path.hops) {
        Edge& edge = nodes[static_cast<std::size_t>(hop.node)]
                         .edges[static_cast<std::size_t>(hop.edge)];
        --edge.virtual_loss;
        ++edge.visits;
        edge.total_value += value;
      }
      ++sims_done;
    }

    if (progress) {
      SearchProgress snapshot;
      snapshot.strategy = Strategy::kMcts;
      snapshot.quantum = sims_done;
      snapshot.nodes_expanded = result.stats.nodes_expanded;
      snapshot.found_terminal = best_terminal >= 0;
      if (best_terminal >= 0) {
        snapshot.best_reward =
            nodes[static_cast<std::size_t>(best_terminal)].reward;
      }
      snapshot.elapsed_us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      progress(snapshot);
    }
  }

  result.stats.simulations_run = sims_done;
  result.stats.transposition_hits = table.hits();
  result.stats.transposition_entries = table.entries();
  if (best_terminal >= 0) {
    result.found_terminal = true;
    const Node& best = nodes[static_cast<std::size_t>(best_terminal)];
    result.reward = best.reward;
    result.state = best.state;
    result.stats.best_reward = best.reward;
    // Rebuild the action trace along the first-discovery parent chain.
    for (int id = best_terminal; nodes[static_cast<std::size_t>(id)].parent >= 0;
         id = nodes[static_cast<std::size_t>(id)].parent) {
      result.actions.push_back(
          nodes[static_cast<std::size_t>(id)].parent_action);
    }
    std::reverse(result.actions.begin(), result.actions.end());
  }
  result.stats.elapsed_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace qrc::search::internal
