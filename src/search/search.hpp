/// \file search.hpp
/// \brief Configuration and statistics of the policy-guided search engine:
///        the two planning strategies (beam search and MCTS) that spend
///        inference-time compute to recover pass sequences the greedy
///        argmax rollout misses, plus the `beam:8` / `mcts:400` spec
///        grammar shared by the CLI flag and the JSONL `"search"` field.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace qrc::search {

enum class Strategy : std::uint8_t {
  kBeam,  ///< width-K frontier, batched policy + value scoring per depth
  kMcts,  ///< PUCT tree search with batched value-network leaf evaluation
};

[[nodiscard]] std::string_view strategy_name(Strategy strategy);

/// Knobs of one search run. Defaults are the `beam:8` configuration; the
/// short specs `beam[:width]` / `mcts[:simulations]` (parse_spec) set the
/// strategy and its budget and leave every other knob at its default.
struct SearchOptions {
  Strategy strategy = Strategy::kBeam;

  /// Beam: frontier size kept per depth. Width 1 with the default branch
  /// reproduces the greedy rollout bit-for-bit (same argmax, same
  /// cycle-avoidance bookkeeping, same per-step seeds).
  int beam_width = 8;
  /// Beam: candidate actions expanded per frontier entry, ranked by policy
  /// prior; 0 means beam_width.
  int beam_branch = 0;
  /// Beam: weight of the value-network bootstrap in the pruning score
  /// (score = cumulative log prior + value_weight * V(child)).
  double value_weight = 1.0;

  /// MCTS: total simulations (leaf selections) to run.
  int simulations = 400;
  /// MCTS: simulations selected per batch under virtual loss; their leaf
  /// states are evaluated in one batched network forward. The batch size
  /// is part of the configuration (virtual-loss selection depends on it),
  /// but results never depend on the worker count.
  int mcts_batch = 8;
  /// MCTS: PUCT exploration constant.
  double c_puct = 1.4;

  /// Depth horizon; 0 means the model's env_max_steps (the greedy budget).
  int max_depth = 0;
  /// Wall-clock budget in milliseconds; 0 means unlimited. The search
  /// stops at the next quantum boundary (beam depth / MCTS batch) after
  /// the deadline passes and returns the best result found so far.
  /// Deadline-bounded runs are anytime, not bitwise-reproducible.
  std::int64_t deadline_ms = 0;
  /// Seed for stochastic passes along searched trajectories; 0 means the
  /// model's training seed (required for beam(1) == greedy bitwise).
  std::uint64_t seed = 0;
};

/// Counters of one search run, carried on the CompilationResult so the
/// service, CLI and benches can report planning cost next to the reward.
struct SearchStats {
  Strategy strategy = Strategy::kBeam;
  /// The configured budget (beam width / MCTS simulations), so consumers
  /// can reconstruct the spec ("beam:8") without the options at hand.
  int budget = 0;
  std::uint64_t nodes_expanded = 0;  ///< child states stepped/created
  std::uint64_t policy_evals = 0;    ///< policy-network rows evaluated
  std::uint64_t value_evals = 0;     ///< value-network rows evaluated
  std::uint64_t transposition_hits = 0;     ///< states reached twice
  std::uint64_t transposition_entries = 0;  ///< distinct states keyed
  int simulations_run = 0;  ///< MCTS leaf selections completed
  int depth_reached = 0;    ///< deepest level expanded
  int terminals_found = 0;  ///< complete compilations discovered
  bool deadline_hit = false;
  std::int64_t elapsed_us = 0;
  /// Reward of the best terminal the search itself found; meaningful only
  /// when terminals_found > 0.
  double best_reward = 0.0;
  /// Reward of the greedy-rollout baseline the search is clamped against.
  double baseline_reward = 0.0;
  /// True when the searched sequence strictly beat the greedy baseline
  /// (the returned result is the searched one, not the baseline).
  bool improved = false;
};

/// Best-so-far snapshot emitted while a search runs: once per search
/// quantum (beam depth / MCTS batch). The serve layer turns these into
/// streamed `"type":"partial"` frames so a deadline-bounded client can
/// watch the anytime result improve before the final frame lands.
struct SearchProgress {
  Strategy strategy = Strategy::kBeam;
  /// Quanta completed so far: beam depths advanced / MCTS simulations run.
  /// Quantum 0 is the greedy-baseline snapshot emitted before the engine
  /// starts (so every searched request streams at least one partial).
  int quantum = 0;
  std::uint64_t nodes_expanded = 0;  ///< child states stepped so far
  bool found_terminal = false;  ///< a complete compilation exists already
  /// Reward of the best terminal so far (the greedy baseline at quantum 0;
  /// meaningless while found_terminal is false).
  double best_reward = 0.0;
  std::int64_t elapsed_us = 0;  ///< since the search started
};

/// Progress sink. Invoked synchronously from the searching thread between
/// quanta; implementations must be cheap and must not call back into the
/// engine. An empty function disables progress reporting entirely.
using ProgressFn = std::function<void(const SearchProgress&)>;

/// Parses a search spec: "beam", "beam:<width>", "mcts" or
/// "mcts:<simulations>" (the CLI `--search` grammar and the JSONL
/// `"search"` field). Every other knob keeps its default.
/// \throws std::runtime_error naming the offending spec.
[[nodiscard]] SearchOptions parse_spec(std::string_view spec);

/// Short display form of the options: "beam:<width>" or
/// "mcts:<simulations>".
[[nodiscard]] std::string spec_string(const SearchOptions& options);

/// Full canonical serialisation of every knob, used in service cache keys
/// so results searched under different configurations never alias (and
/// never alias the greedy path, which uses no token at all).
[[nodiscard]] std::string cache_token(const SearchOptions& options);

}  // namespace qrc::search
