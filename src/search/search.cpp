#include "search/search.hpp"

#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace qrc::search {

namespace {

/// Strict positive-integer parse of a spec budget ("8" in "beam:8").
int parse_budget(std::string_view text, std::string_view spec) {
  int value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size() || value < 1) {
    throw std::runtime_error("bad search spec '" + std::string(spec) +
                             "': budget must be a positive integer");
  }
  return value;
}

}  // namespace

std::string_view strategy_name(Strategy strategy) {
  switch (strategy) {
    case Strategy::kBeam:
      return "beam";
    case Strategy::kMcts:
      return "mcts";
  }
  return "?";
}

SearchOptions parse_spec(std::string_view spec) {
  const auto colon = spec.find(':');
  const std::string_view name = spec.substr(0, colon);
  const std::string_view budget =
      colon == std::string_view::npos ? std::string_view{}
                                      : spec.substr(colon + 1);
  SearchOptions options;
  if (name == "beam") {
    options.strategy = Strategy::kBeam;
    if (colon != std::string_view::npos) {
      options.beam_width = parse_budget(budget, spec);
    }
  } else if (name == "mcts") {
    options.strategy = Strategy::kMcts;
    if (colon != std::string_view::npos) {
      options.simulations = parse_budget(budget, spec);
    }
  } else {
    throw std::runtime_error("bad search spec '" + std::string(spec) +
                             "': expected beam[:width] or mcts[:sims]");
  }
  return options;
}

std::string spec_string(const SearchOptions& options) {
  const int budget = options.strategy == Strategy::kBeam
                         ? options.beam_width
                         : options.simulations;
  return std::string(strategy_name(options.strategy)) + ":" +
         std::to_string(budget);
}

std::string cache_token(const SearchOptions& options) {
  // Every knob that can change the searched result is spelled out, so two
  // requests differing in any of them occupy distinct cache entries.
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "%s;w=%d;b=%d;vw=%.17g;sims=%d;mb=%d;c=%.17g;d=%d;dl=%lld;"
                "seed=%llu",
                strategy_name(options.strategy).data(), options.beam_width,
                options.beam_branch, options.value_weight,
                options.simulations, options.mcts_batch, options.c_puct,
                options.max_depth,
                static_cast<long long>(options.deadline_ms),
                static_cast<unsigned long long>(options.seed));
  return buffer;
}

}  // namespace qrc::search
