#include "baselines/baselines.hpp"

#include <stdexcept>

#include "passes/layout/layout.hpp"
#include "passes/opt/cancellation.hpp"
#include "passes/opt/clifford_opt.hpp"
#include "passes/opt/composite.hpp"
#include "passes/opt/consolidate.hpp"
#include "passes/opt/one_qubit_opt.hpp"
#include "passes/routing/routing.hpp"
#include "passes/synthesis/basis_translator.hpp"

namespace qrc::baselines {

namespace {

using passes::PassContext;

void check_postconditions(const BaselineResult& result,
                          const device::Device& device) {
  if (!device.circuit_is_native(result.circuit) ||
      !device.circuit_respects_topology(result.circuit)) {
    throw std::logic_error("baseline produced a non-executable circuit");
  }
}

/// Shared mapping stage: compute layout, apply, route, re-translate the
/// inserted SWAPs.
void map_circuit(BaselineResult& result, const device::Device& device,
                 passes::LayoutKind layout_kind,
                 passes::RoutingKind routing_kind, std::uint64_t seed) {
  const auto layout = passes::compute_layout(layout_kind, result.circuit,
                                             device, seed);
  result.circuit = passes::apply_layout(result.circuit, layout, device);
  result.initial_layout = layout;
  result.final_layout = layout;
  const auto outcome =
      passes::route(routing_kind, result.circuit, device, seed);
  result.circuit = outcome.routed;
  for (int l = 0; l < static_cast<int>(result.final_layout.size()); ++l) {
    result.final_layout[static_cast<std::size_t>(l)] =
        outcome.permutation[static_cast<std::size_t>(
            result.final_layout[static_cast<std::size_t>(l)])];
  }
}

}  // namespace

BaselineResult compile_qiskit_o3_like(const ir::Circuit& circuit,
                                      const device::Device& device,
                                      std::uint64_t seed) {
  BaselineResult result;
  result.circuit = circuit;

  const passes::Optimize1qGatesDecomposition opt1q;
  const passes::CommutativeCancellation commutative;
  const passes::CXCancellation cx_cancel;
  const passes::ConsolidateBlocks consolidate;
  const passes::BasisTranslator translator;

  // Stage 1: device-independent optimization.
  PassContext logical_ctx;
  (void)opt1q.run(result.circuit, logical_ctx);
  (void)commutative.run(result.circuit, logical_ctx);

  // Stage 2: synthesis to the native set.
  PassContext device_ctx;
  device_ctx.device = &device;
  device_ctx.seed = seed;
  (void)translator.run(result.circuit, device_ctx);

  // Stage 3: SABRE layout + routing, then lower the SWAPs.
  map_circuit(result, device, passes::LayoutKind::kSabre,
              passes::RoutingKind::kSabreSwap, seed);
  (void)translator.run(result.circuit, device_ctx);

  // Stage 4: mapped optimization loop to fixpoint.
  PassContext mapped_ctx;
  mapped_ctx.device = &device;
  mapped_ctx.is_mapped = true;
  mapped_ctx.seed = seed;
  for (int round = 0; round < 3; ++round) {
    bool changed = false;
    changed |= consolidate.run(result.circuit, mapped_ctx);
    changed |= translator.run(result.circuit, mapped_ctx);
    changed |= opt1q.run(result.circuit, mapped_ctx);
    changed |= cx_cancel.run(result.circuit, mapped_ctx);
    changed |= commutative.run(result.circuit, mapped_ctx);
    if (!changed) {
      break;
    }
  }
  (void)translator.run(result.circuit, device_ctx);

  check_postconditions(result, device);
  return result;
}

BaselineResult compile_tket_o2_like(const ir::Circuit& circuit,
                                    const device::Device& device,
                                    std::uint64_t seed) {
  BaselineResult result;
  result.circuit = circuit;

  const passes::FullPeepholeOptimise full_peephole;
  const passes::CliffordSimp clifford_simp;
  const passes::RemoveRedundancies redundancies;
  const passes::Optimize1qGatesDecomposition opt1q;
  const passes::BasisTranslator translator;

  // Stage 1: aggressive device-independent peephole optimization.
  PassContext logical_ctx;
  (void)full_peephole.run(result.circuit, logical_ctx);

  // Stage 2: placement (graph-style, dense subgraph) + lookahead routing.
  // Routing requires arity <= 2, so lower 3q gates first.
  PassContext device_ctx;
  device_ctx.device = &device;
  device_ctx.seed = seed;
  if (!result.circuit.max_gate_arity_at_most(2)) {
    (void)translator.run(result.circuit, device_ctx);
  }
  map_circuit(result, device, passes::LayoutKind::kDense,
              passes::RoutingKind::kTketRouting, seed);

  // Stage 3: synthesis to the native set.
  (void)translator.run(result.circuit, device_ctx);

  // Stage 4: mapped cleanup.
  PassContext mapped_ctx;
  mapped_ctx.device = &device;
  mapped_ctx.is_mapped = true;
  mapped_ctx.seed = seed;
  (void)clifford_simp.run(result.circuit, mapped_ctx);
  (void)redundancies.run(result.circuit, mapped_ctx);
  (void)opt1q.run(result.circuit, mapped_ctx);
  (void)translator.run(result.circuit, device_ctx);

  check_postconditions(result, device);
  return result;
}

}  // namespace qrc::baselines
