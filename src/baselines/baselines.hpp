/// \file baselines.hpp
/// \brief The comparison compilers of Section IV-B: fixed pass pipelines
///        mirroring Qiskit's -O3 and TKET's -O2 presets, assembled from the
///        same pass implementations the RL agent draws on.
#pragma once

#include <cstdint>
#include <vector>

#include "device/device.hpp"
#include "ir/circuit.hpp"

namespace qrc::baselines {

/// Result of a baseline compilation (layouts kept for verification).
struct BaselineResult {
  ir::Circuit circuit;
  std::vector<int> initial_layout;
  std::vector<int> final_layout;
};

/// Qiskit-O3-style preset: logical optimization, basis translation, SABRE
/// layout + routing, re-synthesis, then an optimization loop
/// (consolidation / cancellation) to fixpoint. Postcondition: native and
/// mapped on `device`.
[[nodiscard]] BaselineResult compile_qiskit_o3_like(
    const ir::Circuit& circuit, const device::Device& device,
    std::uint64_t seed = 1);

/// TKET-O2-style preset: FullPeepholeOptimise, graph placement (dense),
/// lookahead routing, basis translation, Clifford simplification and
/// redundancy removal. Postcondition: native and mapped on `device`.
[[nodiscard]] BaselineResult compile_tket_o2_like(
    const ir::Circuit& circuit, const device::Device& device,
    std::uint64_t seed = 1);

}  // namespace qrc::baselines
