#include "service/model_registry.hpp"

#include <fstream>
#include <stdexcept>
#include <utility>

namespace qrc::service {

void ModelRegistry::add(std::string name, core::Predictor model) {
  add(std::move(name),
      std::make_shared<const core::Predictor>(std::move(model)));
}

void ModelRegistry::add(std::string name,
                        std::shared_ptr<const core::Predictor> model) {
  if (name.empty()) {
    throw std::invalid_argument("ModelRegistry::add: empty model name");
  }
  if (model == nullptr || !model->is_trained()) {
    throw std::logic_error("ModelRegistry::add: model '" + name +
                           "' is not trained");
  }
  std::lock_guard lock(mu_);
  if (!models_.emplace(std::move(name), std::move(model)).second) {
    throw std::invalid_argument(
        "ModelRegistry::add: duplicate model name");
  }
}

void ModelRegistry::add_from_file(std::string name,
                                  const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("ModelRegistry: cannot read model file '" +
                             path + "'");
  }
  add(std::move(name), core::Predictor::load(is));
}

std::shared_ptr<const core::Predictor> ModelRegistry::find(
    const std::string& name) const {
  std::lock_guard lock(mu_);
  const auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

std::shared_ptr<const core::Predictor> ModelRegistry::at(
    const std::string& name) const {
  auto model = find(name);
  if (model == nullptr) {
    throw std::runtime_error("unknown model '" + name + "'");
  }
  return model;
}

std::vector<std::string> ModelRegistry::names() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [name, model] : models_) {
    out.push_back(name);
  }
  return out;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard lock(mu_);
  return models_.size();
}

}  // namespace qrc::service
