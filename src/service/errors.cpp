#include "service/errors.hpp"

namespace qrc::service {

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest:
      return "bad_request";
    case ErrorCode::kUnknownModel:
      return "unknown_model";
    case ErrorCode::kOverloaded:
      return "overloaded";
    case ErrorCode::kShuttingDown:
      return "shutting_down";
    case ErrorCode::kFrameTooLarge:
      return "frame_too_large";
    case ErrorCode::kUnsupportedVersion:
      return "unsupported_version";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "internal";
}

ErrorCode error_code_of(const std::exception& e) {
  if (const auto* service_error = dynamic_cast<const ServiceError*>(&e)) {
    return service_error->code();
  }
  if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr) {
    return ErrorCode::kBadRequest;
  }
  return ErrorCode::kInternal;
}

}  // namespace qrc::service
