#include "service/compile_service.hpp"

#include <algorithm>
#include <limits>
#include <span>
#include <stdexcept>
#include <string_view>
#include <utility>
#include <vector>

#include "ir/qasm.hpp"

namespace qrc::service {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t elapsed_us(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now() - since)
      .count();
}

}  // namespace

void CompileService::deliver_response(Pending& pending,
                                      ServiceResponse response) {
  if (pending.hooks.on_result) {
    pending.hooks.on_result(std::move(response));
    return;
  }
  pending.promise.set_value(std::move(response));
}

void CompileService::deliver_error(Pending& pending,
                                   const std::exception_ptr& error) {
  if (pending.hooks.on_error || pending.hooks.on_result) {
    try {
      std::rethrow_exception(error);
    } catch (const std::exception& e) {
      if (pending.hooks.on_error) {
        pending.hooks.on_error(error_code_of(e), e.what());
      }
      // A hooks submit without on_error drops the failure silently by
      // choice of the caller; nothing else to do.
    }
    return;
  }
  pending.promise.set_exception(error);
}

CompileService::CompileService(ServiceConfig config)
    : config_(std::move(config)), cache_(config_.cache_entries) {
  if (config_.max_batch < 1) {
    throw std::invalid_argument("CompileService: max_batch must be >= 1");
  }
  if (config_.max_wait_us < 0) {
    throw std::invalid_argument("CompileService: max_wait_us must be >= 0");
  }
}

CompileService::~CompileService() {
  stopping_ = true;
  std::lock_guard lanes_lock(lanes_mu_);
  for (auto& [name, lane] : lanes_) {
    {
      std::lock_guard lock(lane->mu);
      lane->stop = true;
    }
    lane->cv.notify_all();
  }
  // Schedulers drain their queues before exiting, so every future handed
  // out by submit() completes.
  for (auto& [name, lane] : lanes_) {
    if (lane->worker.joinable()) {
      lane->worker.join();
    }
  }
}

std::string CompileService::resolve_model_name(
    const std::string& model_name) const {
  if (!model_name.empty()) {
    return model_name;
  }
  if (!config_.default_model.empty()) {
    return config_.default_model;
  }
  const auto names = registry_.names();
  if (names.size() == 1) {
    return names.front();
  }
  throw ServiceError(
      ErrorCode::kUnknownModel,
      names.empty()
          ? "no models registered"
          : "request names no model and no default model is configured");
}

CompileService::Lane& CompileService::lane_for(
    const std::string& name,
    std::shared_ptr<const core::Predictor> model) {
  std::lock_guard lock(lanes_mu_);
  const auto it = lanes_.find(name);
  if (it != lanes_.end()) {
    return *it->second;
  }
  auto lane = std::make_unique<Lane>();
  lane->name = name;
  lane->model = std::move(model);
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  lane->pool = std::make_unique<rl::WorkerPool>(
      std::max(1, std::min(config_.max_batch, hw > 0 ? hw : 1)));
  Lane& ref = *lane;
  lanes_.emplace(name, std::move(lane));
  ref.worker = std::thread([this, &ref] { scheduler_loop(ref); });
  return ref;
}

std::future<ServiceResponse> CompileService::submit(
    std::string id, const std::string& model_name, ir::Circuit circuit,
    bool verify, std::optional<search::SearchOptions> search) {
  Pending pending;
  pending.id = std::move(id);
  pending.circuit = std::move(circuit);
  pending.verify = verify;
  pending.search = std::move(search);
  auto future = pending.promise.get_future();
  submit_impl(model_name, std::move(pending));
  return future;
}

void CompileService::submit_with_hooks(
    std::string id, const std::string& model_name, ir::Circuit circuit,
    bool verify, std::optional<search::SearchOptions> search,
    SubmitHooks hooks) {
  Pending pending;
  pending.id = std::move(id);
  pending.circuit = std::move(circuit);
  pending.verify = verify;
  pending.search = std::move(search);
  pending.hooks = std::move(hooks);
  submit_impl(model_name, std::move(pending));
}

void CompileService::submit_impl(const std::string& model_name,
                                 Pending pending) {
  if (stopping_.load()) {
    throw ServiceError(ErrorCode::kShuttingDown,
                       "CompileService::submit: service is stopping");
  }
  pending.submitted = Clock::now();
  const std::string name = resolve_model_name(model_name);
  auto model = registry_.find(name);
  if (model == nullptr) {
    throw ServiceError(ErrorCode::kUnknownModel,
                       "unknown model '" + name + "'");
  }
  {
    std::lock_guard lock(stats_mu_);
    ++requests_;
    if (pending.search.has_value()) {
      ++(pending.search->strategy == search::Strategy::kBeam
             ? beam_requests_
             : mcts_requests_);
    }
  }

  if (cache_.enabled()) {
    // Key on model + search config + content so the same circuit may live
    // in the cache once per objective and once per search configuration
    // (greedy uses the empty config token). Fingerprints ignore the
    // circuit name.
    pending.key = name + '\n' +
                  (pending.search.has_value()
                       ? search::cache_token(*pending.search)
                       : std::string()) +
                  '\n' + ir::canonical_key(pending.circuit);
    if (auto hit = cache_.get(pending.key)) {
      if (!pending.verify) {
        ServiceResponse response;
        response.id = std::move(pending.id);
        response.model = name;
        response.result = std::move(*hit);
        response.cached = true;
        response.latency_us = elapsed_us(pending.submitted);
        deliver_response(pending, std::move(response));
        return;
      }
      // Hit that still needs the equivalence gate: ride the lane so the
      // check runs on the lane's worker pool, not the submitter's thread
      // (a wide verification could otherwise stall request ingestion).
      pending.cached_result = std::move(*hit);
    }
  }

  Lane& lane = lane_for(name, std::move(model));
  {
    std::lock_guard lock(lane.mu);
    // Admission control: shed instead of queueing without bound. Checked
    // under the lane lock so a burst cannot race past the limit.
    if (config_.max_lane_queue > 0 &&
        lane.queue.size() >= config_.max_lane_queue) {
      {
        std::lock_guard stats_lock(stats_mu_);
        ++shed_;
      }
      throw ServiceError(ErrorCode::kOverloaded,
                         "lane '" + name + "' is at its queue bound (" +
                             std::to_string(config_.max_lane_queue) +
                             " requests); retry later");
    }
    lane.queue.push_back(std::move(pending));
  }
  lane.cv.notify_all();
}

ServiceResponse CompileService::compile(const std::string& model_name,
                                        const ir::Circuit& circuit) {
  return submit("", model_name, circuit).get();
}

void CompileService::scheduler_loop(Lane& lane) {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock lock(lane.mu);
      lane.cv.wait(lock, [&] { return lane.stop || !lane.queue.empty(); });
      if (lane.queue.empty()) {
        return;  // stop requested and fully drained
      }
      // Batch window: give concurrent submitters max_wait_us to pile on,
      // but dispatch immediately once the batch is full or on shutdown.
      if (!lane.stop &&
          static_cast<int>(lane.queue.size()) < config_.max_batch &&
          config_.max_wait_us > 0) {
        const auto deadline =
            Clock::now() + std::chrono::microseconds(config_.max_wait_us);
        lane.cv.wait_until(lock, deadline, [&] {
          return lane.stop ||
                 static_cast<int>(lane.queue.size()) >= config_.max_batch;
        });
      }
      const auto take =
          std::min(lane.queue.size(),
                   static_cast<std::size_t>(config_.max_batch));
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(lane.queue.front()));
        lane.queue.pop_front();
      }
    }
    process_batch(lane, std::move(batch));
  }
}

void CompileService::process_batch(Lane& lane, std::vector<Pending> batch) {
  try {
    // Identical circuits in one batch (or raced past the cache while a
    // twin was in flight) compile once and fan out. Cache hits that ride
    // the lane for verification (cached_result set) never recompile.
    constexpr auto kNoSlot = std::numeric_limits<std::size_t>::max();
    struct Slot {
      ir::Circuit circuit;
      std::optional<search::SearchOptions> search;
    };
    std::vector<Slot> slots;
    std::vector<std::size_t> slot(batch.size(), kNoSlot);
    std::map<std::string_view, std::size_t> first_of_key;
    int compiled_requests = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].cached_result.has_value()) {
        continue;
      }
      ++compiled_requests;
      if (!batch[i].key.empty()) {
        // The key embeds the search config, so a slot never mixes greedy
        // and searched requests (or two search configurations).
        const auto [it, inserted] =
            first_of_key.try_emplace(batch[i].key, slots.size());
        slot[i] = it->second;
        if (!inserted) {
          continue;
        }
      } else {
        slot[i] = slots.size();
      }
      slots.push_back({batch[i].circuit, batch[i].search});
    }

    // Greedy slots fuse into one batched rollout; search slots run the
    // planning engine one by one on the lane's pool (each search batches
    // its own frontier/leaf evaluations internally).
    std::vector<ir::Circuit> greedy_circuits;
    std::vector<std::size_t> greedy_slots;
    int searched_requests = 0;
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (!slots[s].search.has_value()) {
        greedy_circuits.push_back(slots[s].circuit);
        greedy_slots.push_back(s);
      }
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!batch[i].cached_result.has_value() &&
          batch[i].search.has_value()) {
        ++searched_requests;
      }
    }

    // Batch stats count requests fused into the greedy rollout only
    // (verification-only riders and searches never reached it).
    const int greedy_requests = compiled_requests - searched_requests;
    if (greedy_requests > 0) {
      std::lock_guard lock(stats_mu_);
      ++batches_;
      batched_requests_ += static_cast<std::uint64_t>(greedy_requests);
      max_batch_size_ = std::max(max_batch_size_, greedy_requests);
      ++batch_size_histogram_[greedy_requests];
    }

    std::vector<core::CompilationResult> results(slots.size());
    auto greedy_results =
        lane.model->compile_all(greedy_circuits, lane.pool.get());
    for (std::size_t g = 0; g < greedy_slots.size(); ++g) {
      results[greedy_slots[g]] = std::move(greedy_results[g]);
    }
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (!slots[s].search.has_value()) {
        continue;
      }
      // Streaming: fan each engine progress snapshot out to every
      // requester of this slot that armed on_partial (deduped twins all
      // see the shared search progress).
      std::vector<const SubmitHooks*> listeners;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (slot[i] == s && !batch[i].cached_result.has_value() &&
            batch[i].hooks.on_partial) {
          listeners.push_back(&batch[i].hooks);
        }
      }
      core::Predictor::SearchProgressFn progress;
      if (!listeners.empty()) {
        progress = [&](int, const search::SearchProgress& snapshot) {
          for (const SubmitHooks* hooks : listeners) {
            hooks->on_partial(snapshot);
          }
          std::lock_guard lock(stats_mu_);
          partials_ += listeners.size();
        };
      }
      results[s] = lane.model
                       ->compile_search_all(
                           std::span<const ir::Circuit>(&slots[s].circuit, 1),
                           *slots[s].search, lane.pool.get(), nullptr,
                           progress)
                       .front();
    }

    for (const auto& [key, s] : first_of_key) {
      cache_.put(std::string(key), results[s]);
    }

    // Verification units: one per distinct compiled slot whose requesters
    // asked (deduped twins share the deterministic verdict) plus one per
    // cache-hit rider; the independent checks spread over the lane's
    // worker pool like the rollout itself.
    struct VerifyUnit {
      const ir::Circuit* original = nullptr;
      const core::CompilationResult* result = nullptr;
      verify::VerifyResult verdict;
    };
    std::vector<VerifyUnit> units;
    std::vector<std::size_t> unit_of_slot(slots.size(), kNoSlot);
    std::vector<std::size_t> unit_of_request(batch.size(), kNoSlot);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!batch[i].verify) {
        continue;
      }
      if (batch[i].cached_result.has_value()) {
        unit_of_request[i] = units.size();
        units.push_back({&batch[i].circuit, &*batch[i].cached_result, {}});
      } else if (unit_of_slot[slot[i]] == kNoSlot) {
        unit_of_slot[slot[i]] = units.size();
        unit_of_request[i] = units.size();
        units.push_back({&batch[i].circuit, &results[slot[i]], {}});
      } else {
        unit_of_request[i] = unit_of_slot[slot[i]];
      }
    }
    lane.pool->parallel_for(static_cast<int>(units.size()), [&](int u) {
      auto& unit = units[static_cast<std::size_t>(u)];
      unit.verdict = core::verify_compilation(*unit.original, *unit.result,
                                              config_.verify_options);
    });

    for (std::size_t i = 0; i < batch.size(); ++i) {
      ServiceResponse response;
      response.id = std::move(batch[i].id);
      response.model = lane.name;
      response.cached = batch[i].cached_result.has_value();
      response.result = response.cached ? std::move(*batch[i].cached_result)
                                        : results[slot[i]];
      if (batch[i].verify) {
        response.result.verification = units[unit_of_request[i]].verdict;
        count_verdict(*response.result.verification);
      }
      if (!response.cached && response.result.search_stats.has_value()) {
        // Improvement/deadline counters share the per-request basis of
        // beam_requests/mcts_requests (deduped twins each count — each
        // response carries the outcome), so their ratios stay meaningful.
        const auto& stats = *response.result.search_stats;
        std::lock_guard lock(stats_mu_);
        search_improved_ += stats.improved ? 1 : 0;
        search_deadline_hits_ += stats.deadline_hit ? 1 : 0;
      }
      response.latency_us = elapsed_us(batch[i].submitted);
      deliver_response(batch[i], std::move(response));
    }
  } catch (...) {
    const auto error = std::current_exception();
    for (auto& pending : batch) {
      deliver_error(pending, error);
    }
  }
}

void CompileService::count_verdict(const verify::VerifyResult& verdict) {
  std::lock_guard lock(stats_mu_);
  switch (verdict.verdict) {
    case verify::Verdict::kEquivalent:
      ++verified_;
      break;
    case verify::Verdict::kNotEquivalent:
      ++refuted_;
      break;
    case verify::Verdict::kUnknown:
      ++verify_unknown_;
      break;
  }
}

ServiceStats CompileService::stats() const {
  ServiceStats out;
  {
    std::lock_guard lock(stats_mu_);
    out.requests = requests_;
    out.batches = batches_;
    out.batched_requests = batched_requests_;
    out.max_batch_size = max_batch_size_;
    out.batch_size_histogram = batch_size_histogram_;
    out.verified = verified_;
    out.refuted = refuted_;
    out.verify_unknown = verify_unknown_;
    out.beam_requests = beam_requests_;
    out.mcts_requests = mcts_requests_;
    out.search_improved = search_improved_;
    out.search_deadline_hits = search_deadline_hits_;
    out.shed = shed_;
    out.partials = partials_;
  }
  const auto cache = cache_.stats();
  out.cache_hits = cache.hits;
  out.cache_misses = cache.misses;
  out.cache_evictions = cache.evictions;
  return out;
}

}  // namespace qrc::service
