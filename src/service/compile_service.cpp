#include "service/compile_service.hpp"

#include <algorithm>
#include <limits>
#include <span>
#include <stdexcept>
#include <string_view>
#include <utility>
#include <vector>

#include "ir/qasm.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/profiler.hpp"
#include "verify/equivalence.hpp"

namespace qrc::service {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t elapsed_us(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now() - since)
      .count();
}

std::int64_t us_between(Clock::time_point from, Clock::time_point to) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count();
  return us < 0 ? 0 : us;
}

constexpr std::string_view kHelpRequests = "Requests submitted, per model";
constexpr std::string_view kHelpLatency =
    "Submit-to-completion latency in microseconds, per model";
constexpr std::string_view kHelpQueueWait =
    "Lane queue wait in microseconds, per model";
constexpr std::string_view kHelpRollout =
    "Fused greedy rollout duration in microseconds, per model";

}  // namespace

void CompileService::deliver_response(Pending& pending,
                                      ServiceResponse response) {
  if (pending.hooks.on_result) {
    pending.hooks.on_result(std::move(response));
    return;
  }
  pending.promise.set_value(std::move(response));
}

void CompileService::deliver_error(Pending& pending,
                                   const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    obs::FlightRecorder::instance().record(
        obs::FlightEventKind::kError, "service",
        "request '" + pending.id + "' failed: " + e.what());
    obs::Logger::instance().log_rate_limited(
        obs::LogLevel::kWarn, "service", "deliver_error", 4,
        "request '" + pending.id + "' failed: " + std::string(e.what()));
  } catch (...) {
    obs::FlightRecorder::instance().record(
        obs::FlightEventKind::kError, "service",
        "request '" + pending.id + "' failed: non-standard exception");
  }
  if (pending.hooks.on_error || pending.hooks.on_result) {
    try {
      std::rethrow_exception(error);
    } catch (const std::exception& e) {
      if (pending.hooks.on_error) {
        pending.hooks.on_error(error_code_of(e), e.what());
      }
      // A hooks submit without on_error drops the failure silently by
      // choice of the caller; nothing else to do.
    }
    return;
  }
  pending.promise.set_exception(error);
}

CompileService::CompileService(ServiceConfig config)
    : config_(std::move(config)),
      metrics_(config_.metrics != nullptr
                   ? config_.metrics
                   : std::make_shared<obs::MetricsRegistry>()),
      cache_(config_.cache_entries, metrics_.get()) {
  if (config_.max_batch < 1) {
    throw std::invalid_argument("CompileService: max_batch must be >= 1");
  }
  if (config_.max_wait_us < 0) {
    throw std::invalid_argument("CompileService: max_wait_us must be >= 0");
  }
  batches_total_ =
      &metrics_->counter("qrc_batches_total", "Batched rollouts dispatched");
  batched_requests_total_ = &metrics_->counter(
      "qrc_batched_requests_total", "Requests fused across all batches");
  batch_size_max_ =
      &metrics_->gauge("qrc_batch_size_max", "Largest fused batch so far");
  shed_total_ = &metrics_->counter(
      "qrc_shed_total", "Requests refused by admission control",
      {{"reason", "lane_queue"}});
  partials_total_ = &metrics_->counter(
      "qrc_partials_total", "Streamed search-progress events delivered");
  search_requests_beam_ =
      &metrics_->counter("qrc_search_requests_total",
                         "Search requests submitted, per strategy",
                         {{"strategy", "beam"}});
  search_requests_mcts_ =
      &metrics_->counter("qrc_search_requests_total",
                         "Search requests submitted, per strategy",
                         {{"strategy", "mcts"}});
}

CompileService::~CompileService() {
  stopping_ = true;
  std::lock_guard lanes_lock(lanes_mu_);
  for (auto& [name, lane] : lanes_) {
    {
      std::lock_guard lock(lane->mu);
      lane->stop = true;
    }
    lane->cv.notify_all();
  }
  // Schedulers drain their queues before exiting, so every future handed
  // out by submit() completes.
  for (auto& [name, lane] : lanes_) {
    if (lane->worker.joinable()) {
      lane->worker.join();
    }
  }
}

std::string CompileService::resolve_model_name(
    const std::string& model_name) const {
  if (!model_name.empty()) {
    return model_name;
  }
  if (!config_.default_model.empty()) {
    return config_.default_model;
  }
  const auto names = registry_.names();
  if (names.size() == 1) {
    return names.front();
  }
  throw ServiceError(
      ErrorCode::kUnknownModel,
      names.empty()
          ? "no models registered"
          : "request names no model and no default model is configured");
}

CompileService::Lane& CompileService::lane_for(
    const std::string& name,
    std::shared_ptr<const core::Predictor> model) {
  std::lock_guard lock(lanes_mu_);
  const auto it = lanes_.find(name);
  if (it != lanes_.end()) {
    return *it->second;
  }
  auto lane = std::make_unique<Lane>();
  lane->name = name;
  lane->model = std::move(model);
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  lane->pool = std::make_unique<rl::WorkerPool>(
      std::max(1, std::min(config_.max_batch, hw > 0 ? hw : 1)));
  Lane& ref = *lane;
  lanes_.emplace(name, std::move(lane));
  ref.worker = std::thread([this, &ref] { scheduler_loop(ref); });
  return ref;
}

CompileService::ModelMetrics& CompileService::model_metrics(
    const std::string& model) {
  std::lock_guard lock(model_metrics_mu_);
  const auto it = model_metrics_.find(model);
  if (it != model_metrics_.end()) {
    return it->second;
  }
  const obs::Labels labels = {{"model", model}};
  ModelMetrics mm;
  mm.requests = &metrics_->counter("qrc_requests_total", kHelpRequests, labels);
  mm.latency_us = &metrics_->histogram("qrc_request_latency_us", kHelpLatency,
                                       obs::latency_buckets_us(), labels);
  mm.queue_wait_us = &metrics_->histogram(
      "qrc_queue_wait_us", kHelpQueueWait, obs::latency_buckets_us(), labels);
  mm.rollout_us = &metrics_->histogram(
      "qrc_rollout_duration_us", kHelpRollout, obs::latency_buckets_us(),
      labels);
  return model_metrics_.emplace(model, mm).first->second;
}

std::future<ServiceResponse> CompileService::submit(
    std::string id, const std::string& model_name, ir::Circuit circuit,
    bool verify, std::optional<search::SearchOptions> search,
    std::shared_ptr<obs::TraceContext> trace) {
  Pending pending;
  pending.id = std::move(id);
  pending.circuit = std::move(circuit);
  pending.verify = verify;
  pending.search = std::move(search);
  pending.trace = std::move(trace);
  auto future = pending.promise.get_future();
  submit_impl(model_name, std::move(pending));
  return future;
}

void CompileService::submit_with_hooks(
    std::string id, const std::string& model_name, ir::Circuit circuit,
    bool verify, std::optional<search::SearchOptions> search,
    SubmitHooks hooks, std::shared_ptr<obs::TraceContext> trace) {
  Pending pending;
  pending.id = std::move(id);
  pending.circuit = std::move(circuit);
  pending.verify = verify;
  pending.search = std::move(search);
  pending.hooks = std::move(hooks);
  pending.trace = std::move(trace);
  submit_impl(model_name, std::move(pending));
}

void CompileService::submit_impl(const std::string& model_name,
                                 Pending pending) {
  if (stopping_.load()) {
    throw ServiceError(ErrorCode::kShuttingDown,
                       "CompileService::submit: service is stopping");
  }
  pending.submitted = Clock::now();
  const std::string name = resolve_model_name(model_name);
  auto model = registry_.find(name);
  if (model == nullptr) {
    throw ServiceError(ErrorCode::kUnknownModel,
                       "unknown model '" + name + "'");
  }
  ModelMetrics& mm = model_metrics(name);
  mm.requests->inc();
  if (pending.search.has_value()) {
    (pending.search->strategy == search::Strategy::kBeam
         ? search_requests_beam_
         : search_requests_mcts_)
        ->inc();
  }

  if (cache_.enabled()) {
    // Key on model + search config + content so the same circuit may live
    // in the cache once per objective and once per search configuration
    // (greedy uses the empty config token). Fingerprints ignore the
    // circuit name.
    pending.key = name + '\n' +
                  (pending.search.has_value()
                       ? search::cache_token(*pending.search)
                       : std::string()) +
                  '\n' + ir::canonical_key(pending.circuit);
    if (auto hit = cache_.get(pending.key)) {
      if (!pending.verify) {
        ServiceResponse response;
        response.id = std::move(pending.id);
        response.model = name;
        response.result = std::move(*hit);
        response.cached = true;
        response.latency_us = elapsed_us(pending.submitted);
        if (pending.trace != nullptr) {
          const int span = pending.trace->add_span(
              "cache_lookup", obs::TraceContext::kNoParent,
              pending.trace->since_epoch_us(pending.submitted),
              response.latency_us);
          pending.trace->attr(span, "hit", true);
          response.trace = pending.trace;
        }
        mm.latency_us->observe(static_cast<double>(response.latency_us));
        deliver_response(pending, std::move(response));
        return;
      }
      // Hit that still needs the equivalence gate: ride the lane so the
      // check runs on the lane's worker pool, not the submitter's thread
      // (a wide verification could otherwise stall request ingestion).
      pending.cached_result = std::move(*hit);
    }
  }

  Lane& lane = lane_for(name, std::move(model));
  {
    std::lock_guard lock(lane.mu);
    // Admission control: shed instead of queueing without bound. Checked
    // under the lane lock so a burst cannot race past the limit.
    if (config_.max_lane_queue > 0 &&
        lane.queue.size() >= config_.max_lane_queue) {
      shed_total_->inc();
      obs::FlightRecorder::instance().record(
          obs::FlightEventKind::kShed, "service",
          "lane '" + name + "' shed a request at queue bound " +
              std::to_string(config_.max_lane_queue));
      // Rate-limited: under sustained overload this fires per request.
      obs::Logger::instance().log_rate_limited(
          obs::LogLevel::kWarn, "service", "shed:" + name, 2,
          "lane '" + name + "' shedding at its queue bound");
      throw ServiceError(ErrorCode::kOverloaded,
                         "lane '" + name + "' is at its queue bound (" +
                             std::to_string(config_.max_lane_queue) +
                             " requests); retry later");
    }
    lane.queue.push_back(std::move(pending));
  }
  lane.cv.notify_all();
}

ServiceResponse CompileService::compile(const std::string& model_name,
                                        const ir::Circuit& circuit) {
  return submit("", model_name, circuit).get();
}

void CompileService::scheduler_loop(Lane& lane) {
  // Lane threads drive every compile, so sampled stacks mostly land
  // here; enrollment lets the profiler's fp-walk validate them.
  obs::Profiler::enroll_current_thread();
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock lock(lane.mu);
      lane.cv.wait(lock, [&] { return lane.stop || !lane.queue.empty(); });
      if (lane.queue.empty()) {
        return;  // stop requested and fully drained
      }
      // Batch window: give concurrent submitters max_wait_us to pile on,
      // but dispatch immediately once the batch is full or on shutdown.
      if (!lane.stop &&
          static_cast<int>(lane.queue.size()) < config_.max_batch &&
          config_.max_wait_us > 0) {
        const auto deadline =
            Clock::now() + std::chrono::microseconds(config_.max_wait_us);
        lane.cv.wait_until(lock, deadline, [&] {
          return lane.stop ||
                 static_cast<int>(lane.queue.size()) >= config_.max_batch;
        });
      }
      const auto take =
          std::min(lane.queue.size(),
                   static_cast<std::size_t>(config_.max_batch));
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(lane.queue.front()));
        lane.queue.pop_front();
      }
    }
    process_batch(lane, std::move(batch));
  }
}

void CompileService::process_batch(Lane& lane, std::vector<Pending> batch) {
  try {
    ModelMetrics& mm = model_metrics(lane.name);
    const auto dequeued = Clock::now();

    // Trace bookkeeping: each traced request gets a queue_wait span plus
    // an open "batch" span that rollout/search/verify spans hang under.
    std::vector<int> batch_span(batch.size(), obs::TraceContext::kDropped);
    bool any_traced_greedy = false;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const std::int64_t wait = us_between(batch[i].submitted, dequeued);
      mm.queue_wait_us->observe(static_cast<double>(wait));
      if (batch[i].trace == nullptr) {
        continue;
      }
      auto& ctx = *batch[i].trace;
      ctx.add_span("queue_wait", obs::TraceContext::kNoParent,
                   ctx.since_epoch_us(batch[i].submitted), wait);
      batch_span[i] =
          ctx.begin_span("batch", obs::TraceContext::kNoParent);
      ctx.attr(batch_span[i], "lane", lane.name);
      ctx.attr(batch_span[i], "batch_size",
               static_cast<std::int64_t>(batch.size()));
      if (!batch[i].cached_result.has_value() &&
          !batch[i].search.has_value()) {
        any_traced_greedy = true;
      }
    }

    // Identical circuits in one batch (or raced past the cache while a
    // twin was in flight) compile once and fan out. Cache hits that ride
    // the lane for verification (cached_result set) never recompile.
    constexpr auto kNoSlot = std::numeric_limits<std::size_t>::max();
    struct Slot {
      ir::Circuit circuit;
      std::optional<search::SearchOptions> search;
    };
    std::vector<Slot> slots;
    std::vector<std::size_t> slot(batch.size(), kNoSlot);
    std::map<std::string_view, std::size_t> first_of_key;
    int compiled_requests = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].cached_result.has_value()) {
        continue;
      }
      ++compiled_requests;
      if (!batch[i].key.empty()) {
        // The key embeds the search config, so a slot never mixes greedy
        // and searched requests (or two search configurations).
        const auto [it, inserted] =
            first_of_key.try_emplace(batch[i].key, slots.size());
        slot[i] = it->second;
        if (!inserted) {
          continue;
        }
      } else {
        slot[i] = slots.size();
      }
      slots.push_back({batch[i].circuit, batch[i].search});
    }

    // Greedy slots fuse into one batched rollout; search slots run the
    // planning engine one by one on the lane's pool (each search batches
    // its own frontier/leaf evaluations internally).
    std::vector<ir::Circuit> greedy_circuits;
    std::vector<std::size_t> greedy_slots;
    int searched_requests = 0;
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (!slots[s].search.has_value()) {
        greedy_circuits.push_back(slots[s].circuit);
        greedy_slots.push_back(s);
      }
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!batch[i].cached_result.has_value() &&
          batch[i].search.has_value()) {
        ++searched_requests;
      }
    }

    // Batch stats count requests fused into the greedy rollout only
    // (verification-only riders and searches never reached it).
    const int greedy_requests = compiled_requests - searched_requests;
    if (greedy_requests > 0) {
      batches_total_->inc();
      batched_requests_total_->inc(
          static_cast<std::uint64_t>(greedy_requests));
      batch_size_max_->max_of(greedy_requests);
      metrics_
          ->counter("qrc_batches_by_size_total",
                    "Batched rollouts by fused greedy request count",
                    {{"size", std::to_string(greedy_requests)}})
          .inc();
    }

    std::vector<core::CompilationResult> results(slots.size());
    // Detail collector: while the fused rollout runs, the rollout core's
    // DetailTimer spans (policy forward / env step) land here and are
    // re-parented under each traced request's "rollout" span afterwards.
    std::optional<obs::TraceContext> rollout_detail;
    if (any_traced_greedy && !greedy_circuits.empty()) {
      rollout_detail.emplace("rollout");
    }
    const auto rollout_start = Clock::now();
    {
      obs::CurrentTraceScope scope(
          rollout_detail.has_value() ? &*rollout_detail : nullptr);
      auto greedy_results =
          lane.model->compile_all(greedy_circuits, lane.pool.get());
      for (std::size_t g = 0; g < greedy_slots.size(); ++g) {
        results[greedy_slots[g]] = std::move(greedy_results[g]);
      }
    }
    const auto rollout_end = Clock::now();
    if (!greedy_circuits.empty()) {
      mm.rollout_us->observe(
          static_cast<double>(us_between(rollout_start, rollout_end)));
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].trace == nullptr || batch[i].cached_result.has_value() ||
          batch[i].search.has_value()) {
        continue;
      }
      auto& ctx = *batch[i].trace;
      const int span = ctx.add_span(
          "rollout", batch_span[i], ctx.since_epoch_us(rollout_start),
          us_between(rollout_start, rollout_end));
      ctx.attr(span, "fused_circuits",
               static_cast<std::int64_t>(greedy_circuits.size()));
      if (rollout_detail.has_value()) {
        ctx.adopt(*rollout_detail, span);
      }
    }

    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (!slots[s].search.has_value()) {
        continue;
      }
      // Streaming: fan each engine progress snapshot out to every
      // requester of this slot that armed on_partial (deduped twins all
      // see the shared search progress).
      std::vector<const SubmitHooks*> listeners;
      std::vector<std::size_t> traced_requesters;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (slot[i] != s || batch[i].cached_result.has_value()) {
          continue;
        }
        if (batch[i].hooks.on_partial) {
          listeners.push_back(&batch[i].hooks);
        }
        if (batch[i].trace != nullptr) {
          traced_requesters.push_back(i);
        }
      }
      core::Predictor::SearchProgressFn progress;
      if (!listeners.empty()) {
        progress = [&](int, const search::SearchProgress& snapshot) {
          for (const SubmitHooks* hooks : listeners) {
            hooks->on_partial(snapshot);
          }
          partials_total_->inc(listeners.size());
        };
      }
      std::optional<obs::TraceContext> search_detail;
      if (!traced_requesters.empty()) {
        search_detail.emplace("search");
      }
      const auto search_start = Clock::now();
      {
        obs::CurrentTraceScope scope(
            search_detail.has_value() ? &*search_detail : nullptr);
        results[s] =
            lane.model
                ->compile_search_all(
                    std::span<const ir::Circuit>(&slots[s].circuit, 1),
                    *slots[s].search, lane.pool.get(), nullptr, progress)
                .front();
      }
      const auto search_end = Clock::now();
      const auto strategy = search::strategy_name(slots[s].search->strategy);
      metrics_
          ->histogram("qrc_search_duration_us",
                      "Search engine wall time in microseconds, per strategy",
                      obs::latency_buckets_us(),
                      {{"strategy", std::string(strategy)}})
          .observe(static_cast<double>(us_between(search_start, search_end)));
      for (const std::size_t i : traced_requesters) {
        auto& ctx = *batch[i].trace;
        const int span = ctx.add_span(
            "search", batch_span[i], ctx.since_epoch_us(search_start),
            us_between(search_start, search_end));
        ctx.attr(span, "strategy", strategy);
        if (results[s].search_stats.has_value()) {
          const auto& st = *results[s].search_stats;
          ctx.attr(span, "nodes_expanded", st.nodes_expanded);
          ctx.attr(span, "improved", st.improved);
          ctx.attr(span, "deadline_hit", st.deadline_hit);
        }
        if (search_detail.has_value()) {
          ctx.adopt(*search_detail, span);
        }
      }
    }

    for (const auto& [key, s] : first_of_key) {
      cache_.put(std::string(key), results[s]);
    }

    // Verification units: one per distinct compiled slot whose requesters
    // asked (deduped twins share the deterministic verdict) plus one per
    // cache-hit rider; the independent checks spread over the lane's
    // worker pool like the rollout itself.
    struct VerifyUnit {
      const ir::Circuit* original = nullptr;
      const core::CompilationResult* result = nullptr;
      verify::VerifyResult verdict;
      Clock::time_point start;
      std::int64_t duration_us = 0;
    };
    std::vector<VerifyUnit> units;
    std::vector<std::size_t> unit_of_slot(slots.size(), kNoSlot);
    std::vector<std::size_t> unit_of_request(batch.size(), kNoSlot);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!batch[i].verify) {
        continue;
      }
      if (batch[i].cached_result.has_value()) {
        unit_of_request[i] = units.size();
        units.push_back({&batch[i].circuit, &*batch[i].cached_result, {},
                         Clock::time_point{}, 0});
      } else if (unit_of_slot[slot[i]] == kNoSlot) {
        unit_of_slot[slot[i]] = units.size();
        unit_of_request[i] = units.size();
        units.push_back({&batch[i].circuit, &results[slot[i]], {},
                         Clock::time_point{}, 0});
      } else {
        unit_of_request[i] = unit_of_slot[slot[i]];
      }
    }
    lane.pool->parallel_for(static_cast<int>(units.size()), [&](int u) {
      auto& unit = units[static_cast<std::size_t>(u)];
      unit.start = Clock::now();
      unit.verdict = core::verify_compilation(*unit.original, *unit.result,
                                              config_.verify_options);
      unit.duration_us = us_between(unit.start, Clock::now());
    });
    for (const auto& unit : units) {
      metrics_
          ->histogram(
              "qrc_verify_duration_us",
              "Equivalence check wall time in microseconds, per tier",
              obs::latency_buckets_us(),
              {{"method",
                std::string(verify::method_name(unit.verdict.method))}})
          .observe(static_cast<double>(unit.duration_us));
    }

    for (std::size_t i = 0; i < batch.size(); ++i) {
      ServiceResponse response;
      response.id = std::move(batch[i].id);
      response.model = lane.name;
      response.cached = batch[i].cached_result.has_value();
      response.result = response.cached ? std::move(*batch[i].cached_result)
                                        : results[slot[i]];
      if (batch[i].verify) {
        response.result.verification = units[unit_of_request[i]].verdict;
        count_verdict(*response.result.verification);
        if (batch[i].trace != nullptr) {
          auto& ctx = *batch[i].trace;
          const auto& unit = units[unit_of_request[i]];
          const int span = ctx.add_span(
              "verify", batch_span[i], ctx.since_epoch_us(unit.start),
              unit.duration_us);
          ctx.attr(span, "method",
                   verify::method_name(unit.verdict.method));
          ctx.attr(span, "verdict",
                   verify::verdict_name(unit.verdict.verdict));
          ctx.attr(span, "confidence", unit.verdict.confidence);
        }
      }
      if (!response.cached && response.result.search_stats.has_value()) {
        // Improvement/deadline counters share the per-request basis of
        // beam_requests/mcts_requests (deduped twins each count — each
        // response carries the outcome), so their ratios stay meaningful.
        const auto& stats = *response.result.search_stats;
        const obs::Labels labels = {
            {"strategy",
             std::string(search::strategy_name(batch[i].search->strategy))}};
        if (stats.improved) {
          metrics_
              ->counter("qrc_search_improved_total",
                        "Fresh searches beating greedy, per strategy",
                        labels)
              .inc();
        }
        if (stats.deadline_hit) {
          metrics_
              ->counter("qrc_search_deadline_hits_total",
                        "Fresh searches cut by their deadline, per strategy",
                        labels)
              .inc();
          obs::FlightRecorder::instance().record(
              obs::FlightEventKind::kDeadlineHit, "service",
              "search '" + batch[i].id + "' cut by its deadline after " +
                  std::to_string(stats.nodes_expanded) + " nodes");
        }
      }
      response.latency_us = elapsed_us(batch[i].submitted);
      mm.latency_us->observe(static_cast<double>(response.latency_us));
      obs::FlightRecorder::instance().record(
          obs::FlightEventKind::kRequest, "service",
          "request '" + batch[i].id + "' model '" + lane.name +
              "' answered in " + std::to_string(response.latency_us) +
              "us");
      obs::Logger::instance().log_rate_limited(
          obs::LogLevel::kDebug, "service", "answered", 8,
          "request '" + batch[i].id + "' answered in " +
              std::to_string(response.latency_us) + "us");
      if (batch[i].trace != nullptr) {
        batch[i].trace->end_span(batch_span[i]);
        response.trace = batch[i].trace;
      }
      deliver_response(batch[i], std::move(response));
    }
  } catch (...) {
    const auto error = std::current_exception();
    for (auto& pending : batch) {
      deliver_error(pending, error);
    }
  }
}

void CompileService::count_verdict(const verify::VerifyResult& verdict) {
  metrics_
      ->counter("qrc_verify_verdicts_total",
                "Verification verdicts, per verdict and deciding tier",
                {{"verdict", std::string(verify::verdict_name(
                      verdict.verdict))},
                 {"method",
                  std::string(verify::method_name(verdict.method))}})
      .inc();
  if (verdict.verdict == verify::Verdict::kNotEquivalent) {
    // A refutation means the compiler produced a wrong circuit — the
    // single most important event the system can record. Log it, note it
    // in the flight recorder, and dump the recorder immediately so the
    // surrounding traffic context survives later ring wraparound.
    obs::FlightRecorder::instance().record(
        obs::FlightEventKind::kRefutation, "service",
        std::string("verifier refuted a compiled circuit (method ") +
            std::string(verify::method_name(verdict.method)) + ")");
    obs::log_error("service",
                   "verification REFUTED a compiled circuit; dumping "
                   "flight recorder");
    obs::FlightRecorder::instance().dump(2);
  }
}

ServiceStats CompileService::stats() const {
  ServiceStats out;
  out.requests = metrics_->counter_total("qrc_requests_total");
  out.batches = batches_total_->value();
  out.batched_requests = batched_requests_total_->value();
  out.max_batch_size = static_cast<int>(batch_size_max_->value());
  for (const auto& [labels, value] :
       metrics_->counter_series("qrc_batches_by_size_total")) {
    for (const auto& [k, v] : labels) {
      if (k == "size") {
        out.batch_size_histogram[std::stoi(v)] += value;
      }
    }
  }
  for (const auto& [labels, value] :
       metrics_->counter_series("qrc_verify_verdicts_total")) {
    for (const auto& [k, v] : labels) {
      if (k != "verdict") {
        continue;
      }
      if (v == verify::verdict_name(verify::Verdict::kEquivalent)) {
        out.verified += value;
      } else if (v ==
                 verify::verdict_name(verify::Verdict::kNotEquivalent)) {
        out.refuted += value;
      } else {
        out.verify_unknown += value;
      }
    }
  }
  out.beam_requests = search_requests_beam_->value();
  out.mcts_requests = search_requests_mcts_->value();
  out.search_improved = metrics_->counter_total("qrc_search_improved_total");
  out.search_deadline_hits =
      metrics_->counter_total("qrc_search_deadline_hits_total");
  out.shed = shed_total_->value();
  out.partials = partials_total_->value();
  const auto cache = cache_.stats();
  out.cache_hits = cache.hits;
  out.cache_misses = cache.misses;
  out.cache_evictions = cache.evictions;
  return out;
}

}  // namespace qrc::service
