/// \file jsonl.hpp
/// \brief Dependency-free JSON for the compile service's line-delimited
///        protocol: a minimal value type with a strict parser, plus the
///        `qrc serve` request/response line codecs. One JSON object per
///        line in, one per line out — trivially scriptable from a shell.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "search/search.hpp"
#include "service/compile_service.hpp"
#include "service/errors.hpp"

namespace qrc::service {

/// A parsed JSON value. Objects keep their members sorted by key (std::map)
/// so dump() output is canonical regardless of input order.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : v_(nullptr) {}
  JsonValue(std::nullptr_t) : v_(nullptr) {}
  JsonValue(bool b) : v_(b) {}
  JsonValue(double d) : v_(d) {}
  JsonValue(std::string s) : v_(std::move(s)) {}
  JsonValue(const char* s) : v_(std::string(s)) {}
  JsonValue(Array a) : v_(std::move(a)) {}
  JsonValue(Object o) : v_(std::move(o)) {}

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(v_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(v_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(v_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(v_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(v_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(v_);
  }

  /// Typed accessors; throw std::runtime_error on a kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Parses exactly one JSON value spanning the whole text (trailing
  /// whitespace allowed, trailing garbage rejected).
  /// \throws std::runtime_error with a byte offset on malformed input.
  static JsonValue parse(std::string_view text);

  /// Compact canonical serialisation (no whitespace, sorted object keys,
  /// numbers via shortest round-trippable decimal).
  [[nodiscard]] std::string dump() const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// `s` as a JSON string literal: surrounding quotes plus escapes for
/// quote, backslash, and control characters.
[[nodiscard]] std::string json_quote(std::string_view s);

// ------------------------------------------------------ serve protocol ---

/// Operation carried by a v1 request envelope.
enum class ServeOp : std::uint8_t {
  kCompile,    ///< compile a circuit (the only v0 operation)
  kStats,      ///< snapshot the service counters
  kPing,       ///< liveness probe
  kMetrics,    ///< Prometheus text exposition of the metrics registry
  kDebugDump,  ///< flight-recorder snapshot (recent notable events)
  kProfile,    ///< sampling-profiler session; folded stacks on the result
};

[[nodiscard]] std::string_view serve_op_name(ServeOp op);

/// One serve request line, either protocol version.
///
/// v1 envelope: {"v":1, "op":"compile"|"stats"|"ping", "id": ...} plus —
/// for "compile" — the same payload fields as v0. Responses to v1
/// requests carry "type":"result"|"partial"|"error"; errors are typed
/// objects {"code","message"} (see ErrorCode). Deadline-bounded search
/// compiles stream interim "partial" frames before the final "result".
///
/// v0 (compat shim): a bare line without "v"/"op" —
/// {"id": ..., "model": ..., "qasm": ..., "verify": ..., "search": ...,
///  "deadline_ms": ...} — still parses as a compile, and its responses
/// keep the original untyped single-line shape.
///
/// `qasm` is required for compiles; `model` defaults to the service's
/// default model; `id` (string or number, echoed back as a string)
/// defaults to ""; `verify` (bool, default false) requests the
/// post-compile equivalence gate — the response then carries
/// verdict/method/confidence fields. `search` (string: "beam[:width]" or
/// "mcts[:sims]") compiles by policy-guided lookahead instead of the
/// greedy rollout — the response then carries
/// search/search_nodes/search_reward_delta/... fields; `deadline_ms`
/// (positive number, requires `search`) bounds the search wall clock,
/// returning the best sequence found in time. `trace` (bool, default
/// false) asks the server to record per-request spans and echo the span
/// tree as a "trace" object on the response — tracing is observation-only
/// and never changes the compiled result.
struct ServeRequest {
  int version = 0;  ///< 0 (bare compat line) or 1 (enveloped)
  ServeOp op = ServeOp::kCompile;
  std::string id;
  std::string model;
  std::string qasm;
  bool verify = false;
  bool trace = false;
  std::optional<search::SearchOptions> search;
  /// kProfile only: sampling window and rate. Validated at parse time
  /// (seconds in (0, 60], hz an integer in [1, 1000]).
  double profile_seconds = 2.0;
  int profile_hz = 97;
};

/// Parses and validates one request line (either version). Unknown
/// top-level fields are rejected (a typoed "verifi" must fail loudly, not
/// silently skip verification).
/// \throws ServiceError(kUnsupportedVersion) when "v" is present but not 1.
/// \throws ServiceError(kBadRequest) naming the missing/mistyped/unknown
///         field otherwise.
[[nodiscard]] ServeRequest parse_serve_request(std::string_view line);

/// Best-effort id recovery for error reporting: the "id" of `line` if it
/// is a JSON object with a string/number id, else "". Never throws — used
/// to echo the id on request lines that fail validation, so pipelined
/// clients can still correlate the error response.
[[nodiscard]] std::string extract_request_id(std::string_view line);

/// Best-effort protocol-version sniff for error reporting: 1 when `line`
/// is a JSON object with "v":1, else 0. Never throws — used to pick the
/// error-frame shape (typed v1 object vs bare v0 string) for request
/// lines that fail validation.
[[nodiscard]] int extract_request_version(std::string_view line);

/// Serialises one compile-result line:
/// {"id","model","qasm","reward","device","used_fallback","cached",
///  "latency_us"} — `qasm` is the compiled circuit, `device` the chosen
/// target (null if compilation never picked one). When the request asked
/// for verification, three more fields follow: "verdict"
/// ("equivalent"/"not_equivalent"/"unknown"), "verify_method"
/// ("clifford_tableau"/"alternating_miter"/"random_stimuli"/"none") and
/// "verify_confidence" (1.0 for exact tiers). When it asked for search,
/// five more: "search" (the spec, e.g. "beam:8"), "search_nodes",
/// "search_improved", "search_deadline_hit" and "search_reward_delta"
/// (reward gained over the greedy baseline, >= 0 by the clamp). When the
/// request asked for tracing, a final "trace" field carries the span tree
/// (obs::TraceContext::to_json()).
/// `version` 1 additionally tags the frame with "type":"result"; 0 keeps
/// the exact pre-envelope shape for v0 clients.
[[nodiscard]] std::string serve_response_line(const ServiceResponse& r,
                                              int version = 0);

/// Serialises one v1 streamed-progress frame:
/// {"id","type":"partial","strategy","quantum","nodes","found_terminal",
///  "best_reward","elapsed_us"}. Only ever sent to v1 clients.
[[nodiscard]] std::string serve_partial_line(
    std::string_view id, const search::SearchProgress& progress);

/// Serialises one v0 error line: {"id": ..., "error": "<message>"}.
[[nodiscard]] std::string serve_error_line(std::string_view id,
                                           std::string_view message);

/// Serialises one v1 error frame:
/// {"id","type":"error","error":{"code","message"}} with `code` from the
/// fixed ErrorCode enum.
[[nodiscard]] std::string serve_error_line(std::string_view id,
                                           ErrorCode code,
                                           std::string_view message);

/// Serialises the v1 "stats" result frame: {"id","type":"result",
/// "op":"stats", <counter fields>}.
[[nodiscard]] std::string serve_stats_line(std::string_view id,
                                           const ServiceStats& stats);

/// Serialises the v1 "ping" result frame: {"id","type":"result",
/// "op":"ping"}.
[[nodiscard]] std::string serve_pong_line(std::string_view id);

/// Serialises the v1 "metrics" result frame: {"id","type":"result",
/// "op":"metrics","content_type":...,"body":<exposition text>}.
[[nodiscard]] std::string serve_metrics_line(std::string_view id,
                                             std::string_view exposition);

/// Serialises the v1 "debug_dump" result frame: {"id","type":"result",
/// "op":"debug_dump","events":[...]} where `events_json` is an already-
/// serialised JSON array (obs::FlightRecorder::dump_json()).
[[nodiscard]] std::string serve_debug_dump_line(std::string_view id,
                                                std::string_view events_json);

/// Serialises the v1 "profile" result frame: {"id","type":"result",
/// "op":"profile","samples":N,"folded":<collapsed stacks, one
/// "frame;frame count" line per unique stack>}.
[[nodiscard]] std::string serve_profile_line(std::string_view id,
                                             std::string_view folded,
                                             std::uint64_t samples);

}  // namespace qrc::service
