#include "service/jsonl.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "ir/qasm.hpp"
#include "verify/equivalence.hpp"

namespace qrc::service {

namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw std::runtime_error("json: " + what + " at offset " +
                           std::to_string(pos));
}

/// Strict recursive-descent JSON parser (RFC 8259 subset: no extensions,
/// no trailing commas). Depth-capped so adversarial input cannot blow the
/// stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    const JsonValue v = value(0);
    skip_ws();
    if (pos_ != text_.size()) {
      fail(pos_, "trailing characters");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 128;

  JsonValue value(int depth) {
    if (depth > kMaxDepth) {
      fail(pos_, "nesting too deep");
    }
    skip_ws();
    switch (peek()) {
      case '{':
        return object(depth);
      case '[':
        return array(depth);
      case '"':
        return JsonValue(string());
      case 't':
        expect_word("true");
        return JsonValue(true);
      case 'f':
        expect_word("false");
        return JsonValue(false);
      case 'n':
        expect_word("null");
        return JsonValue(nullptr);
      default:
        return JsonValue(number());
    }
  }

  JsonValue object(int depth) {
    ++pos_;  // '{'
    JsonValue::Object out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(out));
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') {
        fail(pos_, "expected object key");
      }
      std::string key = string();
      skip_ws();
      if (peek() != ':') {
        fail(pos_, "expected ':'");
      }
      ++pos_;
      out[std::move(key)] = value(depth + 1);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return JsonValue(std::move(out));
      }
      fail(pos_, "expected ',' or '}'");
    }
  }

  JsonValue array(int depth) {
    ++pos_;  // '['
    JsonValue::Array out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(out));
    }
    for (;;) {
      out.push_back(value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return JsonValue(std::move(out));
      }
      fail(pos_, "expected ',' or ']'");
    }
  }

  std::string string() {
    ++pos_;  // '"'
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) {
        fail(pos_, "unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail(pos_ - 1, "raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        fail(pos_, "unterminated escape");
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': unicode_escape(out); break;
        default: fail(pos_ - 1, "bad escape");
      }
    }
  }

  void unicode_escape(std::string& out) {
    unsigned int code = hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: a low surrogate must follow.
      if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        fail(pos_, "unpaired surrogate");
      }
      pos_ += 2;
      const unsigned int low = hex4();
      if (low < 0xDC00 || low > 0xDFFF) {
        fail(pos_, "invalid low surrogate");
      }
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail(pos_, "unpaired surrogate");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  unsigned int hex4() {
    if (pos_ + 4 > text_.size()) {
      fail(pos_, "truncated \\u escape");
    }
    unsigned int value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value += static_cast<unsigned int>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value += static_cast<unsigned int>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value += static_cast<unsigned int>(c - 'A' + 10);
      } else {
        fail(pos_ - 1, "bad hex digit in \\u escape");
      }
    }
    return value;
  }

  double number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      fail(pos_, "expected value");
    }
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      ++pos_;
    }
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail(pos_, "expected digit after '.'");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') {
        ++pos_;
      }
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail(pos_, "expected exponent digit");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    return std::strtod(token.c_str(), nullptr);
  }

  void expect_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      fail(pos_, "expected value");
    }
    pos_ += word.size();
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::string dump_number(double d) {
  if (!std::isfinite(d)) {
    return "null";  // JSON has no Inf/NaN
  }
  if (d == std::floor(d) && std::abs(d) < 9.007199254740992e15) {
    return std::to_string(static_cast<long long>(d));
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", d);
  return buffer;
}

}  // namespace

bool JsonValue::as_bool() const {
  if (!is_bool()) {
    throw std::runtime_error("json: not a bool");
  }
  return std::get<bool>(v_);
}

double JsonValue::as_number() const {
  if (!is_number()) {
    throw std::runtime_error("json: not a number");
  }
  return std::get<double>(v_);
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) {
    throw std::runtime_error("json: not a string");
  }
  return std::get<std::string>(v_);
}

const JsonValue::Array& JsonValue::as_array() const {
  if (!is_array()) {
    throw std::runtime_error("json: not an array");
  }
  return std::get<Array>(v_);
}

const JsonValue::Object& JsonValue::as_object() const {
  if (!is_object()) {
    throw std::runtime_error("json: not an object");
  }
  return std::get<Object>(v_);
}

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse();
}

std::string JsonValue::dump() const {
  if (is_null()) {
    return "null";
  }
  if (is_bool()) {
    return as_bool() ? "true" : "false";
  }
  if (is_number()) {
    return dump_number(as_number());
  }
  if (is_string()) {
    return json_quote(as_string());
  }
  if (is_array()) {
    std::string out = "[";
    for (const auto& v : as_array()) {
      if (out.size() > 1) {
        out += ",";
      }
      out += v.dump();
    }
    return out + "]";
  }
  std::string out = "{";
  for (const auto& [key, v] : as_object()) {
    if (out.size() > 1) {
      out += ",";
    }
    out += json_quote(key) + ":" + v.dump();
  }
  return out + "}";
}

std::string json_quote(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out + "\"";
}

std::string_view serve_op_name(ServeOp op) {
  switch (op) {
    case ServeOp::kCompile:
      return "compile";
    case ServeOp::kStats:
      return "stats";
    case ServeOp::kPing:
      return "ping";
    case ServeOp::kMetrics:
      return "metrics";
    case ServeOp::kDebugDump:
      return "debug_dump";
    case ServeOp::kProfile:
      return "profile";
  }
  return "compile";
}

namespace {

[[noreturn]] void bad_request(const std::string& what) {
  throw ServiceError(ErrorCode::kBadRequest, what);
}

}  // namespace

ServeRequest parse_serve_request(std::string_view line) {
  JsonValue v;
  try {
    v = JsonValue::parse(line);
  } catch (const std::exception& e) {
    bad_request(e.what());
  }
  if (!v.is_object()) {
    bad_request("request must be a JSON object");
  }
  const auto& obj = v.as_object();

  ServeRequest request;
  // Envelope first: "v"/"op" mark a v1 request; a bare line is the v0
  // compat shim (always a compile). "v" other than 1 is rejected with its
  // own code so a future-protocol client gets a machine-readable signal.
  if (const auto it = obj.find("v"); it != obj.end()) {
    if (!it->second.is_number() || it->second.as_number() != 1.0) {
      throw ServiceError(ErrorCode::kUnsupportedVersion,
                         "unsupported protocol version (this server "
                         "speaks v1 and bare v0 lines)");
    }
    request.version = 1;
  }
  if (const auto it = obj.find("op"); it != obj.end()) {
    if (request.version != 1) {
      bad_request("'op' requires the v1 envelope (add \"v\":1)");
    }
    if (!it->second.is_string()) {
      bad_request("'op' must be a string");
    }
    const std::string& op = it->second.as_string();
    if (op == "compile") {
      request.op = ServeOp::kCompile;
    } else if (op == "stats") {
      request.op = ServeOp::kStats;
    } else if (op == "ping") {
      request.op = ServeOp::kPing;
    } else if (op == "metrics") {
      request.op = ServeOp::kMetrics;
    } else if (op == "debug_dump") {
      request.op = ServeOp::kDebugDump;
    } else if (op == "profile") {
      request.op = ServeOp::kProfile;
    } else {
      bad_request("unknown op '" + op +
                  "' (expected compile, stats, ping, metrics, "
                  "debug_dump or profile)");
    }
  }

  // Unknown fields are hard errors: a client typo ("verifi": true) must
  // surface as an error line, not silently change behaviour. Control
  // ops accept the envelope fields only.
  const bool compile = request.op == ServeOp::kCompile;
  const bool profile = request.op == ServeOp::kProfile;
  for (const auto& [key, value] : obj) {
    if (key == "id" || key == "v" || key == "op") {
      continue;
    }
    if (compile && (key == "model" || key == "qasm" || key == "verify" ||
                    key == "search" || key == "deadline_ms" ||
                    key == "trace")) {
      continue;
    }
    if (profile && (key == "seconds" || key == "hz")) {
      continue;
    }
    bad_request("unknown request field '" + key +
                (compile ? "' (expected v, op, id, model, qasm, verify, "
                           "search, deadline_ms, trace)"
                 : profile
                     ? "' (a profile op takes only v, op, id, seconds, hz)"
                     : "' (a control op takes only v, op, id)"));
  }
  if (const auto it = obj.find("id"); it != obj.end()) {
    if (it->second.is_string()) {
      request.id = it->second.as_string();
    } else if (it->second.is_number()) {
      request.id = dump_number(it->second.as_number());
    } else {
      bad_request("'id' must be a string or number");
    }
  }
  if (profile) {
    // Bounds mirror obs::Profiler's: the wire surface must fail loudly
    // (typed bad_request) before a session ever starts.
    if (const auto it = obj.find("seconds"); it != obj.end()) {
      if (!it->second.is_number() || !(it->second.as_number() > 0.0) ||
          it->second.as_number() > 60.0) {
        bad_request("'seconds' must be a number in (0, 60]");
      }
      request.profile_seconds = it->second.as_number();
    }
    if (const auto it = obj.find("hz"); it != obj.end()) {
      if (!it->second.is_number() || it->second.as_number() < 1.0 ||
          it->second.as_number() > 1000.0 ||
          it->second.as_number() != std::floor(it->second.as_number())) {
        bad_request("'hz' must be an integer in [1, 1000]");
      }
      request.profile_hz = static_cast<int>(it->second.as_number());
    }
    return request;
  }
  if (!compile) {
    return request;
  }
  if (const auto it = obj.find("model"); it != obj.end()) {
    if (!it->second.is_string()) {
      bad_request("'model' must be a string");
    }
    request.model = it->second.as_string();
  }
  if (const auto it = obj.find("verify"); it != obj.end()) {
    if (!it->second.is_bool()) {
      bad_request("'verify' must be a boolean");
    }
    request.verify = it->second.as_bool();
  }
  if (const auto it = obj.find("trace"); it != obj.end()) {
    if (!it->second.is_bool()) {
      bad_request("'trace' must be a boolean");
    }
    request.trace = it->second.as_bool();
  }
  if (const auto it = obj.find("search"); it != obj.end()) {
    if (!it->second.is_string()) {
      bad_request("'search' must be a string like \"beam:8\" or "
                  "\"mcts:400\"");
    }
    try {
      request.search = search::parse_spec(it->second.as_string());
    } catch (const std::exception& e) {
      bad_request(e.what());
    }
  }
  if (const auto it = obj.find("deadline_ms"); it != obj.end()) {
    if (!request.search.has_value()) {
      bad_request("'deadline_ms' requires 'search'");
    }
    // Bounded above so the double-to-int64 cast cannot overflow (and a
    // client cannot request a year-long deadline by typo).
    constexpr double kMaxDeadlineMs = 1e9;  // ~11.5 days
    if (!it->second.is_number() || it->second.as_number() < 1.0 ||
        it->second.as_number() > kMaxDeadlineMs ||
        it->second.as_number() !=
            std::floor(it->second.as_number())) {
      bad_request("'deadline_ms' must be a positive integer <= 1e9");
    }
    request.search->deadline_ms =
        static_cast<std::int64_t>(it->second.as_number());
  }
  const auto it = obj.find("qasm");
  if (it == obj.end() || !it->second.is_string()) {
    bad_request("missing required string field 'qasm'");
  }
  request.qasm = it->second.as_string();
  return request;
}

std::string extract_request_id(std::string_view line) {
  try {
    const JsonValue v = JsonValue::parse(line);
    if (!v.is_object()) {
      return "";
    }
    const auto& obj = v.as_object();
    const auto it = obj.find("id");
    if (it == obj.end()) {
      return "";
    }
    if (it->second.is_string()) {
      return it->second.as_string();
    }
    if (it->second.is_number()) {
      return dump_number(it->second.as_number());
    }
  } catch (const std::exception&) {
    // Malformed line: no id to recover.
  }
  return "";
}

int extract_request_version(std::string_view line) {
  try {
    const JsonValue v = JsonValue::parse(line);
    if (v.is_object()) {
      const auto& obj = v.as_object();
      const auto it = obj.find("v");
      if (it != obj.end() && it->second.is_number() &&
          it->second.as_number() == 1.0) {
        return 1;
      }
    }
  } catch (const std::exception&) {
    // Malformed line: shape the error as v0 for maximum compatibility.
  }
  return 0;
}

std::string serve_response_line(const ServiceResponse& r, int version) {
  std::string out = "{\"id\":" + json_quote(r.id);
  if (version >= 1) {
    out += ",\"type\":\"result\"";
  }
  out += ",\"model\":" + json_quote(r.model);
  out += ",\"qasm\":" + json_quote(ir::to_qasm(r.result.circuit));
  out += ",\"reward\":" + dump_number(r.result.reward);
  out += ",\"device\":";
  out += r.result.device != nullptr ? json_quote(r.result.device->name())
                                    : "null";
  out += ",\"used_fallback\":";
  out += r.result.used_fallback ? "true" : "false";
  out += ",\"cached\":";
  out += r.cached ? "true" : "false";
  out += ",\"latency_us\":" + std::to_string(r.latency_us);
  if (r.result.verification.has_value()) {
    const auto& v = *r.result.verification;
    out += ",\"verdict\":" + json_quote(verify::verdict_name(v.verdict));
    out += ",\"verify_method\":" + json_quote(verify::method_name(v.method));
    out += ",\"verify_confidence\":" + dump_number(v.confidence);
  }
  if (r.result.search_stats.has_value()) {
    const auto& s = *r.result.search_stats;
    out += ",\"search\":" +
           json_quote(std::string(search::strategy_name(s.strategy)) + ":" +
                      std::to_string(s.budget));
    out += ",\"search_nodes\":" + std::to_string(s.nodes_expanded);
    out += ",\"search_improved\":";
    out += s.improved ? "true" : "false";
    out += ",\"search_deadline_hit\":";
    out += s.deadline_hit ? "true" : "false";
    out += ",\"search_reward_delta\":" +
           dump_number(r.result.reward - s.baseline_reward);
  }
  if (r.trace != nullptr) {
    out += ",\"trace\":" + r.trace->to_json();
  }
  return out + "}";
}

std::string serve_partial_line(std::string_view id,
                               const search::SearchProgress& progress) {
  std::string out = "{\"id\":" + json_quote(id);
  out += ",\"type\":\"partial\"";
  out += ",\"strategy\":" +
         json_quote(search::strategy_name(progress.strategy));
  out += ",\"quantum\":" + std::to_string(progress.quantum);
  out += ",\"nodes\":" + std::to_string(progress.nodes_expanded);
  out += ",\"found_terminal\":";
  out += progress.found_terminal ? "true" : "false";
  out += ",\"best_reward\":" + dump_number(progress.best_reward);
  out += ",\"elapsed_us\":" + std::to_string(progress.elapsed_us);
  return out + "}";
}

std::string serve_error_line(std::string_view id, std::string_view message) {
  return "{\"id\":" + json_quote(id) +
         ",\"error\":" + json_quote(message) + "}";
}

std::string serve_error_line(std::string_view id, ErrorCode code,
                             std::string_view message) {
  return "{\"id\":" + json_quote(id) +
         ",\"type\":\"error\",\"error\":{\"code\":" +
         json_quote(error_code_name(code)) +
         ",\"message\":" + json_quote(message) + "}}";
}

std::string serve_stats_line(std::string_view id,
                             const ServiceStats& stats) {
  std::string out = "{\"id\":" + json_quote(id);
  out += ",\"type\":\"result\",\"op\":\"stats\"";
  const auto field = [&out](const char* name, std::uint64_t value) {
    out += ",\"";
    out += name;
    out += "\":" + std::to_string(value);
  };
  field("requests", stats.requests);
  field("cache_hits", stats.cache_hits);
  field("cache_misses", stats.cache_misses);
  field("batches", stats.batches);
  field("batched_requests", stats.batched_requests);
  field("verified", stats.verified);
  field("refuted", stats.refuted);
  field("verify_unknown", stats.verify_unknown);
  field("beam_requests", stats.beam_requests);
  field("mcts_requests", stats.mcts_requests);
  field("search_improved", stats.search_improved);
  field("search_deadline_hits", stats.search_deadline_hits);
  field("shed", stats.shed);
  field("partials", stats.partials);
  return out + "}";
}

std::string serve_pong_line(std::string_view id) {
  return "{\"id\":" + json_quote(id) +
         ",\"type\":\"result\",\"op\":\"ping\"}";
}

std::string serve_metrics_line(std::string_view id,
                               std::string_view exposition) {
  return "{\"id\":" + json_quote(id) +
         ",\"type\":\"result\",\"op\":\"metrics\"" +
         ",\"content_type\":\"text/plain; version=0.0.4\"" +
         ",\"body\":" + json_quote(exposition) + "}";
}

std::string serve_debug_dump_line(std::string_view id,
                                  std::string_view events_json) {
  return "{\"id\":" + json_quote(id) +
         ",\"type\":\"result\",\"op\":\"debug_dump\",\"events\":" +
         std::string(events_json) + "}";
}

std::string serve_profile_line(std::string_view id, std::string_view folded,
                               std::uint64_t samples) {
  return "{\"id\":" + json_quote(id) +
         ",\"type\":\"result\",\"op\":\"profile\",\"samples\":" +
         std::to_string(samples) + ",\"folded\":" + json_quote(folded) + "}";
}

}  // namespace qrc::service
