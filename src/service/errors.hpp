/// \file errors.hpp
/// \brief Typed service/protocol errors. Every failure the serve layer can
///        hand a client maps onto one ErrorCode; the wire protocol carries
///        the code verbatim in the v1 error envelope ({"error":{"code",
///        "message"}}), so clients can react programmatically (retry on
///        `overloaded`, fix the request on `bad_request`) instead of
///        grepping message text.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace qrc::service {

/// Fixed error-code enum of the serve protocol (wire-stable: codes are
/// append-only; renaming or re-using one is a protocol break).
enum class ErrorCode : std::uint8_t {
  kBadRequest,          ///< malformed frame / invalid field / unparseable QASM
  kUnknownModel,        ///< request names a model the registry cannot resolve
  kOverloaded,          ///< admission control shed the request (queue full /
                        ///< per-connection in-flight cap); safe to retry
  kShuttingDown,        ///< server is draining; no new work accepted
  kFrameTooLarge,       ///< request line exceeded the frame size limit
  kUnsupportedVersion,  ///< request "v" is neither absent (v0) nor 1
  kInternal,            ///< unexpected server-side failure
};

/// Wire name of a code ("bad_request", "overloaded", ...).
[[nodiscard]] std::string_view error_code_name(ErrorCode code);

/// A service failure with its protocol error code. Derives from
/// std::runtime_error so existing catch sites keep working; the serve
/// layer downcasts to recover the code (anything else maps to kInternal).
class ServiceError : public std::runtime_error {
 public:
  ServiceError(ErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}

  [[nodiscard]] ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// The ErrorCode of an in-flight exception: ServiceError's own code,
/// kBadRequest for invalid_argument, kInternal for everything else.
[[nodiscard]] ErrorCode error_code_of(const std::exception& e);

}  // namespace qrc::service
