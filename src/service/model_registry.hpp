/// \file model_registry.hpp
/// \brief Thread-safe registry of trained Predictor models keyed by name,
///        typically one per reward objective ("fidelity", "depth", ...).
///        Models are hot-addable while the service runs; lookups hand out
///        shared ownership so an in-flight batch keeps its model alive
///        whatever happens to the registry afterwards.
#pragma once

#include <memory>
#include <mutex>
#include <map>
#include <string>
#include <vector>

#include "core/predictor.hpp"

namespace qrc::service {

class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Registers a trained model under `name`.
  /// \throws std::invalid_argument on an empty or duplicate name.
  /// \throws std::logic_error if the model is not trained.
  void add(std::string name, core::Predictor model);
  void add(std::string name, std::shared_ptr<const core::Predictor> model);

  /// Loads a saved model (Predictor::save format) from `path`.
  /// \throws std::runtime_error if the file cannot be read or parsed.
  void add_from_file(std::string name, const std::string& path);

  /// The model registered under `name`, or nullptr.
  [[nodiscard]] std::shared_ptr<const core::Predictor> find(
      const std::string& name) const;

  /// The model registered under `name`.
  /// \throws std::runtime_error naming the unknown model.
  [[nodiscard]] std::shared_ptr<const core::Predictor> at(
      const std::string& name) const;

  [[nodiscard]] std::vector<std::string> names() const;  ///< sorted
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const core::Predictor>> models_;
};

}  // namespace qrc::service
