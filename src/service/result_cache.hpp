/// \file result_cache.hpp
/// \brief Thread-safe LRU cache from canonical circuit fingerprints
///        (ir::canonical_key, prefixed with the model name by the service)
///        to compiled results. Exactness is free: compilation is
///        deterministic, so a cached result is bit-identical to a fresh
///        Predictor::compile() of the same circuit.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/predictor.hpp"
#include "obs/metrics.hpp"

namespace qrc::service {

class ResultCache {
 public:
  /// Legacy snapshot shape; a thin read of the qrc_cache_* registry
  /// counters (the registry is the single source of truth).
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t insertions = 0;
  };

  /// `capacity` 0 disables the cache (every get misses, put is a no-op).
  /// Counters land in `registry` when given (the service passes its own);
  /// a standalone cache owns a private registry so it still counts.
  explicit ResultCache(std::size_t capacity,
                       obs::MetricsRegistry* registry = nullptr);
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Looks up `key`, refreshing its recency on a hit. Counts hit/miss.
  [[nodiscard]] std::optional<core::CompilationResult> get(
      const std::string& key);

  /// Inserts (or refreshes) `key`, evicting least-recently-used entries
  /// beyond capacity.
  void put(const std::string& key, core::CompilationResult value);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool enabled() const { return capacity_ > 0; }
  [[nodiscard]] Stats stats() const;

 private:
  using Entry = std::pair<std::string, core::CompilationResult>;

  const std::size_t capacity_;
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* evictions_;
  obs::Counter* insertions_;
  obs::Gauge* entries_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace qrc::service
