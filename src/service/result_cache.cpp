#include "service/result_cache.hpp"

namespace qrc::service {

ResultCache::ResultCache(std::size_t capacity, obs::MetricsRegistry* registry)
    : capacity_(capacity),
      owned_registry_(registry == nullptr
                          ? std::make_unique<obs::MetricsRegistry>()
                          : nullptr) {
  obs::MetricsRegistry& reg =
      registry != nullptr ? *registry : *owned_registry_;
  hits_ = &reg.counter("qrc_cache_hits_total", "Result cache hits");
  misses_ = &reg.counter("qrc_cache_misses_total", "Result cache misses");
  evictions_ =
      &reg.counter("qrc_cache_evictions_total", "Result cache LRU evictions");
  insertions_ =
      &reg.counter("qrc_cache_insertions_total", "Result cache insertions");
  entries_ = &reg.gauge("qrc_cache_entries", "Result cache resident entries");
}

std::optional<core::CompilationResult> ResultCache::get(
    const std::string& key) {
  std::lock_guard lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    misses_->inc();
    return std::nullopt;
  }
  hits_->inc();
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void ResultCache::put(const std::string& key,
                      core::CompilationResult value) {
  if (capacity_ == 0) {
    return;
  }
  std::lock_guard lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Deterministic compilation: a re-insert carries the same result, so
    // only the recency changes.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(value));
  index_.emplace(key, lru_.begin());
  insertions_->inc();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    evictions_->inc();
  }
  entries_->set(static_cast<std::int64_t>(lru_.size()));
}

std::size_t ResultCache::size() const {
  std::lock_guard lock(mu_);
  return lru_.size();
}

ResultCache::Stats ResultCache::stats() const {
  Stats out;
  out.hits = hits_->value();
  out.misses = misses_->value();
  out.evictions = evictions_->value();
  out.insertions = insertions_->value();
  return out;
}

}  // namespace qrc::service
