#include "service/result_cache.hpp"

namespace qrc::service {

std::optional<core::CompilationResult> ResultCache::get(
    const std::string& key) {
  std::lock_guard lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void ResultCache::put(const std::string& key,
                      core::CompilationResult value) {
  if (capacity_ == 0) {
    return;
  }
  std::lock_guard lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Deterministic compilation: a re-insert carries the same result, so
    // only the recency changes.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(value));
  index_.emplace(key, lru_.begin());
  ++stats_.insertions;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

std::size_t ResultCache::size() const {
  std::lock_guard lock(mu_);
  return lru_.size();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace qrc::service
