/// \file compile_service.hpp
/// \brief Long-lived concurrent compilation server over trained Predictor
///        models: a dynamic micro-batching scheduler fuses requests that
///        arrive within a batch window into one batched greedy-policy
///        rollout (Predictor::compile_all), a model registry routes each
///        request to its model (batching per model), and an LRU result
///        cache short-circuits repeat circuits. Micro-batching and caching
///        are exact: every request's result is identical to a direct
///        Predictor::compile() of the same circuit.
///
/// Observability: every counter lives in an obs::MetricsRegistry owned by
/// (or injected into) the service — ServiceStats is a thin snapshot read
/// of registry values. Requests submitted with a TraceContext get scoped
/// spans (queue wait, batch, rollout, search, verify) recorded as they
/// move through the lane.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/predictor.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rl/thread_pool.hpp"
#include "service/errors.hpp"
#include "service/model_registry.hpp"
#include "service/result_cache.hpp"

namespace qrc::service {

struct ServiceConfig {
  /// Most requests fused into one batched policy rollout. A batch closes
  /// as soon as this many requests are queued.
  int max_batch = 32;
  /// Batch window: after the first request of a batch, the scheduler
  /// waits at most this long for more before dispatching. 0 dispatches
  /// immediately (batching only what is already queued).
  std::int64_t max_wait_us = 2000;
  /// LRU result-cache capacity in entries; 0 disables caching.
  std::size_t cache_entries = 1024;
  /// Model used by requests that do not name one. Empty: requests may
  /// omit the model only while exactly one model is registered.
  std::string default_model;
  /// Tier configuration for requests submitted with verify=true (the
  /// QCEC-style post-compile equivalence gate). Fixed seed: replays and
  /// cache hits reach identical verdicts.
  verify::VerifyOptions verify_options;
  /// Admission control: per-model-lane queue bound. A submit against a
  /// lane already holding this many queued requests is shed with a typed
  /// ServiceError(kOverloaded) instead of growing the queue without
  /// bound. 0 (default) disables shedding.
  std::size_t max_lane_queue = 0;
  /// Metrics destination. Null (default): the service creates its own
  /// registry — each service instance counts independently, which the
  /// service tests rely on. Inject a shared registry to aggregate.
  std::shared_ptr<obs::MetricsRegistry> metrics;
};

/// Outcome of one service request.
struct ServiceResponse {
  std::string id;     ///< echoed request id
  std::string model;  ///< model that served the request
  /// Identical to Predictor::compile(); `result.verification` is filled
  /// iff the request asked for it (the same field compile_verified uses).
  /// Cached results are re-verified against the incoming circuit — the
  /// checker is deterministic, so a cache hit carries the same verdict a
  /// fresh compilation would.
  core::CompilationResult result;
  bool cached = false;          ///< served from the LRU, no policy run
  std::int64_t latency_us = 0;  ///< submit-to-completion wall time
  /// The request's trace, when it was submitted with one; spans recorded
  /// by the service are complete by the time the response is delivered.
  std::shared_ptr<obs::TraceContext> trace;
};

/// Counter snapshot; all values monotone over the service lifetime.
/// Assembled from the MetricsRegistry (the single source of truth).
struct ServiceStats {
  std::uint64_t requests = 0;          ///< total submitted
  std::uint64_t cache_hits = 0;        ///< served without a policy run
  std::uint64_t cache_misses = 0;      ///< had to be scheduled
  std::uint64_t cache_evictions = 0;   ///< LRU entries displaced
  std::uint64_t batches = 0;           ///< batched rollouts dispatched
  std::uint64_t batched_requests = 0;  ///< requests across all batches
  int max_batch_size = 0;              ///< largest fused batch
  std::map<int, std::uint64_t> batch_size_histogram;  ///< size -> count
  std::uint64_t verified = 0;        ///< verification verdicts: equivalent
  std::uint64_t refuted = 0;         ///< verdicts: not equivalent
  std::uint64_t verify_unknown = 0;  ///< verdicts: no tier could decide
  // Per-strategy search counters. Search requests are scheduled through
  // the lanes like any other, but run the planning engine instead of
  // riding the fused greedy rollout, so they are not part of
  // batches/batched_requests. beam/mcts_requests count every submission
  // (cache hits included, like `requests`); improved/deadline counters
  // count freshly searched responses only (cache hits replay a recorded
  // outcome, they don't re-run the engine).
  std::uint64_t beam_requests = 0;  ///< submitted with a beam search config
  std::uint64_t mcts_requests = 0;  ///< submitted with an MCTS config
  std::uint64_t search_improved = 0;       ///< fresh searches beating greedy
  std::uint64_t search_deadline_hits = 0;  ///< fresh searches cut by deadline
  std::uint64_t shed = 0;      ///< requests refused by admission control
  std::uint64_t partials = 0;  ///< streamed search-progress events delivered
};

/// Completion/streaming hooks for submit(). All hooks fire on the model
/// lane's scheduler thread (never the submitter's), so they must be cheap
/// and must not call back into the service. `on_partial` only fires for
/// freshly searched requests (a cache hit replays the recorded outcome
/// without re-running the engine — no interim progress exists).
struct SubmitHooks {
  std::function<void(const search::SearchProgress&)> on_partial;
  std::function<void(ServiceResponse)> on_result;
  std::function<void(ErrorCode, const std::string&)> on_error;
};

/// Thread-safe compilation server. Submit from any number of threads; each
/// registered model gets its own request lane, scheduler thread, and
/// worker pool, so traffic to one model never stalls another. Destruction
/// drains every lane: all returned futures complete.
class CompileService {
 public:
  explicit CompileService(ServiceConfig config = {});
  ~CompileService();
  CompileService(const CompileService&) = delete;
  CompileService& operator=(const CompileService&) = delete;

  /// Models are hot-addable: registry().add(...) at any time makes the
  /// model immediately routable by name.
  [[nodiscard]] ModelRegistry& registry() { return registry_; }
  [[nodiscard]] const ModelRegistry& registry() const { return registry_; }

  /// The service's metrics registry (see ServiceConfig::metrics). The net
  /// layer and the /metrics surfaces render from here.
  [[nodiscard]] obs::MetricsRegistry& metrics() const { return *metrics_; }

  /// Enqueues one compilation. `model_name` empty selects the default
  /// model (ServiceConfig::default_model, or the sole registered model).
  /// The future completes with the response, or with the exception the
  /// compilation raised. `verify` requests the post-compile equivalence
  /// gate (ServiceConfig::verify_options); the compiled circuit is
  /// identical either way. `search`, if set, compiles by policy-guided
  /// lookahead (Predictor::compile_search) instead of the greedy rollout;
  /// the cache key then incorporates the full search configuration, so
  /// searched results never alias greedy ones (or searches under other
  /// configs). `trace`, if set, collects scoped spans for the request —
  /// tracing is observation-only and never changes the compiled result.
  /// \throws ServiceError(kUnknownModel) if the model cannot be resolved.
  /// \throws ServiceError(kOverloaded) when the lane queue is full
  ///         (ServiceConfig::max_lane_queue).
  /// \throws ServiceError(kShuttingDown) after shutdown has begun.
  std::future<ServiceResponse> submit(
      std::string id, const std::string& model_name, ir::Circuit circuit,
      bool verify = false,
      std::optional<search::SearchOptions> search = std::nullopt,
      std::shared_ptr<obs::TraceContext> trace = nullptr);

  /// Hook-based variant for event-loop callers (the socket server): the
  /// response (or processing error) is delivered through `hooks` on the
  /// lane thread instead of a future, and deadline-bounded searches
  /// stream interim progress through `hooks.on_partial`. Admission
  /// failures still throw synchronously, exactly like submit().
  void submit_with_hooks(std::string id, const std::string& model_name,
                         ir::Circuit circuit, bool verify,
                         std::optional<search::SearchOptions> search,
                         SubmitHooks hooks,
                         std::shared_ptr<obs::TraceContext> trace = nullptr);

  /// Convenience: submit and wait.
  ServiceResponse compile(const std::string& model_name,
                          const ir::Circuit& circuit);

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const ServiceConfig& config() const { return config_; }

 private:
  struct Pending {
    std::string id;
    std::string key;  ///< cache key; empty when caching is disabled
    ir::Circuit circuit;
    bool verify = false;  ///< run the post-compile equivalence gate
    /// Policy-guided search config; nullopt = greedy rollout.
    std::optional<search::SearchOptions> search;
    /// Cache hit that still needs verification: carried into the lane so
    /// the (possibly slow) equivalence check runs on the lane's worker
    /// pool instead of stalling the submitter's thread. No policy run.
    std::optional<core::CompilationResult> cached_result;
    /// Exactly one delivery channel is armed: the promise (future-based
    /// submit) or hooks.on_result/on_error (submit_with_hooks).
    std::promise<ServiceResponse> promise;
    SubmitHooks hooks;
    /// Span sink for the request; null = untraced (the common case).
    std::shared_ptr<obs::TraceContext> trace;
    std::chrono::steady_clock::time_point submitted;
  };

  /// Per-model request lane: queue, scheduler thread, rollout pool.
  struct Lane {
    std::string name;
    std::shared_ptr<const core::Predictor> model;
    std::unique_ptr<rl::WorkerPool> pool;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Pending> queue;
    bool stop = false;
    std::thread worker;
  };

  /// Cached registry handles for one model's label set.
  struct ModelMetrics {
    obs::Counter* requests = nullptr;
    obs::Histogram* latency_us = nullptr;
    obs::Histogram* queue_wait_us = nullptr;
    obs::Histogram* rollout_us = nullptr;
  };

  [[nodiscard]] std::string resolve_model_name(
      const std::string& model_name) const;
  Lane& lane_for(const std::string& name,
                 std::shared_ptr<const core::Predictor> model);
  ModelMetrics& model_metrics(const std::string& model);
  /// Shared submit path behind both public variants; `pending` carries
  /// whichever delivery channel the caller armed.
  void submit_impl(const std::string& model_name, Pending pending);
  /// Routes one finished response / processing failure through whichever
  /// delivery channel the submit armed (hooks or promise).
  static void deliver_response(Pending& pending, ServiceResponse response);
  static void deliver_error(Pending& pending,
                            const std::exception_ptr& error);
  void scheduler_loop(Lane& lane);
  void process_batch(Lane& lane, std::vector<Pending> batch);
  /// Bumps the per-(verdict, method) verdict counter.
  void count_verdict(const verify::VerifyResult& verdict);

  ServiceConfig config_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  ModelRegistry registry_;
  ResultCache cache_;

  // Registry handles shared across models (registered once in the ctor).
  obs::Counter* batches_total_ = nullptr;
  obs::Counter* batched_requests_total_ = nullptr;
  obs::Gauge* batch_size_max_ = nullptr;
  obs::Counter* shed_total_ = nullptr;
  obs::Counter* partials_total_ = nullptr;
  obs::Counter* search_requests_beam_ = nullptr;
  obs::Counter* search_requests_mcts_ = nullptr;

  mutable std::mutex lanes_mu_;
  std::map<std::string, std::unique_ptr<Lane>> lanes_;

  mutable std::mutex model_metrics_mu_;
  std::map<std::string, ModelMetrics> model_metrics_;

  std::atomic<bool> stopping_{false};
};

}  // namespace qrc::service
