#include "clifford/tableau.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "la/complex.hpp"
#include "obs/perf_counters.hpp"

namespace qrc::clifford {

using ir::GateKind;
using ir::Operation;

Tableau::Tableau(int num_qubits) : n_(num_qubits) {
  if (num_qubits < 1) {
    throw std::invalid_argument("Tableau: need at least one qubit");
  }
  words_ = (2 * n_ + 63) / 64;
  xb_.assign(static_cast<std::size_t>(n_) * words_u(), 0);
  zb_.assign(static_cast<std::size_t>(n_) * words_u(), 0);
  rb_.assign(words_u(), 0);
  for (int i = 0; i < n_; ++i) {
    // Destabilizer i = X_i, stabilizer i = Z_i.
    plane(xb_, i)[static_cast<std::size_t>(i) / 64] |=
        std::uint64_t{1} << (static_cast<std::size_t>(i) % 64);
    const auto si = static_cast<std::size_t>(n_ + i);
    plane(zb_, i)[si / 64] |= std::uint64_t{1} << (si % 64);
  }
}

// The word formulas below are the Aaronson-Gottesman per-row updates
// applied to all 64 rows of a word at once; boolean row identities:
//   H(q):     r ^= x&z, then swap x and z
//   S(q):     r ^= x&z;  z ^= x
//   Sdg(q):   r ^= x&~z; z ^= x          (= S^3)
//   CX(c,t):  r ^= xc & zt & ~(xt ^ zc); xt ^= xc; zc ^= zt
//   Z(q):     r ^= x     (= S^2)
//   X(q):     r ^= z     (= H Z H; the two H sign terms cancel)
//   Y(q):     r ^= x ^ z (= Z then X)
// Pad bits stay zero: every update ANDs or XORs existing plane words,
// whose pad bits are zero by construction.

void Tableau::apply_h(int q) {
  std::uint64_t* x = plane(xb_, q);
  std::uint64_t* z = plane(zb_, q);
  for (std::size_t w = 0; w < words_u(); ++w) {
    rb_[w] ^= x[w] & z[w];
    std::swap(x[w], z[w]);
  }
}

void Tableau::apply_s(int q) {
  const std::uint64_t* x = plane(xb_, q);
  std::uint64_t* z = plane(zb_, q);
  for (std::size_t w = 0; w < words_u(); ++w) {
    rb_[w] ^= x[w] & z[w];
    z[w] ^= x[w];
  }
}

void Tableau::apply_cx(int control, int target) {
  std::uint64_t* xc = plane(xb_, control);
  std::uint64_t* zc = plane(zb_, control);
  std::uint64_t* xt = plane(xb_, target);
  std::uint64_t* zt = plane(zb_, target);
  for (std::size_t w = 0; w < words_u(); ++w) {
    rb_[w] ^= xc[w] & zt[w] & ~(xt[w] ^ zc[w]);
    xt[w] ^= xc[w];
    zc[w] ^= zt[w];
  }
}

void Tableau::apply_sdg(int q) {
  const std::uint64_t* x = plane(xb_, q);
  std::uint64_t* z = plane(zb_, q);
  for (std::size_t w = 0; w < words_u(); ++w) {
    rb_[w] ^= x[w] & ~z[w];
    z[w] ^= x[w];
  }
}

void Tableau::apply_z(int q) {
  const std::uint64_t* x = plane(xb_, q);
  for (std::size_t w = 0; w < words_u(); ++w) {
    rb_[w] ^= x[w];
  }
}

void Tableau::apply_x(int q) {
  const std::uint64_t* z = plane(zb_, q);
  for (std::size_t w = 0; w < words_u(); ++w) {
    rb_[w] ^= z[w];
  }
}

void Tableau::apply_y(int q) {
  const std::uint64_t* x = plane(xb_, q);
  const std::uint64_t* z = plane(zb_, q);
  for (std::size_t w = 0; w < words_u(); ++w) {
    rb_[w] ^= x[w] ^ z[w];
  }
}

void Tableau::apply_sx(int q) {
  apply_h(q);
  apply_s(q);
  apply_h(q);
}

void Tableau::apply_sxdg(int q) {
  apply_h(q);
  apply_sdg(q);
  apply_h(q);
}

void Tableau::apply_cz(int a, int b) {
  apply_h(b);
  apply_cx(a, b);
  apply_h(b);
}

void Tableau::apply_cy(int control, int target) {
  apply_sdg(target);
  apply_cx(control, target);
  apply_s(target);
}

void Tableau::apply_swap(int a, int b) {
  // Conjugation by SWAP only exchanges the operand Paulis (all images carry
  // a + sign), so swapping the planes is the whole update.
  std::uint64_t* xa = plane(xb_, a);
  std::uint64_t* za = plane(zb_, a);
  std::swap_ranges(xa, xa + words_u(), plane(xb_, b));
  std::swap_ranges(za, za + words_u(), plane(zb_, b));
}

void Tableau::apply_iswap(int a, int b) {
  // iSWAP = (S (x) S) * CZ * SWAP (verified against the matrix definition).
  apply_swap(a, b);
  apply_cz(a, b);
  apply_s(a);
  apply_s(b);
}

void Tableau::apply_ecr(int a, int b) {
  // ECR = X_a * SX_b * S_a * CX(a, b) up to global phase (derived from the
  // conjugation images X_a -> -X_b Y_a, Z_a -> -Z_a, X_b -> X_b,
  // Z_b -> Z_a Y_b).
  apply_cx(a, b);
  apply_s(a);
  apply_sx(b);
  apply_x(a);
}

bool Tableau::apply(const Operation& op) {
  const auto ops = as_clifford_ops(op);
  if (!ops.has_value()) {
    return false;
  }
  for (const Operation& g : *ops) {
    switch (g.kind()) {
      case GateKind::kH:
        apply_h(g.qubit(0));
        break;
      case GateKind::kS:
        apply_s(g.qubit(0));
        break;
      case GateKind::kSdg:
        apply_sdg(g.qubit(0));
        break;
      case GateKind::kX:
        apply_x(g.qubit(0));
        break;
      case GateKind::kY:
        apply_y(g.qubit(0));
        break;
      case GateKind::kZ:
        apply_z(g.qubit(0));
        break;
      case GateKind::kSX:
        apply_sx(g.qubit(0));
        break;
      case GateKind::kSXdg:
        apply_sxdg(g.qubit(0));
        break;
      case GateKind::kI:
        break;
      case GateKind::kCX:
        apply_cx(g.qubit(0), g.qubit(1));
        break;
      case GateKind::kCZ:
        apply_cz(g.qubit(0), g.qubit(1));
        break;
      case GateKind::kCY:
        apply_cy(g.qubit(0), g.qubit(1));
        break;
      case GateKind::kSWAP:
        apply_swap(g.qubit(0), g.qubit(1));
        break;
      case GateKind::kISWAP:
        apply_iswap(g.qubit(0), g.qubit(1));
        break;
      case GateKind::kECR:
        apply_ecr(g.qubit(0), g.qubit(1));
        break;
      default:
        throw std::logic_error("Tableau::apply: unexpected primitive");
    }
  }
  return true;
}

std::optional<Tableau> Tableau::from_circuit(const ir::Circuit& circuit) {
  obs::PerfScope perf(obs::PerfKernel::kTableauSweep);
  Tableau t(std::max(1, circuit.num_qubits()));
  for (const Operation& op : circuit.ops()) {
    if (!t.apply(op)) {
      return std::nullopt;
    }
  }
  return t;
}

bool Tableau::operator==(const Tableau& rhs) const {
  // Pad bits are invariantly zero on both sides, so whole-word compare is
  // exact row-by-row equality.
  return n_ == rhs.n_ && xb_ == rhs.xb_ && zb_ == rhs.zb_ && rb_ == rhs.rb_;
}

namespace {

/// A gate applied during tableau reduction; kept for reconstructing the
/// synthesised circuit.
struct AppliedGate {
  GateKind kind;
  int a;
  int b;  // -1 for 1q gates
};

GateKind inverse_primitive(GateKind kind) {
  switch (kind) {
    case GateKind::kS:
      return GateKind::kSdg;
    case GateKind::kSdg:
      return GateKind::kS;
    case GateKind::kSX:
      return GateKind::kSXdg;
    case GateKind::kSXdg:
      return GateKind::kSX;
    default:
      return kind;  // H, X, Z, CX, CZ, SWAP are self-inverse
  }
}

}  // namespace

ir::Circuit Tableau::to_circuit() const {
  Tableau work = *this;
  std::vector<AppliedGate> applied;
  const auto do_gate = [&](GateKind kind, int a, int b) {
    switch (kind) {
      case GateKind::kH:
        work.apply_h(a);
        break;
      case GateKind::kS:
        work.apply_s(a);
        break;
      case GateKind::kSX:
        work.apply_sx(a);
        break;
      case GateKind::kX:
        work.apply_x(a);
        break;
      case GateKind::kZ:
        work.apply_z(a);
        break;
      case GateKind::kCX:
        work.apply_cx(a, b);
        break;
      case GateKind::kCZ:
        work.apply_cz(a, b);
        break;
      case GateKind::kSWAP:
        work.apply_swap(a, b);
        break;
      default:
        throw std::logic_error("to_circuit: unexpected gate");
    }
    applied.push_back({kind, a, b});
  };

  const int n = n_;
  for (int i = 0; i < n; ++i) {
    const int di = i;      // destabilizer row
    const int si = n + i;  // stabilizer row

    // Step A: bring an X onto column i of the destabilizer row.
    int k_x = -1;
    int k_z = -1;
    for (int k = i; k < n; ++k) {
      if (k_x < 0 && work.x(di, k)) {
        k_x = k;
      }
      if (k_z < 0 && work.z(di, k)) {
        k_z = k;
      }
    }
    if (k_x < 0) {
      if (k_z < 0) {
        throw std::logic_error("to_circuit: degenerate tableau row");
      }
      do_gate(GateKind::kH, k_z, -1);
      k_x = k_z;
    }
    if (k_x != i) {
      do_gate(GateKind::kSWAP, i, k_x);
    }

    // Step B: clear remaining X components of the destabilizer row.
    for (int k = i + 1; k < n; ++k) {
      if (work.x(di, k)) {
        do_gate(GateKind::kCX, i, k);
      }
    }
    // Step C: clear Z components (first the Y on column i, then CZ links).
    if (work.z(di, i)) {
      do_gate(GateKind::kS, i, -1);
    }
    for (int k = i + 1; k < n; ++k) {
      if (work.z(di, k)) {
        do_gate(GateKind::kCZ, i, k);
      }
    }

    // Step D: clear X components of the stabilizer row on columns > i.
    for (int k = i + 1; k < n; ++k) {
      if (work.x(si, k)) {
        if (work.z(si, k)) {
          do_gate(GateKind::kS, k, -1);
        }
        do_gate(GateKind::kH, k, -1);
      }
    }
    // Column i of the stabilizer row: turn a Y into a Z (X_i preserved).
    if (work.x(si, i)) {
      do_gate(GateKind::kSX, i, -1);
    }
    // Step E: clear Z components of the stabilizer row on columns > i.
    for (int k = i + 1; k < n; ++k) {
      if (work.z(si, k)) {
        do_gate(GateKind::kCX, k, i);
      }
    }
  }

  // Step G: fix signs.
  for (int i = 0; i < n; ++i) {
    if (work.r(i)) {
      do_gate(GateKind::kZ, i, -1);
    }
    if (work.r(n + i)) {
      do_gate(GateKind::kX, i, -1);
    }
  }

  // applied reduces U to identity: G_k ... G_1 U = I, so
  // U = G_1^dag ... G_k^dag; as a circuit, G_k^dag executes first.
  ir::Circuit out(n, "clifford");
  for (auto it = applied.rbegin(); it != applied.rend(); ++it) {
    const GateKind inv = inverse_primitive(it->kind);
    if (it->b < 0) {
      const std::array<int, 1> qs{it->a};
      out.append(inv, qs);
    } else {
      const std::array<int, 2> qs{it->a, it->b};
      out.append(inv, qs);
    }
  }
  return out;
}

namespace {

/// Multiple of pi/2 within tolerance: returns k in {0, 1, 2, 3} for
/// angle = k * pi/2 (mod 2*pi), or -1.
int quarter_turns(double angle) {
  const double t = la::normalize_angle(angle);
  for (int k = -2; k <= 2; ++k) {
    if (std::abs(t - k * la::kPi / 2.0) < 1e-9) {
      return ((k % 4) + 4) % 4;
    }
  }
  return -1;
}

Operation make1(GateKind kind, int q) {
  const std::array<int, 1> qs{q};
  return Operation(kind, qs);
}

Operation make2(GateKind kind, int a, int b) {
  const std::array<int, 2> qs{a, b};
  return Operation(kind, qs);
}

/// rzz(k * pi/2) as primitive Cliffords.
void append_rzz(std::vector<Operation>& out, int k, int a, int b) {
  switch (k) {
    case 0:
      return;
    case 1:
      out.push_back(make2(GateKind::kCX, a, b));
      out.push_back(make1(GateKind::kS, b));
      out.push_back(make2(GateKind::kCX, a, b));
      return;
    case 2:
      out.push_back(make1(GateKind::kZ, a));
      out.push_back(make1(GateKind::kZ, b));
      return;
    case 3:
      out.push_back(make2(GateKind::kCX, a, b));
      out.push_back(make1(GateKind::kSdg, b));
      out.push_back(make2(GateKind::kCX, a, b));
      return;
    default:
      throw std::logic_error("append_rzz: bad quarter turn");
  }
}

}  // namespace

std::optional<std::vector<Operation>> as_clifford_ops(const Operation& op) {
  std::vector<Operation> out;
  switch (op.kind()) {
    case GateKind::kI:
      return out;
    case GateKind::kX:
    case GateKind::kY:
    case GateKind::kZ:
    case GateKind::kH:
    case GateKind::kS:
    case GateKind::kSdg:
    case GateKind::kSX:
    case GateKind::kSXdg:
    case GateKind::kCX:
    case GateKind::kCY:
    case GateKind::kCZ:
    case GateKind::kSWAP:
    case GateKind::kISWAP:
    case GateKind::kECR:
      out.push_back(op);
      return out;
    case GateKind::kRZ:
    case GateKind::kP: {
      const int k = quarter_turns(op.param(0));
      if (k < 0) {
        return std::nullopt;
      }
      static constexpr GateKind kSeq[4] = {GateKind::kI, GateKind::kS,
                                           GateKind::kZ, GateKind::kSdg};
      if (k != 0) {
        out.push_back(make1(kSeq[k], op.qubit(0)));
      }
      return out;
    }
    case GateKind::kRX: {
      const int k = quarter_turns(op.param(0));
      if (k < 0) {
        return std::nullopt;
      }
      static constexpr GateKind kSeq[4] = {GateKind::kI, GateKind::kSX,
                                           GateKind::kX, GateKind::kSXdg};
      if (k != 0) {
        out.push_back(make1(kSeq[k], op.qubit(0)));
      }
      return out;
    }
    case GateKind::kRY: {
      const int k = quarter_turns(op.param(0));
      if (k < 0) {
        return std::nullopt;
      }
      const int q = op.qubit(0);
      switch (k) {
        case 0:
          return out;
        case 1:  // ry(pi/2) = X * H as matrices: circuit [h, x]
          out.push_back(make1(GateKind::kH, q));
          out.push_back(make1(GateKind::kX, q));
          return out;
        case 2:
          out.push_back(make1(GateKind::kY, q));
          return out;
        case 3:  // ry(-pi/2) = H * X: circuit [x, h]
          out.push_back(make1(GateKind::kX, q));
          out.push_back(make1(GateKind::kH, q));
          return out;
        default:
          return std::nullopt;
      }
    }
    case GateKind::kCP: {
      const int k = quarter_turns(op.param(0));
      if (k == 0) {
        return out;
      }
      if (k == 2) {  // cp(pi) = CZ
        out.push_back(make2(GateKind::kCZ, op.qubit(0), op.qubit(1)));
        return out;
      }
      return std::nullopt;  // CS / CSdg are not Clifford
    }
    case GateKind::kCRZ: {
      // Controlled rotations are 4*pi-periodic: crz(pi) = Sdg_c * CZ,
      // crz(2pi) = Z_c, crz(3pi) = S_c * CZ.
      const double m = std::remainder(op.param(0), 4.0 * la::kPi);
      int k = -1;
      for (int cand = -2; cand <= 2; ++cand) {
        if (std::abs(m - cand * la::kPi) < 1e-9) {
          k = ((cand % 4) + 4) % 4;
          break;
        }
      }
      if (k < 0) {
        return std::nullopt;
      }
      const int c = op.qubit(0);
      const int tq = op.qubit(1);
      switch (k) {
        case 0:
          return out;
        case 1:
          out.push_back(make1(GateKind::kSdg, c));
          out.push_back(make2(GateKind::kCZ, c, tq));
          return out;
        case 2:
          out.push_back(make1(GateKind::kZ, c));
          return out;
        case 3:
          out.push_back(make1(GateKind::kS, c));
          out.push_back(make2(GateKind::kCZ, c, tq));
          return out;
        default:
          return std::nullopt;
      }
    }
    case GateKind::kRZZ: {
      const int k = quarter_turns(op.param(0));
      if (k < 0) {
        return std::nullopt;
      }
      append_rzz(out, k, op.qubit(0), op.qubit(1));
      return out;
    }
    case GateKind::kRXX: {
      const int k = quarter_turns(op.param(0));
      if (k < 0) {
        return std::nullopt;
      }
      if (k != 0) {
        out.push_back(make1(GateKind::kH, op.qubit(0)));
        out.push_back(make1(GateKind::kH, op.qubit(1)));
        append_rzz(out, k, op.qubit(0), op.qubit(1));
        out.push_back(make1(GateKind::kH, op.qubit(0)));
        out.push_back(make1(GateKind::kH, op.qubit(1)));
      }
      return out;
    }
    case GateKind::kRYY: {
      const int k = quarter_turns(op.param(0));
      if (k < 0) {
        return std::nullopt;
      }
      if (k != 0) {
        out.push_back(make1(GateKind::kSXdg, op.qubit(0)));
        out.push_back(make1(GateKind::kSXdg, op.qubit(1)));
        append_rzz(out, k, op.qubit(0), op.qubit(1));
        out.push_back(make1(GateKind::kSX, op.qubit(0)));
        out.push_back(make1(GateKind::kSX, op.qubit(1)));
      }
      return out;
    }
    case GateKind::kRZX: {
      // Z on operand 0, X on operand 1: conjugate rzz by H on operand 1.
      const int k = quarter_turns(op.param(0));
      if (k < 0) {
        return std::nullopt;
      }
      if (k != 0) {
        out.push_back(make1(GateKind::kH, op.qubit(1)));
        append_rzz(out, k, op.qubit(0), op.qubit(1));
        out.push_back(make1(GateKind::kH, op.qubit(1)));
      }
      return out;
    }
    case GateKind::kU3: {
      // Clifford only at quarter-turn Euler angles; conservative: treat as
      // non-Clifford (Optimize1qGates normalises these first).
      return std::nullopt;
    }
    default:
      return std::nullopt;
  }
}

bool is_clifford_circuit(const ir::Circuit& circuit) {
  for (const Operation& op : circuit.ops()) {
    if (!as_clifford_ops(op).has_value()) {
      return false;
    }
  }
  return true;
}

}  // namespace qrc::clifford
