/// \file tableau.hpp
/// \brief Aaronson-Gottesman stabilizer tableau: simulation of Clifford
///        circuits and canonical resynthesis. Powers the OptimizeCliffords
///        and CliffordSimp passes.
#pragma once

#include <optional>
#include <vector>

#include "ir/circuit.hpp"

namespace qrc::clifford {

/// Stabilizer tableau over n qubits: 2n rows (destabilizers then
/// stabilizers), each a signed Pauli stored as x/z bit rows plus a sign bit.
class Tableau {
 public:
  /// Identity tableau (destabilizer i = X_i, stabilizer i = Z_i).
  explicit Tableau(int num_qubits);

  [[nodiscard]] int num_qubits() const { return n_; }

  // Primitive generators (Aaronson-Gottesman update rules).
  void apply_h(int q);
  void apply_s(int q);
  void apply_cx(int control, int target);

  // Composites, expressed via the primitives.
  void apply_sdg(int q);
  void apply_x(int q);
  void apply_y(int q);
  void apply_z(int q);
  void apply_sx(int q);
  void apply_sxdg(int q);
  void apply_cz(int a, int b);
  void apply_cy(int control, int target);
  void apply_swap(int a, int b);
  void apply_iswap(int a, int b);
  void apply_ecr(int a, int b);

  /// Applies any Clifford operation; returns false (tableau unchanged) if
  /// the operation is not Clifford.
  [[nodiscard]] bool apply(const ir::Operation& op);

  /// Builds the tableau of a circuit. Returns std::nullopt if any gate is
  /// not Clifford (rotation gates at multiples of pi/2 count as Clifford).
  [[nodiscard]] static std::optional<Tableau> from_circuit(
      const ir::Circuit& circuit);

  /// Synthesises a circuit implementing this tableau (up to global phase)
  /// using {H, S, Sdg, SX, X, Z, CX, CZ} — O(n^2) gates via symplectic
  /// Gaussian elimination.
  [[nodiscard]] ir::Circuit to_circuit() const;

  [[nodiscard]] bool operator==(const Tableau& rhs) const;

  // Row accessors (row < n: destabilizer, row >= n: stabilizer).
  [[nodiscard]] bool x(int row, int col) const {
    return x_[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)];
  }
  [[nodiscard]] bool z(int row, int col) const {
    return z_[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)];
  }
  [[nodiscard]] bool r(int row) const {
    return r_[static_cast<std::size_t>(row)];
  }

 private:
  int n_;
  // 2n rows; x_[row][col], z_[row][col], sign r_[row].
  std::vector<std::vector<bool>> x_;
  std::vector<std::vector<bool>> z_;
  std::vector<bool> r_;
};

/// If `op` is Clifford (including rotations at multiples of pi/2), returns
/// an equivalent sequence of primitive Clifford gates from
/// {H, S, Sdg, X, Y, Z, SX, SXdg, CX, CZ, SWAP} (up to global phase).
/// Otherwise std::nullopt.
[[nodiscard]] std::optional<std::vector<ir::Operation>> as_clifford_ops(
    const ir::Operation& op);

/// True if the whole circuit is Clifford (per as_clifford_ops).
[[nodiscard]] bool is_clifford_circuit(const ir::Circuit& circuit);

}  // namespace qrc::clifford
