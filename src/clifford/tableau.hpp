/// \file tableau.hpp
/// \brief Aaronson-Gottesman stabilizer tableau: simulation of Clifford
///        circuits and canonical resynthesis. Powers the OptimizeCliffords
///        and CliffordSimp passes and the verifier's Clifford tier.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "ir/circuit.hpp"

namespace qrc::clifford {

/// Stabilizer tableau over n qubits: 2n rows (destabilizers then
/// stabilizers), each a signed Pauli stored as x/z bit rows plus a sign bit.
///
/// Storage is bitplane (column-major) packed: for every qubit q there is
/// one x plane and one z plane of ceil(2n/64) `uint64_t` words, bit j of a
/// plane being row j's Pauli component on q; signs are one more packed
/// word row. A gate update touches only the planes of its operand qubits
/// and processes 64 tableau rows per word operation — H swaps two plane
/// ranges, S/CX are XOR/AND sweeps, SWAP exchanges plane ranges outright,
/// and X/Y/Z reduce to sign-word XORs — instead of per-row bit twiddling
/// over `vector<vector<bool>>` proxy references.
class Tableau {
 public:
  /// Identity tableau (destabilizer i = X_i, stabilizer i = Z_i).
  explicit Tableau(int num_qubits);

  [[nodiscard]] int num_qubits() const { return n_; }

  // Primitive generators (Aaronson-Gottesman update rules), word-wide.
  void apply_h(int q);
  void apply_s(int q);
  void apply_cx(int control, int target);

  // Composites. SWAP exchanges the operand planes; X/Y/Z only flip signs;
  // Sdg has a closed-form sign sweep; the rest compose the primitives
  // (each already word-wide).
  void apply_sdg(int q);
  void apply_x(int q);
  void apply_y(int q);
  void apply_z(int q);
  void apply_sx(int q);
  void apply_sxdg(int q);
  void apply_cz(int a, int b);
  void apply_cy(int control, int target);
  void apply_swap(int a, int b);
  void apply_iswap(int a, int b);
  void apply_ecr(int a, int b);

  /// Applies any Clifford operation; returns false (tableau unchanged) if
  /// the operation is not Clifford.
  [[nodiscard]] bool apply(const ir::Operation& op);

  /// Builds the tableau of a circuit. Returns std::nullopt if any gate is
  /// not Clifford (rotation gates at multiples of pi/2 count as Clifford).
  [[nodiscard]] static std::optional<Tableau> from_circuit(
      const ir::Circuit& circuit);

  /// Synthesises a circuit implementing this tableau (up to global phase)
  /// using {H, S, Sdg, SX, X, Z, CX, CZ} — O(n^2) gates via symplectic
  /// Gaussian elimination.
  [[nodiscard]] ir::Circuit to_circuit() const;

  [[nodiscard]] bool operator==(const Tableau& rhs) const;

  // Single-bit accessors (row < n: destabilizer, row >= n: stabilizer).
  [[nodiscard]] bool x(int row, int col) const {
    return bit(xb_, col, row);
  }
  [[nodiscard]] bool z(int row, int col) const {
    return bit(zb_, col, row);
  }
  [[nodiscard]] bool r(int row) const {
    return (rb_[static_cast<std::size_t>(row) / 64] >>
            (static_cast<std::size_t>(row) % 64)) &
           1U;
  }

  // ---- Word-level views -------------------------------------------------
  // One plane = ceil(2n/64) words; bit j of word w covers tableau row
  // 64*w + j. Trailing pad bits (rows >= 2n) are always zero, so callers
  // may OR/AND/popcount whole planes without masking.

  /// Words per plane (= words of the sign row).
  [[nodiscard]] int num_words() const { return words_; }

  /// The packed x components of every row on qubit `col`.
  [[nodiscard]] std::span<const std::uint64_t> x_plane(int col) const {
    return {xb_.data() + static_cast<std::size_t>(col) * words_u(),
            words_u()};
  }
  /// The packed z components of every row on qubit `col`.
  [[nodiscard]] std::span<const std::uint64_t> z_plane(int col) const {
    return {zb_.data() + static_cast<std::size_t>(col) * words_u(),
            words_u()};
  }
  /// The packed sign bits of every row.
  [[nodiscard]] std::span<const std::uint64_t> signs() const {
    return {rb_.data(), words_u()};
  }

 private:
  [[nodiscard]] std::size_t words_u() const {
    return static_cast<std::size_t>(words_);
  }
  [[nodiscard]] std::uint64_t* plane(std::vector<std::uint64_t>& planes,
                                     int col) {
    return planes.data() + static_cast<std::size_t>(col) * words_u();
  }
  [[nodiscard]] bool bit(const std::vector<std::uint64_t>& planes, int col,
                         int row) const {
    const std::uint64_t w =
        planes[static_cast<std::size_t>(col) * words_u() +
               static_cast<std::size_t>(row) / 64];
    return (w >> (static_cast<std::size_t>(row) % 64)) & 1U;
  }

  int n_;
  int words_;  ///< words per plane: ceil(2n / 64)
  // Concatenated per-qubit planes: plane q occupies words [q*words_,
  // (q+1)*words_).
  std::vector<std::uint64_t> xb_;
  std::vector<std::uint64_t> zb_;
  std::vector<std::uint64_t> rb_;  ///< packed sign row
};

/// If `op` is Clifford (including rotations at multiples of pi/2), returns
/// an equivalent sequence of primitive Clifford gates from
/// {H, S, Sdg, X, Y, Z, SX, SXdg, CX, CZ, SWAP} (up to global phase).
/// Otherwise std::nullopt.
[[nodiscard]] std::optional<std::vector<ir::Operation>> as_clifford_ops(
    const ir::Operation& op);

/// True if the whole circuit is Clifford (per as_clifford_ops).
[[nodiscard]] bool is_clifford_circuit(const ir::Circuit& circuit);

}  // namespace qrc::clifford
