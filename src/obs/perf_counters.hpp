/// \file perf_counters.hpp
/// \brief Per-kernel hardware counters via raw `perf_event_open`:
///        cycles, instructions, cache misses and branch misses, read as
///        one event group per thread and accumulated into process-global
///        per-kernel totals. Scrape-time publication derives IPC and
///        miss rates as `qrc_profile_*` metric families.
///
/// Availability is probed once per process: containers and locked-down
/// runners (perf_event_paranoid, seccomp) commonly refuse the syscall,
/// in which case every PerfScope degrades to a clean no-op and
/// `qrc_profile_perf_available` reports 0. The runtime kill switch
/// (`set_perf_enabled`) costs one predictable branch when off, mirroring
/// obs::detail_enabled().
#pragma once

#include <cstdint>
#include <string_view>

namespace qrc::obs {

class MetricsRegistry;

/// The instrumented kernels: the three dominant compute loops plus the
/// three verifier tiers.
enum class PerfKernel : std::uint8_t {
  kMlpForward = 0,     ///< policy MLP forward_batch (rollout + search leaves)
  kTableauSweep = 1,   ///< Clifford tableau construction sweeps
  kSearchExpand = 2,   ///< beam/search frontier expansion stepping
  kVerifyClifford = 3, ///< verify tier 1: Clifford/Pauli-flow
  kVerifyMiter = 4,    ///< verify tier 2: alternating miter
  kVerifyStimuli = 5,  ///< verify tier 3: random stimuli
  kCount = 6,
};

[[nodiscard]] std::string_view perf_kernel_name(PerfKernel kernel);

/// Runtime kill switch (default off — scopes cost one branch until a
/// surface opts in via --profile / serve startup).
[[nodiscard]] bool perf_enabled();
void set_perf_enabled(bool on);

/// True once the first scope successfully opened an event group; false
/// after the probe failed (EPERM/ENOSYS/...). Unknown until first use.
[[nodiscard]] bool perf_available();

/// Cumulative per-kernel totals since process start (or reset).
struct PerfKernelTotals {
  std::uint64_t scopes = 0;        ///< completed PerfScope sections
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_refs = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branches = 0;
  std::uint64_t branch_misses = 0;
};

[[nodiscard]] PerfKernelTotals perf_kernel_totals(PerfKernel kernel);

/// Zeroes all per-kernel totals (tests).
void reset_perf_totals();

/// RAII section: snapshots the calling thread's counter group on entry
/// and accumulates the delta into `kernel`'s totals on exit. One branch
/// when perf_enabled() is off; a clean no-op when the syscall is
/// unavailable on this host.
class PerfScope {
 public:
  explicit PerfScope(PerfKernel kernel);
  ~PerfScope();
  PerfScope(const PerfScope&) = delete;
  PerfScope& operator=(const PerfScope&) = delete;

 private:
  PerfKernel kernel_;
  bool armed_ = false;
  std::uint64_t begin_[6] = {};
};

/// Publishes `qrc_profile_*` families into `registry` from the current
/// totals: raw gauges per kernel (cycles, instructions, cache/branch
/// misses, scopes), derived FloatGauges (ipc, cache_miss_rate,
/// branch_miss_rate), and `qrc_profile_perf_available`. Called at scrape
/// time so the registry always reflects the latest totals.
void publish_perf_metrics(MetricsRegistry& registry);

}  // namespace qrc::obs
