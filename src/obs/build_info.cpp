#include "obs/build_info.hpp"

#include "obs/metrics.hpp"

// QRC_GIT_SHA and QRC_BUILD_TYPE are stamped by CMake on this TU only
// (set_source_files_properties), so a new commit rebuilds one file.
#ifndef QRC_GIT_SHA
#define QRC_GIT_SHA "unknown"
#endif
#ifndef QRC_BUILD_TYPE
#define QRC_BUILD_TYPE "unknown"
#endif

namespace qrc::obs {

namespace {

#define QRC_STR_INNER(x) #x
#define QRC_STR(x) QRC_STR_INNER(x)

constexpr std::string_view compiler_string() {
#if defined(__clang__)
  return "clang " QRC_STR(__clang_major__) "." QRC_STR(
      __clang_minor__) "." QRC_STR(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc " QRC_STR(__GNUC__) "." QRC_STR(__GNUC_MINOR__) "." QRC_STR(
      __GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

constexpr std::string_view cxx_standard_string() {
#if __cplusplus >= 202302L
  return "c++23";
#elif __cplusplus >= 202002L
  return "c++20";
#elif __cplusplus >= 201703L
  return "c++17";
#else
  return "pre-c++17";
#endif
}

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info{
      .git_sha = QRC_GIT_SHA,
      .build_type = QRC_BUILD_TYPE,
      .compiler = compiler_string(),
      .cxx_standard = cxx_standard_string(),
  };
  return info;
}

std::string build_info_line(std::string_view simd_kernel) {
  const BuildInfo& info = build_info();
  std::string out = "qrc ";
  out += info.git_sha;
  out += " (";
  out += info.build_type;
  out += ", ";
  out += info.compiler;
  out += ", ";
  out += info.cxx_standard;
  out += ", simd=";
  out += simd_kernel;
  out += ')';
  return out;
}

void stamp_build_info(MetricsRegistry& registry,
                      std::string_view simd_kernel) {
  const BuildInfo& info = build_info();
  registry
      .gauge("qrc_build_info",
             "Build identity as labels; the value is always 1.",
             {{"git_sha", std::string(info.git_sha)},
              {"build_type", std::string(info.build_type)},
              {"compiler", std::string(info.compiler)},
              {"simd_kernel", std::string(simd_kernel)}})
      .set(1);
}

}  // namespace qrc::obs
