/// \file process_stats.hpp
/// \brief Process self-metrics (`qrc_process_*`): resident set size,
///        user/system CPU time, open file descriptors and uptime,
///        sourced from /proc/self on Linux with a getrusage/steady-clock
///        fallback elsewhere. Sampled at scrape time — the values are
///        cheap point reads, so no background collector thread exists.
#pragma once

namespace qrc::obs {

class MetricsRegistry;

/// One point-in-time sample. Fields that could not be measured on this
/// platform are negative (and their gauges publish -1).
struct ProcessStats {
  long long rss_bytes = -1;     ///< resident set size
  double user_cpu_seconds = -1; ///< cumulative user-mode CPU time
  double sys_cpu_seconds = -1;  ///< cumulative kernel-mode CPU time
  long long open_fds = -1;      ///< currently open descriptors
  double uptime_seconds = -1;   ///< wall time since process start
};

[[nodiscard]] ProcessStats sample_process_stats();

/// Publishes the sample as `qrc_process_*` gauges into `registry`.
void publish_process_metrics(MetricsRegistry& registry);

}  // namespace qrc::obs
