/// \file flight_recorder.hpp
/// \brief Lock-free bounded ring of recent notable events (request
///        summaries, sheds, typed errors, verify refutations, deadline
///        hits) for post-mortem debugging. The ring is always armed and
///        cheap enough to leave on: recording is a seqlock-style slot
///        write with no allocation and no locks, so it is safe from the
///        service worker threads and the net event loop alike.
///
/// Dump paths, most to least exceptional:
///   - SIGQUIT (install_sigquit_dump): async-signal-context dump using
///     only snprintf + write(2) onto a pre-chosen fd.
///   - Any verify refutation (CompileService::count_verdict) dumps
///     automatically so the evidence isn't overwritten by later traffic.
///   - On demand: the v1 `"op":"debug_dump"` frame and `GET /debugz`
///     serialise a snapshot as JSON.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace qrc::obs {

enum class FlightEventKind : std::uint8_t {
  kLifecycle = 0,   ///< startup/shutdown/drain transitions
  kRequest = 1,     ///< one served request, summarised
  kShed = 2,        ///< admission rejected under overload
  kError = 3,       ///< typed service/protocol error
  kRefutation = 4,  ///< verifier refuted an optimised circuit
  kDeadlineHit = 5, ///< search stopped by its deadline
};

[[nodiscard]] std::string_view flight_event_kind_name(FlightEventKind kind);

/// One recorded event. Fixed-size payload so slots can be written without
/// allocation (and read from a signal handler).
struct FlightEvent {
  std::uint64_t seq = 0;      ///< global record order, starts at 1
  std::int64_t wall_us = 0;   ///< CLOCK_REALTIME microseconds
  FlightEventKind kind = FlightEventKind::kLifecycle;
  char tag[24] = {};          ///< subsystem, e.g. "service", "net"
  char detail[96] = {};       ///< one-line human summary, truncated
};

/// Fixed-capacity lock-free event ring. Writers claim a slot with one
/// fetch_add and publish with a seqlock marker; readers skip slots that
/// are mid-write or were overwritten during the read. Honors the
/// obs::enabled() kill switch (so bench_obs_overhead's floor measurement
/// covers it too).
class FlightRecorder {
 public:
  static constexpr std::size_t kCapacity = 256;

  /// Process-wide instance — the signal handler has to reach it.
  [[nodiscard]] static FlightRecorder& instance();

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void record(FlightEventKind kind, std::string_view tag,
              std::string_view detail);

  /// Consistent copies of the retained events, oldest first. Slots being
  /// overwritten concurrently are skipped, so the result may be shorter
  /// than the number of retained events.
  [[nodiscard]] std::vector<FlightEvent> snapshot() const;

  /// Snapshot rendered as a JSON array (for /debugz and debug_dump).
  [[nodiscard]] std::string dump_json() const;

  /// Writes a human-readable dump to `fd` using only snprintf and
  /// write(2) — callable from a signal handler.
  void dump(int fd) const;

  /// Total events ever recorded (also the latest seq).
  [[nodiscard]] std::uint64_t total() const {
    return next_seq_.load(std::memory_order_relaxed);
  }

  /// Drops all retained events (tests).
  void clear();

 private:
  struct Slot {
    /// 0 = empty, odd = write in progress, even = seq*2 of the resident
    /// event. Readers reject a slot whose marker changed mid-copy.
    std::atomic<std::uint64_t> marker{0};
    FlightEvent event;
  };

  std::atomic<std::uint64_t> next_seq_{0};
  Slot slots_[kCapacity];
};

/// Installs a SIGQUIT handler that dumps FlightRecorder::instance() to
/// `fd` (default stderr). Last call wins; the previous disposition is
/// replaced.
void install_sigquit_dump(int fd = 2);

}  // namespace qrc::obs
