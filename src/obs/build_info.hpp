/// \file build_info.hpp
/// \brief Identifies the running build: git SHA and build type (stamped
///        by CMake as compile definitions on this one TU), compiler
///        version, and C++ standard. Exposed three ways so every surface
///        agrees on what binary is running: the `qrc_build_info` info
///        gauge on /metrics, the serve startup log line, and the `meta`
///        block in BENCH_*.json files.
#pragma once

#include <string>
#include <string_view>

namespace qrc::obs {

class MetricsRegistry;

struct BuildInfo {
  std::string_view git_sha;     ///< short SHA, or "unknown" outside git
  std::string_view build_type;  ///< CMAKE_BUILD_TYPE, or "unknown"
  std::string_view compiler;    ///< e.g. "gcc 13.2.0"
  std::string_view cxx_standard;  ///< e.g. "c++20"
};

[[nodiscard]] const BuildInfo& build_info();

/// One-line human summary including the active SIMD kernel, for startup
/// logs: "qrc <sha> (<build_type>, <compiler>, <std>, simd=<kernel>)".
/// The kernel is passed in so obs does not depend on rl.
[[nodiscard]] std::string build_info_line(std::string_view simd_kernel);

/// Registers the Prometheus info-gauge idiom: a constant-1 gauge whose
/// labels carry the build identity.
///   qrc_build_info{git_sha="...",build_type="...",compiler="...",
///                  simd_kernel="..."} 1
void stamp_build_info(MetricsRegistry& registry,
                      std::string_view simd_kernel);

}  // namespace qrc::obs
