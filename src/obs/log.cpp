#include "obs/log.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

namespace qrc::obs {

namespace {

/// Wall clock in milliseconds (rate-limit windows) and a formatted UTC
/// timestamp for line prefixes.
std::int64_t wall_ms() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

void format_timestamp(char* buf, std::size_t n) {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  tm tm_utc{};
  gmtime_r(&ts.tv_sec, &tm_utc);
  const auto ms = static_cast<int>(ts.tv_nsec / 1000000);
  std::snprintf(buf, n, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec, ms);
}

/// Minimal JSON string escaping (obs stays dependency-free; this mirrors
/// service::json_quote without pulling service into obs).
void append_json_escaped(std::string& out, std::string_view v) {
  for (const char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void write_all(int fd, std::string_view line) {
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd, line.data() + off, line.size() - off);
    if (n <= 0) return;  // sink gone; drop silently, the ring still has it
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

std::optional<LogLevel> parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off" || name == "none") return LogLevel::kOff;
  return std::nullopt;
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::configure_from_env() {
  if (const char* level = std::getenv("QRC_LOG")) {
    if (const auto parsed = parse_log_level(level)) set_level(*parsed);
  }
  if (const char* json = std::getenv("QRC_LOG_JSON")) {
    set_json(json[0] != '\0' && json[0] != '0');
  }
}

bool Logger::log(LogLevel level, std::string_view tag,
                 std::string_view message) {
  if (!should_log(level)) return false;

  char stamp[40];
  format_timestamp(stamp, sizeof(stamp));

  std::string line;
  line.reserve(64 + tag.size() + message.size());
  if (json_.load(std::memory_order_relaxed)) {
    line += "{\"ts\":\"";
    line += stamp;
    line += "\",\"level\":\"";
    line += log_level_name(level);
    line += "\",\"tag\":\"";
    append_json_escaped(line, tag);
    line += "\",\"msg\":\"";
    append_json_escaped(line, message);
    line += "\"}\n";
  } else {
    line += stamp;
    line += ' ';
    line += log_level_name(level);
    line += " [";
    line += tag;
    line += "] ";
    line += message;
    line += '\n';
  }

  const int fd = sink_fd_.load(std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (fd >= 0) write_all(fd, line);
    ring_.push_back(line.substr(0, line.size() - 1));  // ring stores no '\n'
    if (ring_.size() > kRingCapacity) ring_.pop_front();
  }
  emitted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool Logger::logf(LogLevel level, std::string_view tag, const char* fmt,
                  ...) {
  if (!should_log(level)) return false;
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return log(level, tag, buf);
}

bool Logger::log_rate_limited(LogLevel level, std::string_view tag,
                              std::string_view key, int max_per_sec,
                              std::string_view message) {
  if (!should_log(level)) return false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    std::string bucket_key;
    bucket_key.reserve(tag.size() + 1 + key.size());
    bucket_key.append(tag);
    bucket_key += '/';
    bucket_key.append(key);
    RateBucket& bucket = buckets_[bucket_key];
    const std::int64_t now = wall_ms();
    if (now - bucket.window_start_ms >= 1000) {
      bucket.window_start_ms = now;
      bucket.count = 0;
    }
    if (bucket.count >= max_per_sec) {
      rate_limited_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    ++bucket.count;
  }
  return log(level, tag, message);
}

std::vector<std::string> Logger::recent(std::size_t n) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::size_t take = std::min(n, ring_.size());
  return {ring_.end() - static_cast<std::ptrdiff_t>(take), ring_.end()};
}

void Logger::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  buckets_.clear();
}

}  // namespace qrc::obs
