#include "obs/bench_diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

// Reuses the strict JSON parser from the serve codec. The obs layer
// otherwise sits below service/, but everything links into the one qrc
// library and only this .cpp (never the header) reaches upward.
#include "service/jsonl.hpp"

namespace qrc::obs {
namespace {

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  if (n == 0) {
    return 0.0;
  }
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace

const char* diff_status_name(DiffStatus status) {
  switch (status) {
    case DiffStatus::kOk:
      return "ok";
    case DiffStatus::kImproved:
      return "improved";
    case DiffStatus::kRegressed:
      return "REGRESSED";
    case DiffStatus::kAdvisory:
      return "advisory";
    case DiffStatus::kNoBaseline:
      return "no-baseline";
  }
  return "?";
}

const std::vector<DiffRule>& default_diff_rules() {
  // rel_tol absorbs shared-runner noise (throughput benches swing ~15%
  // run to run on hosted CI); abs_tol keeps near-zero baselines from
  // turning noise into infinite relative changes.
  static const std::vector<DiffRule> kRules = {
      {"service_throughput", "requests_per_sec", true, 0.25, 5.0},
      {"service_throughput", "p50_latency_us", false, 0.30, 200.0},
      {"service_throughput", "p99_latency_us", false, 0.40, 500.0},
      {"service_throughput", "cache_hit_rate", true, 0.10, 0.05},
      {"rollout_throughput", "forward_batch_obs_per_sec", true, 0.25, 100.0},
      {"rollout_throughput", "forward_batch_speedup", true, 0.20, 0.15},
      {"verify_throughput", "clifford_checks_per_sec", true, 0.25, 5.0},
      {"verify_throughput", "miter_checks_per_sec", true, 0.25, 1.0},
      {"verify_throughput", "stimuli_checks_per_sec", true, 0.25, 1.0},
      {"search_quality", "reward_delta_vs_greedy", true, 0.50, 0.02},
      {"search_quality", "nodes_per_sec", true, 0.25, 50.0},
      {"kernels", "mlp_simd_speedup", true, 0.20, 0.15},
      {"kernels", "tableau_bitplane_speedup", true, 0.20, 0.15},
      {"kernels", "expansion_cow_speedup", true, 0.20, 0.15},
      {"obs_overhead", "overhead_on_pct", false, 0.50, 2.0},
      {"obs_overhead", "overhead_log_pct", false, 0.50, 2.0},
      {"obs_overhead", "overhead_detail_pct", false, 0.50, 2.0},
      {"obs_overhead", "overhead_profile_pct", false, 0.50, 2.5},
      {"serve_scale", "peak_requests_per_sec", true, 0.25, 5.0},
  };
  return kRules;
}

BenchMetrics extract_bench_metrics(const std::string& json_text,
                                   std::string& bench_name) {
  BenchMetrics metrics;
  bench_name.clear();
  const service::JsonValue doc = service::JsonValue::parse(json_text);
  if (!doc.is_object()) {
    return metrics;
  }
  const auto& obj = doc.as_object();
  const auto bench_it = obj.find("bench");
  if (bench_it != obj.end() && bench_it->second.is_string()) {
    bench_name = bench_it->second.as_string();
  }
  for (const auto& [key, value] : obj) {
    if (value.is_number()) {
      metrics[key] = value.as_number();
    }
  }
  // serve_scale publishes a sweep array; history records its peak row.
  const auto sweep_it = obj.find("sweep");
  if (bench_name == "serve_scale" && sweep_it != obj.end() &&
      sweep_it->second.is_array()) {
    double peak_rps = -1.0;
    double peak_conns = 0.0;
    for (const auto& point : sweep_it->second.as_array()) {
      if (!point.is_object()) {
        continue;
      }
      const auto& p = point.as_object();
      const auto rps = p.find("requests_per_sec");
      if (rps == p.end() || !rps->second.is_number()) {
        continue;
      }
      if (rps->second.as_number() > peak_rps) {
        peak_rps = rps->second.as_number();
        const auto conns = p.find("connections");
        peak_conns = conns != p.end() && conns->second.is_number()
                         ? conns->second.as_number()
                         : 0.0;
      }
    }
    if (peak_rps >= 0.0) {
      metrics["peak_requests_per_sec"] = peak_rps;
      metrics["peak_connections"] = peak_conns;
    }
  }
  return metrics;
}

DiffReport diff_benches(const std::string& history_jsonl,
                        const std::map<std::string, BenchMetrics>& current,
                        int min_history, int window) {
  DiffReport report;
  report.min_history = min_history;

  // bench -> key -> values, oldest first (file order == append order).
  std::map<std::string, std::map<std::string, std::vector<double>>> history;
  std::size_t pos = 0;
  while (pos < history_jsonl.size()) {
    std::size_t end = history_jsonl.find('\n', pos);
    if (end == std::string::npos) {
      end = history_jsonl.size();
    }
    const std::string line = history_jsonl.substr(pos, end - pos);
    pos = end + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    try {
      const service::JsonValue row = service::JsonValue::parse(line);
      if (!row.is_object()) {
        continue;
      }
      const auto& obj = row.as_object();
      const auto bench_it = obj.find("bench");
      if (bench_it == obj.end() || !bench_it->second.is_string()) {
        continue;
      }
      ++report.history_rows;
      auto& per_key = history[bench_it->second.as_string()];
      for (const auto& [key, value] : obj) {
        if (value.is_number()) {
          per_key[key].push_back(value.as_number());
        }
      }
    } catch (const std::exception&) {
      continue;  // a corrupt line must not brick the gate
    }
  }

  for (const DiffRule& rule : default_diff_rules()) {
    const auto bench_it = current.find(rule.bench);
    if (bench_it == current.end()) {
      continue;  // this bench didn't run — nothing to judge
    }
    const auto metric_it = bench_it->second.find(rule.key);
    if (metric_it == bench_it->second.end()) {
      continue;
    }
    DiffResult r;
    r.bench = rule.bench;
    r.key = rule.key;
    r.current = metric_it->second;

    const auto hist_bench = history.find(rule.bench);
    std::vector<double> values;
    if (hist_bench != history.end()) {
      const auto hist_key = hist_bench->second.find(rule.key);
      if (hist_key != hist_bench->second.end()) {
        values = hist_key->second;
      }
    }
    r.history_n = static_cast<int>(values.size());
    if (values.empty()) {
      r.status = DiffStatus::kNoBaseline;
      report.results.push_back(std::move(r));
      continue;
    }
    if (static_cast<int>(values.size()) > window) {
      values.erase(values.begin(),
                   values.end() - static_cast<std::ptrdiff_t>(window));
    }
    r.baseline = median(std::move(values));
    r.change_pct = r.baseline != 0.0
                       ? 100.0 * (r.current - r.baseline) / std::abs(r.baseline)
                       : 0.0;

    const double slack =
        std::max(rule.rel_tol * std::abs(r.baseline), rule.abs_tol);
    const double signed_delta = rule.higher_is_better
                                    ? r.current - r.baseline
                                    : r.baseline - r.current;
    if (signed_delta < -slack) {
      if (r.history_n >= min_history) {
        r.status = DiffStatus::kRegressed;
        report.regressed = true;
      } else {
        r.status = DiffStatus::kAdvisory;
        report.advisory = true;
      }
    } else if (signed_delta > slack) {
      r.status = DiffStatus::kImproved;
    } else {
      r.status = DiffStatus::kOk;
    }
    report.results.push_back(std::move(r));
  }
  return report;
}

std::string DiffReport::render() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-20s %-28s %12s %12s %8s %4s  %s\n",
                "bench", "metric", "current", "baseline", "change", "n",
                "status");
  out += buf;
  for (const DiffResult& r : results) {
    if (r.status == DiffStatus::kNoBaseline) {
      std::snprintf(buf, sizeof(buf), "%-20s %-28s %12.4g %12s %8s %4d  %s\n",
                    r.bench.c_str(), r.key.c_str(), r.current, "-", "-",
                    r.history_n, diff_status_name(r.status));
    } else {
      std::snprintf(buf, sizeof(buf),
                    "%-20s %-28s %12.4g %12.4g %+7.1f%% %4d  %s\n",
                    r.bench.c_str(), r.key.c_str(), r.current, r.baseline,
                    r.change_pct, r.history_n, diff_status_name(r.status));
    }
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "history rows: %d (gate at >=%d per metric) -> %s\n",
                history_rows, min_history,
                regressed ? "REGRESSION: fail"
                          : (advisory ? "advisory regressions only: pass"
                                      : "pass"));
  out += buf;
  return out;
}

}  // namespace qrc::obs
