/// \file bench_diff.hpp
/// \brief The bench regression sentinel: compares the current
///        `BENCH_*.json` metrics against rolling baselines derived from
///        `BENCH_history.jsonl` (the per-run rows CI appends) using
///        noise-aware thresholds — median-of-history baseline, a
///        per-metric direction + tolerance table, and an advisory mode
///        until enough history exists to gate on.
///
/// Library form so tests can drive it synthetically; `tools/qrc_bench_diff`
/// is the thin CLI that CI runs as the gate.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace qrc::obs {

enum class DiffStatus : unsigned char {
  kOk,          ///< within tolerance of the baseline
  kImproved,    ///< beyond tolerance in the good direction
  kRegressed,   ///< beyond tolerance in the bad direction
  kAdvisory,    ///< regressed, but history is too shallow to gate
  kNoBaseline,  ///< no (or not enough) history rows carry this metric
};

[[nodiscard]] const char* diff_status_name(DiffStatus status);

/// One tracked metric: where it lives, which way is good, and how much
/// run-to-run noise to absorb before calling a change real. A change
/// must clear BOTH the relative and the absolute tolerance to count.
struct DiffRule {
  const char* bench;
  const char* key;
  bool higher_is_better;
  double rel_tol;  ///< fraction of the baseline (0.25 = 25%)
  double abs_tol;  ///< absolute slack in the metric's own unit
};

/// The built-in table covering every metric CI appends to
/// BENCH_history.jsonl. Tolerances are sized for shared-runner noise.
[[nodiscard]] const std::vector<DiffRule>& default_diff_rules();

struct DiffResult {
  std::string bench;
  std::string key;
  DiffStatus status = DiffStatus::kNoBaseline;
  double current = 0.0;
  double baseline = 0.0;   ///< median of the history window
  double change_pct = 0.0; ///< signed, relative to baseline (0 if baseline=0)
  int history_n = 0;       ///< history rows that carried this metric
};

struct DiffReport {
  std::vector<DiffResult> results;
  int history_rows = 0;   ///< parsed history lines (malformed lines skipped)
  int min_history = 3;    ///< gate threshold the run was configured with
  bool regressed = false; ///< any metric regressed with enough history
  bool advisory = false;  ///< any regression observed below the threshold

  /// Fixed-width human table plus a one-line verdict.
  [[nodiscard]] std::string render() const;
};

/// Numeric metrics of one bench run, keyed by metric name.
using BenchMetrics = std::map<std::string, double>;

/// Extracts the comparable metrics from one parsed BENCH_*.json document:
/// every top-level numeric field, plus the derived
/// `peak_requests_per_sec` / `peak_connections` for serve_scale sweeps
/// (matching what CI's history appender records). Returns the bench name
/// via `bench_name` ("" when the doc has no "bench" field).
[[nodiscard]] BenchMetrics extract_bench_metrics(const std::string& json_text,
                                                 std::string& bench_name);

/// Runs the sentinel: for each rule whose metric appears in `current`,
/// computes the median baseline from the newest `window` history rows of
/// that bench and classifies the change. Gate semantics: `regressed` is
/// only set once a metric has at least `min_history` history samples —
/// below that the same finding is `kAdvisory` (CI stays green on young
/// history). Unparseable history lines are skipped, not fatal.
[[nodiscard]] DiffReport diff_benches(
    const std::string& history_jsonl,
    const std::map<std::string, BenchMetrics>& current, int min_history = 3,
    int window = 10);

}  // namespace qrc::obs
