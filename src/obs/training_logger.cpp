#include "obs/training_logger.hpp"

#include <cmath>

namespace qrc::obs {

namespace {

/// Same numeric rendering policy as the Prometheus exposition: integers
/// bare, everything else with enough digits to round-trip. NaN/Inf are
/// not valid JSON, so they degrade to null.
void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[64];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
}

}  // namespace

TrainingLogger::TrainingLogger(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "w");
}

TrainingLogger::~TrainingLogger() {
  if (file_ != nullptr) std::fclose(file_);
}

void TrainingLogger::write(
    const std::vector<std::pair<std::string, double>>& fields) {
  if (file_ == nullptr) return;
  std::string line;
  line.reserve(32 * fields.size());
  line += '{';
  bool first = true;
  for (const auto& [key, value] : fields) {
    if (!first) line += ',';
    first = false;
    line += '"';
    line += key;  // field names are code-controlled identifiers
    line += "\":";
    append_number(line, value);
  }
  line += "}\n";
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
  ++records_;
}

}  // namespace qrc::obs
