/// \file trace.hpp
/// \brief Per-request tracing: a TraceContext allocated at frame decode
///        carries a request id through lanes, the batched rollout core,
///        search, and verify dispatch, recording scoped spans into a
///        bounded buffer renderable as a JSON span tree.
///
/// Two instrumentation tiers:
///  - Coarse spans (queue wait, batch, rollout, search, verify) are
///    recorded whenever a request asked for a trace; their cost is a
///    handful of clock reads per request.
///  - Detail spans (per-step policy forward / env step, search leaf
///    evaluation) ride behind the QRC_OBS_DETAIL env knob via DetailTimer,
///    whose disabled cost is exactly one branch.
///
/// Threading: a TraceContext is internally locked, so lane threads and
/// pool workers may append concurrently. The thread-local `current()`
/// pointer makes a context ambient for code (rollout core, search engine)
/// that has no request plumbing of its own.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace qrc::obs {

/// Detail-span switch: initialized from the QRC_OBS_DETAIL env var
/// (unset/"0" = off), overridable at runtime.
[[nodiscard]] bool detail_enabled();
void set_detail_enabled(bool on);

class TraceContext {
 public:
  /// Span id of "no parent" (a root span).
  static constexpr int kNoParent = -1;
  /// Pseudo-id returned when the span buffer is full; all operations on
  /// it are no-ops and the drop is counted.
  static constexpr int kDropped = -2;
  static constexpr std::size_t kDefaultMaxSpans = 512;

  explicit TraceContext(std::string request_id,
                        std::size_t max_spans = kDefaultMaxSpans);
  /// Epoch override: span start times are reported relative to `epoch`
  /// (the server uses the frame-decode instant).
  TraceContext(std::string request_id,
               std::chrono::steady_clock::time_point epoch,
               std::size_t max_spans = kDefaultMaxSpans);

  [[nodiscard]] const std::string& request_id() const { return request_id_; }
  [[nodiscard]] std::chrono::steady_clock::time_point epoch() const {
    return epoch_;
  }
  /// Microseconds from the context epoch to `tp` (clamped at 0).
  [[nodiscard]] std::int64_t since_epoch_us(
      std::chrono::steady_clock::time_point tp) const;
  [[nodiscard]] std::int64_t now_us() const;

  /// Opens a span starting now under the ambient parent; returns its id
  /// (or kDropped when the buffer is full).
  int begin_span(std::string_view name);
  int begin_span(std::string_view name, int parent);
  void end_span(int id);
  /// Records an already-timed span (start/duration in epoch-relative us).
  int add_span(std::string_view name, int parent, std::int64_t start_us,
               std::int64_t duration_us);

  void attr(int id, std::string_view key, std::string_view value);
  void attr(int id, std::string_view key, const char* value);
  void attr(int id, std::string_view key, std::int64_t value);
  void attr(int id, std::string_view key, std::uint64_t value);
  void attr(int id, std::string_view key, int value);
  void attr(int id, std::string_view key, double value);
  void attr(int id, std::string_view key, bool value);

  /// Default parent for begin_span(name) — lets a caller hang all
  /// subsequently recorded spans under e.g. the request's root span.
  void set_ambient_parent(int id);
  [[nodiscard]] int ambient_parent() const;

  /// Copies every span of `other` under `parent`, rebasing timestamps
  /// from `other`'s epoch onto this context's. Used to merge a batch-local
  /// detail collector into the per-request trace.
  void adopt(const TraceContext& other, int parent);

  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::size_t span_count() const;

  /// {"id":...,"dropped":N,"spans":[{name,start_us,duration_us,attrs,
  /// children}...]} — children nested, insertion-ordered.
  [[nodiscard]] std::string to_json() const;
  /// Human-readable indented tree for `qrc compile --trace`.
  [[nodiscard]] std::string to_text() const;

  /// Thread-local ambient context consumed by DetailTimer / AmbientSpan.
  [[nodiscard]] static TraceContext* current();
  static void set_current(TraceContext* ctx);

 private:
  struct Span {
    std::string name;
    int parent = kNoParent;
    std::int64_t start_us = 0;
    std::int64_t duration_us = -1;  // -1 while open
    // Attribute values are stored pre-rendered as JSON.
    std::vector<std::pair<std::string, std::string>> attrs;
  };

  void attr_json(int id, std::string_view key, std::string json_value);

  mutable std::mutex mu_;
  std::string request_id_;
  std::chrono::steady_clock::time_point epoch_;
  std::size_t max_spans_;
  std::vector<Span> spans_;
  std::uint64_t dropped_ = 0;
  int ambient_parent_ = kNoParent;
};

/// RAII span on an explicit context; no-op when `ctx` is null.
class ScopedSpan {
 public:
  ScopedSpan(TraceContext* ctx, std::string_view name)
      : ctx_(ctx), id_(ctx ? ctx->begin_span(name) : TraceContext::kDropped) {}
  ScopedSpan(TraceContext* ctx, std::string_view name, int parent)
      : ctx_(ctx),
        id_(ctx ? ctx->begin_span(name, parent) : TraceContext::kDropped) {}
  ~ScopedSpan() {
    if (ctx_ != nullptr) ctx_->end_span(id_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] TraceContext* context() const { return ctx_; }
  template <typename V>
  void attr(std::string_view key, V value) {
    if (ctx_ != nullptr) ctx_->attr(id_, key, value);
  }

 private:
  TraceContext* ctx_;
  int id_;
};

/// Coarse RAII span on the thread-ambient context; records only when a
/// trace is active on this thread (one TLS load + branch otherwise).
class AmbientSpan {
 public:
  explicit AmbientSpan(std::string_view name) : ctx_(TraceContext::current()) {
    if (ctx_ != nullptr) id_ = ctx_->begin_span(name);
  }
  ~AmbientSpan() {
    if (ctx_ != nullptr) ctx_->end_span(id_);
  }
  AmbientSpan(const AmbientSpan&) = delete;
  AmbientSpan& operator=(const AmbientSpan&) = delete;
  template <typename V>
  void attr(std::string_view key, V value) {
    if (ctx_ != nullptr) ctx_->attr(id_, key, value);
  }

 private:
  TraceContext* ctx_;
  int id_ = TraceContext::kDropped;
};

/// Hot-path profiling hook: compiles to a single branch when
/// QRC_OBS_DETAIL is off, and to an AmbientSpan when on.
class DetailTimer {
 public:
  explicit DetailTimer(const char* name) {
    if (!detail_enabled()) return;  // the one branch
    ctx_ = TraceContext::current();
    if (ctx_ != nullptr) id_ = ctx_->begin_span(name);
  }
  ~DetailTimer() {
    if (ctx_ != nullptr) ctx_->end_span(id_);
  }
  DetailTimer(const DetailTimer&) = delete;
  DetailTimer& operator=(const DetailTimer&) = delete;

 private:
  TraceContext* ctx_ = nullptr;
  int id_ = TraceContext::kDropped;
};

/// RAII setter for the thread-local current(), restoring the previous
/// context on scope exit.
class CurrentTraceScope {
 public:
  explicit CurrentTraceScope(TraceContext* ctx)
      : prev_(TraceContext::current()) {
    TraceContext::set_current(ctx);
  }
  ~CurrentTraceScope() { TraceContext::set_current(prev_); }
  CurrentTraceScope(const CurrentTraceScope&) = delete;
  CurrentTraceScope& operator=(const CurrentTraceScope&) = delete;

 private:
  TraceContext* prev_;
};

}  // namespace qrc::obs
