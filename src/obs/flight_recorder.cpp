#include "obs/flight_recorder.hpp"

#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>

#include "obs/metrics.hpp"

namespace qrc::obs {

namespace {

std::int64_t wall_us() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
}

/// Bounded copy into a fixed char field, always NUL-terminated.
template <std::size_t N>
void copy_field(char (&dst)[N], std::string_view src) {
  const std::size_t n = std::min(src.size(), N - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

void append_json_escaped(std::string& out, const char* v) {
  for (; *v != '\0'; ++v) {
    const char c = *v;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

int g_sigquit_fd = 2;

extern "C" void sigquit_dump_handler(int) {
  FlightRecorder::instance().dump(g_sigquit_fd);
}

}  // namespace

std::string_view flight_event_kind_name(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kLifecycle: return "lifecycle";
    case FlightEventKind::kRequest: return "request";
    case FlightEventKind::kShed: return "shed";
    case FlightEventKind::kError: return "error";
    case FlightEventKind::kRefutation: return "refutation";
    case FlightEventKind::kDeadlineHit: return "deadline_hit";
  }
  return "?";
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::record(FlightEventKind kind, std::string_view tag,
                            std::string_view detail) {
  if (!enabled()) return;
  const std::uint64_t seq =
      next_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& slot = slots_[(seq - 1) % kCapacity];
  // Seqlock publish: odd marker while the payload is in flux, even
  // (seq * 2) once the event is resident.
  slot.marker.store(seq * 2 - 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.event.seq = seq;
  slot.event.wall_us = wall_us();
  slot.event.kind = kind;
  copy_field(slot.event.tag, tag);
  copy_field(slot.event.detail, detail);
  slot.marker.store(seq * 2, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> out;
  out.reserve(kCapacity);
  for (const Slot& slot : slots_) {
    const std::uint64_t before = slot.marker.load(std::memory_order_acquire);
    if (before == 0 || (before & 1) != 0) continue;  // empty or mid-write
    FlightEvent copy = slot.event;
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t after = slot.marker.load(std::memory_order_relaxed);
    if (after != before) continue;  // overwritten during the copy
    out.push_back(copy);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::string FlightRecorder::dump_json() const {
  const std::vector<FlightEvent> events = snapshot();
  std::string out = "[";
  bool first = true;
  for (const FlightEvent& ev : events) {
    if (!first) out += ',';
    first = false;
    char head[96];
    std::snprintf(head, sizeof(head),
                  "{\"seq\":%llu,\"wall_us\":%lld,\"kind\":\"",
                  static_cast<unsigned long long>(ev.seq),
                  static_cast<long long>(ev.wall_us));
    out += head;
    out += flight_event_kind_name(ev.kind);
    out += "\",\"tag\":\"";
    append_json_escaped(out, ev.tag);
    out += "\",\"detail\":\"";
    append_json_escaped(out, ev.detail);
    out += "\"}";
  }
  out += ']';
  return out;
}

void FlightRecorder::dump(int fd) const {
  // Signal-handler path: fixed buffers, snprintf, write(2) — nothing else.
  char buf[256];
  int n = std::snprintf(buf, sizeof(buf),
                        "=== qrc flight recorder (%llu events total) ===\n",
                        static_cast<unsigned long long>(
                            next_seq_.load(std::memory_order_relaxed)));
  if (n > 0) (void)!::write(fd, buf, static_cast<std::size_t>(n));
  // Oldest-first: start just past the most recent slot and walk forward.
  const std::uint64_t total = next_seq_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kCapacity; ++i) {
    const std::size_t idx = (total + i) % kCapacity;
    const Slot& slot = slots_[idx];
    const std::uint64_t before = slot.marker.load(std::memory_order_acquire);
    if (before == 0 || (before & 1) != 0) continue;
    const FlightEvent& ev = slot.event;
    n = std::snprintf(buf, sizeof(buf), "#%llu +%lld.%06llds %s [%s] %s\n",
                      static_cast<unsigned long long>(ev.seq),
                      static_cast<long long>(ev.wall_us / 1000000),
                      static_cast<long long>(ev.wall_us % 1000000),
                      flight_event_kind_name(ev.kind).data(), ev.tag,
                      ev.detail);
    if (n > 0) (void)!::write(fd, buf, static_cast<std::size_t>(n));
  }
  n = std::snprintf(buf, sizeof(buf), "=== end flight recorder ===\n");
  if (n > 0) (void)!::write(fd, buf, static_cast<std::size_t>(n));
}

void FlightRecorder::clear() {
  for (Slot& slot : slots_) {
    slot.marker.store(0, std::memory_order_relaxed);
  }
  next_seq_.store(0, std::memory_order_relaxed);
}

void install_sigquit_dump(int fd) {
  g_sigquit_fd = fd;
  std::signal(SIGQUIT, sigquit_dump_handler);
}

}  // namespace qrc::obs
