#include "obs/trace.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace qrc::obs {

namespace {

// -1 = not yet initialized from the environment; 0/1 = resolved.
std::atomic<int> g_detail{-1};

thread_local TraceContext* t_current = nullptr;

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

bool detail_enabled() {
  int v = g_detail.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("QRC_OBS_DETAIL");
    v = (env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0'))
            ? 1
            : 0;
    g_detail.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void set_detail_enabled(bool on) {
  g_detail.store(on ? 1 : 0, std::memory_order_relaxed);
}

TraceContext* TraceContext::current() { return t_current; }
void TraceContext::set_current(TraceContext* ctx) { t_current = ctx; }

TraceContext::TraceContext(std::string request_id, std::size_t max_spans)
    : TraceContext(std::move(request_id), std::chrono::steady_clock::now(),
                   max_spans) {}

TraceContext::TraceContext(std::string request_id,
                           std::chrono::steady_clock::time_point epoch,
                           std::size_t max_spans)
    : request_id_(std::move(request_id)),
      epoch_(epoch),
      max_spans_(max_spans == 0 ? 1 : max_spans) {
  spans_.reserve(std::min<std::size_t>(max_spans_, 64));
}

std::int64_t TraceContext::since_epoch_us(
    std::chrono::steady_clock::time_point tp) const {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(tp - epoch_)
          .count();
  return us < 0 ? 0 : us;
}

std::int64_t TraceContext::now_us() const {
  return since_epoch_us(std::chrono::steady_clock::now());
}

int TraceContext::begin_span(std::string_view name) {
  const std::int64_t start = now_us();
  const std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return kDropped;
  }
  Span span;
  span.name = std::string(name);
  span.parent = ambient_parent_;
  span.start_us = start;
  spans_.push_back(std::move(span));
  return static_cast<int>(spans_.size()) - 1;
}

int TraceContext::begin_span(std::string_view name, int parent) {
  const std::int64_t start = now_us();
  const std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return kDropped;
  }
  Span span;
  span.name = std::string(name);
  span.parent = parent >= 0 ? parent : kNoParent;
  span.start_us = start;
  spans_.push_back(std::move(span));
  return static_cast<int>(spans_.size()) - 1;
}

void TraceContext::end_span(int id) {
  const std::int64_t end = now_us();
  const std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<std::size_t>(id) >= spans_.size()) return;
  Span& span = spans_[static_cast<std::size_t>(id)];
  if (span.duration_us < 0) {
    span.duration_us = end - span.start_us;
    if (span.duration_us < 0) span.duration_us = 0;
  }
}

int TraceContext::add_span(std::string_view name, int parent,
                           std::int64_t start_us, std::int64_t duration_us) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return kDropped;
  }
  Span span;
  span.name = std::string(name);
  span.parent = parent >= 0 ? parent : kNoParent;
  span.start_us = start_us < 0 ? 0 : start_us;
  span.duration_us = duration_us < 0 ? 0 : duration_us;
  spans_.push_back(std::move(span));
  return static_cast<int>(spans_.size()) - 1;
}

void TraceContext::attr_json(int id, std::string_view key,
                             std::string json_value) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<std::size_t>(id) >= spans_.size()) return;
  spans_[static_cast<std::size_t>(id)].attrs.emplace_back(
      std::string(key), std::move(json_value));
}

void TraceContext::attr(int id, std::string_view key, std::string_view value) {
  attr_json(id, key, json_escape(value));
}
void TraceContext::attr(int id, std::string_view key, const char* value) {
  attr_json(id, key, json_escape(value));
}
void TraceContext::attr(int id, std::string_view key, std::int64_t value) {
  attr_json(id, key, std::to_string(value));
}
void TraceContext::attr(int id, std::string_view key, std::uint64_t value) {
  attr_json(id, key, std::to_string(value));
}
void TraceContext::attr(int id, std::string_view key, int value) {
  attr_json(id, key, std::to_string(value));
}
void TraceContext::attr(int id, std::string_view key, double value) {
  attr_json(id, key, json_number(value));
}
void TraceContext::attr(int id, std::string_view key, bool value) {
  attr_json(id, key, value ? "true" : "false");
}

void TraceContext::set_ambient_parent(int id) {
  const std::lock_guard<std::mutex> lock(mu_);
  ambient_parent_ = id >= 0 ? id : kNoParent;
}

int TraceContext::ambient_parent() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return ambient_parent_;
}

void TraceContext::adopt(const TraceContext& other, int parent) {
  // Copy under other's lock first, then splice under ours: the two
  // contexts are never adopted into each other simultaneously.
  std::vector<Span> theirs;
  {
    const std::lock_guard<std::mutex> lock(other.mu_);
    theirs = other.spans_;
  }
  const std::int64_t offset = since_epoch_us(other.epoch_);
  const std::lock_guard<std::mutex> lock(mu_);
  const int base = static_cast<int>(spans_.size());
  for (Span span : theirs) {
    if (spans_.size() >= max_spans_) {
      ++dropped_;
      continue;
    }
    span.start_us += offset;
    span.parent =
        span.parent == kNoParent ? parent : span.parent + base;
    if (span.duration_us < 0) span.duration_us = 0;
    spans_.push_back(std::move(span));
  }
}

std::uint64_t TraceContext::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::size_t TraceContext::span_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::string TraceContext::to_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  // children[i] = indices whose parent is i; roots under index -1.
  std::vector<std::vector<int>> children(spans_.size());
  std::vector<int> roots;
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const int parent = spans_[i].parent;
    if (parent >= 0 && static_cast<std::size_t>(parent) < spans_.size() &&
        static_cast<std::size_t>(parent) != i) {
      children[static_cast<std::size_t>(parent)].push_back(
          static_cast<int>(i));
    } else {
      roots.push_back(static_cast<int>(i));
    }
  }
  std::string out;
  const auto render = [&](const auto& self, int idx) -> void {
    const Span& span = spans_[static_cast<std::size_t>(idx)];
    out += "{\"name\":" + json_escape(span.name);
    out += ",\"start_us\":" + std::to_string(span.start_us);
    out += ",\"duration_us\":" +
           std::to_string(span.duration_us < 0 ? 0 : span.duration_us);
    if (!span.attrs.empty()) {
      out += ",\"attrs\":{";
      bool first = true;
      for (const auto& [key, value] : span.attrs) {
        if (!first) out += ',';
        first = false;
        out += json_escape(key) + ":" + value;
      }
      out += '}';
    }
    const auto& kids = children[static_cast<std::size_t>(idx)];
    if (!kids.empty()) {
      out += ",\"children\":[";
      for (std::size_t k = 0; k < kids.size(); ++k) {
        if (k != 0) out += ',';
        self(self, kids[k]);
      }
      out += ']';
    }
    out += '}';
  };
  out += "{\"id\":" + json_escape(request_id_);
  out += ",\"dropped\":" + std::to_string(dropped_);
  out += ",\"spans\":[";
  for (std::size_t r = 0; r < roots.size(); ++r) {
    if (r != 0) out += ',';
    render(render, roots[r]);
  }
  out += "]}";
  return out;
}

std::string TraceContext::to_text() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::vector<int>> children(spans_.size());
  std::vector<int> roots;
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const int parent = spans_[i].parent;
    if (parent >= 0 && static_cast<std::size_t>(parent) < spans_.size() &&
        static_cast<std::size_t>(parent) != i) {
      children[static_cast<std::size_t>(parent)].push_back(
          static_cast<int>(i));
    } else {
      roots.push_back(static_cast<int>(i));
    }
  }
  std::string out;
  const auto render = [&](const auto& self, int idx, int depth) -> void {
    const Span& span = spans_[static_cast<std::size_t>(idx)];
    out.append(static_cast<std::size_t>(depth) * 2, ' ');
    out += span.name;
    out += " +" + std::to_string(span.start_us) + "us";
    out += " (" +
           std::to_string(span.duration_us < 0 ? 0 : span.duration_us) +
           "us)";
    for (const auto& [key, value] : span.attrs) {
      out += " " + key + "=" + value;
    }
    out += '\n';
    for (const int kid : children[static_cast<std::size_t>(idx)]) {
      self(self, kid, depth + 1);
    }
  };
  for (const int root : roots) {
    render(render, root, 0);
  }
  if (dropped_ > 0) {
    out += "(" + std::to_string(dropped_) + " span(s) dropped)\n";
  }
  return out;
}

}  // namespace qrc::obs
