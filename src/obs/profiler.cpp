#include "obs/profiler.hpp"

#include <cxxabi.h>
#include <dlfcn.h>
#include <pthread.h>
#include <signal.h>
#include <sys/time.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#if defined(__linux__)
#include <ucontext.h>
#endif

namespace qrc::obs {
namespace {

// ---------------------------------------------------------------------------
// Sample ring. Writers (the signal handler) claim a slot with one
// fetch_add and publish with an odd/even seqlock marker, exactly like
// FlightRecorder; the renderer rejects slots whose marker changed
// mid-copy, so rendering while a stale signal is still in flight is safe.

struct SampleSlot {
  std::atomic<std::uint64_t> marker{0};  // 0 empty, odd mid-write, even done
  std::uint16_t depth = 0;
  void* frames[Profiler::kMaxDepth] = {};
};

SampleSlot g_ring[Profiler::kCapacity];
std::atomic<std::uint64_t> g_write_pos{0};   // slots claimed this session
std::atomic<std::uint64_t> g_seq{0};         // marker sequence, never reset

std::atomic<bool> g_sampling{false};  // handler gate: true only mid-session
std::atomic<bool> g_busy{false};      // session exclusivity (start..stop)
std::atomic<bool> g_handler_installed{false};

std::atomic<std::uint64_t> g_sessions{0};
std::atomic<std::uint64_t> g_samples{0};
std::atomic<std::uint64_t> g_dropped{0};
std::atomic<std::uint64_t> g_pc_only{0};

// Per-thread stack bounds, cached outside signal context. Plain POD with
// zero-init so TLS access from the handler is a raw load (no lazy
// construction, no __tls_get_addr surprises in the main executable).
struct ThreadBounds {
  std::uintptr_t lo;
  std::uintptr_t hi;
  bool enrolled;
};

thread_local ThreadBounds t_bounds;

// ---------------------------------------------------------------------------
// Async-signal-safe capture.

struct RegSnapshot {
  std::uintptr_t pc = 0;
  std::uintptr_t fp = 0;
  std::uintptr_t sp = 0;
  bool ok = false;
};

RegSnapshot read_regs(void* uctx_raw) {
  RegSnapshot r;
#if defined(__linux__) && defined(__x86_64__)
  const auto* uc = static_cast<const ucontext_t*>(uctx_raw);
  r.pc = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  r.fp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
  r.sp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RSP]);
  r.ok = true;
#elif defined(__linux__) && defined(__aarch64__)
  const auto* uc = static_cast<const ucontext_t*>(uctx_raw);
  r.pc = static_cast<std::uintptr_t>(uc->uc_mcontext.pc);
  r.fp = static_cast<std::uintptr_t>(uc->uc_mcontext.regs[29]);
  r.sp = static_cast<std::uintptr_t>(uc->uc_mcontext.sp);
  r.ok = true;
#else
  (void)uctx_raw;
#endif
  return r;
}

// Under AddressSanitizer the stack is laced with poisoned redzones; a
// frame pointer that passed range validation but was repurposed by a
// leaf function could read one and fire a false positive. Sanitized
// builds therefore capture PC-only samples — the signal-safety tests
// still exercise the full handler path.
#if defined(__SANITIZE_ADDRESS__)
#define QRC_PROFILER_NO_FP_WALK 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define QRC_PROFILER_NO_FP_WALK 1
#endif
#endif

void sigprof_handler(int /*signo*/, siginfo_t* /*info*/, void* uctx_raw) {
  if (!g_sampling.load(std::memory_order_relaxed)) {
    return;  // stale delivery after stop(): drop on the floor
  }
  const RegSnapshot regs = read_regs(uctx_raw);
  if (!regs.ok || regs.pc == 0) {
    return;
  }

  void* frames[Profiler::kMaxDepth];
  std::size_t depth = 0;
  frames[depth++] = reinterpret_cast<void*>(regs.pc);

  const ThreadBounds bounds = t_bounds;
#if defined(QRC_PROFILER_NO_FP_WALK)
  const bool walk = false;
#else
  const bool walk = true;
#endif
  if (walk && bounds.enrolled && regs.fp != 0) {
    // Frame layout on x86-64 and aarch64 alike: [fp] = caller's fp,
    // [fp + 8] = return address. Every hop is validated (alignment,
    // inside this thread's stack, strictly growing toward the stack
    // base) before the dereference, so an interrupted leaf that
    // repurposed the fp register just terminates the walk early.
    std::uintptr_t fp = regs.fp;
    const std::uintptr_t lo =
        regs.sp >= bounds.lo && regs.sp < bounds.hi ? regs.sp : bounds.lo;
    while (depth < Profiler::kMaxDepth) {
      if (fp < lo || fp + 2 * sizeof(void*) > bounds.hi ||
          (fp & (sizeof(void*) - 1)) != 0) {
        break;
      }
      const auto* frame = reinterpret_cast<const std::uintptr_t*>(fp);
      const std::uintptr_t ret = frame[1];
      const std::uintptr_t next_fp = frame[0];
      if (ret == 0) {
        break;
      }
      frames[depth++] = reinterpret_cast<void*>(ret);
      if (next_fp <= fp) {
        break;  // chain must move strictly toward the stack base
      }
      fp = next_fp;
    }
    if (depth == 1) {
      g_pc_only.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    g_pc_only.fetch_add(1, std::memory_order_relaxed);
  }

  const std::uint64_t pos = g_write_pos.fetch_add(1, std::memory_order_relaxed);
  if (pos >= Profiler::kCapacity) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  SampleSlot& slot = g_ring[pos];
  const std::uint64_t seq = g_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  slot.marker.store(seq * 2 + 1, std::memory_order_release);  // odd: writing
  slot.depth = static_cast<std::uint16_t>(depth);
  for (std::size_t i = 0; i < depth; ++i) {
    slot.frames[i] = frames[i];
  }
  slot.marker.store(seq * 2 + 2, std::memory_order_release);  // even: done
  g_samples.fetch_add(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Symbolization (dump time only, normal context).

std::string symbolize(void* addr) {
  Dl_info info{};
  if (dladdr(addr, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    std::string name =
        (status == 0 && demangled != nullptr) ? demangled : info.dli_sname;
    std::free(demangled);
    // Folded format delimiters are ';' and ' '; scrub them from symbols.
    for (char& c : name) {
      if (c == ';' || c == ' ' || c == '\n') {
        c = '_';
      }
    }
    return name;
  }
  char buf[64];
  if (dladdr(addr, &info) != 0 && info.dli_fname != nullptr &&
      info.dli_fbase != nullptr) {
    const char* base = std::strrchr(info.dli_fname, '/');
    base = base != nullptr ? base + 1 : info.dli_fname;
    std::snprintf(buf, sizeof(buf), "%.32s+0x%zx", base,
                  reinterpret_cast<std::uintptr_t>(addr) -
                      reinterpret_cast<std::uintptr_t>(info.dli_fbase));
  } else {
    std::snprintf(buf, sizeof(buf), "0x%zx",
                  reinterpret_cast<std::uintptr_t>(addr));
  }
  return buf;
}

}  // namespace

void Profiler::enroll_current_thread() {
  if (t_bounds.enrolled) {
    return;
  }
#if defined(__linux__)
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* stack_addr = nullptr;
    std::size_t stack_size = 0;
    if (pthread_attr_getstack(&attr, &stack_addr, &stack_size) == 0 &&
        stack_addr != nullptr && stack_size > 0) {
      t_bounds.lo = reinterpret_cast<std::uintptr_t>(stack_addr);
      t_bounds.hi = t_bounds.lo + stack_size;
      t_bounds.enrolled = true;
    }
    pthread_attr_destroy(&attr);
  }
#endif
}

bool Profiler::start(int hz) {
  if (hz < kMinHz || hz > kMaxHz) {
    return false;
  }
  bool expected = false;
  if (!g_busy.compare_exchange_strong(expected, true,
                                      std::memory_order_acq_rel)) {
    return false;  // a session is already running
  }
  enroll_current_thread();

  // Fresh session: empty the ring so render_folded() covers exactly the
  // window between this start and the next stop.
  for (SampleSlot& slot : g_ring) {
    slot.marker.store(0, std::memory_order_relaxed);
  }
  g_write_pos.store(0, std::memory_order_relaxed);

  if (!g_handler_installed.load(std::memory_order_relaxed)) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = &sigprof_handler;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    if (sigaction(SIGPROF, &sa, nullptr) != 0) {
      g_busy.store(false, std::memory_order_release);
      return false;
    }
    g_handler_installed.store(true, std::memory_order_relaxed);
  }

  g_sampling.store(true, std::memory_order_release);

  itimerval timer{};
  const long interval_us = 1000000L / hz;
  timer.it_interval.tv_sec = interval_us / 1000000L;
  timer.it_interval.tv_usec = interval_us % 1000000L;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    g_sampling.store(false, std::memory_order_release);
    g_busy.store(false, std::memory_order_release);
    return false;
  }
  g_sessions.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Profiler::stop() {
  if (!g_busy.load(std::memory_order_acquire)) {
    return;
  }
  itimerval off{};
  setitimer(ITIMER_PROF, &off, nullptr);
  g_sampling.store(false, std::memory_order_release);
  g_busy.store(false, std::memory_order_release);
}

bool Profiler::active() { return g_busy.load(std::memory_order_acquire); }

std::optional<std::string> Profiler::collect_folded(double seconds, int hz) {
  if (!(seconds > 0.0) || seconds > kMaxSeconds) {
    return std::nullopt;
  }
  if (!start(hz)) {
    return std::nullopt;
  }
  // ITIMER_PROF counts CPU time, so an idle process yields few samples —
  // that is intended (the profile answers "where do cycles go").
  timespec ts;
  ts.tv_sec = static_cast<time_t>(seconds);
  ts.tv_nsec = static_cast<long>((seconds - static_cast<double>(ts.tv_sec)) *
                                 1e9);
  timespec rem{};
  while (nanosleep(&ts, &rem) != 0 && errno == EINTR) {
    ts = rem;  // SIGPROF interrupts the sleep; resume the remainder
  }
  stop();
  return render_folded();
}

std::string Profiler::render_folded() {
  const std::uint64_t claimed = g_write_pos.load(std::memory_order_acquire);
  const std::uint64_t used = claimed < kCapacity ? claimed : kCapacity;

  std::map<std::string, std::uint64_t> folded;
  std::map<void*, std::string> symbol_cache;
  const auto symbol_of = [&](void* addr) -> const std::string& {
    auto it = symbol_cache.find(addr);
    if (it == symbol_cache.end()) {
      it = symbol_cache.emplace(addr, symbolize(addr)).first;
    }
    return it->second;
  };

  for (std::uint64_t i = 0; i < used; ++i) {
    SampleSlot& slot = g_ring[i];
    const std::uint64_t before = slot.marker.load(std::memory_order_acquire);
    if (before == 0 || (before & 1) != 0) {
      continue;  // empty or mid-write
    }
    std::uint16_t depth = slot.depth;
    void* frames[kMaxDepth];
    if (depth > kMaxDepth) {
      continue;
    }
    for (std::uint16_t f = 0; f < depth; ++f) {
      frames[f] = slot.frames[f];
    }
    if (slot.marker.load(std::memory_order_acquire) != before) {
      continue;  // overwritten while copying
    }
    // Folded lines are caller-first, leaf-last. frames[0] is the leaf
    // PC; frames[1..] are return addresses, nudged back one byte so the
    // symbol is the call site's function, not whatever follows the call.
    std::string line;
    for (std::size_t f = depth; f-- > 0;) {
      void* addr = frames[f];
      if (f != 0) {
        addr = reinterpret_cast<void*>(
            reinterpret_cast<std::uintptr_t>(addr) - 1);
      }
      if (!line.empty()) {
        line += ';';
      }
      line += symbol_of(addr);
    }
    ++folded[line];
  }

  std::string out;
  for (const auto& [stack, count] : folded) {
    out += stack;
    out += ' ';
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(count));
    out += buf;
    out += '\n';
  }
  return out;
}

ProfilerStats Profiler::stats() {
  ProfilerStats s;
  s.sessions = g_sessions.load(std::memory_order_relaxed);
  s.samples = g_samples.load(std::memory_order_relaxed);
  s.dropped = g_dropped.load(std::memory_order_relaxed);
  s.pc_only = g_pc_only.load(std::memory_order_relaxed);
  const std::uint64_t claimed = g_write_pos.load(std::memory_order_relaxed);
  s.retained = claimed < kCapacity ? claimed : kCapacity;
  s.active = g_busy.load(std::memory_order_acquire);
  return s;
}

void Profiler::reset() {
  stop();
  for (SampleSlot& slot : g_ring) {
    slot.marker.store(0, std::memory_order_relaxed);
  }
  g_write_pos.store(0, std::memory_order_relaxed);
  g_sessions.store(0, std::memory_order_relaxed);
  g_samples.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
  g_pc_only.store(0, std::memory_order_relaxed);
}

}  // namespace qrc::obs
