#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace qrc::obs {

namespace {

std::atomic<bool> g_enabled{true};

/// Sorted copy of a label set (the registry keys series on sorted labels
/// so {a,b} and {b,a} name the same series).
Labels sorted(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

/// Prometheus label-value escaping: backslash, double quote, newline.
void append_escaped(std::string& out, const std::string& v) {
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

/// `{k1="v1",k2="v2"}`, or "" for the empty label set. `extra` appends one
/// more pair (used for the histogram `le` label).
std::string render_labels(const Labels& labels,
                          const std::pair<std::string, std::string>* extra) {
  if (labels.empty() && extra == nullptr) {
    return {};
  }
  std::string out = "{";
  bool first = true;
  const auto emit = [&](const std::string& k, const std::string& v) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    append_escaped(out, v);
    out += '"';
  };
  for (const auto& [k, v] : labels) emit(k, v);
  if (extra != nullptr) emit(extra->first, extra->second);
  out += '}';
  return out;
}

/// Shortest faithful rendering of a double: integers without a fraction,
/// everything else via %g with enough digits to round-trip.
std::string render_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

// ------------------------------------------------------------- FloatGauge ---

void FloatGauge::set(double v) {
  if (!enabled()) return;
  bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
}

double FloatGauge::value() const {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

// -------------------------------------------------------------- Histogram ---

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]),
      sum_bits_(std::bit_cast<std::uint64_t>(0.0)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::logic_error("histogram bounds must be ascending");
  }
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(double v) {
  if (!enabled()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t cur = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      cur, std::bit_cast<std::uint64_t>(std::bit_cast<double>(cur) + v),
      std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

const std::vector<double>& latency_buckets_us() {
  static const std::vector<double> kBuckets = {
      100,    250,    500,    1000,    2500,    5000,    10000,   25000,
      50000,  100000, 250000, 500000,  1000000, 2500000, 5000000, 10000000};
  return kBuckets;
}

// -------------------------------------------------------- MetricsRegistry ---

MetricsRegistry::Family& MetricsRegistry::family(std::string_view name,
                                                 std::string_view help,
                                                 Kind kind) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    it = families_.emplace(std::string(name), Family{}).first;
    it->second.kind = kind;
    it->second.help = std::string(help);
  } else if (it->second.kind != kind) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' re-registered with a different type");
  }
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help,
                                  const Labels& labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  Family& fam = family(name, help, Kind::kCounter);
  auto& slot = fam.counters[sorted(labels)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help,
                              const Labels& labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  Family& fam = family(name, help, Kind::kGauge);
  auto& slot = fam.gauges[sorted(labels)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

FloatGauge& MetricsRegistry::float_gauge(std::string_view name,
                                         std::string_view help,
                                         const Labels& labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  Family& fam = family(name, help, Kind::kFloatGauge);
  auto& slot = fam.float_gauges[sorted(labels)];
  if (!slot) slot = std::make_unique<FloatGauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view help,
                                      const std::vector<double>& bounds,
                                      const Labels& labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  Family& fam = family(name, help, Kind::kHistogram);
  if (fam.bounds.empty()) fam.bounds = bounds;
  auto& slot = fam.histograms[sorted(labels)];
  if (!slot) slot = std::make_unique<Histogram>(fam.bounds);
  return *slot;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name,
                                             const Labels& labels) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = families_.find(name);
  if (it == families_.end()) return 0;
  const auto series = it->second.counters.find(sorted(labels));
  return series == it->second.counters.end() ? 0 : series->second->value();
}

std::int64_t MetricsRegistry::gauge_value(std::string_view name,
                                          const Labels& labels) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = families_.find(name);
  if (it == families_.end()) return 0;
  const auto series = it->second.gauges.find(sorted(labels));
  return series == it->second.gauges.end() ? 0 : series->second->value();
}

double MetricsRegistry::float_gauge_value(std::string_view name,
                                          const Labels& labels) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = families_.find(name);
  if (it == families_.end()) return 0.0;
  const auto series = it->second.float_gauges.find(sorted(labels));
  return series == it->second.float_gauges.end() ? 0.0
                                                 : series->second->value();
}

std::vector<std::string> MetricsRegistry::family_names(
    std::string_view prefix) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, fam] : families_) {
    (void)fam;
    if (prefix.empty() || std::string_view(name).substr(0, prefix.size()) ==
                              prefix) {
      out.push_back(name);
    }
  }
  return out;
}

std::vector<std::pair<Labels, std::uint64_t>> MetricsRegistry::counter_series(
    std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<Labels, std::uint64_t>> out;
  const auto it = families_.find(name);
  if (it == families_.end()) return out;
  out.reserve(it->second.counters.size());
  for (const auto& [labels, counter] : it->second.counters) {
    out.emplace_back(labels, counter->value());
  }
  return out;
}

std::uint64_t MetricsRegistry::counter_total(std::string_view name) const {
  std::uint64_t total = 0;
  for (const auto& [labels, value] : counter_series(name)) {
    (void)labels;
    total += value;
  }
  return total;
}

std::string MetricsRegistry::render_prometheus() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, fam] : families_) {
    out += "# HELP " + name + " " + fam.help + "\n";
    out += "# TYPE " + name + " ";
    switch (fam.kind) {
      case Kind::kCounter: out += "counter\n"; break;
      case Kind::kGauge: out += "gauge\n"; break;
      case Kind::kFloatGauge: out += "gauge\n"; break;
      case Kind::kHistogram: out += "histogram\n"; break;
    }
    for (const auto& [labels, counter] : fam.counters) {
      out += name + render_labels(labels, nullptr) + " " +
             std::to_string(counter->value()) + "\n";
    }
    for (const auto& [labels, gauge] : fam.gauges) {
      out += name + render_labels(labels, nullptr) + " " +
             std::to_string(gauge->value()) + "\n";
    }
    for (const auto& [labels, gauge] : fam.float_gauges) {
      out += name + render_labels(labels, nullptr) + " " +
             render_number(gauge->value()) + "\n";
    }
    for (const auto& [labels, hist] : fam.histograms) {
      const auto buckets = hist->bucket_counts();
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < buckets.size(); ++i) {
        cumulative += buckets[i];
        const std::pair<std::string, std::string> le = {
            "le", i < fam.bounds.size() ? render_number(fam.bounds[i]) : "+Inf"};
        out += name + "_bucket" + render_labels(labels, &le) + " " +
               std::to_string(cumulative) + "\n";
      }
      out += name + "_sum" + render_labels(labels, nullptr) + " " +
             render_number(hist->sum()) + "\n";
      out += name + "_count" + render_labels(labels, nullptr) + " " +
             std::to_string(hist->count()) + "\n";
    }
  }
  return out;
}

}  // namespace qrc::obs
