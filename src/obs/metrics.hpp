/// \file metrics.hpp
/// \brief Dependency-free metrics registry: named counters, gauges, and
///        fixed-bucket histograms with label support, a lock-free atomic
///        hot path, and a Prometheus-style text exposition renderer.
///
/// Registration (name + label resolution) takes a mutex; once a handle is
/// obtained, increments and observations are plain relaxed atomics, safe
/// from any thread. Handles stay valid for the registry's lifetime (series
/// are heap-allocated and never moved).
///
/// Process-wide kill switch: `set_enabled(false)` turns every counter
/// increment / histogram observation into a single predictable branch —
/// bench_obs_overhead uses it to measure the instrumentation floor.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace qrc::obs {

/// Key/value label pairs identifying one series within a metric family.
/// Order-insensitive: the registry sorts by key before keying the series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Process-wide instrumentation switch (default on). Off: counter/gauge/
/// histogram mutations become one branch. Reads still work.
[[nodiscard]] bool enabled();
void set_enabled(bool on);

/// Monotonic counter. Hot path: one relaxed fetch_add.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if (!enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Signed instantaneous value with an atomic-max helper (high-water marks).
class Gauge {
 public:
  void set(std::int64_t v) {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) {
    if (!enabled()) return;
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  /// Raises the gauge to `v` if `v` is larger (never lowers it).
  void max_of(std::int64_t v) {
    if (!enabled()) return;
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Floating-point instantaneous value (losses, ratios, rates) stored as
/// bit-cast atomic uint64 so set/read stay lock-free. Rendered as a
/// Prometheus gauge.
class FloatGauge {
 public:
  void set(double v);
  [[nodiscard]] double value() const;

 private:
  std::atomic<std::uint64_t> bits_{0};  // 0 bits == 0.0
};

/// Fixed-bound histogram. Buckets are non-cumulative internally and
/// rendered cumulative (Prometheus `le` convention, implicit +Inf last).
/// Hot path: one linear bucket scan plus three relaxed atomic ops.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const;
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size() == bounds().size() + 1,
  /// the last entry being the +Inf overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

 private:
  std::vector<double> bounds_;  // ascending, finite
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_;  // double stored as bits, CAS-added
};

/// Default latency bucket bounds in microseconds: 100us .. 10s, roughly
/// geometric. Shared by every *_us histogram so exposition lines align.
[[nodiscard]] const std::vector<double>& latency_buckets_us();

/// Thread-safe named-metric registry. One instance per service (tests spin
/// up several services in one process and assert per-service counts, so
/// there is deliberately no process-global registry).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create. `help` is recorded on first registration. Throws
  /// std::logic_error if `name` already exists with a different type.
  Counter& counter(std::string_view name, std::string_view help,
                   const Labels& labels = {});
  Gauge& gauge(std::string_view name, std::string_view help,
               const Labels& labels = {});
  FloatGauge& float_gauge(std::string_view name, std::string_view help,
                          const Labels& labels = {});
  /// `bounds` is consulted on first registration of the family only.
  Histogram& histogram(std::string_view name, std::string_view help,
                       const std::vector<double>& bounds,
                       const Labels& labels = {});

  /// Point reads for snapshot structs and tests. Missing series read 0.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name,
                                            const Labels& labels = {}) const;
  [[nodiscard]] std::int64_t gauge_value(std::string_view name,
                                         const Labels& labels = {}) const;
  [[nodiscard]] double float_gauge_value(std::string_view name,
                                         const Labels& labels = {}) const;
  /// Names of registered families whose name starts with `prefix`, sorted.
  [[nodiscard]] std::vector<std::string> family_names(
      std::string_view prefix = {}) const;
  /// Every (labels, value) series of a counter family; empty if absent.
  [[nodiscard]] std::vector<std::pair<Labels, std::uint64_t>> counter_series(
      std::string_view name) const;
  /// Sum of all series of a counter family (0 if absent).
  [[nodiscard]] std::uint64_t counter_total(std::string_view name) const;

  /// Prometheus text exposition (v0.0.4): families sorted by name, each
  /// with # HELP / # TYPE headers, series sorted by label key.
  [[nodiscard]] std::string render_prometheus() const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kFloatGauge, kHistogram };

  struct Family {
    Kind kind;
    std::string help;
    std::vector<double> bounds;  // histograms only
    // Keyed by sorted labels; pointers are stable (never reallocated).
    std::map<Labels, std::unique_ptr<Counter>> counters;
    std::map<Labels, std::unique_ptr<Gauge>> gauges;
    std::map<Labels, std::unique_ptr<FloatGauge>> float_gauges;
    std::map<Labels, std::unique_ptr<Histogram>> histograms;
  };

  Family& family(std::string_view name, std::string_view help, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Family, std::less<>> families_;
};

}  // namespace qrc::obs
