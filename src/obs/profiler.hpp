/// \file profiler.hpp
/// \brief Dependency-free, signal-safe sampling profiler. A SIGPROF
///        handler driven by `setitimer(ITIMER_PROF)` captures frame
///        pointer chains into a lock-free seqlock sample ring (same
///        publish discipline as obs::FlightRecorder); symbolization is
///        deferred to dump time, where samples collapse into the folded
///        stack format consumed by standard flamegraph tooling.
///
/// Signal-safety contract: the handler never allocates, never takes a
/// lock, and never calls glibc `backtrace()` (which can touch
/// dl_load_lock and deadlock if the signal lands mid-dlopen/unwind).
/// Instead it walks frame pointers manually — the build compiles the qrc
/// library with `-fno-omit-frame-pointer` to keep the chain intact — and
/// validates every hop against the interrupted thread's enrolled stack
/// bounds before dereferencing. Threads that never called
/// `enroll_current_thread()` still get PC-only samples.
///
/// Sessions are process-wide (the interval timer and the signal
/// disposition are global resources), so at most one session can be
/// active; concurrent starts are rejected deterministically rather than
/// queued.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace qrc::obs {

/// Point-in-time profiler counters for /statusz and tests. Counters are
/// cumulative across sessions; `retained` is the current ring occupancy.
struct ProfilerStats {
  std::uint64_t sessions = 0;   ///< sessions ever started
  std::uint64_t samples = 0;    ///< samples ever captured (all sessions)
  std::uint64_t dropped = 0;    ///< samples lost to a full ring
  std::uint64_t pc_only = 0;    ///< samples from unenrolled threads
  std::uint64_t retained = 0;   ///< samples currently in the ring
  bool active = false;          ///< a session is sampling right now
};

/// Static-only facade over the process-wide sampling state (the signal
/// handler has to reach it through globals anyway).
class Profiler {
 public:
  static constexpr int kMinHz = 1;
  static constexpr int kMaxHz = 1000;
  static constexpr double kMaxSeconds = 60.0;
  static constexpr std::size_t kMaxDepth = 64;   ///< frames per sample
  static constexpr std::size_t kCapacity = 8192; ///< ring slots

  Profiler() = delete;

  /// Caches the calling thread's stack bounds in TLS (via
  /// pthread_getattr_np) so the SIGPROF handler can validate frame
  /// pointer hops. Must be called from normal (non-signal) context;
  /// idempotent and cheap after the first call. Worker pools, the net
  /// event loop, and service schedulers enroll at thread entry.
  static void enroll_current_thread();

  /// Starts a process-wide sampling session at `hz`. Returns false if a
  /// session is already active or `hz` is outside [kMinHz, kMaxHz].
  /// Clears the ring, so render_folded() after stop() covers exactly
  /// this session.
  [[nodiscard]] static bool start(int hz);

  /// Stops the active session (timer disarmed, handler quiesced). Safe
  /// to call when idle. Samples stay in the ring for render_folded().
  static void stop();

  [[nodiscard]] static bool active();

  /// Blocking convenience used by /profilez and the CLI: start, sample
  /// the process for `seconds` of wall time, stop, render. Returns
  /// std::nullopt if a session was already active or params are out of
  /// range (seconds must be in (0, kMaxSeconds]).
  [[nodiscard]] static std::optional<std::string> collect_folded(
      double seconds, int hz);

  /// Collapses the retained samples into folded stacks: one
  /// `outer;...;leaf count` line per unique stack, sorted by stack
  /// string. Symbolizes via dladdr + __cxa_demangle (the build links
  /// with -rdynamic so static-binary symbols resolve), falling back to
  /// `module+0xoff`. Call after stop(); not async-signal-safe.
  [[nodiscard]] static std::string render_folded();

  [[nodiscard]] static ProfilerStats stats();

  /// Drops retained samples and zeroes cumulative counters (tests).
  static void reset();
};

}  // namespace qrc::obs
