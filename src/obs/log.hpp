/// \file log.hpp
/// \brief Dependency-free structured logging: a process-wide leveled
///        logger with per-subsystem tags, optional JSON line output, a
///        per-site rate limiter, and a bounded in-memory ring sink (the
///        /statusz tail and tests read recent lines from it).
///
/// Suppressed calls (below the configured level) cost one relaxed atomic
/// load and a branch, so hot paths may log at debug level unconditionally.
/// Emission serialises on one mutex: lines never interleave, and every
/// emitted line also lands in the ring. Configuration comes from
/// set_level()/set_json() (the CLI's --log-level/--log-json) or the
/// QRC_LOG / QRC_LOG_JSON environment variables via configure_from_env().
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace qrc::obs {

enum class LogLevel : std::uint8_t {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,  ///< threshold only; not a level messages are emitted at
};

[[nodiscard]] std::string_view log_level_name(LogLevel level);
/// "debug"/"info"/"warn"/"error"/"off" -> level; nullopt on anything else.
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view name);

/// The process-wide logger. All mutation is thread-safe; the level/json
/// checks on the emit path are relaxed atomics.
class Logger {
 public:
  /// Lines the ring sink retains (recent() reads from here).
  static constexpr std::size_t kRingCapacity = 256;

  [[nodiscard]] static Logger& instance();

  Logger() = default;
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  void set_level(LogLevel level) {
    level_.store(static_cast<std::uint8_t>(level),
                 std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  void set_json(bool on) { json_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool json() const {
    return json_.load(std::memory_order_relaxed);
  }
  /// Where emitted lines are written (default 2 = stderr). Tests point
  /// this at a pipe/file; -1 keeps the ring sink only.
  void set_sink_fd(int fd) { sink_fd_.store(fd, std::memory_order_relaxed); }
  [[nodiscard]] int sink_fd() const {
    return sink_fd_.load(std::memory_order_relaxed);
  }

  /// Applies QRC_LOG (level name) and QRC_LOG_JSON (=1) when set; unknown
  /// QRC_LOG values are ignored (a typo must not silence the process).
  void configure_from_env();

  [[nodiscard]] bool should_log(LogLevel level) const {
    return static_cast<std::uint8_t>(level) >=
               level_.load(std::memory_order_relaxed) &&
           level != LogLevel::kOff;
  }

  /// Emits one line (formats, writes to the sink fd, records in the
  /// ring). Returns whether the line was emitted.
  bool log(LogLevel level, std::string_view tag, std::string_view message);

  /// printf-style convenience over log().
  [[gnu::format(printf, 4, 5)]] bool logf(LogLevel level,
                                          std::string_view tag,
                                          const char* fmt, ...);

  /// log() bounded to `max_per_sec` emissions per second per (tag, key)
  /// site; the surplus is counted in suppressed() and dropped. Use for
  /// per-request diagnostics that must not flood under load.
  bool log_rate_limited(LogLevel level, std::string_view tag,
                        std::string_view key, int max_per_sec,
                        std::string_view message);

  /// The most recent emitted lines, oldest first, at most `n`.
  [[nodiscard]] std::vector<std::string> recent(std::size_t n = 64) const;

  [[nodiscard]] std::uint64_t emitted() const {
    return emitted_.load(std::memory_order_relaxed);
  }
  /// Lines dropped by the rate limiter (level-suppressed calls are not
  /// counted — they are the normal fast path, not lost telemetry).
  [[nodiscard]] std::uint64_t rate_limited() const {
    return rate_limited_.load(std::memory_order_relaxed);
  }

  /// Clears the ring and the rate-limiter buckets (tests).
  void clear();

 private:
  std::atomic<std::uint8_t> level_{
      static_cast<std::uint8_t>(LogLevel::kInfo)};
  std::atomic<bool> json_{false};
  std::atomic<int> sink_fd_{2};
  std::atomic<std::uint64_t> emitted_{0};
  std::atomic<std::uint64_t> rate_limited_{0};

  struct RateBucket {
    std::int64_t window_start_ms = 0;
    int count = 0;
  };

  mutable std::mutex mu_;  // ring, rate buckets, write ordering
  std::deque<std::string> ring_;
  std::map<std::string, RateBucket, std::less<>> buckets_;
};

// Free-function shorthands over Logger::instance().
inline bool log_debug(std::string_view tag, std::string_view message) {
  return Logger::instance().log(LogLevel::kDebug, tag, message);
}
inline bool log_info(std::string_view tag, std::string_view message) {
  return Logger::instance().log(LogLevel::kInfo, tag, message);
}
inline bool log_warn(std::string_view tag, std::string_view message) {
  return Logger::instance().log(LogLevel::kWarn, tag, message);
}
inline bool log_error(std::string_view tag, std::string_view message) {
  return Logger::instance().log(LogLevel::kError, tag, message);
}

}  // namespace qrc::obs
