#include "obs/process_stats.hpp"

#include <sys/resource.h>
#include <time.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>

#include "obs/metrics.hpp"

#if defined(__linux__)
#include <dirent.h>
#endif

namespace qrc::obs {
namespace {

/// Fallback uptime anchor: latched on the first sample (services sample
/// in their constructor, so this is within milliseconds of start).
const std::chrono::steady_clock::time_point g_first_sample =
    std::chrono::steady_clock::now();

#if defined(__linux__)

long long read_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "re");
  if (f == nullptr) {
    return -1;
  }
  long long size_pages = 0;
  long long rss_pages = 0;
  const int got = std::fscanf(f, "%lld %lld", &size_pages, &rss_pages);
  std::fclose(f);
  if (got != 2) {
    return -1;
  }
  return rss_pages * static_cast<long long>(sysconf(_SC_PAGESIZE));
}

long long count_open_fds() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) {
    return -1;
  }
  long long count = 0;
  while (readdir(dir) != nullptr) {
    ++count;
  }
  closedir(dir);
  // Drop ".", ".." and the descriptor opendir itself holds.
  return count >= 3 ? count - 3 : 0;
}

/// Uptime from /proc: field 22 of /proc/self/stat is the process start
/// time in clock ticks since boot; /proc/uptime gives seconds since
/// boot. Negative on any parse trouble (caller falls back).
double read_proc_uptime_seconds() {
  std::FILE* f = std::fopen("/proc/self/stat", "re");
  if (f == nullptr) {
    return -1;
  }
  char buf[1024];
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  // comm (field 2) may contain spaces; skip past its closing paren.
  const char* p = std::strrchr(buf, ')');
  if (p == nullptr) {
    return -1;
  }
  ++p;
  long long start_ticks = -1;
  int field = 2;
  while (*p != '\0' && field < 22) {
    while (*p == ' ') {
      ++p;
    }
    ++field;
    if (field == 22) {
      std::sscanf(p, "%lld", &start_ticks);
      break;
    }
    while (*p != '\0' && *p != ' ') {
      ++p;
    }
  }
  if (start_ticks < 0) {
    return -1;
  }
  std::FILE* up = std::fopen("/proc/uptime", "re");
  if (up == nullptr) {
    return -1;
  }
  double boot_seconds = -1;
  const int got = std::fscanf(up, "%lf", &boot_seconds);
  std::fclose(up);
  if (got != 1 || boot_seconds < 0) {
    return -1;
  }
  const double ticks_per_s = static_cast<double>(sysconf(_SC_CLK_TCK));
  const double up_s =
      boot_seconds - static_cast<double>(start_ticks) / ticks_per_s;
  return up_s >= 0 ? up_s : -1;
}

#endif  // __linux__

}  // namespace

ProcessStats sample_process_stats() {
  ProcessStats s;

  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    s.user_cpu_seconds = static_cast<double>(ru.ru_utime.tv_sec) +
                         static_cast<double>(ru.ru_utime.tv_usec) * 1e-6;
    s.sys_cpu_seconds = static_cast<double>(ru.ru_stime.tv_sec) +
                        static_cast<double>(ru.ru_stime.tv_usec) * 1e-6;
    // ru_maxrss is KiB on Linux — used only as the portable fallback.
    s.rss_bytes = static_cast<long long>(ru.ru_maxrss) * 1024;
  }

#if defined(__linux__)
  const long long rss = read_rss_bytes();
  if (rss >= 0) {
    s.rss_bytes = rss;  // current RSS beats the rusage high-water mark
  }
  s.open_fds = count_open_fds();
  s.uptime_seconds = read_proc_uptime_seconds();
#endif
  if (s.uptime_seconds < 0) {
    s.uptime_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      g_first_sample)
            .count();
  }
  return s;
}

void publish_process_metrics(MetricsRegistry& registry) {
  const ProcessStats s = sample_process_stats();
  registry
      .gauge("qrc_process_resident_memory_bytes",
             "resident set size in bytes (-1 if unmeasurable)")
      .set(s.rss_bytes);
  registry
      .float_gauge("qrc_process_cpu_user_seconds_total",
                   "cumulative user-mode CPU seconds")
      .set(s.user_cpu_seconds);
  registry
      .float_gauge("qrc_process_cpu_sys_seconds_total",
                   "cumulative kernel-mode CPU seconds")
      .set(s.sys_cpu_seconds);
  registry
      .gauge("qrc_process_open_fds",
             "open file descriptors (-1 if unmeasurable)")
      .set(s.open_fds);
  registry
      .float_gauge("qrc_process_uptime_seconds",
                   "wall seconds since process start")
      .set(s.uptime_seconds);
}

}  // namespace qrc::obs
