/// \file training_logger.hpp
/// \brief Streams one JSON object per line (JSONL) to a file — the
///        training-curve sink behind `qrc train --log-jsonl PATH`. Each
///        record is a flat map of numeric fields, written and flushed
///        immediately so curves are tail-able while training runs and
///        survive a crash mid-run.
///
/// Deliberately generic (field name -> double) so obs does not depend on
/// rl: the CLI flattens PpoUpdateStats into fields at the call site via
/// the existing training progress callback. The writer is purely an
/// observer — it never feeds anything back into training, which is what
/// keeps `--log-jsonl` bitwise-invisible to the trained weights.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace qrc::obs {

class TrainingLogger {
 public:
  /// Opens (truncates) `path`. Check ok() before relying on records
  /// landing anywhere.
  explicit TrainingLogger(const std::string& path);
  ~TrainingLogger();
  TrainingLogger(const TrainingLogger&) = delete;
  TrainingLogger& operator=(const TrainingLogger&) = delete;

  [[nodiscard]] bool ok() const { return file_ != nullptr; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::size_t records() const { return records_; }

  /// Writes `{"k1":v1,...}` + newline and flushes. Integral values render
  /// without a fraction, everything else with round-trip precision.
  void write(const std::vector<std::pair<std::string, double>>& fields);

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::size_t records_ = 0;
};

}  // namespace qrc::obs
