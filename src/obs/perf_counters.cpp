#include "obs/perf_counters.hpp"

#include <atomic>
#include <cstring>

#include "obs/metrics.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace qrc::obs {
namespace {

constexpr int kNumEvents = 6;  // cycles, instr, cache refs/misses, br/miss

std::atomic<bool> g_perf_enabled{false};
// 0 = unprobed, 1 = available, 2 = unavailable. Probed by the first
// armed scope; once unavailable, later scopes skip the syscall entirely.
std::atomic<int> g_perf_status{0};

struct KernelTotals {
  std::atomic<std::uint64_t> scopes{0};
  std::atomic<std::uint64_t> values[kNumEvents] = {};
};

KernelTotals g_totals[static_cast<int>(PerfKernel::kCount)];

#if defined(__linux__)

/// One per-thread event group (leader = cycles). fds[0] is the group
/// leader; a single read() returns all six values.
struct ThreadGroup {
  int leader = -1;
  int fds[kNumEvents] = {-1, -1, -1, -1, -1, -1};
  bool tried = false;
};

thread_local ThreadGroup t_group;

int open_event(std::uint32_t type, std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = group_fd == -1 ? 1 : 0;
  attr.exclude_kernel = 1;  // user-space only: works at paranoid<=2
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP;
  attr.inherit = 0;
  const long fd = syscall(__NR_perf_event_open, &attr, 0 /*this thread*/,
                          -1 /*any cpu*/, group_fd, 0UL);
  return static_cast<int>(fd);
}

/// Lazily opens the calling thread's group. Returns true when counting.
bool thread_group_ready() {
  ThreadGroup& g = t_group;
  if (g.leader >= 0) {
    return true;
  }
  if (g.tried) {
    return false;
  }
  g.tried = true;
  if (g_perf_status.load(std::memory_order_relaxed) == 2) {
    return false;  // a prior thread already proved the syscall refused
  }
  static constexpr struct {
    std::uint32_t type;
    std::uint64_t config;
  } kEvents[kNumEvents] = {
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_INSTRUCTIONS},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
  };
  for (int i = 0; i < kNumEvents; ++i) {
    const int fd = open_event(kEvents[i].type, kEvents[i].config,
                              i == 0 ? -1 : g.fds[0]);
    if (fd < 0) {
      for (int j = 0; j < i; ++j) {
        close(g.fds[j]);
        g.fds[j] = -1;
      }
      g_perf_status.store(2, std::memory_order_relaxed);
      return false;
    }
    g.fds[i] = fd;
  }
  g.leader = g.fds[0];
  ioctl(g.leader, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(g.leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  g_perf_status.store(1, std::memory_order_relaxed);
  return true;
}

bool read_group(std::uint64_t out[kNumEvents]) {
  // PERF_FORMAT_GROUP layout: { u64 nr; u64 values[nr]; }.
  std::uint64_t buf[1 + kNumEvents];
  const ssize_t n = read(t_group.leader, buf, sizeof(buf));
  if (n != static_cast<ssize_t>(sizeof(buf)) || buf[0] != kNumEvents) {
    return false;
  }
  for (int i = 0; i < kNumEvents; ++i) {
    out[i] = buf[1 + i];
  }
  return true;
}

#endif  // __linux__

}  // namespace

std::string_view perf_kernel_name(PerfKernel kernel) {
  switch (kernel) {
    case PerfKernel::kMlpForward:
      return "mlp_forward";
    case PerfKernel::kTableauSweep:
      return "tableau_sweep";
    case PerfKernel::kSearchExpand:
      return "search_expand";
    case PerfKernel::kVerifyClifford:
      return "verify_clifford";
    case PerfKernel::kVerifyMiter:
      return "verify_miter";
    case PerfKernel::kVerifyStimuli:
      return "verify_stimuli";
    case PerfKernel::kCount:
      break;
  }
  return "unknown";
}

bool perf_enabled() {
  return g_perf_enabled.load(std::memory_order_relaxed);
}

void set_perf_enabled(bool on) {
  g_perf_enabled.store(on, std::memory_order_relaxed);
}

bool perf_available() {
  return g_perf_status.load(std::memory_order_relaxed) == 1;
}

PerfKernelTotals perf_kernel_totals(PerfKernel kernel) {
  PerfKernelTotals t;
  const auto& src = g_totals[static_cast<int>(kernel)];
  t.scopes = src.scopes.load(std::memory_order_relaxed);
  t.cycles = src.values[0].load(std::memory_order_relaxed);
  t.instructions = src.values[1].load(std::memory_order_relaxed);
  t.cache_refs = src.values[2].load(std::memory_order_relaxed);
  t.cache_misses = src.values[3].load(std::memory_order_relaxed);
  t.branches = src.values[4].load(std::memory_order_relaxed);
  t.branch_misses = src.values[5].load(std::memory_order_relaxed);
  return t;
}

void reset_perf_totals() {
  for (auto& k : g_totals) {
    k.scopes.store(0, std::memory_order_relaxed);
    for (auto& v : k.values) {
      v.store(0, std::memory_order_relaxed);
    }
  }
}

PerfScope::PerfScope(PerfKernel kernel) : kernel_(kernel) {
  if (!perf_enabled()) {
    return;  // the advertised one-branch cost when the switch is off
  }
#if defined(__linux__)
  if (!thread_group_ready()) {
    return;  // clean skip: syscall refused on this host/runner
  }
  std::uint64_t now[kNumEvents];
  if (!read_group(now)) {
    return;
  }
  for (int i = 0; i < kNumEvents; ++i) {
    begin_[i] = now[i];
  }
  armed_ = true;
#endif
}

PerfScope::~PerfScope() {
  if (!armed_) {
    return;
  }
#if defined(__linux__)
  std::uint64_t now[kNumEvents];
  if (!read_group(now)) {
    return;
  }
  auto& totals = g_totals[static_cast<int>(kernel_)];
  for (int i = 0; i < kNumEvents; ++i) {
    if (now[i] >= begin_[i]) {
      totals.values[i].fetch_add(now[i] - begin_[i],
                                 std::memory_order_relaxed);
    }
  }
  totals.scopes.fetch_add(1, std::memory_order_relaxed);
#endif
}

void publish_perf_metrics(MetricsRegistry& registry) {
  registry
      .gauge("qrc_profile_perf_available",
             "1 when perf_event_open works on this host, 0 after a refused "
             "probe, -1 before the first armed scope")
      .set(g_perf_status.load(std::memory_order_relaxed) == 1
               ? 1
               : (g_perf_status.load(std::memory_order_relaxed) == 2 ? 0
                                                                     : -1));
  registry
      .gauge("qrc_profile_perf_enabled",
             "1 when the per-kernel hardware counter switch is on")
      .set(perf_enabled() ? 1 : 0);
  for (int k = 0; k < static_cast<int>(PerfKernel::kCount); ++k) {
    const auto kernel = static_cast<PerfKernel>(k);
    const PerfKernelTotals t = perf_kernel_totals(kernel);
    const Labels labels = {{"kernel", std::string(perf_kernel_name(kernel))}};
    registry
        .gauge("qrc_profile_scopes_total",
               "completed hardware-counter sections per kernel", labels)
        .set(static_cast<std::int64_t>(t.scopes));
    registry
        .gauge("qrc_profile_cycles_total", "user-space CPU cycles per kernel",
               labels)
        .set(static_cast<std::int64_t>(t.cycles));
    registry
        .gauge("qrc_profile_instructions_total",
               "retired instructions per kernel", labels)
        .set(static_cast<std::int64_t>(t.instructions));
    registry
        .gauge("qrc_profile_cache_misses_total",
               "last-level cache misses per kernel", labels)
        .set(static_cast<std::int64_t>(t.cache_misses));
    registry
        .gauge("qrc_profile_branch_misses_total",
               "mispredicted branches per kernel", labels)
        .set(static_cast<std::int64_t>(t.branch_misses));
    registry
        .float_gauge("qrc_profile_ipc",
                     "instructions per cycle per kernel (0 when unmeasured)",
                     labels)
        .set(t.cycles > 0 ? static_cast<double>(t.instructions) /
                                static_cast<double>(t.cycles)
                          : 0.0);
    registry
        .float_gauge("qrc_profile_cache_miss_rate",
                     "cache misses / cache references per kernel", labels)
        .set(t.cache_refs > 0 ? static_cast<double>(t.cache_misses) /
                                    static_cast<double>(t.cache_refs)
                              : 0.0);
    registry
        .float_gauge("qrc_profile_branch_miss_rate",
                     "branch misses / branches per kernel", labels)
        .set(t.branches > 0 ? static_cast<double>(t.branch_misses) /
                                  static_cast<double>(t.branches)
                            : 0.0);
  }
}

}  // namespace qrc::obs
