/// \file noise_sim.hpp
/// \brief Monte-Carlo Pauli-noise simulation: validates the analytic
///        expected-fidelity reward against trajectory-sampled state
///        fidelity under a depolarizing error model driven by the device
///        calibration. (Stochastic Pauli channels are simulated exactly by
///        trajectory averaging.)
#pragma once

#include <cstdint>
#include <vector>

#include "device/device.hpp"
#include "ir/circuit.hpp"

namespace qrc::noise {

/// Result of a trajectory-sampling run.
struct NoisyFidelityEstimate {
  double mean = 0.0;    ///< average |<ideal|noisy>|^2 over trajectories
  double std_err = 0.0; ///< standard error of the mean
  int trajectories = 0;
};

/// Estimates the state fidelity of `circuit` executed on `device` under a
/// depolarizing Pauli-error model: after every unitary gate, with
/// probability equal to the calibrated error rate, a uniformly random
/// non-identity Pauli is applied to each operand qubit; measurement errors
/// contribute an X flip with the readout error probability just before the
/// measure.
///
/// The circuit is compacted onto its active qubits, which must number at
/// most `max_sim_qubits` (statevector simulation). Gate error rates are
/// looked up on the *original* (physical) qubit indices.
///
/// \param error_scale multiplies every error probability (1.0 = calibrated;
///        0.0 = noiseless).
[[nodiscard]] NoisyFidelityEstimate simulate_noisy_fidelity(
    const ir::Circuit& circuit, const device::Device& device, int trajectories,
    std::uint64_t seed, double error_scale = 1.0, int max_sim_qubits = 14);

/// The analytic proxy restricted to the same error model (unitary gates and
/// measures only, no readout asymmetry) — used to compare against the
/// Monte-Carlo estimate on equal terms.
[[nodiscard]] double analytic_success_probability(
    const ir::Circuit& circuit, const device::Device& device,
    double error_scale = 1.0);

}  // namespace qrc::noise
