#include "noise/noise_sim.hpp"

#include <cmath>
#include <random>
#include <stdexcept>

#include "ir/sim.hpp"

namespace qrc::noise {

namespace {

using ir::Circuit;
using ir::GateKind;
using ir::Operation;

/// Compacts a circuit onto its active qubits. `to_physical[i]` recovers the
/// original index of compact qubit i.
struct CompactCircuit {
  Circuit circuit;
  std::vector<int> to_physical;
};

CompactCircuit compact(const Circuit& circuit) {
  const auto active = circuit.active_qubits();
  std::vector<int> to_compact(static_cast<std::size_t>(circuit.num_qubits()),
                              -1);
  for (std::size_t i = 0; i < active.size(); ++i) {
    to_compact[static_cast<std::size_t>(active[i])] = static_cast<int>(i);
  }
  CompactCircuit out{Circuit(static_cast<int>(active.size()),
                             circuit.name()),
                     active};
  out.circuit.add_global_phase(circuit.global_phase());
  for (Operation op : circuit.ops()) {
    if (op.kind() == GateKind::kBarrier) {
      continue;
    }
    for (int k = 0; k < op.num_qubits(); ++k) {
      op.set_qubit(k, to_compact[static_cast<std::size_t>(op.qubit(k))]);
    }
    out.circuit.append(op);
  }
  return out;
}

/// Applies Pauli index p (1 = X, 2 = Y, 3 = Z) to `qubit`.
void apply_pauli(ir::Statevector& state, int qubit, int p) {
  const std::array<int, 1> qs{qubit};
  switch (p) {
    case 1:
      state.apply(Operation(GateKind::kX, qs));
      return;
    case 2:
      state.apply(Operation(GateKind::kY, qs));
      return;
    case 3:
      state.apply(Operation(GateKind::kZ, qs));
      return;
    default:
      return;
  }
}

/// Applies a uniformly random non-identity Pauli string over the operands
/// of `op` (the depolarizing channel on the gate's support).
void apply_random_pauli_string(ir::Statevector& state, const Operation& op,
                               std::mt19937_64& rng) {
  const int k = op.num_qubits();
  const int strings = (1 << (2 * k)) - 1;  // 4^k - 1 non-identity strings
  const int pick =
      std::uniform_int_distribution<int>(1, strings)(rng);
  for (int i = 0; i < k; ++i) {
    apply_pauli(state, op.qubit(i), (pick >> (2 * i)) & 3);
  }
}

}  // namespace

NoisyFidelityEstimate simulate_noisy_fidelity(const Circuit& circuit,
                                              const device::Device& device,
                                              int trajectories,
                                              std::uint64_t seed,
                                              double error_scale,
                                              int max_sim_qubits) {
  const CompactCircuit compacted = compact(circuit);
  const int n = compacted.circuit.num_qubits();
  if (n > max_sim_qubits) {
    throw std::invalid_argument(
        "simulate_noisy_fidelity: too many active qubits");
  }
  if (trajectories < 1) {
    throw std::invalid_argument("simulate_noisy_fidelity: need trajectories");
  }

  // Ideal reference state (unitary part only).
  ir::Statevector ideal(n);
  ideal.apply(compacted.circuit);

  // Per-op error probabilities on the original physical indices.
  std::vector<double> probs;
  probs.reserve(compacted.circuit.size());
  for (const Operation& op : compacted.circuit.ops()) {
    Operation physical = op;
    for (int k = 0; k < op.num_qubits(); ++k) {
      physical.set_qubit(
          k, compacted.to_physical[static_cast<std::size_t>(op.qubit(k))]);
    }
    probs.push_back(
        std::min(1.0, device.op_error(physical) * error_scale));
  }

  std::mt19937_64 rng(seed * 6364136223846793005ull + 1442695040888963407ull);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int t = 0; t < trajectories; ++t) {
    ir::Statevector state(n);
    for (std::size_t i = 0; i < compacted.circuit.size(); ++i) {
      const Operation& op = compacted.circuit.ops()[i];
      state.apply(op);  // non-unitary ops are no-ops in the simulator
      const double p = probs[i];
      if (p <= 0.0 || op.num_qubits() == 0) {
        continue;
      }
      // Depolarizing channel on the op's support: one error event with the
      // calibrated probability (matching the analytic proxy's per-op
      // success factor 1 - p).
      if (uniform(rng) < p) {
        apply_random_pauli_string(state, op, rng);
      }
    }
    const double fid = std::norm(ideal.inner_product(state));
    sum += fid;
    sum_sq += fid * fid;
  }
  NoisyFidelityEstimate out;
  out.trajectories = trajectories;
  out.mean = sum / trajectories;
  const double var =
      std::max(0.0, sum_sq / trajectories - out.mean * out.mean);
  out.std_err = std::sqrt(var / trajectories);
  return out;
}

double analytic_success_probability(const Circuit& circuit,
                                    const device::Device& device,
                                    double error_scale) {
  double prob = 1.0;
  for (const Operation& op : circuit.ops()) {
    if (op.kind() == GateKind::kBarrier) {
      continue;
    }
    prob *= 1.0 - std::min(1.0, device.op_error(op) * error_scale);
    if (prob <= 0.0) {
      return 0.0;
    }
  }
  return prob;
}

}  // namespace qrc::noise
