#include "verify/sparse_state.hpp"

#include <cmath>

#include "ir/gate.hpp"

namespace qrc::verify {

namespace {

using ir::GateKind;
using ir::Operation;
using la::cplx;

/// Amplitudes below this are dropped after each gate: numerically they are
/// rounding noise, and keeping them would erode sparsity gate by gate.
constexpr double kPruneThreshold = 1e-14;

std::uint64_t embed_index(std::uint64_t logical_index,
                          const std::vector<int>& placement) {
  std::uint64_t out = 0;
  for (std::size_t q = 0; q < placement.size(); ++q) {
    if ((logical_index >> q) & 1U) {
      out |= std::uint64_t{1} << placement[q];
    }
  }
  return out;
}

}  // namespace

SparseState::SparseState(int num_qubits, std::size_t max_support)
    : num_qubits_(num_qubits), max_support_(max_support) {
  if (num_qubits < 0 || num_qubits > 63) {
    throw std::invalid_argument("SparseState: unsupported qubit count");
  }
  amp_[0] = cplx{1.0, 0.0};
}

void SparseState::load_embedded(const std::vector<cplx>& logical_amplitudes,
                                const std::vector<int>& placement) {
  amp_.clear();
  amp_.reserve(logical_amplitudes.size());
  for (std::size_t i = 0; i < logical_amplitudes.size(); ++i) {
    if (std::abs(logical_amplitudes[i]) > kPruneThreshold) {
      amp_[embed_index(i, placement)] = logical_amplitudes[i];
    }
  }
  check_support();
}

void SparseState::check_support() const {
  if (amp_.size() > max_support_) {
    throw SparseSupportOverflow(amp_.size());
  }
}

void SparseState::apply_1q(const Operation& op) {
  const la::Mat2 u = ir::gate_matrix_1q(op.kind(), op.params());
  const std::uint64_t bit = std::uint64_t{1} << op.qubit(0);
  std::unordered_map<std::uint64_t, cplx> out;
  out.reserve(amp_.size() * 2);
  for (const auto& [index, a] : amp_) {
    const int c = (index & bit) != 0 ? 1 : 0;
    const std::uint64_t base = index & ~bit;
    out[base] += u(0, c) * a;
    out[base | bit] += u(1, c) * a;
  }
  amp_.clear();
  for (auto& [index, a] : out) {
    if (std::abs(a) > kPruneThreshold) {
      amp_.emplace(index, a);
    }
  }
  check_support();
}

void SparseState::apply_2q(const Operation& op) {
  const la::Mat4 u = ir::gate_matrix_2q(op.kind(), op.params());
  const std::uint64_t b0 = std::uint64_t{1} << op.qubit(0);
  const std::uint64_t b1 = std::uint64_t{1} << op.qubit(1);
  std::unordered_map<std::uint64_t, cplx> out;
  out.reserve(amp_.size() * 2);
  for (const auto& [index, a] : amp_) {
    // Basis order |q1 q0>: column = bit(q1) * 2 + bit(q0).
    const int c = ((index & b1) != 0 ? 2 : 0) + ((index & b0) != 0 ? 1 : 0);
    const std::uint64_t base = index & ~(b0 | b1);
    for (int r = 0; r < 4; ++r) {
      const cplx v = u(r, c) * a;
      if (std::abs(v) > 0.0) {
        out[base | ((r & 1) != 0 ? b0 : 0) | ((r & 2) != 0 ? b1 : 0)] += v;
      }
    }
  }
  amp_.clear();
  for (auto& [index, a] : out) {
    if (std::abs(a) > kPruneThreshold) {
      amp_.emplace(index, a);
    }
  }
  check_support();
}

void SparseState::apply_3q(const Operation& op) {
  // The three-qubit vocabulary is permutation/sign only: remap keys.
  const std::uint64_t ba = std::uint64_t{1} << op.qubit(0);
  const std::uint64_t bb = std::uint64_t{1} << op.qubit(1);
  const std::uint64_t bc = std::uint64_t{1} << op.qubit(2);
  std::unordered_map<std::uint64_t, cplx> out;
  out.reserve(amp_.size());
  for (const auto& [index, a] : amp_) {
    std::uint64_t j = index;
    cplx v = a;
    switch (op.kind()) {
      case GateKind::kCCX:
        if ((index & ba) != 0 && (index & bb) != 0) {
          j = index ^ bc;
        }
        break;
      case GateKind::kCCZ:
        if ((index & ba) != 0 && (index & bb) != 0 && (index & bc) != 0) {
          v = -v;
        }
        break;
      case GateKind::kCSWAP:
        if ((index & ba) != 0 && ((index & bb) != 0) != ((index & bc) != 0)) {
          j = index ^ bb ^ bc;
        }
        break;
      default:
        throw std::invalid_argument("SparseState: unknown 3q gate '" +
                                    std::string(op.info().name) + "'");
    }
    out[j] = v;
  }
  amp_ = std::move(out);
}

void SparseState::apply(const Operation& op) {
  if (!op.is_unitary()) {
    switch (op.kind()) {
      case GateKind::kMeasure:
      case GateKind::kBarrier:
        return;
      default:
        throw std::invalid_argument(
            "SparseState: unsupported non-unitary op '" +
            std::string(op.info().name) + "'");
    }
  }
  switch (op.num_qubits()) {
    case 1:
      apply_1q(op);
      return;
    case 2:
      apply_2q(op);
      return;
    case 3:
      apply_3q(op);
      return;
    default:
      throw std::invalid_argument("SparseState: unsupported arity for '" +
                                  std::string(op.info().name) + "'");
  }
}

void SparseState::apply(const ir::Circuit& circuit) {
  if (circuit.num_qubits() > num_qubits_) {
    throw std::invalid_argument("SparseState: circuit wider than state");
  }
  for (const Operation& op : circuit.ops()) {
    apply(op);
  }
  const cplx phase = std::exp(cplx{0.0, circuit.global_phase()});
  if (phase != cplx{1.0, 0.0}) {
    for (auto& [index, a] : amp_) {
      a *= phase;
    }
  }
}

cplx SparseState::overlap_with_embedded(
    const std::vector<cplx>& logical_amplitudes,
    const std::vector<int>& placement) const {
  cplx acc = 0.0;
  for (std::size_t i = 0; i < logical_amplitudes.size(); ++i) {
    const auto it = amp_.find(embed_index(i, placement));
    if (it != amp_.end()) {
      acc += std::conj(logical_amplitudes[i]) * it->second;
    }
  }
  return acc;
}

bool SparseState::magnitudes_match_embedded(
    const std::vector<cplx>& logical_amplitudes,
    const std::vector<int>& placement, double atol) const {
  // Direction 1: every expected amplitude present with the right modulus.
  std::unordered_map<std::uint64_t, double> expected;
  expected.reserve(logical_amplitudes.size());
  for (std::size_t i = 0; i < logical_amplitudes.size(); ++i) {
    const double magnitude = std::abs(logical_amplitudes[i]);
    const std::uint64_t index = embed_index(i, placement);
    const auto it = amp_.find(index);
    const double actual = it != amp_.end() ? std::abs(it->second) : 0.0;
    if (std::abs(actual - magnitude) > atol) {
      return false;
    }
    expected.emplace(index, magnitude);
  }
  // Direction 2: no stray weight outside the embedded support.
  for (const auto& [index, a] : amp_) {
    if (std::abs(a) > atol && expected.find(index) == expected.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace qrc::verify
