/// \file equivalence.hpp
/// \brief Tiered functional equivalence checking of circuits (QCEC-style,
///        after Quetschlich/Burgholzer/Wille): the paper's workflow trusts
///        a compiled circuit only after it has been verified equivalent to
///        the input. The EquivalenceChecker picks the cheapest sound
///        method per instance:
///
///          1. Clifford fast path — if both circuits are Clifford, their
///             Aaronson-Gottesman tableaus are compared exactly, at any
///             width (a stabilizer tableau determines the unitary up to
///             global phase).
///          2. Alternating miter — gates of G and conjugated gates of G'
///             are interleaved proportionally onto a maximally-entangled
///             (Choi) state of 2n qubits, which realises the product
///             G * G'^dagger without ever materialising a 4^n matrix; the
///             final trace test |tr(G G'^dagger)| = 2^n decides exact
///             equivalence up to global phase. For layout-embedded
///             circuits the miter runs as an exhaustive basis sweep with
///             early divergence exit on the first failing column.
///          3. Random stimuli — k shared random input states are pushed
///             through both circuits; agreement on all of them implies
///             equivalence w.h.p. (reported as a confidence < 1).
///
///        All tiers are layout/permutation-aware (a routed circuit is
///        verified against the virtual-level input through its initial and
///        final layouts, after compaction onto the active device qubits)
///        and measurement-tolerant (trailing measurements are stripped;
///        if a strict check fails on measure-all circuits, a distribution
///        level recheck accepts legitimate diagonal-before-measure
///        optimizations). A "not equivalent" verdict is always backed by a
///        concrete counterexample and therefore definitive; "equivalent"
///        verdicts carry the tier's confidence.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ir/circuit.hpp"

namespace qrc::verify {

/// Outcome of an equivalence check.
enum class Verdict : std::uint8_t {
  kEquivalent,     ///< equivalent (exactly, or w.h.p. — see confidence)
  kNotEquivalent,  ///< a counterexample input was found: definitive
  kUnknown,        ///< no tier could decide (too wide, or unsupported ops)
};

/// Which tier produced the verdict.
enum class Method : std::uint8_t {
  kNone,             ///< no tier ran (Verdict::kUnknown)
  kCliffordTableau,  ///< canonical stabilizer-tableau comparison
  kAlternatingMiter, ///< dense G * G'^dagger miter / exhaustive basis sweep
  kRandomStimuli,    ///< shared random input states, w.h.p. equivalence
};

[[nodiscard]] std::string_view verdict_name(Verdict verdict);
[[nodiscard]] std::string_view method_name(Method method);

struct VerifyOptions {
  /// Width cap for the alternating miter (the Choi state has 2n qubits, so
  /// memory is 16 * 4^n bytes: n = 10 is 16 MiB; the hard ceiling is 12).
  int max_miter_qubits = 10;
  /// Width cap for the random-stimuli tier (dense statevectors; the IR
  /// simulator's hard ceiling is 24 — kept lower to bound time). Routed
  /// 12-qubit circuits on the 127-qubit device stay inside this after
  /// compaction.
  int max_stimuli_qubits = 22;
  /// Number of shared random input states in the sampling tier. Above 16
  /// active qubits the budget shrinks to num_stimuli / 4 (at least 2) so
  /// wide instances stay fast; the reported confidence shrinks with it.
  int num_stimuli = 8;
  /// Seed for the shared random stimuli (fixed seed => deterministic
  /// verdicts, so cache replays and live compilations agree).
  std::uint64_t seed = 0x5eed5eedULL;
  /// Amplitude tolerance for the dense tiers.
  double atol = 1e-6;
  /// Accept circuits that differ only by diagonal phases ahead of a
  /// measure-all (e.g. RemoveDiagonalGatesBeforeMeasure output). Strict
  /// unitary equivalence is always tried first.
  bool measurement_tolerant = true;
};

struct VerifyResult {
  Verdict verdict = Verdict::kUnknown;
  Method method = Method::kNone;
  /// 1.0 for exact verdicts (Clifford, miter, and every kNotEquivalent
  /// which is witnessed by a concrete input); 1 - 2^-k for sampling and
  /// distribution-level (measurement-tolerant) acceptance.
  double confidence = 0.0;
  /// Width actually simulated/compared after compaction onto active qubits.
  int checked_qubits = 0;
  /// Human-readable reason / diagnostics (first divergence point, tier
  /// dispatch reason, ...).
  std::string detail;

  [[nodiscard]] bool equivalent() const {
    return verdict == Verdict::kEquivalent;
  }
};

/// Tiered equivalence checker. Immutable and cheap; safe to share across
/// threads. All entry points are deterministic for fixed options.
class EquivalenceChecker {
 public:
  explicit EquivalenceChecker(VerifyOptions options = {});

  [[nodiscard]] const VerifyOptions& options() const { return options_; }

  /// Checks two same-space circuits (widths may differ; the narrower one
  /// acts as identity on the missing qubits). `final_permutation`, if
  /// non-empty, maps output qubit i of `a` to output qubit
  /// final_permutation[i] of `b` (routed-circuit convention shared with
  /// ir::circuits_equivalent).
  [[nodiscard]] VerifyResult check(
      const ir::Circuit& a, const ir::Circuit& b,
      const std::vector<int>& final_permutation = {}) const;

  /// Layout-aware check of a compiled circuit `physical` (typically on
  /// device width) against the virtual-level `logical` input.
  /// `initial_layout` and `final_layout` map logical -> physical qubits
  /// (empty initial = identity placement; empty final = initial). The
  /// circuits are first compacted onto the active physical qubits so a
  /// 5-qubit job routed on a 127-qubit device stays cheap.
  [[nodiscard]] VerifyResult check_mapped(
      const ir::Circuit& logical, const ir::Circuit& physical,
      const std::vector<int>& initial_layout,
      const std::vector<int>& final_layout) const;

 private:
  VerifyOptions options_;
};

}  // namespace qrc::verify
