#include "verify/mutate.hpp"

#include <array>
#include <random>
#include <vector>

#include "ir/gate.hpp"

namespace qrc::verify {

namespace {

using ir::Circuit;
using ir::GateKind;
using ir::Operation;

/// Non-diagonal gate edits only: a purely diagonal edit can commute to the
/// end of a measure-all circuit, where it is legitimately unobservable —
/// a fault-injection campaign built on those would punish the checker for
/// being right.
bool is_mutable_target(const Operation& op) {
  return op.is_unitary() && !op.info().is_diagonal;
}

/// Does the nearest op on any shared qubit (searching direction `step`)
/// equal `op`? Used to avoid deleting/inserting next to an identical twin
/// which would cancel instead of faulting.
bool identical_neighbor(const Circuit& c, std::size_t index,
                        const Operation& op, int step) {
  for (std::size_t i = index;;) {
    if (step < 0 && i == 0) {
      return false;
    }
    i = static_cast<std::size_t>(static_cast<long>(i) + step);
    if (i >= c.size()) {
      return false;
    }
    const Operation& other = c.ops()[i];
    if (!other.overlaps(op)) {
      continue;
    }
    return other == op;
  }
}

const std::array<GateKind, 5> k1qReplacements = {
    GateKind::kH, GateKind::kX, GateKind::kY, GateKind::kSX,
    GateKind::kSXdg};

}  // namespace

std::optional<Mutation> mutate_single_gate(const ir::Circuit& circuit,
                                           std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::size_t> targets;
  for (std::size_t i = 0; i < circuit.size(); ++i) {
    if (is_mutable_target(circuit.ops()[i])) {
      targets.push_back(i);
    }
  }
  if (targets.empty()) {
    return std::nullopt;
  }

  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::size_t index = targets[std::uniform_int_distribution<
        std::size_t>(0, targets.size() - 1)(rng)];
    const Operation& op = circuit.ops()[index];
    const std::string at = std::string(op.info().name) + " at op " +
                           std::to_string(index);
    Circuit mutated = circuit;
    auto& ops = mutated.mutable_ops();
    switch (std::uniform_int_distribution<int>(0, 5)(rng)) {
      case 0: {  // replace a 1q gate with a different non-diagonal 1q gate
        if (op.num_qubits() != 1 || op.num_params() != 0) {
          continue;
        }
        const GateKind to = k1qReplacements[std::uniform_int_distribution<
            std::size_t>(0, k1qReplacements.size() - 1)(rng)];
        if (to == op.kind()) {
          continue;
        }
        const int q = op.qubit(0);
        ops[index] = Operation(to, {&q, 1});
        return Mutation{std::move(mutated),
                        "replace " + at + " with " +
                            std::string(ir::gate_name(to))};
      }
      case 1: {  // perturb a non-diagonal rotation angle
        if (op.num_params() == 0) {
          continue;
        }
        const int p = std::uniform_int_distribution<int>(
            0, op.num_params() - 1)(rng);
        ops[index].set_param(p, op.param(p) + 0.7);
        return Mutation{std::move(mutated),
                        "perturb param " + std::to_string(p) + " of " + at};
      }
      case 2: {  // swap operands of an asymmetric 2q gate
        if (op.num_qubits() != 2 || op.info().is_symmetric) {
          continue;
        }
        ops[index].set_qubit(0, op.qubit(1));
        ops[index].set_qubit(1, op.qubit(0));
        return Mutation{std::move(mutated), "swap operands of " + at};
      }
      case 3: {  // delete the gate
        if (ir::gate_is_identity(op.kind(), op.params()) ||
            identical_neighbor(circuit, index, op, -1) ||
            identical_neighbor(circuit, index, op, +1)) {
          continue;  // deletion could cancel instead of faulting
        }
        std::vector<bool> remove(circuit.size(), false);
        remove[index] = true;
        mutated.remove_ops(remove);
        return Mutation{std::move(mutated), "delete " + at};
      }
      case 4: {  // retarget one operand of a 2q gate (to an active qubit,
                 // so wide-device mutants stay inside the used register)
        const auto active = circuit.active_qubits();
        if (op.num_qubits() != 2 || active.size() < 3) {
          continue;
        }
        const int slot = std::uniform_int_distribution<int>(0, 1)(rng);
        const int to = active[std::uniform_int_distribution<std::size_t>(
            0, active.size() - 1)(rng)];
        if (to == op.qubit(0) || to == op.qubit(1)) {
          continue;
        }
        ops[index].set_qubit(slot, to);
        return Mutation{std::move(mutated),
                        "retarget operand " + std::to_string(slot) + " of " +
                            at + " to q" + std::to_string(to)};
      }
      default: {  // insert a fresh h/x next to the target
        const GateKind to = std::uniform_int_distribution<int>(0, 1)(rng) == 0
                                ? GateKind::kH
                                : GateKind::kX;
        const int q = op.qubit(std::uniform_int_distribution<int>(
            0, op.num_qubits() - 1)(rng));
        const Operation inserted(to, {&q, 1});
        if (identical_neighbor(circuit, index, inserted, -1) ||
            circuit.ops()[index] == inserted) {
          continue;  // would cancel against an identical twin
        }
        ops.insert(ops.begin() + static_cast<long>(index), inserted);
        return Mutation{std::move(mutated),
                        "insert " + std::string(ir::gate_name(to)) + " on q" +
                            std::to_string(q) + " before op " +
                            std::to_string(index)};
      }
    }
  }
  return std::nullopt;
}

}  // namespace qrc::verify
