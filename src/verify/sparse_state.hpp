/// \file sparse_state.hpp
/// \brief Sparse statevector over up to 63 qubits, keyed on basis indices
///        with non-negligible amplitude. A routed circuit on a wide device
///        only ever populates ~2^n of the 2^k basis states (n logical
///        qubits embedded among |0> routing ancillas; swap networks
///        permute basis states instead of spreading them), so pushing a
///        logical stimulus through a 26-active-qubit compiled circuit
///        costs O(gates * 2^n) — decidable where the dense tiers give up.
///        Support is hard-capped: a circuit that genuinely entangles too
///        many wires overflows loudly instead of silently thrashing.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "ir/circuit.hpp"
#include "la/complex.hpp"

namespace qrc::verify {

/// Thrown when a circuit drives the support past the configured cap; the
/// caller treats the instance as undecidable rather than wrong.
class SparseSupportOverflow : public std::runtime_error {
 public:
  explicit SparseSupportOverflow(std::size_t support)
      : std::runtime_error("sparse state support exceeded cap (" +
                           std::to_string(support) + " basis states)") {}
};

class SparseState {
 public:
  /// |0...0> on n qubits (2 <= n <= 63 supported; the index is a 64-bit
  /// basis key).
  explicit SparseState(int num_qubits,
                       std::size_t max_support = std::size_t{1} << 20);

  [[nodiscard]] int num_qubits() const { return num_qubits_; }
  [[nodiscard]] std::size_t support() const { return amp_.size(); }

  /// Replaces the state with `logical` embedded at `placement` (logical
  /// qubit i at wire placement[i]; every other wire |0>).
  void load_embedded(const std::vector<la::cplx>& logical_amplitudes,
                     const std::vector<int>& placement);

  /// Applies a unitary op (measure/barrier ignored, like ir::Statevector;
  /// reset and unknown ops throw).
  /// \throws SparseSupportOverflow when the support cap is hit.
  void apply(const ir::Operation& op);

  /// All ops plus the global phase.
  void apply(const ir::Circuit& circuit);

  /// <embedded | this> where `embedded` places logical_amplitudes at
  /// `placement` (zeros elsewhere).
  [[nodiscard]] la::cplx overlap_with_embedded(
      const std::vector<la::cplx>& logical_amplitudes,
      const std::vector<int>& placement) const;

  /// True iff per-basis-state magnitudes match the embedded state within
  /// atol in both directions (distribution-level comparison).
  [[nodiscard]] bool magnitudes_match_embedded(
      const std::vector<la::cplx>& logical_amplitudes,
      const std::vector<int>& placement, double atol) const;

 private:
  void apply_1q(const ir::Operation& op);
  void apply_2q(const ir::Operation& op);
  void apply_3q(const ir::Operation& op);
  void check_support() const;

  int num_qubits_;
  std::size_t max_support_;
  std::unordered_map<std::uint64_t, la::cplx> amp_;
};

}  // namespace qrc::verify
