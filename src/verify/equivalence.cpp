#include "verify/equivalence.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>

#include "clifford/tableau.hpp"
#include "ir/gate.hpp"
#include "ir/sim.hpp"
#include "obs/perf_counters.hpp"
#include "verify/sparse_state.hpp"

namespace qrc::verify {

namespace {

using ir::Circuit;
using ir::GateKind;
using ir::Operation;
using ir::Statevector;
using la::cplx;

/// Hard ceiling of the dense simulator (Statevector rejects > 24 qubits;
/// the Choi miter doubles the width).
constexpr int kStatevectorCap = 24;

/// A circuit reduced to its unitary part, plus what was stripped.
struct Stripped {
  Circuit circuit;         ///< unitary ops only, global phase kept
  bool has_reset = false;  ///< reset is non-unitary: tiers cannot run
  /// A measurement is followed by suffix gates that change what it
  /// records (per measures_deferrable): stripping it would change
  /// semantics, so the tiers cannot run soundly.
  bool has_undeferrable_measure = false;
  std::vector<bool> measured;  ///< per-qubit: at least one measure op
};

/// Can every measurement be deferred to the end of the circuit without
/// changing what it records? A measure of wire w at time t records the
/// observable Z_w conjugated through the remaining suffix (Heisenberg
/// picture: measuring Z_w at t equals measuring R Z_w R^dag at the end).
/// It is deferrable iff that pull-through lands on a single positive Z —
/// exactly what a routing swap network does (in any native decomposition)
/// when it moves other qubits through an already-measured wire. The
/// conjugation is tracked exactly with the stabilizer tableau; a
/// non-Clifford suffix gate is tolerated only while it is diagonal and
/// the tracked Pauli has no X part on its wires (then they commute). An
/// h-after-measure — a genuine mid-circuit measurement — fails.
bool measures_deferrable(const Circuit& c) {
  const auto& ops = c.ops();
  const int k = c.num_qubits();
  for (std::size_t t = 0; t < ops.size(); ++t) {
    if (ops[t].kind() != GateKind::kMeasure) {
      continue;
    }
    const int w = ops[t].qubit(0);
    clifford::Tableau tableau(k);
    const int row = k + w;  // stabilizer row w tracks R Z_w R^dag
    bool decided = true;
    for (std::size_t j = t + 1; j < ops.size() && decided; ++j) {
      const Operation& op = ops[j];
      if (op.kind() == GateKind::kMeasure ||
          op.kind() == GateKind::kBarrier) {
        continue;
      }
      // Conjugation acts on each tableau row independently, so ops that
      // touch neither the X nor the Z part of the tracked Pauli leave it
      // unchanged and may be skipped — only *our* row is ever read.
      bool x_overlap = false;
      bool any_overlap = false;
      for (int i = 0; i < op.num_qubits(); ++i) {
        x_overlap = x_overlap || tableau.x(row, op.qubit(i));
        any_overlap = any_overlap || tableau.x(row, op.qubit(i)) ||
                      tableau.z(row, op.qubit(i));
      }
      if (!any_overlap || (op.info().is_diagonal && !x_overlap)) {
        continue;  // disjoint, or diagonal against a Z-type Pauli
      }
      decided = tableau.apply(op);  // false: non-Clifford that matters
    }
    if (!decided) {
      return false;
    }
    int z_count = 0;
    for (int col = 0; col < k; ++col) {
      if (tableau.x(row, col)) {
        return false;  // the record is no longer a basis readout
      }
      z_count += tableau.z(row, col) ? 1 : 0;
    }
    if (z_count != 1 || tableau.r(row)) {
      return false;  // a parity or an inverted readout, not a wire
    }
  }
  return true;
}

Stripped strip_non_unitary(const Circuit& c) {
  Stripped out;
  out.circuit = Circuit(c.num_qubits(), c.name());
  out.circuit.add_global_phase(c.global_phase());
  out.measured.assign(static_cast<std::size_t>(std::max(1, c.num_qubits())),
                      false);
  bool gate_after_measure = false;
  for (const Operation& op : c.ops()) {
    switch (op.kind()) {
      case GateKind::kMeasure:
        out.measured[static_cast<std::size_t>(op.qubit(0))] = true;
        continue;
      case GateKind::kBarrier:
        continue;
      case GateKind::kReset:
        out.has_reset = true;
        continue;
      default:
        for (int i = 0; i < op.num_qubits(); ++i) {
          if (out.measured[static_cast<std::size_t>(op.qubit(i))]) {
            gate_after_measure = true;
          }
        }
        out.circuit.append(op);
    }
  }
  if (gate_after_measure) {
    out.has_undeferrable_measure = !measures_deferrable(c);
  }
  return out;
}

/// True when the stripped circuits admit a sound unitary comparison at
/// all; fills `result` with the kUnknown verdict otherwise.
bool strippable(const Stripped& a, const Stripped& b, VerifyResult* result) {
  if (a.has_reset || b.has_reset) {
    *result = VerifyResult{Verdict::kUnknown, Method::kNone, 0.0, 0,
                           "circuit contains reset: no sound unitary tier"};
    return false;
  }
  if (a.has_undeferrable_measure || b.has_undeferrable_measure) {
    *result = VerifyResult{
        Verdict::kUnknown, Method::kNone, 0.0, 0,
        "circuit measures mid-circuit (a later gate changes what the "
        "measurement records): stripping would change semantics"};
    return false;
  }
  return true;
}

/// True if every qubit touched by a unitary op is also measured — the
/// precondition for distribution-level (measurement-tolerant) acceptance:
/// a diagonal phase on an unmeasured qubit is observable downstream, one
/// on a measured qubit is not.
bool measures_cover_active(const Stripped& s) {
  for (const Operation& op : s.circuit.ops()) {
    for (int i = 0; i < op.num_qubits(); ++i) {
      if (!s.measured[static_cast<std::size_t>(op.qubit(i))]) {
        return false;
      }
    }
  }
  return true;
}

/// Appends SWAP gates to `c` realising ir::permute_qubits(. , perm):
/// qubit q of the incoming state ends up at perm[q].
void append_permutation_as_swaps(Circuit& c, std::vector<int> perm) {
  for (int i = 0; i < static_cast<int>(perm.size()); ++i) {
    while (perm[static_cast<std::size_t>(i)] != i) {
      const int j = perm[static_cast<std::size_t>(i)];
      c.swap(i, j);
      std::swap(perm[static_cast<std::size_t>(i)],
                perm[static_cast<std::size_t>(j)]);
    }
  }
}

/// Widens `c` to `n` qubits (identity on the new wires).
Circuit widened(const Circuit& c, int n) {
  Circuit out(n, c.name());
  out.extend(c);
  return out;
}

la::Mat2 conj2(const la::Mat2& u) {
  la::Mat2 out;
  for (int r = 0; r < 2; ++r) {
    for (int col = 0; col < 2; ++col) {
      out(r, col) = std::conj(u(r, col));
    }
  }
  return out;
}

la::Mat4 conj4(const la::Mat4& u) {
  la::Mat4 out;
  for (int r = 0; r < 4; ++r) {
    for (int col = 0; col < 4; ++col) {
      out(r, col) = std::conj(u(r, col));
    }
  }
  return out;
}

/// Right-multiplies the miter by op^dagger: on the Choi state
/// vec(M) = sum_ij M_ij |j>_col |i>_row this is exactly applying the
/// element-wise conjugated gate on the column register (qubits shifted by
/// n). The three-qubit vocabulary (CCX/CCZ/CSWAP) is real, so the
/// conjugate is the gate itself.
void apply_right_dagger(Statevector& s, const Operation& op, int n) {
  switch (op.num_qubits()) {
    case 1:
      s.apply_matrix(conj2(ir::gate_matrix_1q(op.kind(), op.params())),
                     op.qubit(0) + n);
      return;
    case 2:
      s.apply_matrix(conj4(ir::gate_matrix_2q(op.kind(), op.params())),
                     op.qubit(0) + n, op.qubit(1) + n);
      return;
    default: {
      std::array<int, 3> qs{};
      for (int i = 0; i < op.num_qubits(); ++i) {
        qs[static_cast<std::size_t>(i)] = op.qubit(i) + n;
      }
      s.apply(Operation(op.kind(),
                        {qs.data(), static_cast<std::size_t>(op.num_qubits())},
                        op.params()));
      return;
    }
  }
}

/// |tr(M)| / 2^n of the miter encoded in the Choi state (overlap with the
/// maximally entangled state; 1 iff M is the identity up to global phase).
double miter_trace_overlap(const Statevector& s, int n) {
  const auto& amp = s.amplitudes();
  cplx diag_sum = 0.0;
  for (std::size_t i = 0; i < (std::size_t{1} << n); ++i) {
    diag_sum += amp[(i << n) | i];
  }
  // Each diagonal amplitude of vec(I)/2^{n/2} is 2^{-n/2}; the overlap
  // with the initial Choi state is 2^{-n/2} * sum.
  return std::abs(diag_sum) * std::pow(2.0, -0.5 * static_cast<double>(n));
}

/// Alternating miter: interleaves gates of `a` (left side of G G'^dagger)
/// and conjugated gates of `b` (right side) proportionally onto the Choi
/// state of 2n qubits. Exact up to global phase. `divergence` receives the
/// fraction of gates after which the running trace overlap first left 1
/// (diagnostic only; a mid-run dip is not by itself a refutation).
bool alternating_miter_equivalent(const Circuit& a, const Circuit& b, int n,
                                  double atol, double* divergence) {
  Statevector s(2 * n);
  auto& amp = s.mutable_amplitudes();
  std::fill(amp.begin(), amp.end(), cplx{0.0, 0.0});
  const double init = std::pow(2.0, -0.5 * static_cast<double>(n));
  for (std::size_t i = 0; i < (std::size_t{1} << n); ++i) {
    amp[(i << n) | i] = init;
  }

  const auto& ga = a.ops();
  const auto& gb = b.ops();
  const std::size_t na = ga.size();
  const std::size_t nb = gb.size();
  const std::size_t total = na + nb;
  const std::size_t checkpoint = std::max<std::size_t>(1, total / 8);
  std::size_t ia = 0;
  std::size_t ib = 0;
  *divergence = -1.0;
  while (ia < na || ib < nb) {
    // Proportional scheduling: advance whichever side is behind in
    // relative progress, so the partial product stays close to identity
    // for compiler-shaped pairs (QCEC's "proportional" strategy).
    const bool left = ib >= nb ||
                      (ia < na && (ia + 1) * nb <= (ib + 1) * na);
    if (left) {
      s.apply(ga[ia++]);
    } else {
      apply_right_dagger(s, gb[ib++], n);
    }
    const std::size_t done = ia + ib;
    if (*divergence < 0.0 && done % checkpoint == 0 && done != total &&
        miter_trace_overlap(s, n) < 1.0 - 1e-3) {
      *divergence = static_cast<double>(done) / static_cast<double>(total);
    }
  }
  return std::abs(miter_trace_overlap(s, n) - 1.0) <= atol;
}

/// One layout-aware comparison instance, after compaction: `logical` on n
/// qubits, `physical` on k >= n qubits, with logical qubit l placed at
/// init[l] on input and expected at final[l] on output (ancillas |0> in,
/// |0> out).
struct MappedJob {
  const Circuit* logical = nullptr;
  const Circuit* physical = nullptr;
  int k = 0;
  std::vector<int> init;
  std::vector<int> final;
};

/// Pushes `input` (logical width) through both sides of the job and
/// compares. `magnitudes_only` compares per-basis-state amplitude moduli
/// (distribution level: tolerant of diagonal phases before a measure-all);
/// otherwise requires overlap of modulus 1. `phase` carries the reference
/// global phase across calls when strict (ignored when null or when
/// magnitudes_only).
bool outputs_match(const MappedJob& job, const Statevector& input,
                   double atol, bool magnitudes_only, cplx* phase) {
  Statevector actual = embed_state(input, job.k, job.init);
  actual.apply(*job.physical);
  Statevector expected_logical = input;
  expected_logical.apply(*job.logical);
  const Statevector expected =
      embed_state(expected_logical, job.k, job.final);
  if (magnitudes_only) {
    const auto& ea = expected.amplitudes();
    const auto& aa = actual.amplitudes();
    for (std::size_t i = 0; i < ea.size(); ++i) {
      if (std::abs(std::abs(ea[i]) - std::abs(aa[i])) > 10.0 * atol) {
        return false;
      }
    }
    return true;
  }
  const cplx overlap = expected.inner_product(actual);
  if (std::abs(std::abs(overlap) - 1.0) > atol) {
    return false;
  }
  if (phase != nullptr) {
    if (std::abs(*phase) < 0.5) {
      *phase = overlap;  // first sample fixes the global phase
    } else if (std::abs(overlap - *phase) > 10.0 * atol) {
      return false;  // phase must be global, not input-dependent
    }
  }
  return true;
}

/// Exhaustive basis sweep: all 2^n logical computational basis states,
/// early exit on the first divergent column. Exact (strict mode) for the
/// full behaviour on the |0>-ancilla subspace.
bool basis_sweep_equivalent(const MappedJob& job, double atol,
                            bool magnitudes_only, std::size_t* bad_column) {
  const int n = job.logical->num_qubits();
  cplx phase{0.0, 0.0};
  for (std::size_t col = 0; col < (std::size_t{1} << n); ++col) {
    Statevector input(n);
    auto& amp = input.mutable_amplitudes();
    std::fill(amp.begin(), amp.end(), cplx{0.0, 0.0});
    amp[col] = 1.0;
    if (!outputs_match(job, input, atol, magnitudes_only,
                       magnitudes_only ? nullptr : &phase)) {
      *bad_column = col;
      return false;
    }
  }
  return true;
}

/// Sparse random-stimuli sweep for wide mapped circuits: the logical
/// stimulus (dense, 2^n amplitudes) is embedded among the |0> ancillas and
/// pushed through the physical circuit in sparse form — O(gates * support)
/// instead of O(gates * 2^k). Sets *overflowed (instead of deciding) when
/// the circuit genuinely entangles too many wires for the support cap.
bool sparse_stimuli_equivalent(const MappedJob& job, int count,
                               std::uint64_t seed, double atol,
                               bool magnitudes_only, int* bad_trial,
                               bool* overflowed) {
  const int n = job.logical->num_qubits();
  cplx phase{0.0, 0.0};
  for (int t = 0; t < count; ++t) {
    const Statevector input =
        Statevector::random(n, seed + static_cast<std::uint64_t>(t));
    Statevector expected = input;
    expected.apply(*job.logical);
    SparseState actual(job.k);
    try {
      actual.load_embedded(input.amplitudes(), job.init);
      actual.apply(*job.physical);
    } catch (const SparseSupportOverflow&) {
      *overflowed = true;
      return false;
    }
    if (magnitudes_only) {
      if (!actual.magnitudes_match_embedded(expected.amplitudes(),
                                            job.final, 10.0 * atol)) {
        *bad_trial = t;
        return false;
      }
      continue;
    }
    const cplx overlap =
        actual.overlap_with_embedded(expected.amplitudes(), job.final);
    if (std::abs(std::abs(overlap) - 1.0) > atol) {
      *bad_trial = t;
      return false;
    }
    if (std::abs(phase) < 0.5) {
      phase = overlap;
    } else if (std::abs(overlap - phase) > 10.0 * atol) {
      *bad_trial = t;
      return false;
    }
  }
  return true;
}

/// Random-stimuli sweep: `count` shared Haar-ish random logical input
/// states, early exit on the first counterexample.
bool stimuli_equivalent(const MappedJob& job, int count, std::uint64_t seed,
                        double atol, bool magnitudes_only, int* bad_trial) {
  const int n = job.logical->num_qubits();
  cplx phase{0.0, 0.0};
  for (int t = 0; t < count; ++t) {
    const Statevector input =
        Statevector::random(n, seed + static_cast<std::uint64_t>(t));
    if (!outputs_match(job, input, atol, magnitudes_only,
                       magnitudes_only ? nullptr : &phase)) {
      *bad_trial = t;
      return false;
    }
  }
  return true;
}

/// Outcome of the Clifford inverse-Pauli-flow comparison.
enum class FlowMatch {
  kFull,             ///< strict unitary equivalence (up to global phase)
  kMeasurementOnly,  ///< Z-flow matches: identical measure-all statistics,
                     ///< but the X-flow differs (a diagonal gap)
  kMismatch,         ///< even the Z-flow differs
};

/// Any-width Clifford check through layouts, in the Heisenberg picture:
/// pulls each *output* observable back through the circuits
/// (tableau of the inverse circuit: row j of T(C^-1) is U^dag P_j U) and
/// compares against the logical pull-back placed at the initial layout.
///
///  - Z rows of every final-layout wire matching (support only on the
///    initial layout, equal signs) + every output-ancilla Z pulling back
///    to a +Z-string on input ancillas  ==> identical measure-all outcome
///    distributions for every input with |0> ancillas, exactly (diagonal
///    algebra is generated by Z-strings), and ancillas provably return to
///    |0>.
///  - X rows matching as well  ==> strict equivalence up to global phase
///    (all logical Pauli observables agree).
///
/// With no routing ancillas (k == n) the conditions are necessary too, so
/// a mismatch there is a definitive refutation; with ancillas they are
/// sufficient-only and the caller falls through to the dense tiers.
FlowMatch clifford_pauli_flow(const Circuit& logical,
                              const Circuit& physical_c, int k,
                              const std::vector<int>& init_c,
                              const std::vector<int>& fin_c) {
  const auto tl = clifford::Tableau::from_circuit(logical.inverse());
  const auto tp = clifford::Tableau::from_circuit(physical_c.inverse());
  if (!tl.has_value() || !tp.has_value()) {
    return FlowMatch::kMismatch;
  }
  const int n = logical.num_qubits();
  std::vector<bool> in_init(static_cast<std::size_t>(k), false);
  std::vector<bool> in_fin(static_cast<std::size_t>(k), false);
  std::vector<int> logical_at(static_cast<std::size_t>(k), -1);
  for (int l = 0; l < n; ++l) {
    in_init[static_cast<std::size_t>(init_c[static_cast<std::size_t>(l)])] =
        true;
    in_fin[static_cast<std::size_t>(fin_c[static_cast<std::size_t>(l)])] =
        true;
    logical_at[static_cast<std::size_t>(
        init_c[static_cast<std::size_t>(l)])] = l;
  }

  // One pulled-back output row of the physical circuit vs the remapped
  // logical pull-back.
  const auto row_matches = [&](int prow, int lrow) {
    if (tp->r(prow) != tl->r(lrow)) {
      return false;
    }
    for (int col = 0; col < k; ++col) {
      const int l = logical_at[static_cast<std::size_t>(col)];
      const bool want_x = l >= 0 && tl->x(lrow, l);
      const bool want_z = l >= 0 && tl->z(lrow, l);
      if (tp->x(prow, col) != want_x || tp->z(prow, col) != want_z) {
        return false;
      }
    }
    return true;
  };

  // Z-flow: logical outputs pull back to the logical Z pull-back at the
  // initial layout; ancilla outputs pull back to +Z on input ancillas.
  for (int l = 0; l < n; ++l) {
    if (!row_matches(k + fin_c[static_cast<std::size_t>(l)], n + l)) {
      return FlowMatch::kMismatch;
    }
  }
  // Ancilla condition, word-wide over the bitplane tableau: OR every x
  // plane (and the z planes of initial-layout columns) into per-row "any"
  // masks in one sweep, after which each ancilla row is a three-bit probe
  // (sign, any-X, any-Z-on-init) instead of a per-column bit scan.
  bool have_output_ancilla = false;
  for (int a = 0; a < k && !have_output_ancilla; ++a) {
    have_output_ancilla = !in_fin[static_cast<std::size_t>(a)];
  }
  if (have_output_ancilla) {
    const auto words = static_cast<std::size_t>(tp->num_words());
    std::vector<std::uint64_t> x_any(words, 0);
    std::vector<std::uint64_t> z_init_any(words, 0);
    for (int col = 0; col < k; ++col) {
      const auto xp = tp->x_plane(col);
      for (std::size_t w = 0; w < words; ++w) {
        x_any[w] |= xp[w];
      }
      if (in_init[static_cast<std::size_t>(col)]) {
        const auto zp = tp->z_plane(col);
        for (std::size_t w = 0; w < words; ++w) {
          z_init_any[w] |= zp[w];
        }
      }
    }
    const auto sgn = tp->signs();
    for (int a = 0; a < k; ++a) {
      if (in_fin[static_cast<std::size_t>(a)]) {
        continue;
      }
      const auto prow = static_cast<std::size_t>(k + a);
      const std::uint64_t probe =
          sgn[prow / 64] | x_any[prow / 64] | z_init_any[prow / 64];
      if ((probe >> (prow % 64)) & 1U) {
        return FlowMatch::kMismatch;
      }
    }
  }

  // X-flow upgrades the verdict from measurement-level to strict.
  for (int l = 0; l < n; ++l) {
    if (!row_matches(fin_c[static_cast<std::size_t>(l)], l)) {
      return FlowMatch::kMeasurementOnly;
    }
  }
  return FlowMatch::kFull;
}

VerifyResult make_result(Verdict verdict, Method method, double confidence,
                         int qubits, std::string detail) {
  VerifyResult out;
  out.verdict = verdict;
  out.method = method;
  out.confidence = confidence;
  out.checked_qubits = qubits;
  out.detail = std::move(detail);
  return out;
}

double sampling_confidence(int num_stimuli) {
  return 1.0 - std::pow(0.5, static_cast<double>(num_stimuli));
}

/// Wide statevectors are expensive (2^k amplitudes per gate): above 16
/// qubits the stimulus budget shrinks so a 21-qubit routed instance stays
/// decidable in seconds. The reported confidence shrinks with it.
int effective_stimuli(int k, const VerifyOptions& options) {
  return k <= 16 ? options.num_stimuli
                 : std::max(2, options.num_stimuli / 4);
}

void validate_layout(const std::vector<int>& layout, const char* what, int n,
                     int width) {
  if (static_cast<int>(layout.size()) != n) {
    throw std::invalid_argument(
        std::string("EquivalenceChecker: ") + what + " has " +
        std::to_string(layout.size()) + " entries for " + std::to_string(n) +
        " logical qubits");
  }
  std::set<int> seen;
  for (const int p : layout) {
    if (p < 0 || p >= width) {
      throw std::invalid_argument(std::string("EquivalenceChecker: ") +
                                  what + " entry " + std::to_string(p) +
                                  " outside the physical register");
    }
    if (!seen.insert(p).second) {
      throw std::invalid_argument(std::string("EquivalenceChecker: ") +
                                  what + " maps two logical qubits to " +
                                  std::to_string(p));
    }
  }
}

}  // namespace

std::string_view verdict_name(Verdict verdict) {
  switch (verdict) {
    case Verdict::kEquivalent:
      return "equivalent";
    case Verdict::kNotEquivalent:
      return "not_equivalent";
    case Verdict::kUnknown:
      return "unknown";
  }
  return "unknown";
}

std::string_view method_name(Method method) {
  switch (method) {
    case Method::kNone:
      return "none";
    case Method::kCliffordTableau:
      return "clifford_tableau";
    case Method::kAlternatingMiter:
      return "alternating_miter";
    case Method::kRandomStimuli:
      return "random_stimuli";
  }
  return "none";
}

EquivalenceChecker::EquivalenceChecker(VerifyOptions options)
    : options_(options) {
  if (options_.max_miter_qubits < 0 ||
      2 * options_.max_miter_qubits > kStatevectorCap) {
    throw std::invalid_argument(
        "EquivalenceChecker: max_miter_qubits must be in [0, 12]");
  }
  if (options_.max_stimuli_qubits < 0 ||
      options_.max_stimuli_qubits > kStatevectorCap) {
    throw std::invalid_argument(
        "EquivalenceChecker: max_stimuli_qubits must be in [0, 24]");
  }
  if (options_.num_stimuli < 1) {
    throw std::invalid_argument(
        "EquivalenceChecker: num_stimuli must be >= 1");
  }
}

VerifyResult EquivalenceChecker::check(
    const ir::Circuit& a, const ir::Circuit& b,
    const std::vector<int>& final_permutation) const {
  const Stripped sa = strip_non_unitary(a);
  const Stripped sb = strip_non_unitary(b);
  VerifyResult unsound;
  if (!strippable(sa, sb, &unsound)) {
    return unsound;
  }
  const int n = std::max(a.num_qubits(), b.num_qubits());
  std::vector<int> perm(final_permutation);
  for (int q = static_cast<int>(perm.size()); q < n; ++q) {
    perm.push_back(q);  // identity on untouched qubits
  }
  // A malformed permutation must fail loudly: a duplicate entry would spin
  // the swap synthesis forever, an out-of-range one would index past the
  // register. The identity extension is included so a prefix that collides
  // with it (e.g. {1} on 2 qubits) is caught too.
  validate_layout(perm, "final_permutation", n, n);
  const bool tolerant = options_.measurement_tolerant &&
                        measures_cover_active(sa) &&
                        measures_cover_active(sb);

  // The permuted-and-widened left side: a, then the permutation — equal to
  // b as a plain unitary iff a ~ b under the permutation convention.
  Circuit a_n = widened(sa.circuit, n);
  append_permutation_as_swaps(a_n, perm);
  const Circuit b_n = widened(sb.circuit, n);

  // ---- tier 1: Clifford Pauli flow (any width) --------------------------
  if (clifford::is_clifford_circuit(a_n) &&
      clifford::is_clifford_circuit(b_n)) {
    obs::PerfScope perf(obs::PerfKernel::kVerifyClifford);
    std::vector<int> identity(static_cast<std::size_t>(n));
    std::iota(identity.begin(), identity.end(), 0);
    // Same width and no ancillas: the flow conditions are necessary and
    // sufficient, so every branch is a definitive verdict.
    switch (clifford_pauli_flow(a_n, b_n, n, identity, identity)) {
      case FlowMatch::kFull:
        return make_result(Verdict::kEquivalent, Method::kCliffordTableau,
                           1.0, n, "Pauli flow identical");
      case FlowMatch::kMeasurementOnly:
        if (tolerant) {
          return make_result(
              Verdict::kEquivalent, Method::kCliffordTableau, 1.0, n,
              "equivalent up to diagonal phases before measurement "
              "(exact at distribution level)");
        }
        return make_result(Verdict::kNotEquivalent, Method::kCliffordTableau,
                           1.0, n, "X Pauli flow differs (diagonal gap)");
      case FlowMatch::kMismatch:
        return make_result(Verdict::kNotEquivalent, Method::kCliffordTableau,
                           1.0, n, "Z Pauli flow differs");
    }
  }

  // Both sides widened to n: stimuli then cover the FULL joint space, so a
  // wider circuit that misbehaves on the extra wires' |1> subspace is
  // caught — "the narrower circuit acts as identity" is tested, not
  // assumed. The logical side is the widened a (no permutation swaps);
  // the permutation rides in the final placement.
  std::vector<int> identity_n(static_cast<std::size_t>(n));
  std::iota(identity_n.begin(), identity_n.end(), 0);
  const Circuit a_plain = widened(sa.circuit, n);
  const MappedJob job{&a_plain, &b_n, n, identity_n, perm};

  // ---- tier 2: alternating miter (exact, <= max_miter_qubits) -----------
  if (n <= options_.max_miter_qubits) {
    obs::PerfScope perf(obs::PerfKernel::kVerifyMiter);
    double divergence = -1.0;
    if (alternating_miter_equivalent(a_n, b_n, n, options_.atol,
                                     &divergence)) {
      return make_result(Verdict::kEquivalent, Method::kAlternatingMiter,
                         1.0, n, "miter trace test passed");
    }
    std::string where =
        divergence >= 0.0
            ? "miter diverged after " +
                  std::to_string(static_cast<int>(divergence * 100.0)) +
                  "% of gates"
            : "miter trace test failed";
    if (!tolerant) {
      return make_result(Verdict::kNotEquivalent, Method::kAlternatingMiter,
                         1.0, n, where);
    }
    std::size_t bad_column = 0;
    int bad_trial = 0;
    if (basis_sweep_equivalent(job, options_.atol, /*magnitudes_only=*/true,
                               &bad_column) &&
        stimuli_equivalent(job, options_.num_stimuli, options_.seed,
                           options_.atol, /*magnitudes_only=*/true,
                           &bad_trial)) {
      return make_result(
          Verdict::kEquivalent, Method::kAlternatingMiter,
          sampling_confidence(options_.num_stimuli), n,
          "equivalent up to diagonal phases before measurement");
    }
    return make_result(Verdict::kNotEquivalent, Method::kAlternatingMiter,
                       1.0, n, where + "; distribution recheck failed");
  }

  // ---- tier 3: random stimuli (w.h.p., <= max_stimuli_qubits) -----------
  if (n <= options_.max_stimuli_qubits) {
    obs::PerfScope perf(obs::PerfKernel::kVerifyStimuli);
    const int stimuli = effective_stimuli(n, options_);
    int bad_trial = 0;
    if (stimuli_equivalent(job, stimuli, options_.seed, options_.atol,
                           /*magnitudes_only=*/false, &bad_trial)) {
      return make_result(Verdict::kEquivalent, Method::kRandomStimuli,
                         sampling_confidence(stimuli), n,
                         std::to_string(stimuli) +
                             " random stimuli agreed");
    }
    if (tolerant &&
        stimuli_equivalent(job, stimuli, options_.seed, options_.atol,
                           /*magnitudes_only=*/true, &bad_trial)) {
      return make_result(
          Verdict::kEquivalent, Method::kRandomStimuli,
          sampling_confidence(stimuli), n,
          "equivalent up to diagonal phases before measurement");
    }
    return make_result(Verdict::kNotEquivalent, Method::kRandomStimuli, 1.0,
                       n,
                       "counterexample stimulus #" +
                           std::to_string(bad_trial));
  }

  return make_result(Verdict::kUnknown, Method::kNone, 0.0, n,
                     "non-Clifford pair wider than every dense tier (" +
                         std::to_string(n) + " qubits)");
}

VerifyResult EquivalenceChecker::check_mapped(
    const ir::Circuit& logical, const ir::Circuit& physical,
    const std::vector<int>& initial_layout,
    const std::vector<int>& final_layout) const {
  const int n = logical.num_qubits();
  const int width = physical.num_qubits();
  if (width < n) {
    throw std::invalid_argument(
        "EquivalenceChecker::check_mapped: physical circuit narrower than "
        "the logical one");
  }
  std::vector<int> init(initial_layout);
  if (init.empty()) {
    init.resize(static_cast<std::size_t>(n));
    std::iota(init.begin(), init.end(), 0);
  }
  std::vector<int> fin(final_layout.empty() ? init : final_layout);
  validate_layout(init, "initial_layout", n, width);
  validate_layout(fin, "final_layout", n, width);

  const Stripped sl = strip_non_unitary(logical);
  const Stripped sp = strip_non_unitary(physical);
  VerifyResult unsound;
  if (!strippable(sl, sp, &unsound)) {
    return unsound;
  }

  // Compact onto the qubits that matter: active physical wires plus both
  // layout images. A 5-qubit job routed on a 127-qubit device verifies in
  // the 5-10 qubit space it actually occupies.
  std::set<int> used(init.begin(), init.end());
  used.insert(fin.begin(), fin.end());
  for (const Operation& op : sp.circuit.ops()) {
    for (int i = 0; i < op.num_qubits(); ++i) {
      used.insert(op.qubit(i));
    }
  }
  const int k = static_cast<int>(used.size());
  std::vector<int> compact(static_cast<std::size_t>(width), -1);
  int next = 0;
  for (const int p : used) {
    compact[static_cast<std::size_t>(p)] = next++;
  }
  // Unused wires never appear in any op; remap them to 0 to satisfy the
  // mapping-size contract of Circuit::remapped.
  for (int p = 0; p < width; ++p) {
    if (compact[static_cast<std::size_t>(p)] < 0) {
      compact[static_cast<std::size_t>(p)] = 0;
    }
  }
  const Circuit physical_c = sp.circuit.remapped(compact, k);
  std::vector<int> init_c;
  std::vector<int> fin_c;
  for (int l = 0; l < n; ++l) {
    init_c.push_back(compact[static_cast<std::size_t>(
        init[static_cast<std::size_t>(l)])]);
    fin_c.push_back(compact[static_cast<std::size_t>(
        fin[static_cast<std::size_t>(l)])]);
  }

  // Readout consistency: a measured logical wire must be measured exactly
  // at its final-layout image, and no other physical wire may carry a
  // measure. The unitary tiers strip measures, so a physical measure on
  // the wrong wire — e.g. a router emitting a measure before a later swap
  // moves a different slot onto it — records a different logical qubit's
  // value into that classical bit and is invisible to them; refute here.
  {
    std::vector<bool> expected_measured(static_cast<std::size_t>(width),
                                        false);
    for (int l = 0; l < n; ++l) {
      if (sl.measured[static_cast<std::size_t>(l)]) {
        expected_measured[static_cast<std::size_t>(
            fin[static_cast<std::size_t>(l)])] = true;
      }
    }
    for (int p = 0; p < width; ++p) {
      if (sp.measured[static_cast<std::size_t>(p)] !=
          expected_measured[static_cast<std::size_t>(p)]) {
        return make_result(
            Verdict::kNotEquivalent, Method::kNone, 1.0, n,
            "measurement readout mismatch on physical wire " +
                std::to_string(p) +
                (sp.measured[static_cast<std::size_t>(p)]
                     ? " (measured, but no measured logical wire lands "
                       "there)"
                     : " (unmeasured, but a measured logical wire lands "
                       "there)"));
      }
    }
  }

  // Tolerance precondition, layout-aware: every active *logical* wire is
  // measured (the physical side is readout-consistent by the check
  // above). Routing thoroughfares — wires a swap network borrows and
  // returns to |0> — are active but unmeasured on the physical side; they
  // carry no observable state, so they must not void the
  // distribution-level claim (measures_cover_active(sp) would).
  const bool tolerant =
      options_.measurement_tolerant && measures_cover_active(sl);
  // Context from a sufficient-only Clifford flow mismatch, prefixed onto
  // downstream verdicts.
  std::string note;

  // ---- tier 1: Clifford Pauli flow (any width, layout-aware) ------------
  if (clifford::is_clifford_circuit(sl.circuit) &&
      clifford::is_clifford_circuit(physical_c)) {
    switch (clifford_pauli_flow(sl.circuit, physical_c, k, init_c, fin_c)) {
      case FlowMatch::kFull:
        return make_result(Verdict::kEquivalent, Method::kCliffordTableau,
                           1.0, k, "Pauli flow matches through the layouts");
      case FlowMatch::kMeasurementOnly:
        if (tolerant) {
          return make_result(
              Verdict::kEquivalent, Method::kCliffordTableau, 1.0, k,
              "equivalent up to diagonal phases before measurement "
              "(exact at distribution level)");
        }
        if (k == n) {  // no ancillas: the flow conditions are necessary
          return make_result(Verdict::kNotEquivalent,
                             Method::kCliffordTableau, 1.0, k,
                             "X Pauli flow differs (diagonal gap)");
        }
        note = "X Pauli flow differs: ";
        break;
      case FlowMatch::kMismatch:
        if (k == n) {
          return make_result(Verdict::kNotEquivalent,
                             Method::kCliffordTableau, 1.0, k,
                             "Z Pauli flow differs");
        }
        // With routing ancillas the flow conditions are sufficient-only:
        // fall through to the dense tiers rather than refuting.
        note = "Pauli flow mismatch: ";
        break;
    }
  }

  const MappedJob job{&sl.circuit, &physical_c, k, init_c, fin_c};

  // ---- tier 2: exhaustive basis sweep (exact on the ancilla-|0>
  // subspace; cost 2^(n+k) amplitude updates per gate) --------------------
  if (n + k <= 2 * options_.max_miter_qubits && k <= kStatevectorCap) {
    std::size_t bad_column = 0;
    if (basis_sweep_equivalent(job, options_.atol, /*magnitudes_only=*/false,
                               &bad_column)) {
      return make_result(Verdict::kEquivalent, Method::kAlternatingMiter,
                         1.0, k, "all basis columns agreed");
    }
    const std::string where =
        "diverged at basis column " + std::to_string(bad_column);
    if (tolerant) {
      int bad_trial = 0;
      if (basis_sweep_equivalent(job, options_.atol,
                                 /*magnitudes_only=*/true, &bad_column) &&
          stimuli_equivalent(job, options_.num_stimuli, options_.seed,
                             options_.atol, /*magnitudes_only=*/true,
                             &bad_trial)) {
        return make_result(
            Verdict::kEquivalent, Method::kAlternatingMiter,
            sampling_confidence(options_.num_stimuli), k,
            note + "equivalent up to diagonal phases before measurement");
      }
    }
    return make_result(Verdict::kNotEquivalent, Method::kAlternatingMiter,
                       1.0, k, note + where);
  }

  // ---- tier 3: random stimuli -------------------------------------------
  if (k <= options_.max_stimuli_qubits) {
    const int stimuli = effective_stimuli(k, options_);
    int bad_trial = 0;
    if (stimuli_equivalent(job, stimuli, options_.seed, options_.atol,
                           /*magnitudes_only=*/false, &bad_trial)) {
      return make_result(Verdict::kEquivalent, Method::kRandomStimuli,
                         sampling_confidence(stimuli), k,
                         std::to_string(stimuli) +
                             " random stimuli agreed");
    }
    if (tolerant &&
        stimuli_equivalent(job, stimuli, options_.seed, options_.atol,
                           /*magnitudes_only=*/true, &bad_trial)) {
      return make_result(
          Verdict::kEquivalent, Method::kRandomStimuli,
          sampling_confidence(stimuli), k,
          note + "equivalent up to diagonal phases before measurement");
    }
    return make_result(Verdict::kNotEquivalent, Method::kRandomStimuli, 1.0,
                       k,
                       note + "counterexample stimulus #" +
                           std::to_string(bad_trial));
  }

  // ---- tier 4: sparse random stimuli (wide devices, narrow subspace) ----
  // Beyond the dense caps the routed state still lives in the 2^n-dim
  // logical subspace (swap networks permute basis states; ancillas stay
  // |0>), so a sparse simulation decides at any width up to 63 wires —
  // unless the circuit genuinely entangles too many wires, which
  // overflows the support cap and lands in kUnknown below.
  if (n <= options_.max_stimuli_qubits && k <= 63) {
    bool overflowed = false;
    int bad_trial = 0;
    if (sparse_stimuli_equivalent(job, options_.num_stimuli, options_.seed,
                                  options_.atol, /*magnitudes_only=*/false,
                                  &bad_trial, &overflowed)) {
      return make_result(Verdict::kEquivalent, Method::kRandomStimuli,
                         sampling_confidence(options_.num_stimuli), k,
                         std::to_string(options_.num_stimuli) +
                             " sparse random stimuli agreed");
    }
    if (!overflowed && tolerant &&
        sparse_stimuli_equivalent(job, options_.num_stimuli, options_.seed,
                                  options_.atol, /*magnitudes_only=*/true,
                                  &bad_trial, &overflowed)) {
      return make_result(
          Verdict::kEquivalent, Method::kRandomStimuli,
          sampling_confidence(options_.num_stimuli), k,
          note + "equivalent up to diagonal phases before measurement "
                 "(sparse)");
    }
    if (!overflowed) {
      return make_result(Verdict::kNotEquivalent, Method::kRandomStimuli,
                         1.0, k,
                         note + "counterexample stimulus #" +
                             std::to_string(bad_trial) + " (sparse)");
    }
    return make_result(
        Verdict::kUnknown, Method::kNone, 0.0, k,
        "sparse support overflow: the compiled circuit entangles more "
        "wires than any tier can decide at width " + std::to_string(k));
  }

  return make_result(
      Verdict::kUnknown, Method::kNone, 0.0, k,
      note + "active width " + std::to_string(k) +
          " exceeds every dense tier and the logical width " +
          std::to_string(n) + " exceeds the stimulus generator");
}

}  // namespace qrc::verify
