/// \file mutate.hpp
/// \brief Seeded single-gate fault injection for exercising the
///        equivalence checker: each mutation changes exactly one gate of a
///        circuit in a way that (outside rare coincidental cancellations)
///        changes the measured behaviour — so a verifier that accepts a
///        mutated circuit has a hole. Deliberately avoids purely diagonal
///        edits (z/s/t/rz/p insertions or drifts), which a
///        measurement-tolerant checker rightly accepts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "ir/circuit.hpp"

namespace qrc::verify {

/// One injected fault: the mutated circuit plus a description of the edit
/// ("replace h->x at op 3", "swap operands of cx at op 12", ...).
struct Mutation {
  ir::Circuit circuit;
  std::string description;
};

/// Applies one random semantics-changing single-gate mutation drawn from
/// `seed`: replacing a 1q gate by a different non-diagonal one, perturbing
/// a non-diagonal rotation angle, swapping the operands of an asymmetric
/// 2q gate, deleting a non-diagonal gate, retargeting a 2q gate, or
/// inserting a fresh h/x. Returns std::nullopt if the circuit offers no
/// mutable gate (e.g. it is empty or measure-only).
[[nodiscard]] std::optional<Mutation> mutate_single_gate(
    const ir::Circuit& circuit, std::uint64_t seed);

}  // namespace qrc::verify
