/// \file benchmarks.hpp
/// \brief MQT-Bench-style benchmark circuit generators: the 22 algorithm
///        families of the paper's evaluation (Fig. 3), parameterised by
///        qubit count, at the target-independent level (with final
///        measurements). Generators are structurally faithful rebuilds of
///        the MQT Bench families; variational families use seeded random
///        parameters.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "ir/circuit.hpp"

namespace qrc::bench {

/// The 22 benchmark families named in Fig. 3 of the paper.
enum class BenchmarkFamily : std::uint8_t {
  kAe,              ///< amplitude estimation
  kDj,              ///< Deutsch-Jozsa
  kGhz,             ///< GHZ state preparation
  kGraphState,      ///< graph state on a random 3-regular graph
  kGroundState,     ///< chemistry-inspired VQE ansatz
  kPortfolioQaoa,   ///< QAOA with dense ZZ cost (portfolio optimisation)
  kPortfolioVqe,    ///< fully-entangled RealAmplitudes VQE
  kPricingCall,     ///< option-pricing estimation (call payoff)
  kPricingPut,      ///< option-pricing estimation (put payoff)
  kQaoa,            ///< max-cut QAOA on a sparse random graph
  kQft,             ///< quantum Fourier transform
  kQftEntangled,    ///< QFT applied to a GHZ input
  kQgan,            ///< GAN-style layered ansatz
  kQpeExact,        ///< phase estimation, exactly representable phase
  kQpeInexact,      ///< phase estimation, non-representable phase
  kRealAmpRandom,   ///< RealAmplitudes ansatz, random parameters
  kRouting,         ///< vehicle-routing VQE ansatz
  kSu2Random,       ///< EfficientSU2 ansatz, random parameters
  kTsp,             ///< travelling-salesman QAOA
  kTwoLocalRandom,  ///< TwoLocal ansatz, random parameters
  kVqe,             ///< generic VQE ansatz
  kWstate,          ///< W state preparation
};

inline constexpr int kNumFamilies = 22;

[[nodiscard]] const std::vector<BenchmarkFamily>& all_families();
[[nodiscard]] std::string_view family_name(BenchmarkFamily family);

/// Builds one instance. Preconditions: num_qubits >= 2.
/// The circuit ends with measurements on all qubits and is named
/// "<family>_<n>".
[[nodiscard]] ir::Circuit make_benchmark(BenchmarkFamily family,
                                         int num_qubits,
                                         std::uint64_t seed = 0);

/// The paper's evaluation corpus: `count` circuits cycling through all
/// families and qubit sizes in [min_qubits, max_qubits] (paper: 200
/// circuits, 2..20 qubits).
[[nodiscard]] std::vector<ir::Circuit> benchmark_suite(int min_qubits,
                                                       int max_qubits,
                                                       int count,
                                                       std::uint64_t seed = 7);

}  // namespace qrc::bench
