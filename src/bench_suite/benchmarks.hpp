/// \file benchmarks.hpp
/// \brief MQT-Bench-style benchmark circuit generators: the 22 algorithm
///        families of the paper's evaluation (Fig. 3), parameterised by
///        qubit count, at the target-independent level (with final
///        measurements). Generators are structurally faithful rebuilds of
///        the MQT Bench families; variational families use seeded random
///        parameters.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "ir/circuit.hpp"

namespace qrc::bench {

/// The 22 benchmark families named in Fig. 3 of the paper.
enum class BenchmarkFamily : std::uint8_t {
  kAe,              ///< amplitude estimation
  kDj,              ///< Deutsch-Jozsa
  kGhz,             ///< GHZ state preparation
  kGraphState,      ///< graph state on a random 3-regular graph
  kGroundState,     ///< chemistry-inspired VQE ansatz
  kPortfolioQaoa,   ///< QAOA with dense ZZ cost (portfolio optimisation)
  kPortfolioVqe,    ///< fully-entangled RealAmplitudes VQE
  kPricingCall,     ///< option-pricing estimation (call payoff)
  kPricingPut,      ///< option-pricing estimation (put payoff)
  kQaoa,            ///< max-cut QAOA on a sparse random graph
  kQft,             ///< quantum Fourier transform
  kQftEntangled,    ///< QFT applied to a GHZ input
  kQgan,            ///< GAN-style layered ansatz
  kQpeExact,        ///< phase estimation, exactly representable phase
  kQpeInexact,      ///< phase estimation, non-representable phase
  kRealAmpRandom,   ///< RealAmplitudes ansatz, random parameters
  kRouting,         ///< vehicle-routing VQE ansatz
  kSu2Random,       ///< EfficientSU2 ansatz, random parameters
  kTsp,             ///< travelling-salesman QAOA
  kTwoLocalRandom,  ///< TwoLocal ansatz, random parameters
  kVqe,             ///< generic VQE ansatz
  kWstate,          ///< W state preparation
};

inline constexpr int kNumFamilies = 22;

/// Upper bound on benchmark width: far beyond every library device (127
/// qubits) but small enough that a garbage qubit count (e.g. a parsed -1
/// reinterpreted as a huge int) fails loudly instead of allocating.
inline constexpr int kMaxBenchmarkQubits = 512;

[[nodiscard]] const std::vector<BenchmarkFamily>& all_families();
[[nodiscard]] std::string_view family_name(BenchmarkFamily family);

/// Builds one instance. The circuit ends with measurements on all qubits
/// and is named "<family>_<n>".
/// \throws std::invalid_argument naming the family unless
///         2 <= num_qubits <= kMaxBenchmarkQubits.
[[nodiscard]] ir::Circuit make_benchmark(BenchmarkFamily family,
                                         int num_qubits,
                                         std::uint64_t seed = 0);

/// The paper's evaluation corpus: `count` circuits cycling through all
/// families and qubit sizes in [min_qubits, max_qubits] (paper: 200
/// circuits, 2..20 qubits).
/// \throws std::invalid_argument (naming the offending argument) unless
///         2 <= min_qubits <= max_qubits <= kMaxBenchmarkQubits and
///         count >= 1.
[[nodiscard]] std::vector<ir::Circuit> benchmark_suite(int min_qubits,
                                                       int max_qubits,
                                                       int count,
                                                       std::uint64_t seed = 7);

}  // namespace qrc::bench
