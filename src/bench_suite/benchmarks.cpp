#include "bench_suite/benchmarks.hpp"

#include <cmath>
#include <random>
#include <set>
#include <stdexcept>
#include <string>

#include "la/complex.hpp"

namespace qrc::bench {

namespace {

using ir::Circuit;
using la::kPi;

std::uniform_real_distribution<double> angle_dist(-kPi, kPi);

/// Inverse QFT on qubits [0, m) of `c` (no swaps; wires in natural order).
void inverse_qft(Circuit& c, int m) {
  for (int j = m - 1; j >= 0; --j) {
    for (int k = m - 1; k > j; --k) {
      c.cp(-kPi / std::pow(2.0, k - j), k, j);
    }
    c.h(j);
  }
}

/// Seeded random graph with approximate degree 3 (or complete for tiny n).
std::vector<std::pair<int, int>> random_sparse_graph(int n,
                                                     std::mt19937_64& rng) {
  std::set<std::pair<int, int>> edges;
  // Ring backbone keeps it connected.
  for (int i = 0; i < n; ++i) {
    edges.insert({std::min(i, (i + 1) % n), std::max(i, (i + 1) % n)});
  }
  std::uniform_int_distribution<int> pick(0, n - 1);
  const int extra = n;  // about one extra edge per qubit
  for (int e = 0; e < extra; ++e) {
    const int a = pick(rng);
    const int b = pick(rng);
    if (a != b) {
      edges.insert({std::min(a, b), std::max(a, b)});
    }
  }
  return {edges.begin(), edges.end()};
}

// ---- individual generators -----------------------------------------------

Circuit make_ae(int n, std::mt19937_64& rng) {
  // Canonical QAE: objective qubit n-1 prepared by Ry(theta); evaluation
  // qubits 0..n-2 control powers of the Grover rotation; inverse QFT reads
  // the amplitude out.
  Circuit c(n);
  const double theta = std::abs(angle_dist(rng)) / 2.0 + 0.3;
  const int obj = n - 1;
  const int m = n - 1;
  c.ry(theta, obj);
  for (int k = 0; k < m; ++k) {
    c.h(k);
  }
  for (int k = 0; k < m; ++k) {
    c.cry(std::pow(2.0, k + 1) * theta, k, obj);
  }
  inverse_qft(c, m);
  return c;
}

Circuit make_dj(int n, std::mt19937_64& rng) {
  // Deutsch-Jozsa with a random balanced oracle: ancilla = qubit n-1.
  Circuit c(n);
  const int anc = n - 1;
  std::uniform_int_distribution<int> bit(0, 1);
  c.x(anc);
  for (int q = 0; q < n; ++q) {
    c.h(q);
  }
  for (int q = 0; q + 1 < n; ++q) {
    if (bit(rng) == 1) {
      c.x(q);
    }
    c.cx(q, anc);
    if (bit(rng) == 1) {
      c.x(q);
    }
  }
  for (int q = 0; q + 1 < n; ++q) {
    c.h(q);
  }
  return c;
}

Circuit make_ghz(int n, std::mt19937_64&) {
  Circuit c(n);
  c.h(0);
  for (int i = 0; i + 1 < n; ++i) {
    c.cx(i, i + 1);
  }
  return c;
}

Circuit make_graphstate(int n, std::mt19937_64& rng) {
  Circuit c(n);
  for (int q = 0; q < n; ++q) {
    c.h(q);
  }
  for (const auto& [a, b] : random_sparse_graph(n, rng)) {
    c.cz(a, b);
  }
  return c;
}

/// Hardware-efficient layered ansatz shared by the variational families;
/// the entanglement pattern differentiates them.
enum class Entanglement { kLinear, kReverseLinear, kCircular, kFull };

void entangle_layer(Circuit& c, Entanglement ent, bool use_cz) {
  const int n = c.num_qubits();
  const auto add = [&](int a, int b) {
    if (use_cz) {
      c.cz(a, b);
    } else {
      c.cx(a, b);
    }
  };
  switch (ent) {
    case Entanglement::kLinear:
      for (int i = 0; i + 1 < n; ++i) {
        add(i, i + 1);
      }
      return;
    case Entanglement::kReverseLinear:
      for (int i = n - 2; i >= 0; --i) {
        add(i, i + 1);
      }
      return;
    case Entanglement::kCircular:
      for (int i = 0; i + 1 < n; ++i) {
        add(i, i + 1);
      }
      if (n > 2) {
        add(n - 1, 0);
      }
      return;
    case Entanglement::kFull:
      for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) {
          add(i, j);
        }
      }
      return;
  }
}

Circuit layered_ansatz(int n, std::mt19937_64& rng, int reps,
                       Entanglement ent, bool rz_layer, bool use_cz) {
  Circuit c(n);
  for (int rep = 0; rep < reps; ++rep) {
    for (int q = 0; q < n; ++q) {
      c.ry(angle_dist(rng), q);
      if (rz_layer) {
        c.rz(angle_dist(rng), q);
      }
    }
    entangle_layer(c, ent, use_cz);
  }
  for (int q = 0; q < n; ++q) {
    c.ry(angle_dist(rng), q);
    if (rz_layer) {
      c.rz(angle_dist(rng), q);
    }
  }
  return c;
}

Circuit make_groundstate(int n, std::mt19937_64& rng) {
  // Chemistry-inspired: initial X layer on "occupied orbitals" + TwoLocal.
  Circuit c = layered_ansatz(n, rng, 2, Entanglement::kLinear,
                             /*rz_layer=*/true, /*use_cz=*/false);
  Circuit prep(n);
  for (int q = 0; q < n / 2; ++q) {
    prep.x(q);
  }
  prep.extend(c);
  return prep;
}

void qaoa_cost_layer(Circuit& c,
                     const std::vector<std::pair<int, int>>& edges,
                     double gamma, std::mt19937_64* weights_rng) {
  std::uniform_real_distribution<double> weight(0.2, 1.0);
  for (const auto& [a, b] : edges) {
    const double w = weights_rng != nullptr ? weight(*weights_rng) : 1.0;
    c.rzz(2.0 * gamma * w, a, b);
  }
}

Circuit qaoa_circuit(int n, std::mt19937_64& rng,
                     const std::vector<std::pair<int, int>>& edges,
                     int layers, bool weighted) {
  Circuit c(n);
  for (int q = 0; q < n; ++q) {
    c.h(q);
  }
  for (int l = 0; l < layers; ++l) {
    const double gamma = angle_dist(rng) / 2.0;
    const double beta = angle_dist(rng) / 2.0;
    qaoa_cost_layer(c, edges, gamma, weighted ? &rng : nullptr);
    for (int q = 0; q < n; ++q) {
      c.rx(2.0 * beta, q);
    }
  }
  return c;
}

Circuit make_portfolioqaoa(int n, std::mt19937_64& rng) {
  // Dense covariance cost: every pair interacts.
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      edges.emplace_back(i, j);
    }
  }
  return qaoa_circuit(n, rng, edges, /*layers=*/1, /*weighted=*/true);
}

Circuit make_portfoliovqe(int n, std::mt19937_64& rng) {
  return layered_ansatz(n, rng, 2, Entanglement::kFull, /*rz_layer=*/false,
                        /*use_cz=*/false);
}

Circuit make_pricing(int n, std::mt19937_64& rng, bool call) {
  // Structure of the MQT pricing benchmarks: an uncertainty model loads a
  // distribution on qubits 0..n-2, a controlled-rotation cascade encodes
  // the (piecewise linear) payoff onto the objective qubit n-1.
  Circuit c(n);
  const int obj = n - 1;
  for (int q = 0; q + 1 < n; ++q) {
    c.ry(std::abs(angle_dist(rng)) / 2.0 + 0.2, q);
  }
  for (int q = 0; q + 2 < n; ++q) {
    c.cx(q, q + 1);
  }
  const double slope = (call ? 1.0 : -1.0) * 0.4;
  c.ry(0.3, obj);
  for (int q = 0; q + 1 < n; ++q) {
    c.cry(slope * std::pow(2.0, -q), q, obj);
  }
  return c;
}

Circuit make_qaoa(int n, std::mt19937_64& rng) {
  const auto edges = random_sparse_graph(n, rng);
  return qaoa_circuit(n, rng, edges, /*layers=*/2, /*weighted=*/false);
}

Circuit make_qft(int n, std::mt19937_64&) {
  Circuit c(n);
  for (int j = n - 1; j >= 0; --j) {
    c.h(j);
    for (int k = j - 1; k >= 0; --k) {
      c.cp(kPi / std::pow(2.0, j - k), k, j);
    }
  }
  for (int i = 0; i < n / 2; ++i) {
    c.swap(i, n - 1 - i);
  }
  return c;
}

Circuit make_qftentangled(int n, std::mt19937_64& rng) {
  Circuit c = make_ghz(n, rng);
  c.extend(make_qft(n, rng));
  return c;
}

Circuit make_qgan(int n, std::mt19937_64& rng) {
  return layered_ansatz(n, rng, 2, Entanglement::kCircular,
                        /*rz_layer=*/false, /*use_cz=*/true);
}

Circuit make_qpe(int n, std::mt19937_64& rng, bool exact) {
  // Counting qubits 0..n-2, eigenstate qubit n-1 (|1> of the phase gate).
  Circuit c(n);
  const int m = n - 1;
  const int eigen = n - 1;
  double phase;
  if (exact) {
    std::uniform_int_distribution<int> pick(1, std::max(1, (1 << m) - 1));
    phase = static_cast<double>(pick(rng)) / std::pow(2.0, m);
  } else {
    phase = 1.0 / 3.0;  // never representable in binary
  }
  c.x(eigen);
  for (int k = 0; k < m; ++k) {
    c.h(k);
  }
  for (int k = 0; k < m; ++k) {
    c.cp(2.0 * kPi * phase * std::pow(2.0, k), k, eigen);
  }
  inverse_qft(c, m);
  return c;
}

Circuit make_realamprandom(int n, std::mt19937_64& rng) {
  return layered_ansatz(n, rng, 3, Entanglement::kReverseLinear,
                        /*rz_layer=*/false, /*use_cz=*/false);
}

Circuit make_routing(int n, std::mt19937_64& rng) {
  // Vehicle-routing VQE: doubled linear entanglement per repetition.
  Circuit c(n);
  for (int rep = 0; rep < 2; ++rep) {
    for (int q = 0; q < n; ++q) {
      c.ry(angle_dist(rng), q);
    }
    entangle_layer(c, Entanglement::kLinear, false);
    entangle_layer(c, Entanglement::kLinear, false);
  }
  for (int q = 0; q < n; ++q) {
    c.ry(angle_dist(rng), q);
  }
  return c;
}

Circuit make_su2random(int n, std::mt19937_64& rng) {
  return layered_ansatz(n, rng, 3, Entanglement::kReverseLinear,
                        /*rz_layer=*/true, /*use_cz=*/false);
}

Circuit make_tsp(int n, std::mt19937_64& rng) {
  // Distance-weighted complete-graph QAOA; two layers (the one-hot TSP
  // encoding needs deeper mixing than portfolio optimisation).
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      edges.emplace_back(i, j);
    }
  }
  return qaoa_circuit(n, rng, edges, /*layers=*/2, /*weighted=*/true);
}

Circuit make_twolocalrandom(int n, std::mt19937_64& rng) {
  return layered_ansatz(n, rng, 3, Entanglement::kCircular,
                        /*rz_layer=*/false, /*use_cz=*/true);
}

Circuit make_vqe(int n, std::mt19937_64& rng) {
  return layered_ansatz(n, rng, 1, Entanglement::kLinear, /*rz_layer=*/true,
                        /*use_cz=*/false);
}

Circuit make_wstate(int n, std::mt19937_64&) {
  // Standard recursive W-state construction with controlled-Ry "splits".
  Circuit c(n);
  c.x(n - 1);
  for (int k = n - 1; k >= 1; --k) {
    const double theta =
        2.0 * std::acos(std::sqrt(1.0 / static_cast<double>(k + 1)));
    c.cry(theta, k, k - 1);
    c.cx(k - 1, k);
  }
  return c;
}

}  // namespace

const std::vector<BenchmarkFamily>& all_families() {
  static const std::vector<BenchmarkFamily> kAll = {
      BenchmarkFamily::kAe,           BenchmarkFamily::kDj,
      BenchmarkFamily::kGhz,          BenchmarkFamily::kGraphState,
      BenchmarkFamily::kGroundState,  BenchmarkFamily::kPortfolioQaoa,
      BenchmarkFamily::kPortfolioVqe, BenchmarkFamily::kPricingCall,
      BenchmarkFamily::kPricingPut,   BenchmarkFamily::kQaoa,
      BenchmarkFamily::kQft,          BenchmarkFamily::kQftEntangled,
      BenchmarkFamily::kQgan,         BenchmarkFamily::kQpeExact,
      BenchmarkFamily::kQpeInexact,   BenchmarkFamily::kRealAmpRandom,
      BenchmarkFamily::kRouting,      BenchmarkFamily::kSu2Random,
      BenchmarkFamily::kTsp,          BenchmarkFamily::kTwoLocalRandom,
      BenchmarkFamily::kVqe,          BenchmarkFamily::kWstate};
  return kAll;
}

std::string_view family_name(BenchmarkFamily family) {
  switch (family) {
    case BenchmarkFamily::kAe:
      return "ae";
    case BenchmarkFamily::kDj:
      return "dj";
    case BenchmarkFamily::kGhz:
      return "ghz";
    case BenchmarkFamily::kGraphState:
      return "graphstate";
    case BenchmarkFamily::kGroundState:
      return "groundstate";
    case BenchmarkFamily::kPortfolioQaoa:
      return "portfolioqaoa";
    case BenchmarkFamily::kPortfolioVqe:
      return "portfoliovqe";
    case BenchmarkFamily::kPricingCall:
      return "pricingcall";
    case BenchmarkFamily::kPricingPut:
      return "pricingput";
    case BenchmarkFamily::kQaoa:
      return "qaoa";
    case BenchmarkFamily::kQft:
      return "qft";
    case BenchmarkFamily::kQftEntangled:
      return "qftentangled";
    case BenchmarkFamily::kQgan:
      return "qgan";
    case BenchmarkFamily::kQpeExact:
      return "qpeexact";
    case BenchmarkFamily::kQpeInexact:
      return "qpeinexact";
    case BenchmarkFamily::kRealAmpRandom:
      return "realamprandom";
    case BenchmarkFamily::kRouting:
      return "routing";
    case BenchmarkFamily::kSu2Random:
      return "su2random";
    case BenchmarkFamily::kTsp:
      return "tsp";
    case BenchmarkFamily::kTwoLocalRandom:
      return "twolocalrandom";
    case BenchmarkFamily::kVqe:
      return "vqe";
    case BenchmarkFamily::kWstate:
      return "wstate";
  }
  return "unknown";
}

ir::Circuit make_benchmark(BenchmarkFamily family, int num_qubits,
                           std::uint64_t seed) {
  // Several generators index qubit n-1 or split off an ancilla, so a bad
  // qubit count is UB, not just a degenerate circuit — reject it eagerly
  // and name the family so sweeps can report which instance was bad.
  if (num_qubits < 2 || num_qubits > kMaxBenchmarkQubits) {
    throw std::invalid_argument(
        "make_benchmark: family '" + std::string(family_name(family)) +
        "' needs 2 <= num_qubits <= " + std::to_string(kMaxBenchmarkQubits) +
        ", got " + std::to_string(num_qubits));
  }
  std::mt19937_64 rng(seed * 2654435761u + static_cast<std::uint64_t>(family) * 97u +
                      static_cast<std::uint64_t>(num_qubits));
  Circuit c;
  switch (family) {
    case BenchmarkFamily::kAe:
      c = make_ae(num_qubits, rng);
      break;
    case BenchmarkFamily::kDj:
      c = make_dj(num_qubits, rng);
      break;
    case BenchmarkFamily::kGhz:
      c = make_ghz(num_qubits, rng);
      break;
    case BenchmarkFamily::kGraphState:
      c = make_graphstate(num_qubits, rng);
      break;
    case BenchmarkFamily::kGroundState:
      c = make_groundstate(num_qubits, rng);
      break;
    case BenchmarkFamily::kPortfolioQaoa:
      c = make_portfolioqaoa(num_qubits, rng);
      break;
    case BenchmarkFamily::kPortfolioVqe:
      c = make_portfoliovqe(num_qubits, rng);
      break;
    case BenchmarkFamily::kPricingCall:
      c = make_pricing(num_qubits, rng, true);
      break;
    case BenchmarkFamily::kPricingPut:
      c = make_pricing(num_qubits, rng, false);
      break;
    case BenchmarkFamily::kQaoa:
      c = make_qaoa(num_qubits, rng);
      break;
    case BenchmarkFamily::kQft:
      c = make_qft(num_qubits, rng);
      break;
    case BenchmarkFamily::kQftEntangled:
      c = make_qftentangled(num_qubits, rng);
      break;
    case BenchmarkFamily::kQgan:
      c = make_qgan(num_qubits, rng);
      break;
    case BenchmarkFamily::kQpeExact:
      c = make_qpe(num_qubits, rng, true);
      break;
    case BenchmarkFamily::kQpeInexact:
      c = make_qpe(num_qubits, rng, false);
      break;
    case BenchmarkFamily::kRealAmpRandom:
      c = make_realamprandom(num_qubits, rng);
      break;
    case BenchmarkFamily::kRouting:
      c = make_routing(num_qubits, rng);
      break;
    case BenchmarkFamily::kSu2Random:
      c = make_su2random(num_qubits, rng);
      break;
    case BenchmarkFamily::kTsp:
      c = make_tsp(num_qubits, rng);
      break;
    case BenchmarkFamily::kTwoLocalRandom:
      c = make_twolocalrandom(num_qubits, rng);
      break;
    case BenchmarkFamily::kVqe:
      c = make_vqe(num_qubits, rng);
      break;
    case BenchmarkFamily::kWstate:
      c = make_wstate(num_qubits, rng);
      break;
  }
  c.measure_all();
  c.set_name(std::string(family_name(family)) + "_" +
             std::to_string(num_qubits));
  return c;
}

std::vector<ir::Circuit> benchmark_suite(int min_qubits, int max_qubits,
                                         int count, std::uint64_t seed) {
  if (min_qubits < 2) {
    throw std::invalid_argument(
        "benchmark_suite: min_qubits must be >= 2, got " +
        std::to_string(min_qubits));
  }
  if (max_qubits < min_qubits || max_qubits > kMaxBenchmarkQubits) {
    throw std::invalid_argument(
        "benchmark_suite: max_qubits must be in [min_qubits, " +
        std::to_string(kMaxBenchmarkQubits) + "], got " +
        std::to_string(max_qubits) + " (min_qubits " +
        std::to_string(min_qubits) + ")");
  }
  if (count < 1) {
    throw std::invalid_argument("benchmark_suite: count must be >= 1, got " +
                                std::to_string(count));
  }
  std::vector<ir::Circuit> out;
  out.reserve(static_cast<std::size_t>(count));
  const auto& families = all_families();
  int n = min_qubits;
  std::size_t family_idx = 0;
  std::uint64_t instance = 0;
  while (static_cast<int>(out.size()) < count) {
    out.push_back(
        make_benchmark(families[family_idx], n, seed + instance));
    ++family_idx;
    if (family_idx == families.size()) {
      family_idx = 0;
      ++n;
      if (n > max_qubits) {
        n = min_qubits;
        ++instance;
      }
    }
  }
  return out;
}

}  // namespace qrc::bench
