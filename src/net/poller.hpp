/// \file poller.hpp
/// \brief Readiness-notification abstraction for the serve event loop:
///        an epoll backend on Linux and a portable poll(2) fallback,
///        selectable at runtime (`--poller` on the CLI, kAuto by default).
#pragma once

#include <memory>
#include <string_view>
#include <vector>

namespace qrc::net {

/// One readiness report from Poller::wait().
struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  /// Error/hangup on the fd; the owner should tear the connection down.
  bool closed = false;
};

/// Which backend to instantiate.
enum class PollerKind : std::uint8_t {
  kAuto,   ///< epoll where available, else poll
  kEpoll,  ///< Linux epoll (throws elsewhere)
  kPoll,   ///< portable poll(2)
};

/// Level-triggered readiness interface. Not thread-safe: all calls must
/// come from the single event-loop thread that owns it.
class Poller {
 public:
  virtual ~Poller() = default;

  /// Registers `fd` (or updates its interest set if already registered).
  virtual void set(int fd, bool want_read, bool want_write) = 0;

  /// Deregisters `fd`; must be called before the fd is closed.
  virtual void remove(int fd) = 0;

  /// Blocks up to `timeout_ms` (-1 = indefinitely) and appends ready fds
  /// to `out` (which is cleared first). Returns the number of events.
  virtual int wait(std::vector<PollEvent>& out, int timeout_ms) = 0;

  /// Backend name for logs/benchmarks ("epoll" or "poll").
  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// \throws std::runtime_error when kEpoll is requested on a platform
///         without epoll support.
[[nodiscard]] std::unique_ptr<Poller> make_poller(PollerKind kind);

}  // namespace qrc::net
