#include "net/poller.hpp"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#ifdef __linux__
#include <sys/epoll.h>
#endif

namespace qrc::net {

namespace {

#ifdef __linux__
class EpollPoller final : public Poller {
 public:
  EpollPoller() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {
    if (epfd_ < 0) {
      throw std::runtime_error(std::string("epoll_create1: ") +
                               std::strerror(errno));
    }
  }
  ~EpollPoller() override { ::close(epfd_); }

  void set(int fd, bool want_read, bool want_write) override {
    epoll_event ev{};
    ev.data.fd = fd;
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    const bool known = registered_.count(fd) > 0;
    const int op = known ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
    if (::epoll_ctl(epfd_, op, fd, &ev) != 0) {
      throw std::runtime_error(std::string("epoll_ctl: ") +
                               std::strerror(errno));
    }
    registered_.insert(fd);
  }

  void remove(int fd) override {
    if (registered_.erase(fd) > 0) {
      ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
    }
  }

  int wait(std::vector<PollEvent>& out, int timeout_ms) override {
    out.clear();
    epoll_event events[64];
    const int n = ::epoll_wait(epfd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) {
        return 0;
      }
      throw std::runtime_error(std::string("epoll_wait: ") +
                               std::strerror(errno));
    }
    for (int i = 0; i < n; ++i) {
      PollEvent e;
      e.fd = events[i].data.fd;
      e.readable = (events[i].events & EPOLLIN) != 0;
      e.writable = (events[i].events & EPOLLOUT) != 0;
      e.closed = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(e);
    }
    return n;
  }

  [[nodiscard]] std::string_view name() const override { return "epoll"; }

 private:
  int epfd_;
  // epoll_ctl needs ADD vs MOD picked correctly; track membership here.
  std::unordered_set<int> registered_;
};
#endif  // __linux__

class PollPoller final : public Poller {
 public:
  void set(int fd, bool want_read, bool want_write) override {
    short events = 0;
    if (want_read) {
      events |= POLLIN;
    }
    if (want_write) {
      events |= POLLOUT;
    }
    interest_[fd] = events;
  }

  void remove(int fd) override { interest_.erase(fd); }

  int wait(std::vector<PollEvent>& out, int timeout_ms) override {
    out.clear();
    pollfds_.clear();
    for (const auto& [fd, events] : interest_) {
      pollfds_.push_back(pollfd{fd, events, 0});
    }
    const int n = ::poll(pollfds_.data(),
                         static_cast<nfds_t>(pollfds_.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) {
        return 0;
      }
      throw std::runtime_error(std::string("poll: ") +
                               std::strerror(errno));
    }
    for (const pollfd& p : pollfds_) {
      if (p.revents == 0) {
        continue;
      }
      PollEvent e;
      e.fd = p.fd;
      e.readable = (p.revents & POLLIN) != 0;
      e.writable = (p.revents & POLLOUT) != 0;
      e.closed = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      out.push_back(e);
    }
    return static_cast<int>(out.size());
  }

  [[nodiscard]] std::string_view name() const override { return "poll"; }

 private:
  std::unordered_map<int, short> interest_;
  std::vector<pollfd> pollfds_;  // scratch, rebuilt per wait
};

}  // namespace

std::unique_ptr<Poller> make_poller(PollerKind kind) {
#ifdef __linux__
  if (kind == PollerKind::kAuto || kind == PollerKind::kEpoll) {
    return std::make_unique<EpollPoller>();
  }
#else
  if (kind == PollerKind::kEpoll) {
    throw std::runtime_error("epoll poller is only available on Linux");
  }
#endif
  return std::make_unique<PollPoller>();
}

}  // namespace qrc::net
