/// \file socket.hpp
/// \brief Thin POSIX TCP helpers for the serve layer: an owning fd
///        wrapper, non-blocking listener setup, blocking client connects,
///        and a buffered line reader for clients/tests. No protocol
///        knowledge lives here — framing and JSON stay in service/jsonl.
#pragma once

#include <optional>
#include <string>
#include <utility>

namespace qrc::net {

/// Owning file-descriptor handle; closes on destruction. Movable only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.release()) {}
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.release();
    }
    return *this;
  }

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  /// Gives up ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void close();

 private:
  int fd_ = -1;
};

/// Splits "HOST:PORT" (port 0 allowed: the OS picks an ephemeral port).
/// \throws std::runtime_error on a malformed spec.
[[nodiscard]] std::pair<std::string, int> parse_host_port(
    const std::string& spec);

/// Opens a non-blocking listening TCP socket bound to host:port
/// (SO_REUSEADDR set, CLOEXEC, backlog per listen(2) SOMAXCONN).
/// \throws std::runtime_error with errno detail on failure.
[[nodiscard]] Socket listen_tcp(const std::string& host, int port);

/// The locally bound port of a socket (resolves port 0 after bind).
[[nodiscard]] int local_port(int fd);

/// Blocking TCP connect for clients and tests.
/// \throws std::runtime_error with errno detail on failure.
[[nodiscard]] Socket connect_tcp(const std::string& host, int port);

/// Puts `fd` into non-blocking mode.
void set_nonblocking(int fd);

/// Blocking write of the whole buffer (loops over short writes).
/// \throws std::runtime_error when the peer is gone.
void send_all(int fd, const std::string& data);

/// Blocking newline-delimited reader over a socket, for clients and
/// tests. Keeps a carry buffer across reads; returns lines without the
/// trailing '\n' (a '\r' before it is stripped too), nullopt on EOF.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// \throws std::runtime_error on a read error (not on orderly EOF).
  std::optional<std::string> next_line();

 private:
  int fd_;
  std::string buffer_;
  bool eof_ = false;
};

}  // namespace qrc::net
