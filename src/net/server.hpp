/// \file server.hpp
/// \brief Non-blocking TCP front end for the compile service: a single
///        event-loop thread multiplexes many connections over a Poller,
///        speaks the line-delimited serve protocol (v1 envelope + bare v0
///        compat), and hands admitted work to CompileService's sharded
///        per-model lanes via SubmitHooks. Lane threads never touch a
///        socket — completed frames cross back to the loop through a
///        mutex-guarded outbound queue and a wake pipe.
///
/// Overload behaviour is typed, never silent: a connection over its
/// in-flight cap or a lane over its queue bound gets an "overloaded"
/// error frame; an over-long line gets "frame_too_large" and the rest of
/// that line is discarded without killing the connection. A growing
/// write buffer pauses reads on that connection (backpressure) instead
/// of buffering without bound.
///
/// Observability: all counters live in the service's MetricsRegistry
/// (qrc_net_*); ServerStats is a thin snapshot read. Requests with
/// "trace":true get a TraceContext allocated at frame decode whose span
/// tree rides back on the response frame. An optional second listener
/// (`metrics_host`/`metrics_port`) serves the ops endpoints on the same
/// Poller loop: GET /metrics (Prometheus exposition), /healthz
/// (liveness), /readyz (models loaded and lanes accepting), /statusz
/// (build info, uptime, service snapshot, profiler/process counters,
/// recent flight-recorder and log tails), /debugz (flight-recorder dump
/// as JSON) and /profilez?seconds=N&hz=H (sampling-profiler session;
/// folded stacks, collected off-loop so other connections keep being
/// served, deterministic 400s on bad params). HEAD works on all of
/// them; other methods get 405.
///
/// Graceful drain (`request_drain()`, async-signal-safe) stops accepting,
/// lets in-flight requests finish, flushes their frames, then exits the
/// loop — wired to SIGINT/SIGTERM by `qrc serve --listen`.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/poller.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "service/compile_service.hpp"

namespace qrc::net {

struct ServerConfig {
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back via Server::port().
  int port = 0;
  /// Longest accepted request line (bytes, excluding the newline);
  /// longer lines get a frame_too_large error and are discarded.
  std::size_t max_frame_bytes = 1 << 20;
  /// Per-connection cap on submitted-but-unanswered compiles; the
  /// excess is shed with an "overloaded" error frame.
  std::size_t max_inflight_per_conn = 32;
  /// Write-buffer high watermark: past it the connection's reads pause
  /// until the peer drains below half of it.
  std::size_t max_write_buffer = 4u << 20;
  /// New connections past this are accepted and immediately closed.
  std::size_t max_connections = 256;
  PollerKind poller = PollerKind::kAuto;
  /// HTTP GET /metrics side listener. metrics_port < 0 (default)
  /// disables it; 0 picks an ephemeral port (Server::metrics_port()).
  std::string metrics_host = "127.0.0.1";
  int metrics_port = -1;
};

/// Monotonic counters, all since start(). Snapshot via Server::stats();
/// assembled from the service's MetricsRegistry (qrc_net_* families).
struct ServerStats {
  std::uint64_t accepted = 0;         ///< connections accepted
  std::uint64_t rejected = 0;         ///< closed at the connection cap
  std::uint64_t frames_in = 0;        ///< request lines parsed or refused
  std::uint64_t frames_out = 0;       ///< response lines queued
  std::uint64_t partial_frames = 0;   ///< "partial" lines queued
  std::uint64_t error_frames = 0;     ///< "error" lines queued
  std::uint64_t oversized_frames = 0; ///< lines over max_frame_bytes
  std::uint64_t shed_inflight = 0;    ///< compiles shed at the conn cap
};

/// The socket serve layer. One instance owns one listener, one poller
/// and one event-loop thread. Construct, start(), and keep it alive
/// until stop() returns; the referenced CompileService must outlive it.
class Server {
 public:
  Server(service::CompileService& service, ServerConfig config);
  /// Calls stop(); safe when never started.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and launches the event loop.
  /// \throws std::runtime_error when the bind fails.
  void start();

  /// The bound port (resolves config.port == 0). Valid after start().
  [[nodiscard]] int port() const { return port_; }

  /// The bound /metrics port, or -1 when disabled. Valid after start().
  [[nodiscard]] int metrics_port() const { return metrics_port_; }

  /// Async-signal-safe graceful-drain request: stop accepting, answer
  /// everything in flight, flush, then exit the loop. Idempotent.
  void request_drain();

  /// request_drain() + join. Blocks until every in-flight request has
  /// been answered and the loop has exited. Idempotent.
  void stop();

  /// Blocks until the event loop exits (e.g. after a signal-triggered
  /// drain). Returns immediately when never started.
  void join();

  [[nodiscard]] ServerStats stats() const;

 private:
  struct Conn {
    Socket sock;
    std::uint64_t id = 0;
    std::string rbuf;
    std::string wbuf;
    std::size_t woff = 0;  ///< bytes of wbuf already written
    std::size_t inflight = 0;
    bool discarding = false;  ///< skipping the rest of an oversized line
    bool peer_eof = false;
    bool read_paused = false;
    bool http = false;  ///< accepted on the /metrics listener
  };

  /// A frame produced on a lane thread, destined for one connection.
  struct Outbound {
    std::uint64_t conn_id = 0;
    std::string line;
    /// Final frames release one in-flight slot (partials do not).
    bool final_frame = false;
    /// Raw payloads (complete HTTP responses from the /profilez worker)
    /// are appended verbatim — no newline framing.
    bool raw = false;
  };

  void run_loop();
  void accept_ready(Socket& listener, bool http);
  void handle_readable(Conn& conn);
  void handle_writable(Conn& conn);
  void process_lines(Conn& conn);
  void handle_line(Conn& conn, const std::string& line);
  /// One-shot HTTP/1.0 handler for the ops listener: answers the first
  /// complete GET/HEAD deterministically (pipelined extra requests are
  /// dropped by the close), 405s other methods, 400s garbage and
  /// truncated request heads, and closes after the flush.
  void handle_http(Conn& conn);
  /// Routes one parsed (method, path) to a response; fills status, body
  /// and content type.
  void route_http(const std::string& method, const std::string& path,
                  std::string& status, std::string& content_type,
                  std::string& body);
  [[nodiscard]] std::string render_statusz() const;
  /// Publishes scrape-time families (qrc_process_*, qrc_profile_*) into
  /// the service registry and renders the exposition.
  [[nodiscard]] std::string render_metrics();
  /// Spawns the worker thread backing one profiling request (HTTP
  /// /profilez or the v1 "profile" op). The sampling window runs off the
  /// event loop; the finished frame crosses back via enqueue_outbound
  /// and is accounted like an in-flight compile, so graceful drain waits
  /// for it. Params must already be validated.
  void start_profile_job(std::uint64_t conn_id, double seconds, int hz,
                         bool http, std::string id, int version);
  void queue_frame(Conn& conn, std::string line, bool is_error);
  void enqueue_outbound(std::uint64_t conn_id, std::string line,
                        bool final_frame, bool raw = false);
  void drain_outbound();
  void update_interest(Conn& conn);
  void close_conn(std::uint64_t conn_id);
  [[nodiscard]] bool drain_complete() const;

  service::CompileService& service_;
  ServerConfig config_;

  Socket listener_;
  int port_ = 0;
  Socket metrics_listener_;
  int metrics_port_ = -1;
  Socket wake_read_;
  Socket wake_write_;
  std::unique_ptr<Poller> poller_;
  std::thread loop_;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::chrono::steady_clock::time_point started_at_{};  ///< set by start()

  // Registry handles (service_.metrics() is the source of truth).
  obs::Counter* accepted_ = nullptr;
  obs::Counter* rejected_ = nullptr;
  obs::Counter* frames_in_ = nullptr;
  obs::Counter* frames_out_ = nullptr;
  obs::Counter* partial_frames_ = nullptr;
  obs::Counter* error_frames_ = nullptr;
  obs::Counter* oversized_frames_ = nullptr;
  obs::Counter* shed_inflight_ = nullptr;
  obs::Counter* metrics_scrapes_ = nullptr;
  obs::Counter* profilez_requests_ = nullptr;
  obs::Histogram* scrape_seconds_ = nullptr;
  obs::Gauge* connections_active_ = nullptr;

  std::uint64_t next_conn_id_ = 1;
  std::unordered_map<std::uint64_t, Conn> conns_;
  std::unordered_map<int, std::uint64_t> fd_to_conn_;
  /// Compiles accepted by the service whose final frame has not yet been
  /// consumed by the loop; the drain waits for this to reach zero.
  std::size_t pending_ = 0;

  mutable std::mutex outbound_mutex_;
  std::vector<Outbound> outbound_;

  /// Profiling workers in flight; joined after the loop exits (their
  /// final frames hold pending_ up, so the drain already waited for
  /// them — the join only reclaims the thread handles).
  std::mutex profile_threads_mutex_;
  std::vector<std::thread> profile_threads_;
};

}  // namespace qrc::net
