#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace qrc::net {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// getaddrinfo wrapper shared by listen/connect; returns an owned result
/// list (freed by the caller via freeaddrinfo).
addrinfo* resolve(const std::string& host, int port, bool passive) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = passive ? AI_PASSIVE : 0;
  addrinfo* result = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               service.c_str(), &hints, &result);
  if (rc != 0) {
    throw std::runtime_error("cannot resolve '" + host +
                             "': " + gai_strerror(rc));
  }
  return result;
}

}  // namespace

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::pair<std::string, int> parse_host_port(const std::string& spec) {
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= spec.size()) {
    throw std::runtime_error("expected HOST:PORT, got '" + spec + "'");
  }
  const std::string port_text = spec.substr(colon + 1);
  std::size_t end = 0;
  int port = 0;
  try {
    port = std::stoi(port_text, &end);
  } catch (const std::exception&) {
    end = 0;
  }
  if (end != port_text.size() || port < 0 || port > 65535) {
    throw std::runtime_error("bad port '" + port_text + "' in '" + spec +
                             "'");
  }
  return {spec.substr(0, colon), port};
}

Socket listen_tcp(const std::string& host, int port) {
  addrinfo* addrs = resolve(host, port, /*passive=*/true);
  std::string last_error = "no addresses";
  for (const addrinfo* a = addrs; a != nullptr; a = a->ai_next) {
    Socket sock(::socket(a->ai_family,
                         a->ai_socktype | SOCK_NONBLOCK | SOCK_CLOEXEC,
                         a->ai_protocol));
    if (!sock.valid()) {
      last_error = std::strerror(errno);
      continue;
    }
    const int one = 1;
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(sock.fd(), a->ai_addr, a->ai_addrlen) != 0 ||
        ::listen(sock.fd(), SOMAXCONN) != 0) {
      last_error = std::strerror(errno);
      continue;
    }
    ::freeaddrinfo(addrs);
    return sock;
  }
  ::freeaddrinfo(addrs);
  throw std::runtime_error("cannot listen on " + host + ":" +
                           std::to_string(port) + ": " + last_error);
}

int local_port(int fd) {
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    fail_errno("getsockname");
  }
  if (addr.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<const sockaddr_in*>(&addr)->sin_port);
  }
  if (addr.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<const sockaddr_in6*>(&addr)->sin6_port);
  }
  throw std::runtime_error("local_port: unsupported address family");
}

Socket connect_tcp(const std::string& host, int port) {
  addrinfo* addrs = resolve(host, port, /*passive=*/false);
  std::string last_error = "no addresses";
  for (const addrinfo* a = addrs; a != nullptr; a = a->ai_next) {
    Socket sock(::socket(a->ai_family, a->ai_socktype | SOCK_CLOEXEC,
                         a->ai_protocol));
    if (!sock.valid()) {
      last_error = std::strerror(errno);
      continue;
    }
    if (::connect(sock.fd(), a->ai_addr, a->ai_addrlen) != 0) {
      last_error = std::strerror(errno);
      continue;
    }
    ::freeaddrinfo(addrs);
    return sock;
  }
  ::freeaddrinfo(addrs);
  throw std::runtime_error("cannot connect to " + host + ":" +
                           std::to_string(port) + ": " + last_error);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    fail_errno("fcntl(O_NONBLOCK)");
  }
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      fail_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::optional<std::string> LineReader::next_line() {
  for (;;) {
    const auto newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      return line;
    }
    if (eof_) {
      return std::nullopt;  // trailing partial line is dropped on EOF
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      fail_errno("recv");
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace qrc::net
