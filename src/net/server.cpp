#include "net/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "ir/qasm.hpp"
#include "obs/build_info.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/perf_counters.hpp"
#include "obs/process_stats.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "rl/mlp.hpp"
#include "service/jsonl.hpp"

namespace qrc::net {

namespace {

/// Parses the /profilez query string. Accepts only `seconds` (number in
/// (0, 60]) and `hz` (integer in [1, 1000]); anything else — unknown
/// keys, non-numeric values, zero/negative/oversized ranges — fills
/// `error` with a deterministic one-line message and returns false.
bool parse_profilez_query(const std::string& path, double& seconds, int& hz,
                          std::string& error) {
  const auto qmark = path.find('?');
  if (qmark == std::string::npos) {
    return true;  // defaults
  }
  std::string query = path.substr(qmark + 1);
  std::size_t pos = 0;
  while (pos <= query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) {
      amp = query.size();
    }
    const std::string pair = query.substr(pos, amp - pos);
    pos = amp + 1;
    if (pair.empty()) {
      continue;
    }
    const auto eq = pair.find('=');
    const std::string key = pair.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : pair.substr(eq + 1);
    if (key == "seconds") {
      char* end = nullptr;
      const double v = std::strtod(value.c_str(), &end);
      if (value.empty() || end == nullptr || *end != '\0') {
        error = "bad 'seconds': not a number\n";
        return false;
      }
      if (!(v > 0.0) || v > obs::Profiler::kMaxSeconds) {
        error = "bad 'seconds': must be in (0, 60]\n";
        return false;
      }
      seconds = v;
    } else if (key == "hz") {
      char* end = nullptr;
      const long v = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || end == nullptr || *end != '\0') {
        error = "bad 'hz': not an integer\n";
        return false;
      }
      if (v < obs::Profiler::kMinHz || v > obs::Profiler::kMaxHz) {
        error = "bad 'hz': must be in [1, 1000]\n";
        return false;
      }
      hz = static_cast<int>(v);
    } else {
      error = "unknown query parameter '" + key +
              "' (expected seconds, hz)\n";
      return false;
    }
  }
  return true;
}

}  // namespace

Server::Server(service::CompileService& service, ServerConfig config)
    : service_(service), config_(std::move(config)) {
  obs::MetricsRegistry& reg = service_.metrics();
  accepted_ = &reg.counter("qrc_net_accepted_total", "Connections accepted");
  rejected_ = &reg.counter("qrc_net_rejected_total",
                           "Connections closed at the connection cap");
  frames_in_ = &reg.counter("qrc_net_frames_in_total",
                            "Request lines parsed or refused");
  frames_out_ =
      &reg.counter("qrc_net_frames_out_total", "Response lines queued");
  partial_frames_ =
      &reg.counter("qrc_net_partial_frames_total", "Partial lines queued");
  error_frames_ =
      &reg.counter("qrc_net_error_frames_total", "Error lines queued");
  oversized_frames_ = &reg.counter("qrc_net_oversized_frames_total",
                                   "Lines over max_frame_bytes");
  shed_inflight_ = &reg.counter(
      "qrc_shed_total", "Requests refused by admission control",
      {{"reason", "conn_inflight"}});
  metrics_scrapes_ = &reg.counter(
      "qrc_net_metrics_scrapes_total",
      "HTTP metrics-family scrapes answered (/metrics and /profilez)");
  profilez_requests_ = &reg.counter(
      "qrc_net_profilez_requests_total",
      "HTTP /profilez requests answered (any status)");
  // The obs layer observing itself: how long each ops-endpoint scrape
  // takes to assemble its response body.
  scrape_seconds_ = &reg.histogram(
      "qrc_obs_scrape_seconds",
      "Ops-endpoint response assembly time in seconds",
      {1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1.0});
  connections_active_ =
      &reg.gauge("qrc_net_connections_active", "Open connections");
  obs::stamp_build_info(reg, rl::simd_kernel_name());
}

Server::~Server() { stop(); }

void Server::start() {
  if (started_.load()) {
    throw std::runtime_error("server already started");
  }
  listener_ = listen_tcp(config_.host, config_.port);
  port_ = local_port(listener_.fd());
  if (config_.metrics_port >= 0) {
    metrics_listener_ = listen_tcp(config_.metrics_host, config_.metrics_port);
    metrics_port_ = local_port(metrics_listener_.fd());
  }

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    throw std::runtime_error(std::string("pipe: ") + std::strerror(errno));
  }
  wake_read_ = Socket(pipe_fds[0]);
  wake_write_ = Socket(pipe_fds[1]);
  set_nonblocking(wake_read_.fd());
  set_nonblocking(wake_write_.fd());

  poller_ = make_poller(config_.poller);
  poller_->set(listener_.fd(), /*want_read=*/true, /*want_write=*/false);
  if (metrics_listener_.valid()) {
    poller_->set(metrics_listener_.fd(), /*want_read=*/true,
                 /*want_write=*/false);
  }
  poller_->set(wake_read_.fd(), /*want_read=*/true, /*want_write=*/false);

  started_.store(true);
  started_at_ = std::chrono::steady_clock::now();
  obs::FlightRecorder::instance().record(
      obs::FlightEventKind::kLifecycle, "net",
      "server listening on port " + std::to_string(port_));
  obs::Logger::instance().logf(
      obs::LogLevel::kInfo, "net", "%s listening on %s:%d (metrics %d)",
      obs::build_info_line(rl::simd_kernel_name()).c_str(),
      config_.host.c_str(), port_, metrics_port_);
  loop_ = std::thread(&Server::run_loop, this);
}

void Server::request_drain() {
  // Async-signal-safe: one atomic store and one write(2); the loop
  // notices the flag on its next wake-up.
  draining_.store(true);
  if (wake_write_.valid()) {
    const char byte = 'd';
    [[maybe_unused]] const ssize_t n =
        ::write(wake_write_.fd(), &byte, 1);
  }
}

void Server::stop() {
  request_drain();
  join();
}

void Server::join() {
  if (loop_.joinable()) {
    loop_.join();
  }
  // The loop only exits once pending_ hit zero, which requires every
  // profile worker's final frame to have been drained — so these joins
  // are immediate; they just reclaim the handles.
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(profile_threads_mutex_);
    workers.swap(profile_threads_);
  }
  for (std::thread& t : workers) {
    if (t.joinable()) {
      t.join();
    }
  }
}

ServerStats Server::stats() const {
  ServerStats out;
  out.accepted = accepted_->value();
  out.rejected = rejected_->value();
  out.frames_in = frames_in_->value();
  out.frames_out = frames_out_->value();
  out.partial_frames = partial_frames_->value();
  out.error_frames = error_frames_->value();
  out.oversized_frames = oversized_frames_->value();
  out.shed_inflight = shed_inflight_->value();
  return out;
}

bool Server::drain_complete() const {
  return conns_.empty() && pending_ == 0;
}

void Server::run_loop() {
  // The loop thread can appear in sampled stacks; give the profiler its
  // stack bounds so fp-walks are validated rather than PC-only.
  obs::Profiler::enroll_current_thread();
  std::vector<PollEvent> events;
  for (;;) {
    if (draining_.load()) {
      if (listener_.valid()) {
        poller_->remove(listener_.fd());
        listener_.close();
      }
      if (metrics_listener_.valid()) {
        poller_->remove(metrics_listener_.fd());
        metrics_listener_.close();
      }
      // Close every connection with nothing left to say; the rest are
      // closed as their final frames flush.
      std::vector<std::uint64_t> idle;
      for (auto& [id, conn] : conns_) {
        if (conn.inflight == 0 && conn.woff >= conn.wbuf.size()) {
          idle.push_back(id);
        } else {
          update_interest(conn);  // stop reading while draining
        }
      }
      for (const std::uint64_t id : idle) {
        close_conn(id);
      }
      if (drain_complete()) {
        break;
      }
    }

    poller_->wait(events, /*timeout_ms=*/200);
    for (const PollEvent& e : events) {
      if (e.fd == wake_read_.fd()) {
        char sink[256];
        while (::read(wake_read_.fd(), sink, sizeof(sink)) > 0) {
        }
        continue;
      }
      if (listener_.valid() && e.fd == listener_.fd()) {
        accept_ready(listener_, /*http=*/false);
        continue;
      }
      if (metrics_listener_.valid() && e.fd == metrics_listener_.fd()) {
        accept_ready(metrics_listener_, /*http=*/true);
        continue;
      }
      const auto fd_it = fd_to_conn_.find(e.fd);
      if (fd_it == fd_to_conn_.end()) {
        continue;  // closed earlier in this batch
      }
      const std::uint64_t conn_id = fd_it->second;
      if (e.closed) {
        close_conn(conn_id);
        continue;
      }
      if (e.readable) {
        const auto it = conns_.find(conn_id);
        if (it != conns_.end()) {
          handle_readable(it->second);
        }
      }
      if (e.writable) {
        const auto it = conns_.find(conn_id);
        if (it != conns_.end()) {
          handle_writable(it->second);
        }
      }
    }
    drain_outbound();
  }
}

void Server::accept_ready(Socket& listener, bool http) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // EAGAIN or a transient accept failure: try next wake-up
    }
    if (conns_.size() >= config_.max_connections) {
      ::close(fd);
      rejected_->inc();
      continue;
    }
    set_nonblocking(fd);
    const std::uint64_t conn_id = next_conn_id_++;
    Conn conn;
    conn.sock = Socket(fd);
    conn.id = conn_id;
    conn.http = http;
    conns_.emplace(conn_id, std::move(conn));
    fd_to_conn_[fd] = conn_id;
    poller_->set(fd, /*want_read=*/true, /*want_write=*/false);
    accepted_->inc();
    connections_active_->add(1);
  }
}

void Server::handle_readable(Conn& conn) {
  const std::uint64_t conn_id = conn.id;
  for (;;) {
    char chunk[16384];
    const ssize_t n = ::recv(conn.sock.fd(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn.rbuf.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      conn.peer_eof = true;
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    close_conn(conn_id);
    return;
  }
  if (conn.http) {
    handle_http(conn);
  } else {
    process_lines(conn);
  }
  if (conns_.count(conn_id) == 0) {
    return;  // process_lines tore the connection down
  }
  if (conn.peer_eof && conn.inflight == 0 && conn.woff >= conn.wbuf.size()) {
    close_conn(conn_id);
    return;
  }
  update_interest(conn);
}

void Server::handle_writable(Conn& conn) {
  const std::uint64_t conn_id = conn.id;
  while (conn.woff < conn.wbuf.size()) {
    const ssize_t n =
        ::send(conn.sock.fd(), conn.wbuf.data() + conn.woff,
               conn.wbuf.size() - conn.woff, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      }
      close_conn(conn_id);
      return;
    }
    conn.woff += static_cast<std::size_t>(n);
  }
  if (conn.woff >= conn.wbuf.size()) {
    conn.wbuf.clear();
    conn.woff = 0;
  } else if (conn.woff > (64u << 10)) {
    conn.wbuf.erase(0, conn.woff);
    conn.woff = 0;
  }
  const bool flushed = conn.woff >= conn.wbuf.size();
  if (flushed && conn.inflight == 0 &&
      (conn.peer_eof || draining_.load())) {
    close_conn(conn_id);
    return;
  }
  update_interest(conn);
}

void Server::process_lines(Conn& conn) {
  const std::uint64_t conn_id = conn.id;
  for (;;) {
    if (conn.discarding) {
      const auto newline = conn.rbuf.find('\n');
      if (newline == std::string::npos) {
        conn.rbuf.clear();
        return;
      }
      conn.rbuf.erase(0, newline + 1);
      conn.discarding = false;
    }
    const auto newline = conn.rbuf.find('\n');
    if (newline == std::string::npos) {
      if (conn.rbuf.size() > config_.max_frame_bytes) {
        // The line is already over budget with no end in sight: refuse
        // it now and skip bytes until the newline finally shows up. The
        // connection itself survives.
        frames_in_->inc();
        oversized_frames_->inc();
        queue_frame(conn,
                    service::serve_error_line(
                        "", service::ErrorCode::kFrameTooLarge,
                        "request line exceeds " +
                            std::to_string(config_.max_frame_bytes) +
                            " bytes"),
                    /*is_error=*/true);
        conn.rbuf.clear();
        conn.discarding = true;
      }
      return;
    }
    std::string line = conn.rbuf.substr(0, newline);
    conn.rbuf.erase(0, newline + 1);
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty()) {
      continue;
    }
    if (line.size() > config_.max_frame_bytes) {
      frames_in_->inc();
      oversized_frames_->inc();
      // Complete line, so no discard mode needed.
      queue_frame(conn,
                  service::serve_error_line(
                      service::extract_request_id(line),
                      service::ErrorCode::kFrameTooLarge,
                      "request line exceeds " +
                          std::to_string(config_.max_frame_bytes) +
                          " bytes"),
                  /*is_error=*/true);
      continue;
    }
    handle_line(conn, line);
    if (conns_.count(conn_id) == 0) {
      return;  // connection died while answering
    }
  }
}

void Server::handle_http(Conn& conn) {
  // One-shot HTTP/1.0: read until the header terminator, answer the first
  // request, close after the flush (peer_eof doubles as "done reading").
  // Pipelined followers are deterministically dropped by the close, and a
  // request head truncated by EOF gets a 400 instead of silence.
  const auto crlf_end = conn.rbuf.find("\r\n\r\n");
  const auto end =
      crlf_end == std::string::npos ? conn.rbuf.find("\n\n") : crlf_end;
  std::string status;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  std::string extra_headers;
  bool head_only = false;
  if (end == std::string::npos) {
    const bool oversized = conn.rbuf.size() > (16u << 10);
    const bool truncated = conn.peer_eof && !conn.rbuf.empty();
    if (!oversized && !truncated) {
      return;  // wait for the rest of the head
    }
    status = "400 Bad Request";
    body = oversized ? "request head exceeds 16KB\n"
                     : "truncated request head\n";
  } else {
    const std::string::size_type line_end = conn.rbuf.find('\n');
    std::string request_line = conn.rbuf.substr(0, line_end);
    if (!request_line.empty() && request_line.back() == '\r') {
      request_line.pop_back();
    }
    const auto sp1 = request_line.find(' ');
    const auto sp2 =
        sp1 == std::string::npos ? sp1 : request_line.find(' ', sp1 + 1);
    const std::string method =
        sp1 == std::string::npos ? "" : request_line.substr(0, sp1);
    const std::string path = sp2 == std::string::npos
                                 ? ""
                                 : request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (method.empty() || path.empty() || path[0] != '/') {
      status = "400 Bad Request";
      body = "malformed request line\n";
    } else if (method != "GET" && method != "HEAD") {
      // POST/PUT/... are well-formed but unsupported: a deterministic
      // 405 instead of the catch-all 404.
      status = "405 Method Not Allowed";
      extra_headers = "Allow: GET, HEAD\r\n";
      body = "method not allowed; use GET or HEAD\n";
    } else {
      head_only = method == "HEAD";
      const bool is_profilez =
          path == "/profilez" || path.rfind("/profilez?", 0) == 0;
      if (is_profilez && !head_only) {
        // Sampling for N seconds must not stall the event loop (every
        // other connection shares it), so valid requests hand off to a
        // worker thread and the response returns through the outbound
        // queue, accounted like an in-flight compile.
        profilez_requests_->inc();
        metrics_scrapes_->inc();
        double seconds = 2.0;
        int hz = 97;
        std::string error;
        if (!parse_profilez_query(path, seconds, hz, error)) {
          status = "400 Bad Request";
          body = error;
        } else if (obs::Profiler::active()) {
          status = "409 Conflict";
          body = "profiler busy; one session at a time\n";
        } else {
          ++conn.inflight;
          ++pending_;
          start_profile_job(conn.id, seconds, hz, /*http=*/true, "", 0);
          conn.rbuf.clear();
          conn.peer_eof = true;  // one-shot: nothing further is read
          update_interest(conn);
          return;
        }
      } else {
        route_http(method, path, status, content_type, body);
      }
    }
  }
  conn.rbuf.clear();
  conn.wbuf += "HTTP/1.0 " + status + "\r\nContent-Type: " + content_type +
               "\r\nContent-Length: " + std::to_string(body.size()) +
               "\r\n" + extra_headers + "Connection: close\r\n\r\n";
  if (!head_only) {
    conn.wbuf += body;
  }
  conn.peer_eof = true;
  update_interest(conn);
}

void Server::route_http(const std::string& method, const std::string& path,
                        std::string& status, std::string& content_type,
                        std::string& body) {
  (void)method;  // GET and HEAD differ only in body suppression
  const auto scrape_start = std::chrono::steady_clock::now();
  const auto path_is = [&path](std::string_view target) {
    return path == target ||
           (path.size() > target.size() &&
            path.compare(0, target.size(), target) == 0 &&
            path[target.size()] == '?');
  };
  if (path_is("/metrics")) {
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    body = render_metrics();
    status = "200 OK";
    metrics_scrapes_->inc();
  } else if (path_is("/profilez")) {
    // Only HEAD reaches here (GET is diverted to the worker path in
    // handle_http): validate the params so a HEAD probe still gets the
    // deterministic 400, but never start a session for it.
    profilez_requests_->inc();
    metrics_scrapes_->inc();
    double seconds = 2.0;
    int hz = 97;
    std::string error;
    if (!parse_profilez_query(path, seconds, hz, error)) {
      status = "400 Bad Request";
      body = error;
    } else {
      status = "200 OK";
      body = "profilez: GET /profilez?seconds=N&hz=H for folded stacks\n";
    }
  } else if (path_is("/healthz")) {
    // Liveness: the loop thread is answering — that is the whole check.
    body = "ok\n";
    status = "200 OK";
  } else if (path_is("/readyz")) {
    const bool has_models = service_.registry().size() > 0;
    const bool accepting = !draining_.load();
    if (has_models && accepting) {
      body = "ready\n";
      status = "200 OK";
    } else {
      body = std::string("not ready: ") +
             (!has_models ? "no models loaded" : "draining") + "\n";
      status = "503 Service Unavailable";
    }
  } else if (path_is("/statusz")) {
    body = render_statusz();
    status = "200 OK";
  } else if (path_is("/debugz")) {
    content_type = "application/json";
    body = obs::FlightRecorder::instance().dump_json();
    body += '\n';
    status = "200 OK";
  } else {
    body = "not found; try /metrics /healthz /readyz /statusz /debugz "
           "/profilez\n";
    status = "404 Not Found";
  }
  scrape_seconds_->observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    scrape_start)
          .count());
}

std::string Server::render_metrics() {
  // Scrape-time families: cheap point reads published on demand so the
  // exposition always reflects the current process and kernel counters.
  obs::publish_process_metrics(service_.metrics());
  obs::publish_perf_metrics(service_.metrics());
  return service_.metrics().render_prometheus();
}

void Server::start_profile_job(std::uint64_t conn_id, double seconds, int hz,
                               bool http, std::string id, int version) {
  std::lock_guard<std::mutex> lock(profile_threads_mutex_);
  profile_threads_.emplace_back([this, conn_id, seconds, hz, http,
                                 id = std::move(id), version] {
    obs::Profiler::enroll_current_thread();
    const std::optional<std::string> folded =
        obs::Profiler::collect_folded(seconds, hz);
    const std::uint64_t samples = obs::Profiler::stats().retained;
    if (http) {
      std::string body;
      std::string status;
      if (folded.has_value()) {
        status = "200 OK";
        body = *folded;
      } else {
        // Params were validated before the handoff, so a refusal means
        // another session won the exclusivity race meanwhile.
        status = "409 Conflict";
        body = "profiler busy; one session at a time\n";
      }
      std::string response = "HTTP/1.0 " + status +
                             "\r\nContent-Type: text/plain; charset=utf-8" +
                             "\r\nContent-Length: " +
                             std::to_string(body.size()) +
                             "\r\nConnection: close\r\n\r\n" + body;
      enqueue_outbound(conn_id, std::move(response), /*final_frame=*/true,
                       /*raw=*/true);
    } else if (folded.has_value()) {
      enqueue_outbound(conn_id,
                       service::serve_profile_line(id, *folded, samples),
                       /*final_frame=*/true);
    } else {
      enqueue_outbound(
          conn_id,
          version >= 1
              ? service::serve_error_line(
                    id, service::ErrorCode::kOverloaded,
                    "profiler session already active; retry later")
              : service::serve_error_line(
                    id, "profiler session already active; retry later"),
          /*final_frame=*/true);
    }
  });
}

std::string Server::render_statusz() const {
  std::string out = obs::build_info_line(rl::simd_kernel_name());
  out += '\n';
  const auto uptime = std::chrono::duration_cast<std::chrono::seconds>(
      std::chrono::steady_clock::now() - started_at_);
  out += "uptime_s: " + std::to_string(uptime.count()) + "\n";
  out += "draining: " + std::string(draining_.load() ? "true" : "false") +
         "\n";
  out += "models:";
  for (const std::string& name : service_.registry().names()) {
    out += ' ';
    out += name;
  }
  out += '\n';
  const service::ServiceStats svc = service_.stats();
  out += "requests: " + std::to_string(svc.requests) + "\n";
  out += "cache: " + std::to_string(svc.cache_hits) + " hits / " +
         std::to_string(svc.cache_misses) + " misses / " +
         std::to_string(svc.cache_evictions) + " evictions\n";
  out += "batches: " + std::to_string(svc.batches) + " (max size " +
         std::to_string(svc.max_batch_size) + ")\n";
  out += "verify: " + std::to_string(svc.verified) + " equivalent / " +
         std::to_string(svc.refuted) + " refuted / " +
         std::to_string(svc.verify_unknown) + " unknown\n";
  out += "search: " + std::to_string(svc.beam_requests) + " beam / " +
         std::to_string(svc.mcts_requests) + " mcts, " +
         std::to_string(svc.search_improved) + " improved, " +
         std::to_string(svc.search_deadline_hits) + " deadline hits\n";
  out += "shed: " + std::to_string(svc.shed) + "\n";
  out += "connections_active: " +
         std::to_string(connections_active_->value()) + "\n";
  const obs::ProfilerStats prof = obs::Profiler::stats();
  out += "profiler: " + std::string(prof.active ? "active" : "idle") + ", " +
         std::to_string(prof.sessions) + " sessions, " +
         std::to_string(prof.samples) + " samples (" +
         std::to_string(prof.dropped) + " dropped, " +
         std::to_string(prof.pc_only) + " pc-only), " +
         std::to_string(profilez_requests_->value()) +
         " profilez requests\n";
  out += "perf_counters: " +
         std::string(obs::perf_enabled() ? "enabled" : "disabled") +
         std::string(obs::perf_available() ? ", hardware available"
                                           : ", hardware unavailable");
  const auto mlp = obs::perf_kernel_totals(obs::PerfKernel::kMlpForward);
  if (mlp.cycles > 0) {
    char ipc[32];
    std::snprintf(ipc, sizeof(ipc), "%.2f",
                  static_cast<double>(mlp.instructions) /
                      static_cast<double>(mlp.cycles));
    out += std::string(", mlp_forward ipc ") + ipc;
  }
  out += "\n";
  const obs::ProcessStats proc = obs::sample_process_stats();
  out += "process: rss " + std::to_string(proc.rss_bytes / (1 << 20)) +
         " MiB, cpu " + std::to_string(proc.user_cpu_seconds) + "s user / " +
         std::to_string(proc.sys_cpu_seconds) + "s sys, " +
         std::to_string(proc.open_fds) + " fds\n";
  out += "\nflight recorder (most recent last):\n";
  const auto events = obs::FlightRecorder::instance().snapshot();
  const std::size_t tail = std::min<std::size_t>(events.size(), 16);
  for (std::size_t i = events.size() - tail; i < events.size(); ++i) {
    const obs::FlightEvent& ev = events[i];
    out += "#" + std::to_string(ev.seq) + " " +
           std::string(obs::flight_event_kind_name(ev.kind)) + " [" +
           ev.tag + "] " + ev.detail + "\n";
  }
  out += "\nrecent log lines:\n";
  for (const std::string& line : obs::Logger::instance().recent(16)) {
    out += line;
    out += '\n';
  }
  return out;
}

void Server::handle_line(Conn& conn, const std::string& line) {
  const auto decode_start = std::chrono::steady_clock::now();
  frames_in_->inc();
  service::ServeRequest request;
  try {
    request = service::parse_serve_request(line);
  } catch (const std::exception& e) {
    const service::ErrorCode code = service::error_code_of(e);
    const std::string id = service::extract_request_id(line);
    // v1 senders (and version-negotiation failures) get typed errors;
    // well-formed-looking v0 lines keep the bare compat shape.
    const bool typed =
        service::extract_request_version(line) == 1 ||
        code == service::ErrorCode::kUnsupportedVersion;
    queue_frame(conn,
                typed ? service::serve_error_line(id, code, e.what())
                      : service::serve_error_line(id, e.what()),
                /*is_error=*/true);
    return;
  }

  if (request.op == service::ServeOp::kPing) {
    queue_frame(conn, service::serve_pong_line(request.id),
                /*is_error=*/false);
    return;
  }
  if (request.op == service::ServeOp::kStats) {
    queue_frame(conn,
                service::serve_stats_line(request.id, service_.stats()),
                /*is_error=*/false);
    return;
  }
  if (request.op == service::ServeOp::kMetrics) {
    queue_frame(conn,
                service::serve_metrics_line(request.id, render_metrics()),
                /*is_error=*/false);
    return;
  }
  if (request.op == service::ServeOp::kDebugDump) {
    queue_frame(conn,
                service::serve_debug_dump_line(
                    request.id,
                    obs::FlightRecorder::instance().dump_json()),
                /*is_error=*/false);
    return;
  }
  if (request.op == service::ServeOp::kProfile) {
    // Same off-loop handoff as HTTP /profilez: the sampling window runs
    // on a worker; the result frame (or a typed busy error) crosses
    // back through the outbound queue. Params were validated at parse.
    if (obs::Profiler::active()) {
      queue_frame(conn,
                  service::serve_error_line(
                      request.id, service::ErrorCode::kOverloaded,
                      "profiler session already active; retry later"),
                  /*is_error=*/true);
      return;
    }
    profilez_requests_->inc();
    ++conn.inflight;
    ++pending_;
    start_profile_job(conn.id, request.profile_seconds, request.profile_hz,
                      /*http=*/false, request.id, request.version);
    return;
  }

  const auto shaped_error = [&request](service::ErrorCode code,
                                       const std::string& message) {
    return request.version >= 1
               ? service::serve_error_line(request.id, code, message)
               : service::serve_error_line(request.id, message);
  };

  if (conn.inflight >= config_.max_inflight_per_conn) {
    shed_inflight_->inc();
    queue_frame(conn,
                shaped_error(service::ErrorCode::kOverloaded,
                             "connection is at its in-flight cap (" +
                                 std::to_string(
                                     config_.max_inflight_per_conn) +
                                 " requests); wait for results"),
                /*is_error=*/true);
    return;
  }

  ir::Circuit circuit;
  try {
    circuit = ir::from_qasm(request.qasm);
  } catch (const std::exception& e) {
    queue_frame(conn,
                shaped_error(service::ErrorCode::kBadRequest,
                             std::string("qasm: ") + e.what()),
                /*is_error=*/true);
    return;
  }

  // Per-request tracing starts at frame decode; the span tree rides back
  // on the response frame (serve_response_line renders response.trace).
  std::shared_ptr<obs::TraceContext> trace;
  if (request.trace) {
    trace = std::make_shared<obs::TraceContext>(request.id, decode_start);
    const int span =
        trace->add_span("decode", obs::TraceContext::kNoParent, 0,
                        trace->now_us());
    trace->attr(span, "bytes", static_cast<std::uint64_t>(line.size()));
  }

  const std::uint64_t conn_id = conn.id;
  const std::string id = request.id;
  const int version = request.version;
  service::SubmitHooks hooks;
  hooks.on_result = [this, conn_id, version](service::ServiceResponse r) {
    enqueue_outbound(conn_id, service::serve_response_line(r, version),
                     /*final_frame=*/true);
  };
  hooks.on_error = [this, conn_id, id, version](service::ErrorCode code,
                                                const std::string& msg) {
    enqueue_outbound(conn_id,
                     version >= 1
                         ? service::serve_error_line(id, code, msg)
                         : service::serve_error_line(id, msg),
                     /*final_frame=*/true);
    error_frames_->inc();
  };
  if (version >= 1 && request.search.has_value()) {
    hooks.on_partial = [this, conn_id,
                        id](const search::SearchProgress& progress) {
      enqueue_outbound(conn_id, service::serve_partial_line(id, progress),
                       /*final_frame=*/false);
      partial_frames_->inc();
    };
  }

  // Count the request before submitting: a cache hit delivers its hook
  // synchronously inside submit_with_hooks, and the accounting must
  // already be in place when the outbound frame is drained.
  ++conn.inflight;
  ++pending_;
  try {
    service_.submit_with_hooks(request.id, request.model,
                               std::move(circuit), request.verify,
                               request.search, std::move(hooks),
                               std::move(trace));
  } catch (const std::exception& e) {
    // Admission refusals (lane queue bound, shutdown, unknown model)
    // throw before any hook fires, so the rollback cannot double-count.
    --conn.inflight;
    --pending_;
    queue_frame(conn, shaped_error(service::error_code_of(e), e.what()),
                /*is_error=*/true);
  }
}

void Server::queue_frame(Conn& conn, std::string line, bool is_error) {
  conn.wbuf += line;
  conn.wbuf += '\n';
  frames_out_->inc();
  if (is_error) {
    error_frames_->inc();
  }
  update_interest(conn);
}

void Server::enqueue_outbound(std::uint64_t conn_id, std::string line,
                              bool final_frame, bool raw) {
  {
    std::lock_guard<std::mutex> lock(outbound_mutex_);
    outbound_.push_back(
        Outbound{conn_id, std::move(line), final_frame, raw});
  }
  if (wake_write_.valid()) {
    const char byte = 'o';
    [[maybe_unused]] const ssize_t n =
        ::write(wake_write_.fd(), &byte, 1);
  }
}

void Server::drain_outbound() {
  std::vector<Outbound> batch;
  {
    std::lock_guard<std::mutex> lock(outbound_mutex_);
    batch.swap(outbound_);
  }
  for (Outbound& ob : batch) {
    if (ob.final_frame && pending_ > 0) {
      --pending_;
    }
    const auto it = conns_.find(ob.conn_id);
    if (it == conns_.end()) {
      continue;  // peer left before its answer arrived; drop the frame
    }
    Conn& conn = it->second;
    if (ob.final_frame && conn.inflight > 0) {
      --conn.inflight;
    }
    conn.wbuf += ob.line;
    if (!ob.raw) {
      conn.wbuf += '\n';  // raw payloads are complete HTTP responses
    }
    frames_out_->inc();
    update_interest(conn);
  }
}

void Server::update_interest(Conn& conn) {
  const std::size_t backlog = conn.wbuf.size() - conn.woff;
  if (conn.read_paused) {
    if (backlog * 2 <= config_.max_write_buffer) {
      conn.read_paused = false;
    }
  } else if (backlog > config_.max_write_buffer) {
    conn.read_paused = true;
  }
  const bool want_read =
      !conn.peer_eof && !conn.read_paused && !draining_.load();
  const bool want_write = backlog > 0;
  poller_->set(conn.sock.fd(), want_read, want_write);
}

void Server::close_conn(std::uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) {
    return;
  }
  const int fd = it->second.sock.fd();
  poller_->remove(fd);
  fd_to_conn_.erase(fd);
  // In-flight requests for this connection stay counted in pending_;
  // their final frames are drained and dropped, releasing the count.
  conns_.erase(it);
  connections_active_->add(-1);
}

}  // namespace qrc::net

