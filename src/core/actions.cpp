#include "core/actions.hpp"

#include <stdexcept>

#include "passes/opt/cancellation.hpp"
#include "passes/opt/clifford_opt.hpp"
#include "passes/opt/composite.hpp"
#include "passes/opt/consolidate.hpp"
#include "passes/opt/one_qubit_opt.hpp"
#include "passes/synthesis/basis_translator.hpp"

namespace qrc::core {

namespace {

class PlatformAction final : public Action {
 public:
  explicit PlatformAction(device::Platform platform)
      : Action("platform_" + std::string(device::platform_name(platform)),
               ActionType::kPlatformSelection),
        platform_(platform) {}

  bool valid(const CompilationState& state) const override {
    return state.state() == MdpState::kStart;
  }

  void apply(CompilationState& state, std::uint64_t) const override {
    state.platform = platform_;
  }

 private:
  device::Platform platform_;
};

class DeviceAction final : public Action {
 public:
  explicit DeviceAction(device::DeviceId id)
      : Action("device_" + device::get_device(id).name(),
               ActionType::kDeviceSelection),
        device_(&device::get_device(id)) {}

  bool valid(const CompilationState& state) const override {
    return state.state() == MdpState::kPlatformChosen &&
           state.platform == device_->platform() &&
           state.circuit.num_qubits() <= device_->num_qubits();
  }

  void apply(CompilationState& state, std::uint64_t) const override {
    state.device = device_;
  }

 private:
  const device::Device* device_;
};

class SynthesisAction final : public Action {
 public:
  SynthesisAction() : Action("BasisTranslator", ActionType::kSynthesis) {}

  bool valid(const CompilationState& state) const override {
    const MdpState s = state.state();
    return (s == MdpState::kDeviceChosen) && !state.is_native();
  }

  void apply(CompilationState& state, std::uint64_t seed) const override {
    passes::PassContext ctx;
    ctx.device = state.device;
    ctx.is_mapped = state.is_mapped();
    ctx.seed = seed;
    const passes::BasisTranslator translator;
    (void)translator.run(state.circuit, ctx);
  }
};

class LayoutAction final : public Action {
 public:
  explicit LayoutAction(passes::LayoutKind kind)
      : Action(std::string(passes::layout_name(kind)), ActionType::kLayout),
        kind_(kind) {}

  bool valid(const CompilationState& state) const override {
    return state.device != nullptr && !state.layout_applied;
  }

  void apply(CompilationState& state, std::uint64_t seed) const override {
    const auto layout =
        passes::compute_layout(kind_, state.circuit, *state.device, seed);
    state.circuit = passes::apply_layout(state.circuit, layout, *state.device);
    state.initial_layout = layout;
    state.final_layout = layout;
    state.layout_applied = true;
  }

 private:
  passes::LayoutKind kind_;
};

class RoutingAction final : public Action {
 public:
  explicit RoutingAction(passes::RoutingKind kind)
      : Action(std::string(passes::routing_name(kind)), ActionType::kRouting),
        kind_(kind) {}

  bool valid(const CompilationState& state) const override {
    // Routing needs a placement, a 2q-only circuit, and unresolved
    // connectivity.
    return state.device != nullptr && state.layout_applied &&
           state.circuit.max_gate_arity_at_most(2) && !state.is_mapped();
  }

  void apply(CompilationState& state, std::uint64_t seed) const override {
    const auto outcome =
        passes::route(kind_, state.circuit, *state.device, seed);
    state.circuit = outcome.routed;
    // Compose the routing permutation onto the tracked final layout.
    for (int l = 0; l < static_cast<int>(state.final_layout.size()); ++l) {
      state.final_layout[static_cast<std::size_t>(l)] =
          outcome.permutation[static_cast<std::size_t>(
              state.final_layout[static_cast<std::size_t>(l)])];
    }
  }

 private:
  passes::RoutingKind kind_;
};

class OptimizationAction final : public Action {
 public:
  explicit OptimizationAction(std::unique_ptr<passes::Pass> pass)
      : Action(std::string(pass->name()), ActionType::kOptimization),
        pass_(std::move(pass)) {}

  bool valid(const CompilationState& state) const override {
    // Optimizations are valid in every non-terminal state (the blue arrows
    // of Fig. 2).
    return state.state() != MdpState::kDone;
  }

  void apply(CompilationState& state, std::uint64_t seed) const override {
    passes::PassContext ctx;
    ctx.device = state.device;
    ctx.is_mapped = state.is_mapped();
    ctx.seed = seed;
    (void)pass_->run(state.circuit, ctx);
  }

 private:
  std::unique_ptr<passes::Pass> pass_;
};

}  // namespace

std::string_view action_type_name(ActionType type) {
  switch (type) {
    case ActionType::kPlatformSelection:
      return "platform";
    case ActionType::kDeviceSelection:
      return "device";
    case ActionType::kSynthesis:
      return "synthesis";
    case ActionType::kLayout:
      return "layout";
    case ActionType::kRouting:
      return "routing";
    case ActionType::kOptimization:
      return "optimization";
  }
  return "unknown";
}

ActionRegistry::ActionRegistry() {
  using device::DeviceId;
  using device::Platform;
  // Platforms (4).
  for (const Platform p : {Platform::kIBM, Platform::kRigetti,
                           Platform::kIonQ, Platform::kOQC}) {
    actions_.push_back(std::make_unique<PlatformAction>(p));
  }
  // Devices (5).
  for (const DeviceId id :
       {DeviceId::kIbmqMontreal, DeviceId::kIbmqWashington,
        DeviceId::kRigettiAspenM2, DeviceId::kIonqHarmony,
        DeviceId::kOqcLucy}) {
    actions_.push_back(std::make_unique<DeviceAction>(id));
  }
  // Synthesis (1).
  actions_.push_back(std::make_unique<SynthesisAction>());
  // Layouts (3).
  for (const auto kind :
       {passes::LayoutKind::kTrivial, passes::LayoutKind::kDense,
        passes::LayoutKind::kSabre}) {
    actions_.push_back(std::make_unique<LayoutAction>(kind));
  }
  // Routings (4).
  for (const auto kind :
       {passes::RoutingKind::kBasicSwap, passes::RoutingKind::kStochasticSwap,
        passes::RoutingKind::kSabreSwap, passes::RoutingKind::kTketRouting}) {
    actions_.push_back(std::make_unique<RoutingAction>(kind));
  }
  // Optimizations (12) — Qiskit's eight, then TKET's four.
  actions_.push_back(std::make_unique<OptimizationAction>(
      std::make_unique<passes::Optimize1qGatesDecomposition>()));
  actions_.push_back(std::make_unique<OptimizationAction>(
      std::make_unique<passes::CXCancellation>()));
  actions_.push_back(std::make_unique<OptimizationAction>(
      std::make_unique<passes::CommutativeCancellation>()));
  actions_.push_back(std::make_unique<OptimizationAction>(
      std::make_unique<passes::CommutativeInverseCancellation>()));
  actions_.push_back(std::make_unique<OptimizationAction>(
      std::make_unique<passes::RemoveDiagonalGatesBeforeMeasure>()));
  actions_.push_back(std::make_unique<OptimizationAction>(
      std::make_unique<passes::InverseCancellation>()));
  actions_.push_back(std::make_unique<OptimizationAction>(
      std::make_unique<passes::OptimizeCliffords>()));
  actions_.push_back(std::make_unique<OptimizationAction>(
      std::make_unique<passes::ConsolidateBlocks>()));
  actions_.push_back(std::make_unique<OptimizationAction>(
      std::make_unique<passes::PeepholeOptimise2Q>()));
  actions_.push_back(std::make_unique<OptimizationAction>(
      std::make_unique<passes::CliffordSimp>()));
  actions_.push_back(std::make_unique<OptimizationAction>(
      std::make_unique<passes::FullPeepholeOptimise>()));
  actions_.push_back(std::make_unique<OptimizationAction>(
      std::make_unique<passes::RemoveRedundancies>()));
}

std::vector<bool> ActionRegistry::mask(const CompilationState& state) const {
  std::vector<bool> out(actions_.size());
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    out[i] = actions_[i]->valid(state);
  }
  return out;
}

int ActionRegistry::index_of(std::string_view name) const {
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    if (actions_[i]->name() == name) {
      return static_cast<int>(i);
    }
  }
  throw std::invalid_argument("ActionRegistry: unknown action '" +
                              std::string(name) + "'");
}

const ActionRegistry& ActionRegistry::instance() {
  static const ActionRegistry kRegistry;
  return kRegistry;
}

}  // namespace qrc::core
