/// \file compilation_state.hpp
/// \brief The state carried through the compilation MDP of Fig. 2: the
///        circuit plus platform/device/layout bookkeeping, with the
///        constraint checks ("native", "mapped") that identify the MDP
///        state.
#pragma once

#include <optional>
#include <vector>

#include "device/device.hpp"
#include "ir/circuit.hpp"

namespace qrc::core {

/// The MDP states of Fig. 2. OnlyNativeGates and Done are *discovered* by
/// constraint checks, not tracked imperatively.
enum class MdpState : std::uint8_t {
  kStart,
  kPlatformChosen,
  kDeviceChosen,
  kOnlyNativeGates,
  kDone,
};

[[nodiscard]] std::string_view mdp_state_name(MdpState state);

/// Mutable compilation state. The circuit stays on logical qubits until a
/// layout action rewrites it onto the device's physical qubits.
struct CompilationState {
  ir::Circuit circuit;
  std::optional<device::Platform> platform;
  const device::Device* device = nullptr;

  /// logical -> physical placement chosen by the layout action.
  std::optional<std::vector<int>> initial_layout;
  /// logical -> physical after routing (= initial until a router runs).
  std::vector<int> final_layout;
  bool layout_applied = false;

  /// Constraint 1: every unitary gate is native on the chosen platform.
  [[nodiscard]] bool is_native() const;

  /// Constraint 2: the circuit lives on physical qubits and every
  /// multi-qubit gate acts on a coupled pair.
  [[nodiscard]] bool is_mapped() const;

  [[nodiscard]] MdpState state() const;
};

}  // namespace qrc::core
