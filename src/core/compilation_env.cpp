#include "core/compilation_env.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "features/features.hpp"

namespace qrc::core {

CompilationEnv::CompilationEnv(std::vector<ir::Circuit> circuits,
                               CompilationEnvConfig config)
    : CompilationEnv(std::make_shared<const std::vector<ir::Circuit>>(
                         std::move(circuits)),
                     config) {}

CompilationEnv::CompilationEnv(
    std::shared_ptr<const std::vector<ir::Circuit>> circuits,
    CompilationEnvConfig config)
    : circuits_(std::move(circuits)),
      config_(config),
      registry_(ActionRegistry::instance()),
      rng_(config.seed * 40503 + 11) {
  if (circuits_ == nullptr || circuits_->empty()) {
    throw std::invalid_argument("CompilationEnv: need training circuits");
  }
}

std::unique_ptr<CompilationEnv> CompilationEnv::clone_with_seed(
    std::uint64_t seed) const {
  CompilationEnvConfig config = config_;
  config.seed = seed;
  return std::make_unique<CompilationEnv>(circuits_, config);
}

int CompilationEnv::observation_size() const {
  return features::kNumFeatures;
}

int CompilationEnv::num_actions() const { return registry_.size(); }

std::uint64_t CompilationEnv::step_seed(std::uint64_t env_seed,
                                        std::uint64_t episode, int step) {
  return env_seed * 1000003 + episode * 101 +
         static_cast<std::uint64_t>(step);
}

std::vector<double> CompilationEnv::observe_state(
    const CompilationState& state) {
  const auto obs = features::extract_features(state.circuit).observation();
  // A NaN/Inf observation would silently poison every PPO update that
  // touches it (degenerate circuits — empty, single-qubit — are the usual
  // suspects via the n-1 / depth divisions in the feature formulas, which
  // features.cpp guards). Fail loudly instead of training on garbage.
  for (std::size_t i = 0; i < obs.size(); ++i) {
    if (!std::isfinite(obs[i])) {
      throw std::logic_error(
          "CompilationEnv::observe: non-finite feature at index " +
          std::to_string(i));
    }
  }
  return {obs.begin(), obs.end()};
}

void CompilationEnv::apply_action(CompilationState& state, int action,
                                  std::uint64_t seed) {
  const ActionRegistry& registry = ActionRegistry::instance();
  if (action < 0 || action >= registry.size()) {
    throw std::out_of_range("CompilationEnv::step: bad action id");
  }
  const Action& act = registry.at(action);
  if (!act.valid(state)) {
    throw std::logic_error("CompilationEnv::step: invalid action '" +
                           act.name() + "' in state " +
                           std::string(mdp_state_name(state.state())));
  }
  act.apply(state, seed);
}

CompilationState CompilationEnv::peek_step(const CompilationState& state,
                                           int action, std::uint64_t seed) {
  CompilationState next = state;
  apply_action(next, action, seed);
  return next;
}

std::vector<double> CompilationEnv::observe() const {
  return observe_state(state_);
}

std::vector<double> CompilationEnv::reset() {
  std::uniform_int_distribution<std::size_t> pick(0, circuits_->size() - 1);
  return reset_with((*circuits_)[pick(rng_)]);
}

std::vector<double> CompilationEnv::reset_with(const ir::Circuit& circuit) {
  state_ = CompilationState{};
  state_.circuit = circuit;
  steps_in_episode_ = 0;
  ++episode_counter_;
  return observe();
}

std::vector<bool> CompilationEnv::action_mask() const {
  return registry_.mask(state_);
}

rl::StepResult CompilationEnv::step(int action) {
  // Deterministic per-step seed so stochastic passes are reproducible.
  apply_action(state_, action,
               step_seed(config_.seed, episode_counter_, steps_in_episode_));
  ++steps_in_episode_;

  rl::StepResult result;
  result.observation = observe();
  if (state_.state() == MdpState::kDone) {
    result.done = true;
    result.reward =
        reward::compute_reward(config_.reward, state_.circuit, *state_.device);
  } else if (steps_in_episode_ >= config_.max_steps) {
    result.truncated = true;
    result.reward = 0.0;
  }
  return result;
}

}  // namespace qrc::core
