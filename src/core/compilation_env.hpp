/// \file compilation_env.hpp
/// \brief The Gym-style environment for the compilation MDP: observations
///        are the seven circuit features, actions come from the registry,
///        and the sparse reward is paid on reaching Done (Section III-B).
#pragma once

#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "core/actions.hpp"
#include "core/compilation_state.hpp"
#include "reward/reward.hpp"
#include "rl/env.hpp"

namespace qrc::core {

struct CompilationEnvConfig {
  reward::RewardKind reward = reward::RewardKind::kFidelity;
  int max_steps = 40;  ///< truncation horizon (reward 0)
  std::uint64_t seed = 1;
};

/// Samples a training circuit per episode and walks the Fig. 2 MDP.
class CompilationEnv final : public rl::Env {
 public:
  CompilationEnv(std::vector<ir::Circuit> circuits,
                 CompilationEnvConfig config);

  /// Shares an existing corpus instead of copying it — the cheap
  /// construction path behind VecEnv fan-out (N envs, one corpus).
  CompilationEnv(std::shared_ptr<const std::vector<ir::Circuit>> circuits,
                 CompilationEnvConfig config);

  /// A fresh env over the same (shared, never copied) corpus with its own
  /// RNG stream. Use one distinct seed per vectorized env.
  [[nodiscard]] std::unique_ptr<CompilationEnv> clone_with_seed(
      std::uint64_t seed) const;

  [[nodiscard]] int observation_size() const override;
  [[nodiscard]] int num_actions() const override;

  std::vector<double> reset() override;
  [[nodiscard]] std::vector<bool> action_mask() const override;
  rl::StepResult step(int action) override;

  /// Starts an episode on a *specific* circuit (used at inference time).
  std::vector<double> reset_with(const ir::Circuit& circuit);

  [[nodiscard]] const CompilationState& state() const { return state_; }

  // ---- bare-state path -----------------------------------------------
  // The greedy rollout core and the search engine walk the MDP over plain
  // CompilationState values: one state copy per child, no env clone, no
  // corpus shared_ptr churn, no RNG. (Cloning an env per search node used
  // to cost a corpus-vector allocation plus a second circuit copy per
  // expansion — the bare-state path is a single circuit copy, which
  // bench_search_quality measures as nodes/sec.) The env's own step() and
  // observe() are thin wrappers over these, so trajectories agree
  // bit-for-bit between the env, the rollout core and the search engine.

  /// The deterministic per-step seed driving stochastic passes:
  /// episode 1, step d is what a fresh env seeded with `env_seed` uses on
  /// its d-th step after reset_with().
  [[nodiscard]] static std::uint64_t step_seed(std::uint64_t env_seed,
                                               std::uint64_t episode,
                                               int step);

  /// Feature observation of a bare state.
  /// \throws std::logic_error on a non-finite feature (poisoned input).
  [[nodiscard]] static std::vector<double> observe_state(
      const CompilationState& state);

  /// Applies `action` to `state` in place; `seed` drives stochastic
  /// passes. \throws std::out_of_range / std::logic_error on an invalid
  /// action, exactly like step().
  static void apply_action(CompilationState& state, int action,
                           std::uint64_t seed);

  /// Copy-then-apply: the cheap per-child expansion path for search.
  [[nodiscard]] static CompilationState peek_step(
      const CompilationState& state, int action, std::uint64_t seed);

 private:
  [[nodiscard]] std::vector<double> observe() const;

  std::shared_ptr<const std::vector<ir::Circuit>> circuits_;
  CompilationEnvConfig config_;
  const ActionRegistry& registry_;
  CompilationState state_;
  std::mt19937_64 rng_;
  int steps_in_episode_ = 0;
  std::uint64_t episode_counter_ = 0;
};

}  // namespace qrc::core
