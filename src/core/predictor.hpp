/// \file predictor.hpp
/// \brief The user-facing optimized compiler: trains one PPO model per
///        reward function on a circuit corpus, then compiles arbitrary
///        circuits by greedy policy rollout (Section III-B). This is the
///        library's primary public API.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/compilation_env.hpp"
#include "reward/reward.hpp"
#include "rl/ppo.hpp"
#include "search/search.hpp"
#include "verify/equivalence.hpp"

namespace qrc::rl {
class WorkerPool;
}

namespace qrc::core {

/// Outcome of compiling one circuit with a trained policy.
struct CompilationResult {
  ir::Circuit circuit;                    ///< executable circuit
  const device::Device* device = nullptr; ///< chosen target
  std::vector<std::string> action_trace;  ///< applied action names in order
  std::vector<int> initial_layout;        ///< logical -> physical
  std::vector<int> final_layout;          ///< logical -> physical after routing
  double reward = 0.0;                    ///< under the trained objective
  bool used_fallback = false;  ///< policy failed to finish; the canned
                               ///< sequence completed the compilation
  /// Present when the compilation was verified (the QCEC-style
  /// post-compile gate): verdict of checking `circuit` against the input
  /// through the layouts. The compiled circuit itself is never altered by
  /// verification.
  std::optional<verify::VerifyResult> verification;
  /// Present when the result came from compile_search: planning cost and
  /// outcome counters (nodes, transpositions, deadline, reward delta vs
  /// the greedy baseline the search is clamped against).
  std::optional<search::SearchStats> search_stats;
};

/// Verifies a compilation result against the original circuit with the
/// tiered EquivalenceChecker, routing through the result's initial/final
/// layouts when the circuit was mapped onto a device. Deterministic for
/// fixed options; used by the Predictor gate, the compile service, and the
/// fuzz harness.
[[nodiscard]] verify::VerifyResult verify_compilation(
    const ir::Circuit& original, const CompilationResult& result,
    const verify::VerifyOptions& options = {});

struct PredictorConfig {
  reward::RewardKind reward = reward::RewardKind::kFidelity;
  rl::PpoConfig ppo;        ///< ppo.total_timesteps controls training budget
  int env_max_steps = 40;
  std::uint64_t seed = 1;
  /// Parallel rollout collection: > 1 trains on a VecEnv of this many
  /// CompilationEnv clones (sharing one corpus). Deterministic for a
  /// fixed (seed, num_envs) pair.
  int num_envs = 1;
  /// Worker threads stepping the vectorized envs; 0 means num_envs.
  int rollout_workers = 0;
};

/// RL-optimized quantum compiler. Train once, compile many.
class Predictor {
 public:
  explicit Predictor(PredictorConfig config);

  /// Trains the policy on `circuits` (the paper: 200 MQT Bench circuits).
  /// Returns per-update statistics. `progress` (optional) observes each
  /// update as it completes (the CLI's JSONL curve writer rides this);
  /// `metrics` (optional) receives the qrc_train_* families. Both are
  /// pure observers — the trained weights are bitwise-identical with or
  /// without them.
  std::vector<rl::PpoUpdateStats> train(
      const std::vector<ir::Circuit>& circuits,
      const std::function<void(const rl::PpoUpdateStats&)>& progress = {},
      obs::MetricsRegistry* metrics = nullptr);

  [[nodiscard]] bool is_trained() const { return agent_.has_value(); }

  /// Compiles a circuit by greedy rollout of the trained policy. If the
  /// policy does not reach Done within the step budget, a deterministic
  /// fallback sequence (synthesis, SABRE layout/routing, synthesis, 1q
  /// optimization) completes the flow and the result is flagged.
  [[nodiscard]] CompilationResult compile(const ir::Circuit& circuit) const;

  /// compile() plus the post-compile verification gate: the result carries
  /// a VerifyResult certifying (or refuting) functional equivalence of the
  /// compiled circuit to `circuit`. Compilation output is bit-identical to
  /// compile() — verification only observes.
  [[nodiscard]] CompilationResult compile_verified(
      const ir::Circuit& circuit,
      const verify::VerifyOptions& options = {}) const;

  /// Compiles a whole suite of circuits through one batched greedy-policy
  /// loop: every inference step gathers the observations of all still-
  /// running episodes and issues a single batched policy forward (rows
  /// spread over a worker pool sized by `rollout_workers`), while the
  /// environments step in parallel. Per circuit the result is identical
  /// to compile() — the batched forward is bitwise-equal to the scalar
  /// one and each episode's greedy loop is independent.
  ///
  /// `pool` lets a long-lived caller (the compile service) reuse one
  /// worker pool across many batches instead of paying thread spawn per
  /// call; nullptr creates a batch-local pool. The pool choice cannot
  /// change results (index-parallel jobs are deterministic for any pool
  /// size). All compile* methods are const and safe to call concurrently
  /// from multiple threads on one Predictor.
  ///
  /// `verify_options`, if non-null, enables the post-compile verification
  /// gate: each result's `verification` field is filled by checking it
  /// against its input circuit (checks run in parallel over the pool).
  [[nodiscard]] std::vector<CompilationResult> compile_all(
      std::span<const ir::Circuit> circuits, rl::WorkerPool* pool = nullptr,
      const verify::VerifyOptions* verify_options = nullptr) const;

  /// Compiles by policy-guided lookahead search (beam or MCTS, per
  /// `options`) instead of the one-shot greedy rollout. The search plans
  /// over the same MDP with the trained policy as prior and the value
  /// network as leaf bootstrap, and the result is *clamped to best-so-far
  /// against the greedy baseline*: it never has a lower reward than
  /// compile(), and search_stats records whether (and at what planning
  /// cost) the searched sequence improved on it. With a deadline
  /// (options.deadline_ms) the search is anytime — it returns the best
  /// sequence found when time runs out. Without a deadline the result is
  /// bitwise-deterministic for fixed (model, options) regardless of the
  /// worker count, and beam(1) reproduces compile() bit-for-bit.
  ///
  /// `progress`, when non-empty, observes the anytime trajectory: one
  /// quantum-0 snapshot right after the greedy baseline (so at least one
  /// snapshot always fires), then one per search quantum. Observation
  /// only — it cannot change the result.
  [[nodiscard]] CompilationResult compile_search(
      const ir::Circuit& circuit, const search::SearchOptions& options,
      const verify::VerifyOptions* verify_options = nullptr,
      const search::ProgressFn& progress = {}) const;

  /// Per-circuit progress sink for suite searches: (circuit index in the
  /// span, snapshot). Same contract as search::ProgressFn otherwise.
  using SearchProgressFn =
      std::function<void(int, const search::SearchProgress&)>;

  /// Suite variant of compile_search: greedy baselines run through the
  /// one batched rollout core, then each circuit is searched in turn on
  /// the shared pool. Pool/verify semantics match compile_all.
  [[nodiscard]] std::vector<CompilationResult> compile_search_all(
      std::span<const ir::Circuit> circuits,
      const search::SearchOptions& options, rl::WorkerPool* pool = nullptr,
      const verify::VerifyOptions* verify_options = nullptr,
      const SearchProgressFn& progress = {}) const;

  /// Ablation hook: compile with observation feature `feature_index`
  /// zeroed at every inference step (measures how load-bearing each
  /// feature is for the learned policy).
  [[nodiscard]] CompilationResult compile_with_masked_feature(
      const ir::Circuit& circuit, int feature_index) const;

  /// Reward of a compiled result under an arbitrary metric (for Table I).
  [[nodiscard]] double evaluate(const CompilationResult& result,
                                reward::RewardKind metric) const;

  void save(std::ostream& os) const;
  static Predictor load(std::istream& is);

  [[nodiscard]] const PredictorConfig& config() const { return config_; }

 private:
  [[nodiscard]] std::vector<CompilationResult> compile_batch(
      std::span<const ir::Circuit> circuits, int feature_index,
      rl::WorkerPool* pool = nullptr,
      const verify::VerifyOptions* verify_options = nullptr) const;

  PredictorConfig config_;
  std::optional<rl::PpoAgent> agent_;
};

}  // namespace qrc::core
