/// \file rollout.hpp
/// \brief The batched greedy-policy rollout core: one lockstep loop that
///        walks any number of episodes with a single batched policy
///        forward per step. Predictor::compile / compile_all /
///        compile_with_masked_feature are thin shims over it, and the
///        search engine uses it for its greedy baselines — one
///        implementation, every caller bitwise-identical.
#pragma once

#include <cstdint>
#include <span>
#include <tuple>
#include <vector>

#include "core/compilation_env.hpp"

namespace qrc::rl {
class Mlp;
class WorkerPool;
}  // namespace qrc::rl

namespace qrc::core {

/// Cheap state fingerprint for cycle detection in deterministic rollouts.
/// Collisions only cost an extra banned action, never correctness.
using Fingerprint = std::tuple<std::size_t, int, int, double, int, bool,
                               const device::Device*>;

[[nodiscard]] Fingerprint fingerprint_of(const CompilationState& state);

/// Outcome of one greedy episode.
struct GreedyEpisode {
  CompilationState state;    ///< where the rollout ended
  std::vector<int> actions;  ///< attempted action ids, no-ops included
  double reward = 0.0;       ///< terminal reward (0 unless done)
  bool done = false;         ///< reached MdpState::kDone within the budget
};

/// Rolls out one greedy episode per circuit over bare CompilationStates
/// (no env allocation): every step gathers the observations of all
/// still-running episodes, issues ONE batched policy forward (rows spread
/// over `pool`), picks each episode's argmax among valid un-exhausted
/// actions, and steps the episodes in parallel. Deterministic greedy
/// rollouts can cycle — through single no-op actions, or pass pairs that
/// keep rewriting each other's output — so an action is banned whenever it
/// lands on an already-visited state and everything is unbanned on
/// genuine progress. `masked_feature` >= 0 zeroes that observation column
/// at every inference step (the ablation hook).
///
/// Per-step seeds follow CompilationEnv::step_seed(seed, 1, step), i.e.
/// the first episode of a fresh env — the contract that keeps these
/// rollouts, the env path and beam(1) search bit-for-bit identical.
[[nodiscard]] std::vector<GreedyEpisode> run_greedy_episodes(
    const rl::Mlp& policy, std::span<const ir::Circuit> circuits,
    const CompilationEnvConfig& env_config, int masked_feature,
    rl::WorkerPool& pool);

}  // namespace qrc::core
