#include "core/compilation_state.hpp"

namespace qrc::core {

std::string_view mdp_state_name(MdpState state) {
  switch (state) {
    case MdpState::kStart:
      return "Start";
    case MdpState::kPlatformChosen:
      return "PlatformChosen";
    case MdpState::kDeviceChosen:
      return "DeviceChosen";
    case MdpState::kOnlyNativeGates:
      return "OnlyNativeGates";
    case MdpState::kDone:
      return "Done";
  }
  return "unknown";
}

bool CompilationState::is_native() const {
  if (!platform.has_value()) {
    return false;
  }
  const auto& native = device::native_gates(*platform);
  for (const ir::Operation& op : circuit.ops()) {
    if (!op.is_unitary() || op.kind() == ir::GateKind::kBarrier) {
      continue;
    }
    if (!native.contains(op.kind())) {
      return false;
    }
  }
  return true;
}

bool CompilationState::is_mapped() const {
  if (device == nullptr || !layout_applied) {
    return false;
  }
  return device->circuit_respects_topology(circuit);
}

MdpState CompilationState::state() const {
  if (!platform.has_value()) {
    return MdpState::kStart;
  }
  if (device == nullptr) {
    return MdpState::kPlatformChosen;
  }
  const bool native = is_native();
  const bool mapped = is_mapped();
  if (native && mapped) {
    return MdpState::kDone;
  }
  if (native) {
    return MdpState::kOnlyNativeGates;
  }
  return MdpState::kDeviceChosen;
}

}  // namespace qrc::core
