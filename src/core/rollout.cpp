#include "core/rollout.hpp"

#include <algorithm>
#include <set>

#include "obs/perf_counters.hpp"
#include "obs/trace.hpp"
#include "reward/reward.hpp"
#include "rl/categorical.hpp"
#include "rl/mlp.hpp"
#include "rl/thread_pool.hpp"

namespace qrc::core {

Fingerprint fingerprint_of(const CompilationState& s) {
  return {s.circuit.size(),        s.circuit.two_qubit_gate_count(),
          s.circuit.gate_count(),  s.circuit.global_phase(),
          static_cast<int>(s.state()), s.layout_applied, s.device};
}

std::vector<GreedyEpisode> run_greedy_episodes(
    const rl::Mlp& policy, std::span<const ir::Circuit> circuits,
    const CompilationEnvConfig& env_config, int masked_feature,
    rl::WorkerPool& pool) {
  const ActionRegistry& registry = ActionRegistry::instance();
  const int num_circuits = static_cast<int>(circuits.size());
  const auto obs_size = static_cast<std::size_t>(policy.input_size());

  struct Episode {
    GreedyEpisode out;
    std::vector<double> obs;
    std::set<int> exhausted;
    std::set<Fingerprint> visited;
    int action = -1;
    bool active = true;  ///< false once every valid action proved no-op
  };
  std::vector<Episode> episodes(static_cast<std::size_t>(num_circuits));
  for (int c = 0; c < num_circuits; ++c) {
    auto& ep = episodes[static_cast<std::size_t>(c)];
    ep.out.state.circuit = circuits[c];
    ep.obs = CompilationEnv::observe_state(ep.out.state);
    ep.visited.insert(fingerprint_of(ep.out.state));
  }

  std::vector<int> live;
  std::vector<int> stepping;
  std::vector<double> obs_batch;
  std::vector<double> logits_batch;
  std::vector<std::vector<bool>> mask_batch;
  for (int step = 0; step < env_config.max_steps; ++step) {
    live.clear();
    for (int c = 0; c < num_circuits; ++c) {
      const auto& ep = episodes[static_cast<std::size_t>(c)];
      if (ep.active && !ep.out.done) {
        live.push_back(c);
      }
    }
    if (live.empty()) {
      break;
    }
    const int n_live = static_cast<int>(live.size());

    // One batched policy forward over every still-running episode.
    obs_batch.resize(live.size() * obs_size);
    mask_batch.resize(live.size());
    for (std::size_t i = 0; i < live.size(); ++i) {
      const auto& ep = episodes[static_cast<std::size_t>(live[i])];
      std::copy(ep.obs.begin(), ep.obs.end(),
                obs_batch.begin() + i * obs_size);
      if (masked_feature >= 0 &&
          masked_feature < static_cast<int>(obs_size)) {
        obs_batch[i * obs_size + static_cast<std::size_t>(masked_feature)] =
            0.0;
      }
      mask_batch[i] = registry.mask(ep.out.state);
    }
    {
      obs::DetailTimer timer("policy_forward");
      obs::PerfScope perf(obs::PerfKernel::kMlpForward);
      policy.forward_batch(obs_batch, n_live, logits_batch, &pool);
    }
    const rl::BatchedMaskedCategorical dist(logits_batch, mask_batch);

    // Greedy action per episode among valid, un-exhausted actions.
    stepping.clear();
    for (std::size_t i = 0; i < live.size(); ++i) {
      auto& ep = episodes[static_cast<std::size_t>(live[i])];
      const auto probs = dist.probs(static_cast<int>(i));
      int action = -1;
      for (int a = 0; a < dist.num_actions(); ++a) {
        if (!mask_batch[i][static_cast<std::size_t>(a)] ||
            ep.exhausted.contains(a)) {
          continue;
        }
        if (action < 0 || probs[static_cast<std::size_t>(a)] >
                              probs[static_cast<std::size_t>(action)]) {
          action = a;
        }
      }
      if (action < 0) {
        ep.active = false;  // every valid action proved ineffective
        continue;
      }
      ep.action = action;
      ep.out.actions.push_back(action);
      stepping.push_back(live[i]);
    }

    // Step the chosen actions in parallel — each episode owns its state.
    const std::uint64_t seed =
        CompilationEnv::step_seed(env_config.seed, 1, step);
    {
      obs::DetailTimer timer("env_step");
      obs::PerfScope perf(obs::PerfKernel::kSearchExpand);
      pool.parallel_for(static_cast<int>(stepping.size()), [&](int i) {
        auto& ep = episodes[static_cast<std::size_t>(
            stepping[static_cast<std::size_t>(i)])];
        CompilationEnv::apply_action(ep.out.state, ep.action, seed);
        if (ep.out.state.state() != MdpState::kDone) {
          ep.obs = CompilationEnv::observe_state(ep.out.state);
        }
      });
    }
    for (const int c : stepping) {
      auto& ep = episodes[static_cast<std::size_t>(c)];
      if (!ep.visited.insert(fingerprint_of(ep.out.state)).second) {
        ep.exhausted.insert(ep.action);  // known state: no progress
      } else {
        ep.exhausted.clear();
      }
      if (ep.out.state.state() == MdpState::kDone) {
        ep.out.done = true;
        ep.out.reward = reward::compute_reward(
            env_config.reward, ep.out.state.circuit, *ep.out.state.device);
      }
    }
  }

  std::vector<GreedyEpisode> out;
  out.reserve(episodes.size());
  for (auto& ep : episodes) {
    out.push_back(std::move(ep.out));
  }
  return out;
}

}  // namespace qrc::core
