/// \file actions.hpp
/// \brief The 29-action registry of the framework instantiation
///        (Section IV-A): 4 platform selections, 5 device selections,
///        1 synthesis, 3 layouts, 4 routings and 12 optimizations, each
///        with a uniform circuit-in/circuit-out interface and per-state
///        validity rules.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/compilation_state.hpp"
#include "device/library.hpp"
#include "passes/layout/layout.hpp"
#include "passes/pass.hpp"
#include "passes/routing/routing.hpp"

namespace qrc::core {

enum class ActionType : std::uint8_t {
  kPlatformSelection,
  kDeviceSelection,
  kSynthesis,
  kLayout,
  kRouting,
  kOptimization,
};

[[nodiscard]] std::string_view action_type_name(ActionType type);

/// One action of the MDP.
class Action {
 public:
  virtual ~Action() = default;
  Action(std::string name, ActionType type)
      : name_(std::move(name)), type_(type) {}
  Action(const Action&) = delete;
  Action& operator=(const Action&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] ActionType type() const { return type_; }

  /// True if this action may be applied in the given state (the masking
  /// rules of Section III-A).
  [[nodiscard]] virtual bool valid(const CompilationState& state) const = 0;

  /// Applies the action in place. `seed` drives stochastic passes.
  virtual void apply(CompilationState& state, std::uint64_t seed) const = 0;

 private:
  std::string name_;
  ActionType type_;
};

/// The fixed registry instantiated per the paper. Thread-compatible
/// (immutable after construction).
class ActionRegistry {
 public:
  ActionRegistry();

  [[nodiscard]] int size() const { return static_cast<int>(actions_.size()); }
  [[nodiscard]] const Action& at(int id) const { return *actions_[static_cast<std::size_t>(id)]; }

  /// Validity mask over all actions for a state.
  [[nodiscard]] std::vector<bool> mask(const CompilationState& state) const;

  /// Index lookup by action name; throws on unknown name.
  [[nodiscard]] int index_of(std::string_view name) const;

  /// Shared immutable instance.
  [[nodiscard]] static const ActionRegistry& instance();

 private:
  std::vector<std::unique_ptr<Action>> actions_;
};

}  // namespace qrc::core
