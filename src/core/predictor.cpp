#include "core/predictor.hpp"

#include <algorithm>
#include <istream>
#include <memory>
#include <set>
#include <thread>
#include <tuple>
#include <ostream>
#include <stdexcept>

#include "rl/categorical.hpp"
#include "rl/thread_pool.hpp"
#include "rl/vec_env.hpp"

namespace qrc::core {

namespace {

/// State fingerprint for cycle detection in greedy rollouts.
using Fingerprint = std::tuple<std::size_t, int, int, double, int, bool,
                               const device::Device*>;

Fingerprint fingerprint_of(const CompilationEnv& env) {
  const auto& s = env.state();
  return {s.circuit.size(),        s.circuit.two_qubit_gate_count(),
          s.circuit.gate_count(),  s.circuit.global_phase(),
          static_cast<int>(s.state()), s.layout_applied, s.device};
}

/// Forces an unfinished compilation to Done with the canned deterministic
/// pass sequence (synthesis, SABRE layout/routing, synthesis, 1q
/// optimization) and flags the result as fallback.
void finish_with_fallback(const ActionRegistry& registry,
                          const ir::Circuit& circuit,
                          const PredictorConfig& config,
                          CompilationState& state,
                          CompilationResult& result) {
  result.used_fallback = true;
  const auto force = [&](std::string_view name) {
    const int id = registry.index_of(name);
    if (registry.at(id).valid(state)) {
      registry.at(id).apply(state, config.seed);
      result.action_trace.push_back(std::string(name) + "(fallback)");
    }
  };
  if (!state.platform.has_value()) {
    force("platform_ibm");
  }
  if (state.device == nullptr) {
    force("device_ibmq_washington");
  }
  if (state.device == nullptr) {
    // The policy locked in a platform with no device wide enough for the
    // circuit; restart the flow on IBM (whose 127-qubit machine fits
    // every supported circuit).
    state = CompilationState{};
    state.circuit = circuit;
    force("platform_ibm");
    force("device_ibmq_washington");
  }
  force("BasisTranslator");
  force("SabreLayout");
  force("SabreSwap");
  force("BasisTranslator");
  force("Optimize1qGatesDecomposition");
  if (state.state() != MdpState::kDone) {
    throw std::logic_error(
        "Predictor::compile: fallback failed to reach Done");
  }
  result.reward =
      reward::compute_reward(config.reward, state.circuit, *state.device);
}

}  // namespace

Predictor::Predictor(PredictorConfig config) : config_(std::move(config)) {
  config_.ppo.seed = config_.seed;
}

std::vector<rl::PpoUpdateStats> Predictor::train(
    const std::vector<ir::Circuit>& circuits) {
  CompilationEnvConfig env_config;
  env_config.reward = config_.reward;
  env_config.max_steps = config_.env_max_steps;
  env_config.seed = config_.seed;
  std::vector<rl::PpoUpdateStats> stats;
  if (config_.num_envs > 1) {
    // One shared corpus, one cheap env clone per slot, each with its own
    // deterministic RNG stream.
    const CompilationEnv prototype(circuits, env_config);
    // Default worker count: one per env, capped at the hardware threads —
    // an explicit rollout_workers request is honoured as given.
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    const int workers =
        config_.rollout_workers > 0
            ? config_.rollout_workers
            : std::min(config_.num_envs, hw > 0 ? hw : 1);
    rl::VecEnv envs(
        [&](int i) {
          return prototype.clone_with_seed(
              config_.seed + 7919 * static_cast<std::uint64_t>(i + 1));
        },
        config_.num_envs, workers);
    agent_.emplace(rl::train_ppo_vec(envs, config_.ppo, &stats));
  } else {
    CompilationEnv env(circuits, env_config);
    agent_.emplace(rl::train_ppo(env, config_.ppo, &stats));
  }
  return stats;
}

CompilationResult Predictor::compile(const ir::Circuit& circuit) const {
  return compile_batch(std::span<const ir::Circuit>(&circuit, 1), -1).front();
}

CompilationResult Predictor::compile_verified(
    const ir::Circuit& circuit, const verify::VerifyOptions& options) const {
  return compile_batch(std::span<const ir::Circuit>(&circuit, 1), -1,
                       nullptr, &options)
      .front();
}

std::vector<CompilationResult> Predictor::compile_all(
    std::span<const ir::Circuit> circuits, rl::WorkerPool* pool,
    const verify::VerifyOptions* verify_options) const {
  return compile_batch(circuits, -1, pool, verify_options);
}

verify::VerifyResult verify_compilation(const ir::Circuit& original,
                                        const CompilationResult& result,
                                        const verify::VerifyOptions& options) {
  const verify::EquivalenceChecker checker(options);
  if (result.circuit.num_qubits() == original.num_qubits() &&
      result.initial_layout.empty() && result.final_layout.empty()) {
    return checker.check(original, result.circuit);
  }
  return checker.check_mapped(original, result.circuit,
                              result.initial_layout, result.final_layout);
}

CompilationResult Predictor::compile_with_masked_feature(
    const ir::Circuit& circuit, int feature_index) const {
  return compile_batch(std::span<const ir::Circuit>(&circuit, 1),
                       feature_index)
      .front();
}

std::vector<CompilationResult> Predictor::compile_batch(
    std::span<const ir::Circuit> circuits, int feature_index,
    rl::WorkerPool* external_pool,
    const verify::VerifyOptions* verify_options) const {
  if (!agent_.has_value()) {
    throw std::logic_error("Predictor::compile: train or load a model first");
  }
  const ActionRegistry& registry = ActionRegistry::instance();
  const int num_circuits = static_cast<int>(circuits.size());
  std::vector<CompilationResult> results(
      static_cast<std::size_t>(num_circuits));
  if (num_circuits == 0) {
    return results;
  }

  CompilationEnvConfig env_config;
  env_config.reward = config_.reward;
  env_config.max_steps = config_.env_max_steps;
  env_config.seed = config_.seed;

  // One greedy episode per circuit. Deterministic greedy rollouts can
  // cycle: through single no-op actions, or through pass pairs that keep
  // rewriting each other's output. Ban an action whenever it lands on an
  // already-visited state; unban everything on genuine progress.
  struct Episode {
    std::unique_ptr<CompilationEnv> env;
    std::vector<double> obs;
    std::set<int> exhausted;
    std::set<Fingerprint> visited;
    rl::StepResult outcome;
    int action = -1;
    bool done = false;
    bool active = true;  ///< false once every valid action proved no-op
  };
  std::vector<Episode> episodes(static_cast<std::size_t>(num_circuits));
  for (int c = 0; c < num_circuits; ++c) {
    auto& ep = episodes[static_cast<std::size_t>(c)];
    ep.env = std::make_unique<CompilationEnv>(
        std::vector<ir::Circuit>{circuits[c]}, env_config);
    ep.obs = ep.env->reset_with(circuits[c]);
    ep.visited.insert(fingerprint_of(*ep.env));
  }

  // The pool runs the batched policy forwards (row-parallel) and steps the
  // independent environments concurrently. A caller-provided pool is
  // reused as-is (the compile service keeps one per model lane); otherwise
  // a batch-local pool is spun up.
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int workers =
      config_.rollout_workers > 0
          ? std::min(config_.rollout_workers, num_circuits)
          : std::min(num_circuits, hw > 0 ? hw : 1);
  std::optional<rl::WorkerPool> local_pool;
  rl::WorkerPool& pool =
      external_pool != nullptr ? *external_pool : local_pool.emplace(workers);
  const rl::Mlp& policy = agent_->policy();
  const auto obs_size = static_cast<std::size_t>(policy.input_size());

  std::vector<int> live;
  std::vector<int> stepping;
  std::vector<double> obs_batch;
  std::vector<double> logits_batch;
  std::vector<std::vector<bool>> mask_batch;
  for (int step = 0; step < config_.env_max_steps; ++step) {
    live.clear();
    for (int c = 0; c < num_circuits; ++c) {
      const auto& ep = episodes[static_cast<std::size_t>(c)];
      if (ep.active && !ep.done) {
        live.push_back(c);
      }
    }
    if (live.empty()) {
      break;
    }
    const int n_live = static_cast<int>(live.size());

    // One batched policy forward over every still-running episode.
    obs_batch.resize(live.size() * obs_size);
    mask_batch.resize(live.size());
    for (std::size_t i = 0; i < live.size(); ++i) {
      const auto& ep = episodes[static_cast<std::size_t>(live[i])];
      std::copy(ep.obs.begin(), ep.obs.end(),
                obs_batch.begin() + i * obs_size);
      if (feature_index >= 0 &&
          feature_index < static_cast<int>(obs_size)) {
        obs_batch[i * obs_size + static_cast<std::size_t>(feature_index)] =
            0.0;
      }
      mask_batch[i] = ep.env->action_mask();
    }
    policy.forward_batch(obs_batch, n_live, logits_batch, &pool);
    const rl::BatchedMaskedCategorical dist(logits_batch, mask_batch);

    // Greedy action per episode among valid, un-exhausted actions.
    stepping.clear();
    for (std::size_t i = 0; i < live.size(); ++i) {
      auto& ep = episodes[static_cast<std::size_t>(live[i])];
      const auto probs = dist.probs(static_cast<int>(i));
      int action = -1;
      for (int a = 0; a < dist.num_actions(); ++a) {
        if (!mask_batch[i][static_cast<std::size_t>(a)] ||
            ep.exhausted.contains(a)) {
          continue;
        }
        if (action < 0 || probs[static_cast<std::size_t>(a)] >
                              probs[static_cast<std::size_t>(action)]) {
          action = a;
        }
      }
      if (action < 0) {
        ep.active = false;  // every valid action proved ineffective
        continue;
      }
      ep.action = action;
      results[static_cast<std::size_t>(live[i])].action_trace.push_back(
          registry.at(action).name());
      stepping.push_back(live[i]);
    }

    // Step the chosen actions in parallel — each episode owns its state.
    pool.parallel_for(static_cast<int>(stepping.size()), [&](int i) {
      auto& ep = episodes[static_cast<std::size_t>(
          stepping[static_cast<std::size_t>(i)])];
      ep.outcome = ep.env->step(ep.action);
    });
    for (const int c : stepping) {
      auto& ep = episodes[static_cast<std::size_t>(c)];
      ep.obs = ep.outcome.observation;
      ep.done = ep.outcome.done;
      if (!ep.visited.insert(fingerprint_of(*ep.env)).second) {
        ep.exhausted.insert(ep.action);  // known state: no progress
      } else {
        ep.exhausted.clear();
      }
      if (ep.done) {
        results[static_cast<std::size_t>(c)].reward = ep.outcome.reward;
      }
    }
  }

  for (int c = 0; c < num_circuits; ++c) {
    auto& ep = episodes[static_cast<std::size_t>(c)];
    auto& result = results[static_cast<std::size_t>(c)];
    CompilationState state = ep.env->state();
    if (!ep.done) {
      finish_with_fallback(registry, circuits[c], config_, state, result);
    }
    result.circuit = state.circuit;
    result.device = state.device;
    if (state.initial_layout.has_value()) {
      result.initial_layout = *state.initial_layout;
    }
    result.final_layout = state.final_layout;
  }

  if (verify_options != nullptr) {
    // Post-compile verification gate: independent per circuit, so the
    // checks spread over the same worker pool as the rollout.
    pool.parallel_for(num_circuits, [&](int c) {
      auto& result = results[static_cast<std::size_t>(c)];
      result.verification =
          verify_compilation(circuits[c], result, *verify_options);
    });
  }
  return results;
}

double Predictor::evaluate(const CompilationResult& result,
                           reward::RewardKind metric) const {
  if (result.device == nullptr) {
    return 0.0;
  }
  return reward::compute_reward(metric, result.circuit, *result.device);
}

void Predictor::save(std::ostream& os) const {
  if (!agent_.has_value()) {
    throw std::logic_error("Predictor::save: nothing trained");
  }
  os << "qrc_predictor 1 " << static_cast<int>(config_.reward) << " "
     << config_.env_max_steps << " " << config_.seed << "\n";
  agent_->save(os);
}

Predictor Predictor::load(std::istream& is) {
  std::string tag;
  int version = 0;
  int reward_kind = 0;
  PredictorConfig config;
  is >> tag >> version >> reward_kind >> config.env_max_steps >> config.seed;
  if (tag != "qrc_predictor" || version != 1 || reward_kind < 0 ||
      reward_kind > 4) {
    throw std::runtime_error("Predictor::load: bad header");
  }
  config.reward = static_cast<reward::RewardKind>(reward_kind);
  Predictor out(config);
  out.agent_.emplace(rl::PpoAgent::load(is));
  return out;
}

}  // namespace qrc::core
