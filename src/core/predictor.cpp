#include "core/predictor.hpp"

#include <algorithm>
#include <istream>
#include <set>
#include <thread>
#include <tuple>
#include <ostream>
#include <stdexcept>

#include "features/features.hpp"
#include "rl/vec_env.hpp"

namespace qrc::core {

Predictor::Predictor(PredictorConfig config) : config_(std::move(config)) {
  config_.ppo.seed = config_.seed;
}

std::vector<rl::PpoUpdateStats> Predictor::train(
    const std::vector<ir::Circuit>& circuits) {
  CompilationEnvConfig env_config;
  env_config.reward = config_.reward;
  env_config.max_steps = config_.env_max_steps;
  env_config.seed = config_.seed;
  std::vector<rl::PpoUpdateStats> stats;
  if (config_.num_envs > 1) {
    // One shared corpus, one cheap env clone per slot, each with its own
    // deterministic RNG stream.
    const CompilationEnv prototype(circuits, env_config);
    // Default worker count: one per env, capped at the hardware threads —
    // an explicit rollout_workers request is honoured as given.
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    const int workers =
        config_.rollout_workers > 0
            ? config_.rollout_workers
            : std::min(config_.num_envs, hw > 0 ? hw : 1);
    rl::VecEnv envs(
        [&](int i) {
          return prototype.clone_with_seed(
              config_.seed + 7919 * static_cast<std::uint64_t>(i + 1));
        },
        config_.num_envs, workers);
    agent_.emplace(rl::train_ppo_vec(envs, config_.ppo, &stats));
  } else {
    CompilationEnv env(circuits, env_config);
    agent_.emplace(rl::train_ppo(env, config_.ppo, &stats));
  }
  return stats;
}

CompilationResult Predictor::compile(const ir::Circuit& circuit) const {
  return compile_with_masked_feature(circuit, -1);
}

CompilationResult Predictor::compile_with_masked_feature(
    const ir::Circuit& circuit, int feature_index) const {
  if (!agent_.has_value()) {
    throw std::logic_error("Predictor::compile: train or load a model first");
  }
  const ActionRegistry& registry = ActionRegistry::instance();

  CompilationEnvConfig env_config;
  env_config.reward = config_.reward;
  env_config.max_steps = config_.env_max_steps;
  env_config.seed = config_.seed;
  CompilationEnv env({circuit}, env_config);

  CompilationResult result;
  std::vector<double> obs = env.reset_with(circuit);
  bool done = false;
  // Deterministic greedy rollouts can cycle: through single no-op actions,
  // or through pass pairs that keep rewriting each other's output. Ban an
  // action whenever it lands on an already-visited state; unban everything
  // on genuine progress.
  std::set<int> exhausted;
  using Fingerprint = std::tuple<std::size_t, int, int, double, int, bool,
                                 const device::Device*>;
  const auto fingerprint = [&]() -> Fingerprint {
    const auto& s = env.state();
    return {s.circuit.size(),  s.circuit.two_qubit_gate_count(),
            s.circuit.gate_count(), s.circuit.global_phase(),
            static_cast<int>(s.state()), s.layout_applied, s.device};
  };
  std::set<Fingerprint> visited{fingerprint()};
  for (int step = 0; step < config_.env_max_steps && !done; ++step) {
    if (feature_index >= 0 &&
        feature_index < static_cast<int>(obs.size())) {
      obs[static_cast<std::size_t>(feature_index)] = 0.0;
    }
    const auto mask = env.action_mask();
    const auto probs = agent_->action_probabilities(obs, mask);
    int action = -1;
    for (int i = 0; i < static_cast<int>(probs.size()); ++i) {
      if (!mask[static_cast<std::size_t>(i)] || exhausted.contains(i)) {
        continue;
      }
      if (action < 0 || probs[static_cast<std::size_t>(i)] >
                            probs[static_cast<std::size_t>(action)]) {
        action = i;
      }
    }
    if (action < 0) {
      break;  // every valid action proved ineffective: fall back
    }
    result.action_trace.push_back(registry.at(action).name());
    const auto outcome = env.step(action);
    obs = outcome.observation;
    done = outcome.done;
    if (!visited.insert(fingerprint()).second) {
      exhausted.insert(action);  // landed on a known state: no progress
    } else {
      exhausted.clear();
    }
    if (done) {
      result.reward = outcome.reward;
    }
  }

  CompilationState state = env.state();
  if (!done) {
    // Deterministic fallback: force the flow to completion.
    result.used_fallback = true;
    const auto force = [&](std::string_view name) {
      const int id = registry.index_of(name);
      if (registry.at(id).valid(state)) {
        registry.at(id).apply(state, config_.seed);
        result.action_trace.push_back(std::string(name) + "(fallback)");
      }
    };
    if (!state.platform.has_value()) {
      force("platform_ibm");
    }
    if (state.device == nullptr) {
      force("device_ibmq_washington");
    }
    if (state.device == nullptr) {
      // The policy locked in a platform with no device wide enough for the
      // circuit; restart the flow on IBM (whose 127-qubit machine fits
      // every supported circuit).
      state = CompilationState{};
      state.circuit = circuit;
      force("platform_ibm");
      force("device_ibmq_washington");
    }
    force("BasisTranslator");
    force("SabreLayout");
    force("SabreSwap");
    force("BasisTranslator");
    force("Optimize1qGatesDecomposition");
    if (state.state() != MdpState::kDone) {
      throw std::logic_error(
          "Predictor::compile: fallback failed to reach Done");
    }
    result.reward =
        reward::compute_reward(config_.reward, state.circuit, *state.device);
  }

  result.circuit = state.circuit;
  result.device = state.device;
  if (state.initial_layout.has_value()) {
    result.initial_layout = *state.initial_layout;
  }
  result.final_layout = state.final_layout;
  return result;
}

double Predictor::evaluate(const CompilationResult& result,
                           reward::RewardKind metric) const {
  if (result.device == nullptr) {
    return 0.0;
  }
  return reward::compute_reward(metric, result.circuit, *result.device);
}

void Predictor::save(std::ostream& os) const {
  if (!agent_.has_value()) {
    throw std::logic_error("Predictor::save: nothing trained");
  }
  os << "qrc_predictor 1 " << static_cast<int>(config_.reward) << " "
     << config_.env_max_steps << " " << config_.seed << "\n";
  agent_->save(os);
}

Predictor Predictor::load(std::istream& is) {
  std::string tag;
  int version = 0;
  int reward_kind = 0;
  PredictorConfig config;
  is >> tag >> version >> reward_kind >> config.env_max_steps >> config.seed;
  if (tag != "qrc_predictor" || version != 1 || reward_kind < 0 ||
      reward_kind > 4) {
    throw std::runtime_error("Predictor::load: bad header");
  }
  config.reward = static_cast<reward::RewardKind>(reward_kind);
  Predictor out(config);
  out.agent_.emplace(rl::PpoAgent::load(is));
  return out;
}

}  // namespace qrc::core
