#include "core/predictor.hpp"

#include <algorithm>
#include <istream>
#include <memory>
#include <thread>
#include <ostream>
#include <stdexcept>

#include "core/rollout.hpp"
#include "obs/trace.hpp"
#include "rl/thread_pool.hpp"
#include "rl/vec_env.hpp"
#include "search/engine.hpp"

namespace qrc::core {

namespace {

/// Forces an unfinished compilation to Done with the canned deterministic
/// pass sequence (synthesis, SABRE layout/routing, synthesis, 1q
/// optimization) and flags the result as fallback.
void finish_with_fallback(const ActionRegistry& registry,
                          const ir::Circuit& circuit,
                          const PredictorConfig& config,
                          CompilationState& state,
                          CompilationResult& result) {
  result.used_fallback = true;
  const auto force = [&](std::string_view name) {
    const int id = registry.index_of(name);
    if (registry.at(id).valid(state)) {
      registry.at(id).apply(state, config.seed);
      result.action_trace.push_back(std::string(name) + "(fallback)");
    }
  };
  if (!state.platform.has_value()) {
    force("platform_ibm");
  }
  if (state.device == nullptr) {
    force("device_ibmq_washington");
  }
  if (state.device == nullptr) {
    // The policy locked in a platform with no device wide enough for the
    // circuit; restart the flow on IBM (whose 127-qubit machine fits
    // every supported circuit).
    state = CompilationState{};
    state.circuit = circuit;
    force("platform_ibm");
    force("device_ibmq_washington");
  }
  force("BasisTranslator");
  force("SabreLayout");
  force("SabreSwap");
  force("BasisTranslator");
  force("Optimize1qGatesDecomposition");
  if (state.state() != MdpState::kDone) {
    throw std::logic_error(
        "Predictor::compile: fallback failed to reach Done");
  }
  result.reward =
      reward::compute_reward(config.reward, state.circuit, *state.device);
}

}  // namespace

Predictor::Predictor(PredictorConfig config) : config_(std::move(config)) {
  config_.ppo.seed = config_.seed;
}

std::vector<rl::PpoUpdateStats> Predictor::train(
    const std::vector<ir::Circuit>& circuits,
    const std::function<void(const rl::PpoUpdateStats&)>& progress,
    obs::MetricsRegistry* metrics) {
  CompilationEnvConfig env_config;
  env_config.reward = config_.reward;
  env_config.max_steps = config_.env_max_steps;
  env_config.seed = config_.seed;
  std::vector<rl::PpoUpdateStats> stats;
  if (config_.num_envs > 1) {
    // One shared corpus, one cheap env clone per slot, each with its own
    // deterministic RNG stream.
    const CompilationEnv prototype(circuits, env_config);
    // Default worker count: one per env, capped at the hardware threads —
    // an explicit rollout_workers request is honoured as given.
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    const int workers =
        config_.rollout_workers > 0
            ? config_.rollout_workers
            : std::min(config_.num_envs, hw > 0 ? hw : 1);
    rl::VecEnv envs(
        [&](int i) {
          return prototype.clone_with_seed(
              config_.seed + 7919 * static_cast<std::uint64_t>(i + 1));
        },
        config_.num_envs, workers);
    agent_.emplace(
        rl::train_ppo_vec(envs, config_.ppo, &stats, progress, metrics));
  } else {
    CompilationEnv env(circuits, env_config);
    agent_.emplace(rl::train_ppo(env, config_.ppo, &stats, progress, metrics));
  }
  return stats;
}

CompilationResult Predictor::compile(const ir::Circuit& circuit) const {
  return compile_batch(std::span<const ir::Circuit>(&circuit, 1), -1).front();
}

CompilationResult Predictor::compile_verified(
    const ir::Circuit& circuit, const verify::VerifyOptions& options) const {
  return compile_batch(std::span<const ir::Circuit>(&circuit, 1), -1,
                       nullptr, &options)
      .front();
}

std::vector<CompilationResult> Predictor::compile_all(
    std::span<const ir::Circuit> circuits, rl::WorkerPool* pool,
    const verify::VerifyOptions* verify_options) const {
  return compile_batch(circuits, -1, pool, verify_options);
}

verify::VerifyResult verify_compilation(const ir::Circuit& original,
                                        const CompilationResult& result,
                                        const verify::VerifyOptions& options) {
  const verify::EquivalenceChecker checker(options);
  if (result.circuit.num_qubits() == original.num_qubits() &&
      result.initial_layout.empty() && result.final_layout.empty()) {
    return checker.check(original, result.circuit);
  }
  return checker.check_mapped(original, result.circuit,
                              result.initial_layout, result.final_layout);
}

CompilationResult Predictor::compile_with_masked_feature(
    const ir::Circuit& circuit, int feature_index) const {
  return compile_batch(std::span<const ir::Circuit>(&circuit, 1),
                       feature_index)
      .front();
}

std::vector<CompilationResult> Predictor::compile_batch(
    std::span<const ir::Circuit> circuits, int feature_index,
    rl::WorkerPool* external_pool,
    const verify::VerifyOptions* verify_options) const {
  if (!agent_.has_value()) {
    throw std::logic_error("Predictor::compile: train or load a model first");
  }
  const ActionRegistry& registry = ActionRegistry::instance();
  const int num_circuits = static_cast<int>(circuits.size());
  std::vector<CompilationResult> results(
      static_cast<std::size_t>(num_circuits));
  if (num_circuits == 0) {
    return results;
  }

  CompilationEnvConfig env_config;
  env_config.reward = config_.reward;
  env_config.max_steps = config_.env_max_steps;
  env_config.seed = config_.seed;

  // The pool runs the batched policy forwards (row-parallel) and steps the
  // independent episodes concurrently. A caller-provided pool is reused
  // as-is (the compile service keeps one per model lane); otherwise a
  // batch-local pool is spun up.
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int workers =
      config_.rollout_workers > 0
          ? std::min(config_.rollout_workers, num_circuits)
          : std::min(num_circuits, hw > 0 ? hw : 1);
  std::optional<rl::WorkerPool> local_pool;
  rl::WorkerPool& pool =
      external_pool != nullptr ? *external_pool : local_pool.emplace(workers);

  // The shared batched greedy rollout core (also the search baseline).
  const auto episodes = [&] {
    obs::AmbientSpan span("greedy_rollout");
    return run_greedy_episodes(agent_->policy(), circuits, env_config,
                               feature_index, pool);
  }();

  for (int c = 0; c < num_circuits; ++c) {
    const auto& ep = episodes[static_cast<std::size_t>(c)];
    auto& result = results[static_cast<std::size_t>(c)];
    for (const int action : ep.actions) {
      result.action_trace.push_back(registry.at(action).name());
    }
    CompilationState state = ep.state;
    if (ep.done) {
      result.reward = ep.reward;
    } else {
      finish_with_fallback(registry, circuits[c], config_, state, result);
    }
    result.circuit = std::move(state.circuit);
    result.device = state.device;
    if (state.initial_layout.has_value()) {
      result.initial_layout = *state.initial_layout;
    }
    result.final_layout = state.final_layout;
  }

  if (verify_options != nullptr) {
    // Post-compile verification gate: independent per circuit, so the
    // checks spread over the same worker pool as the rollout.
    obs::AmbientSpan span("verify_gate");
    pool.parallel_for(num_circuits, [&](int c) {
      auto& result = results[static_cast<std::size_t>(c)];
      result.verification =
          verify_compilation(circuits[c], result, *verify_options);
    });
  }
  return results;
}

CompilationResult Predictor::compile_search(
    const ir::Circuit& circuit, const search::SearchOptions& options,
    const verify::VerifyOptions* verify_options,
    const search::ProgressFn& progress) const {
  SearchProgressFn indexed;
  if (progress) {
    indexed = [&progress](int, const search::SearchProgress& snapshot) {
      progress(snapshot);
    };
  }
  return compile_search_all(std::span<const ir::Circuit>(&circuit, 1),
                            options, nullptr, verify_options, indexed)
      .front();
}

std::vector<CompilationResult> Predictor::compile_search_all(
    std::span<const ir::Circuit> circuits,
    const search::SearchOptions& options, rl::WorkerPool* external_pool,
    const verify::VerifyOptions* verify_options,
    const SearchProgressFn& progress) const {
  if (!agent_.has_value()) {
    throw std::logic_error(
        "Predictor::compile_search: train or load a model first");
  }
  const ActionRegistry& registry = ActionRegistry::instance();
  const int num_circuits = static_cast<int>(circuits.size());
  if (num_circuits == 0) {
    return {};
  }

  // Search has batched work wider than the circuit count (frontier rows,
  // MCTS leaf batches), so the default pool is sized by the hardware, not
  // by the suite.
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int workers = config_.rollout_workers > 0 ? config_.rollout_workers
                                                  : (hw > 0 ? hw : 1);
  std::optional<rl::WorkerPool> local_pool;
  rl::WorkerPool& pool =
      external_pool != nullptr ? *external_pool : local_pool.emplace(workers);

  // Greedy baselines through the shared rollout core: the anytime floor
  // every searched result is clamped against.
  std::vector<CompilationResult> results =
      compile_batch(circuits, -1, &pool, nullptr);

  search::SearchContext context;
  context.policy = &agent_->policy();
  context.value = &agent_->value_net();
  context.reward = config_.reward;
  context.seed = config_.seed;
  context.max_steps = config_.env_max_steps;

  for (int c = 0; c < num_circuits; ++c) {
    auto& result = results[static_cast<std::size_t>(c)];
    search::ProgressFn per_circuit;
    if (progress) {
      // Quantum-0 snapshot: the greedy baseline is already a complete
      // compilation, so a streaming consumer sees at least one partial
      // even when the deadline kills the search before its first quantum.
      search::SearchProgress baseline;
      baseline.strategy = options.strategy;
      baseline.found_terminal = true;
      baseline.best_reward = result.reward;
      progress(c, baseline);
      per_circuit = [&progress, c](const search::SearchProgress& snapshot) {
        progress(c, snapshot);
      };
    }
    search::SearchResult searched = [&] {
      obs::AmbientSpan span("search_lookahead");
      return search::run_search(circuits[c], context, options, pool,
                                per_circuit);
    }();
    searched.stats.baseline_reward = result.reward;
    if (searched.found_terminal && searched.reward > result.reward) {
      // The searched sequence strictly beats the greedy baseline.
      searched.stats.improved = true;
      result.action_trace.clear();
      for (const int action : searched.actions) {
        result.action_trace.push_back(registry.at(action).name());
      }
      result.reward = searched.reward;
      result.used_fallback = false;
      result.device = searched.state.device;
      result.initial_layout.clear();
      if (searched.state.initial_layout.has_value()) {
        result.initial_layout = *searched.state.initial_layout;
      }
      result.final_layout = searched.state.final_layout;
      result.circuit = std::move(searched.state.circuit);
    }
    result.search_stats = std::move(searched.stats);
  }

  if (verify_options != nullptr) {
    pool.parallel_for(num_circuits, [&](int c) {
      auto& result = results[static_cast<std::size_t>(c)];
      result.verification =
          verify_compilation(circuits[c], result, *verify_options);
    });
  }
  return results;
}

double Predictor::evaluate(const CompilationResult& result,
                           reward::RewardKind metric) const {
  if (result.device == nullptr) {
    return 0.0;
  }
  return reward::compute_reward(metric, result.circuit, *result.device);
}

void Predictor::save(std::ostream& os) const {
  if (!agent_.has_value()) {
    throw std::logic_error("Predictor::save: nothing trained");
  }
  os << "qrc_predictor 1 " << static_cast<int>(config_.reward) << " "
     << config_.env_max_steps << " " << config_.seed << "\n";
  agent_->save(os);
}

Predictor Predictor::load(std::istream& is) {
  std::string tag;
  int version = 0;
  int reward_kind = 0;
  PredictorConfig config;
  is >> tag >> version >> reward_kind >> config.env_max_steps >> config.seed;
  if (tag != "qrc_predictor" || version != 1 || reward_kind < 0 ||
      reward_kind > 4) {
    throw std::runtime_error("Predictor::load: bad header");
  }
  config.reward = static_cast<reward::RewardKind>(reward_kind);
  Predictor out(config);
  out.agent_.emplace(rl::PpoAgent::load(is));
  return out;
}

}  // namespace qrc::core
