/// \file operation.hpp
/// \brief A single circuit instruction: gate kind + operands + parameters.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>

#include "ir/gate.hpp"

namespace qrc::ir {

/// A gate application. Value type, fixed capacity (<= 3 operands and <= 3
/// parameters — the whole vocabulary fits), cheap to copy and relocate.
class Operation {
 public:
  static constexpr int kMaxQubits = 3;
  static constexpr int kMaxParams = 3;

  Operation(GateKind kind, std::span<const int> qubits,
            std::span<const double> params = {})
      : kind_(kind) {
    const GateInfo& info = gate_info(kind);
    if (kind != GateKind::kBarrier &&
        static_cast<int>(qubits.size()) != info.num_qubits) {
      throw std::invalid_argument("Operation: wrong operand count for " +
                                  std::string(info.name));
    }
    if (static_cast<int>(params.size()) != info.num_params) {
      throw std::invalid_argument("Operation: wrong parameter count for " +
                                  std::string(info.name));
    }
    if (qubits.size() > kMaxQubits) {
      throw std::invalid_argument("Operation: too many operands");
    }
    nq_ = static_cast<std::uint8_t>(qubits.size());
    np_ = static_cast<std::uint8_t>(params.size());
    for (int i = 0; i < nq_; ++i) {
      qubits_[static_cast<std::size_t>(i)] =
          qubits[static_cast<std::size_t>(i)];
    }
    for (int i = 0; i < np_; ++i) {
      params_[static_cast<std::size_t>(i)] =
          params[static_cast<std::size_t>(i)];
    }
    for (int i = 0; i < nq_; ++i) {
      for (int j = i + 1; j < nq_; ++j) {
        if (qubits_[static_cast<std::size_t>(i)] ==
            qubits_[static_cast<std::size_t>(j)]) {
          throw std::invalid_argument("Operation: duplicate operand qubit");
        }
      }
    }
  }

  [[nodiscard]] GateKind kind() const { return kind_; }
  [[nodiscard]] const GateInfo& info() const { return gate_info(kind_); }

  [[nodiscard]] int num_qubits() const { return nq_; }
  [[nodiscard]] int num_params() const { return np_; }

  [[nodiscard]] std::span<const int> qubits() const {
    return {qubits_.data(), static_cast<std::size_t>(nq_)};
  }
  [[nodiscard]] std::span<const double> params() const {
    return {params_.data(), static_cast<std::size_t>(np_)};
  }

  [[nodiscard]] int qubit(int i) const {
    return qubits_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] double param(int i) const {
    return params_[static_cast<std::size_t>(i)];
  }

  /// Rewrites operand `i` (used by layout application and routing).
  void set_qubit(int i, int q) { qubits_[static_cast<std::size_t>(i)] = q; }
  void set_param(int i, double v) {
    params_[static_cast<std::size_t>(i)] = v;
  }

  [[nodiscard]] bool is_unitary() const { return info().is_unitary; }
  [[nodiscard]] bool is_two_qubit_unitary() const {
    return info().is_unitary && nq_ == 2;
  }
  [[nodiscard]] bool acts_on(int q) const {
    for (int i = 0; i < nq_; ++i) {
      if (qubits_[static_cast<std::size_t>(i)] == q) {
        return true;
      }
    }
    return false;
  }
  /// True if this operation shares at least one qubit with `other`.
  [[nodiscard]] bool overlaps(const Operation& other) const {
    for (int i = 0; i < nq_; ++i) {
      if (other.acts_on(qubits_[static_cast<std::size_t>(i)])) {
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] bool operator==(const Operation& rhs) const {
    if (kind_ != rhs.kind_ || nq_ != rhs.nq_ || np_ != rhs.np_) {
      return false;
    }
    for (int i = 0; i < nq_; ++i) {
      if (qubits_[static_cast<std::size_t>(i)] !=
          rhs.qubits_[static_cast<std::size_t>(i)]) {
        return false;
      }
    }
    for (int i = 0; i < np_; ++i) {
      if (params_[static_cast<std::size_t>(i)] !=
          rhs.params_[static_cast<std::size_t>(i)]) {
        return false;
      }
    }
    return true;
  }

 private:
  GateKind kind_;
  std::uint8_t nq_ = 0;
  std::uint8_t np_ = 0;
  std::array<int, kMaxQubits> qubits_{};
  std::array<double, kMaxParams> params_{};
};

}  // namespace qrc::ir
