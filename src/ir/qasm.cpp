#include "ir/qasm.hpp"

#include <cctype>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "la/complex.hpp"

namespace qrc::ir {

std::string to_qasm(const Circuit& circuit) {
  std::ostringstream os;
  os.precision(15);
  os << "OPENQASM 2.0;\n";
  os << "include \"qelib1.inc\";\n";
  os << "qreg q[" << circuit.num_qubits() << "];\n";
  os << "creg c[" << circuit.num_qubits() << "];\n";
  for (const Operation& op : circuit.ops()) {
    if (op.kind() == GateKind::kBarrier) {
      os << "barrier q;\n";
      continue;
    }
    if (op.kind() == GateKind::kMeasure) {
      os << "measure q[" << op.qubit(0) << "] -> c[" << op.qubit(0) << "];\n";
      continue;
    }
    if (op.kind() == GateKind::kReset) {
      os << "reset q[" << op.qubit(0) << "];\n";
      continue;
    }
    os << gate_name(op.kind());
    if (op.num_params() > 0) {
      os << "(";
      for (int i = 0; i < op.num_params(); ++i) {
        if (i > 0) {
          os << ",";
        }
        os << op.param(i);
      }
      os << ")";
    }
    os << " ";
    for (int i = 0; i < op.num_qubits(); ++i) {
      if (i > 0) {
        os << ",";
      }
      os << "q[" << op.qubit(i) << "]";
    }
    os << ";\n";
  }
  return os.str();
}

std::string canonical_key(const Circuit& circuit) {
  std::ostringstream os;
  os << std::hexfloat;
  // -0.0 == 0.0 under Circuit::operator==, so fold the sign away to keep
  // the key-equality <-> circuit-equality contract.
  const auto canonical = [](double v) { return v == 0.0 ? 0.0 : v; };
  os << "q" << circuit.num_qubits() << ";gp"
     << canonical(circuit.global_phase()) << ";";
  for (const Operation& op : circuit.ops()) {
    os << gate_name(op.kind());
    if (op.num_params() > 0) {
      os << "(";
      for (int i = 0; i < op.num_params(); ++i) {
        if (i > 0) {
          os << ",";
        }
        os << canonical(op.param(i));
      }
      os << ")";
    }
    for (int i = 0; i < op.num_qubits(); ++i) {
      os << (i > 0 ? "," : " ") << op.qubit(i);
    }
    os << ";";
  }
  return os.str();
}

namespace {

/// Minimal recursive-descent parser for parameter expressions:
///   expr := term (('+'|'-') term)*
///   term := factor (('*'|'/') factor)*
///   factor := number | 'pi' | '-' factor | '(' expr ')'
class ExprParser {
 public:
  explicit ExprParser(std::string_view text) : text_(text) {}

  double parse() {
    const double v = expr();
    skip_ws();
    if (pos_ != text_.size()) {
      throw std::runtime_error("trailing characters in expression: " +
                               std::string(text_));
    }
    return v;
  }

 private:
  double expr() {
    double v = term();
    for (;;) {
      skip_ws();
      if (peek() == '+') {
        ++pos_;
        v += term();
      } else if (peek() == '-') {
        ++pos_;
        v -= term();
      } else {
        return v;
      }
    }
  }

  double term() {
    double v = factor();
    for (;;) {
      skip_ws();
      if (peek() == '*') {
        ++pos_;
        v *= factor();
      } else if (peek() == '/') {
        ++pos_;
        v /= factor();
      } else {
        return v;
      }
    }
  }

  double factor() {
    skip_ws();
    if (peek() == '-') {
      ++pos_;
      return -factor();
    }
    if (peek() == '+') {
      ++pos_;
      return factor();
    }
    if (peek() == '(') {
      ++pos_;
      const double v = expr();
      skip_ws();
      if (peek() != ')') {
        throw std::runtime_error("expected ')'");
      }
      ++pos_;
      return v;
    }
    if (std::isalpha(static_cast<unsigned char>(peek())) != 0) {
      std::string word;
      while (pos_ < text_.size() &&
             std::isalpha(static_cast<unsigned char>(text_[pos_])) != 0) {
        word += text_[pos_++];
      }
      if (word == "pi") {
        return la::kPi;
      }
      throw std::runtime_error("unknown identifier '" + word + "'");
    }
    // std::stod accepts plain, decimal and scientific notation (1e-3,
    // 2.5E+2); it throws std::invalid_argument on garbage, which we map to
    // a parse error naming the offending text instead of an uncaught
    // "stod" exception.
    std::size_t consumed = 0;
    double v = 0.0;
    try {
      v = std::stod(std::string(text_.substr(pos_)), &consumed);
    } catch (const std::out_of_range&) {
      throw std::runtime_error("number out of range: '" +
                               std::string(text_.substr(pos_)) + "'");
    } catch (const std::exception&) {
      throw std::runtime_error("expected number, got '" +
                               std::string(text_.substr(pos_)) + "'");
    }
    if (consumed == 0) {
      throw std::runtime_error("expected number");
    }
    pos_ += consumed;
    return v;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::string strip(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) {
    --e;
  }
  return s.substr(b, e - b);
}

/// Upper bound on register sizes and qubit indices accepted by the parser
/// (documented in qasm.hpp); rejects absurd declarations before they turn
/// into gigabyte allocations.
constexpr long kMaxRegisterIndex = 1000000;

/// Strictly parses a non-negative register index: digits only, bounded.
/// std::stoi would silently accept "1abc" (-> 1) and throw uncaught
/// std::invalid_argument / std::out_of_range on "abc" or huge values.
int parse_register_index(const std::string& token, const char* what) {
  const std::string t = strip(token);
  if (t.empty()) {
    throw std::runtime_error(std::string("empty ") + what);
  }
  long value = 0;
  for (const char c : t) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
      throw std::runtime_error(std::string("bad ") + what + " '" + t +
                               "' (expected a non-negative integer)");
    }
    value = value * 10 + (c - '0');
    if (value > kMaxRegisterIndex) {
      throw std::runtime_error(std::string(what) + " '" + t +
                               "' out of range");
    }
  }
  return static_cast<int>(value);
}

/// Parses "q[3]" -> 3.
int parse_qubit_ref(const std::string& token, const std::string& reg_name) {
  const std::string t = strip(token);
  const std::size_t lb = t.find('[');
  const std::size_t rb = t.find(']');
  if (lb == std::string::npos || rb == std::string::npos || rb < lb ||
      t.substr(0, lb) != reg_name) {
    throw std::runtime_error("bad qubit reference '" + t + "'");
  }
  return parse_register_index(t.substr(lb + 1, rb - lb - 1), "qubit index");
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  for (const char c : s) {
    if (c == '(') {
      ++depth;
    }
    if (c == ')') {
      --depth;
    }
    if (c == delim && depth == 0) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

/// A ';'-terminated statement plus the 1-based source line it starts on
/// (the line of its first non-whitespace character), for error context.
struct Statement {
  std::string text;
  int line = 0;
};

/// Strips //-comments and splits the source into statements, tracking
/// line numbers through both.
std::vector<Statement> split_statements(const std::string& text) {
  std::vector<Statement> out;
  std::string cur;
  int line = 1;
  int stmt_line = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      while (i < text.size() && text[i] != '\n') {
        ++i;
      }
      if (i >= text.size()) {
        break;
      }
    }
    const char c = text[i];
    if (c == '\n') {
      ++line;
    }
    if (c == ';') {
      const std::string stmt = strip(cur);
      if (!stmt.empty()) {
        out.push_back({stmt, stmt_line == 0 ? line : stmt_line});
      }
      cur.clear();
      stmt_line = 0;
    } else {
      if (stmt_line == 0 && std::isspace(static_cast<unsigned char>(c)) == 0) {
        stmt_line = line;
      }
      cur += c;
    }
  }
  const std::string tail = strip(cur);
  if (!tail.empty()) {
    out.push_back({tail, stmt_line == 0 ? line : stmt_line});
  }
  return out;
}

}  // namespace

Circuit from_qasm(const std::string& text) {
  Circuit circuit;
  std::string qreg_name = "q";
  bool have_qreg = false;

  for (const Statement& statement : split_statements(text)) {
    const std::string& stmt = statement.text;
    // Every statement-level failure is rethrown with the source line and
    // the statement text, so malformed input produces an actionable parse
    // error instead of an uncaught std::stoi/std::stod exception.
    try {
      if (stmt.rfind("OPENQASM", 0) == 0 || stmt.rfind("include", 0) == 0 ||
          stmt.rfind("creg", 0) == 0) {
        continue;
      }
      if (stmt.rfind("qreg", 0) == 0) {
        const std::size_t lb = stmt.find('[');
        const std::size_t rb = stmt.find(']');
        if (lb == std::string::npos || rb == std::string::npos || rb < lb) {
          throw std::runtime_error("bad qreg statement");
        }
        qreg_name = strip(stmt.substr(4, lb - 4));
        if (qreg_name.empty()) {
          throw std::runtime_error("qreg needs a register name");
        }
        const int n = parse_register_index(
            stmt.substr(lb + 1, rb - lb - 1), "qreg size");
        circuit = Circuit(n);
        have_qreg = true;
        continue;
      }
      if (!have_qreg) {
        throw std::runtime_error("statement before qreg");
      }
      if (stmt.rfind("barrier", 0) == 0) {
        circuit.barrier();
        continue;
      }
      if (stmt.rfind("measure", 0) == 0) {
        const std::size_t arrow = stmt.find("->");
        const std::string src = strip(stmt.substr(
            7, (arrow == std::string::npos ? stmt.size() : arrow) - 7));
        circuit.measure(parse_qubit_ref(src, qreg_name));
        continue;
      }
      if (stmt.rfind("reset", 0) == 0) {
        circuit.reset(parse_qubit_ref(strip(stmt.substr(5)), qreg_name));
        continue;
      }

      // Gate statement: name[(params)] operand[, operand...]
      std::size_t name_end = 0;
      while (name_end < stmt.size() &&
             (std::isalnum(static_cast<unsigned char>(stmt[name_end])) !=
              0)) {
        ++name_end;
      }
      std::string name = stmt.substr(0, name_end);
      std::size_t rest_begin = name_end;
      std::vector<double> params;
      if (rest_begin < stmt.size() && stmt[rest_begin] == '(') {
        const std::size_t close = stmt.rfind(')');
        if (close == std::string::npos || close < rest_begin) {
          throw std::runtime_error("unbalanced parameter list");
        }
        for (const std::string& p :
             split(stmt.substr(rest_begin + 1, close - rest_begin - 1),
                   ',')) {
          params.push_back(ExprParser(strip(p)).parse());
        }
        rest_begin = close + 1;
      }
      std::vector<int> qubits;
      for (const std::string& qref : split(stmt.substr(rest_begin), ',')) {
        qubits.push_back(parse_qubit_ref(qref, qreg_name));
      }

      // Aliases.
      if (name == "u1") {
        name = "p";
      } else if (name == "u2") {
        if (params.size() != 2) {
          throw std::runtime_error("u2 needs 2 params");
        }
        params = {la::kPi / 2.0, params[0], params[1]};
        name = "u3";
      } else if (name == "u") {
        name = "u3";
      } else if (name == "cnot") {
        name = "cx";
      }

      const auto kind = gate_from_name(name);
      if (!kind.has_value()) {
        throw std::runtime_error("unknown gate '" + name + "'");
      }
      circuit.append(*kind, qubits, params);
    } catch (const std::exception& e) {
      throw std::runtime_error("qasm: parse error at line " +
                               std::to_string(statement.line) + ": " +
                               e.what() + " [in statement '" + stmt + "']");
    }
  }
  return circuit;
}

}  // namespace qrc::ir
