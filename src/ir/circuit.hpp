/// \file circuit.hpp
/// \brief The quantum circuit: an ordered list of operations on n qubits.
///        This is the unified interchange format of the framework — every
///        compilation pass consumes and produces a Circuit.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/operation.hpp"

namespace qrc::ir {

/// Ordered sequence of operations over `num_qubits` qubits. Gate insertion
/// validates operand ranges eagerly so that passes can assume well-formed
/// circuits.
///
/// The op list is copy-on-write: copying a Circuit shares one immutable
/// op buffer (an O(1) refcount bump, however long the circuit), and the
/// buffer is materialized into a private copy only when a mutating method
/// is first called on one of the copies. Search node expansion and rollout
/// episode setup copy CompilationStates wholesale, so sharing until a pass
/// actually rewrites the circuit is what makes expanding a beam/MCTS child
/// cheap. Read accessors never materialize.
class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(int num_qubits, std::string name = "");

  [[nodiscard]] int num_qubits() const { return num_qubits_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] double global_phase() const { return global_phase_; }
  void add_global_phase(double phase);

  [[nodiscard]] const std::vector<Operation>& ops() const {
    return ops_ != nullptr ? *ops_ : empty_ops();
  }
  /// Mutable op access; materializes a private copy if the storage is
  /// shared. The returned reference is invalidated by copying the circuit
  /// (the next copy re-shares the buffer), so do not hold it across copies.
  [[nodiscard]] std::vector<Operation>& mutable_ops() {
    own();
    return *ops_;
  }
  [[nodiscard]] std::size_t size() const { return ops().size(); }
  [[nodiscard]] bool empty() const { return ops().empty(); }

  /// True if this circuit still shares its op buffer with `other` — a COW
  /// diagnostic for tests and benches, not part of circuit semantics.
  [[nodiscard]] bool shares_ops_with(const Circuit& other) const {
    return ops_ != nullptr && ops_ == other.ops_;
  }

  /// Appends an operation, validating operand indices against num_qubits().
  void append(const Operation& op);
  void append(GateKind kind, std::span<const int> qubits,
              std::span<const double> params = {});

  // Typed helpers for every gate in the vocabulary.
  void i(int q) { append1(GateKind::kI, q); }
  void x(int q) { append1(GateKind::kX, q); }
  void y(int q) { append1(GateKind::kY, q); }
  void z(int q) { append1(GateKind::kZ, q); }
  void h(int q) { append1(GateKind::kH, q); }
  void s(int q) { append1(GateKind::kS, q); }
  void sdg(int q) { append1(GateKind::kSdg, q); }
  void t(int q) { append1(GateKind::kT, q); }
  void tdg(int q) { append1(GateKind::kTdg, q); }
  void sx(int q) { append1(GateKind::kSX, q); }
  void sxdg(int q) { append1(GateKind::kSXdg, q); }
  void rx(double theta, int q) { append1p(GateKind::kRX, theta, q); }
  void ry(double theta, int q) { append1p(GateKind::kRY, theta, q); }
  void rz(double theta, int q) { append1p(GateKind::kRZ, theta, q); }
  void p(double lambda, int q) { append1p(GateKind::kP, lambda, q); }
  void u3(double theta, double phi, double lambda, int q);
  void cx(int control, int target) { append2(GateKind::kCX, control, target); }
  void cy(int control, int target) { append2(GateKind::kCY, control, target); }
  void cz(int a, int b) { append2(GateKind::kCZ, a, b); }
  void ch(int control, int target) { append2(GateKind::kCH, control, target); }
  void cp(double lambda, int a, int b) { append2p(GateKind::kCP, lambda, a, b); }
  void crx(double t, int c, int tg) { append2p(GateKind::kCRX, t, c, tg); }
  void cry(double t, int c, int tg) { append2p(GateKind::kCRY, t, c, tg); }
  void crz(double t, int c, int tg) { append2p(GateKind::kCRZ, t, c, tg); }
  void swap(int a, int b) { append2(GateKind::kSWAP, a, b); }
  void iswap(int a, int b) { append2(GateKind::kISWAP, a, b); }
  void ecr(int a, int b) { append2(GateKind::kECR, a, b); }
  void rxx(double t, int a, int b) { append2p(GateKind::kRXX, t, a, b); }
  void ryy(double t, int a, int b) { append2p(GateKind::kRYY, t, a, b); }
  void rzz(double t, int a, int b) { append2p(GateKind::kRZZ, t, a, b); }
  void rzx(double t, int a, int b) { append2p(GateKind::kRZX, t, a, b); }
  void ccx(int c1, int c2, int target);
  void ccz(int a, int b, int c);
  void cswap(int control, int a, int b);
  void measure(int q) { append1(GateKind::kMeasure, q); }
  void measure_all();
  void barrier();
  void reset(int q) { append1(GateKind::kReset, q); }

  // ---- Analysis ----

  /// Circuit depth by levelisation (barriers synchronise but add no level;
  /// measures count as one level).
  [[nodiscard]] int depth() const;

  /// Depth counting only two-qubit(+) gates.
  [[nodiscard]] int multi_qubit_depth() const;

  /// Number of unitary gates (excludes measure/barrier/reset).
  [[nodiscard]] int gate_count() const;

  /// Number of unitary gates acting on >= 2 qubits.
  [[nodiscard]] int two_qubit_gate_count() const;

  /// Histogram of op kinds by mnemonic.
  [[nodiscard]] std::map<std::string, int> count_ops() const;

  /// True if every unitary op acts on at most `max_arity` qubits.
  [[nodiscard]] bool max_gate_arity_at_most(int max_arity) const;

  // ---- Transforms ----

  /// The adjoint circuit (unitary part reversed and inverted). Non-unitary
  /// ops (measure/reset) are dropped; barriers preserved in reverse order.
  [[nodiscard]] Circuit inverse() const;

  /// A copy with every qubit index i replaced by mapping[i]. The result has
  /// `new_num_qubits` qubits (>= max mapped index + 1).
  [[nodiscard]] Circuit remapped(const std::vector<int>& mapping,
                                 int new_num_qubits) const;

  /// Appends all ops of `other` (must have <= num_qubits() qubits).
  void extend(const Circuit& other);

  /// Removes ops flagged true in `to_remove` (size must equal size()).
  void remove_ops(const std::vector<bool>& to_remove);

  /// The set of qubits touched by at least one op.
  [[nodiscard]] std::vector<int> active_qubits() const;

  /// Compact single-line summary, e.g. "ghz_5: 6 ops, depth 5".
  [[nodiscard]] std::string summary() const;

  /// Structural equality: qubit count, global phase and the exact op
  /// sequence (kinds, operands, parameters compared with double ==, so
  /// -0.0 equals 0.0). The name is metadata and deliberately excluded —
  /// two circuits with the same content compare equal whatever they are
  /// called.
  [[nodiscard]] bool operator==(const Circuit& rhs) const;

 private:
  void append1(GateKind kind, int q);
  void append1p(GateKind kind, double p0, int q);
  void append2(GateKind kind, int a, int b);
  void append2p(GateKind kind, double p0, int a, int b);
  void validate(const Operation& op) const;

  /// Materializes a privately owned op buffer: allocates on first mutation
  /// of an empty circuit, clones when the buffer is shared with a copy.
  void own();
  static const std::vector<Operation>& empty_ops();

  int num_qubits_ = 0;
  double global_phase_ = 0.0;
  std::string name_;
  /// Shared-until-mutated op buffer; nullptr encodes the empty circuit so
  /// default construction never allocates.
  std::shared_ptr<std::vector<Operation>> ops_;
};

}  // namespace qrc::ir
