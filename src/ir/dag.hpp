/// \file dag.hpp
/// \brief Lightweight DAG view over a Circuit: per-qubit predecessor and
///        successor links for every operation. Used by commutation-aware
///        passes and the feature extractors.
#pragma once

#include <array>
#include <unordered_map>
#include <vector>

#include "ir/circuit.hpp"

namespace qrc::ir {

/// Immutable dependency view of a circuit. Barriers depend on all qubits.
/// Indices refer to positions in circuit.ops().
class DagCircuit {
 public:
  explicit DagCircuit(const Circuit& circuit);

  /// Index of the previous op acting on `qubit` before op `index`, or -1.
  /// Precondition: op `index` acts on `qubit` (or is a barrier).
  [[nodiscard]] int prev_on_qubit(int index, int qubit) const;

  /// Index of the next op acting on `qubit` after op `index`, or -1.
  [[nodiscard]] int next_on_qubit(int index, int qubit) const;

  /// First op acting on `qubit`, or -1.
  [[nodiscard]] int first_on_qubit(int qubit) const {
    return first_[static_cast<std::size_t>(qubit)];
  }

  /// Last op acting on `qubit`, or -1.
  [[nodiscard]] int last_on_qubit(int qubit) const {
    return last_[static_cast<std::size_t>(qubit)];
  }

 private:
  // Compact per-operand links for regular ops (<= 3 operands); barriers act
  // on every qubit and keep full rows in a side table.
  const Circuit* circuit_;
  std::vector<std::array<int, 3>> prev_;
  std::vector<std::array<int, 3>> next_;
  std::unordered_map<int, std::vector<int>> barrier_prev_;
  std::unordered_map<int, std::vector<int>> barrier_next_;
  std::vector<int> first_;
  std::vector<int> last_;
};

}  // namespace qrc::ir
