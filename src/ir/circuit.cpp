#include "ir/circuit.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "la/complex.hpp"

namespace qrc::ir {

Circuit::Circuit(int num_qubits, std::string name)
    : num_qubits_(num_qubits), name_(std::move(name)) {
  if (num_qubits < 0) {
    throw std::invalid_argument("Circuit: negative qubit count");
  }
}

void Circuit::add_global_phase(double phase) {
  global_phase_ = la::normalize_angle(global_phase_ + phase);
}

bool Circuit::operator==(const Circuit& rhs) const {
  if (num_qubits_ != rhs.num_qubits_ || global_phase_ != rhs.global_phase_) {
    return false;
  }
  // Shared COW buffer: identical without walking the ops.
  return ops_ == rhs.ops_ || ops() == rhs.ops();
}

const std::vector<Operation>& Circuit::empty_ops() {
  static const std::vector<Operation> kEmpty;
  return kEmpty;
}

void Circuit::own() {
  if (ops_ == nullptr) {
    ops_ = std::make_shared<std::vector<Operation>>();
  } else if (ops_.use_count() > 1) {
    ops_ = std::make_shared<std::vector<Operation>>(*ops_);
  }
}

void Circuit::validate(const Operation& op) const {
  for (const int q : op.qubits()) {
    if (q < 0 || q >= num_qubits_) {
      throw std::out_of_range("Circuit: operand qubit " + std::to_string(q) +
                              " out of range [0, " +
                              std::to_string(num_qubits_) + ")");
    }
  }
}

void Circuit::append(const Operation& op) {
  validate(op);
  own();
  ops_->push_back(op);
}

void Circuit::append(GateKind kind, std::span<const int> qubits,
                     std::span<const double> params) {
  append(Operation(kind, qubits, params));
}

void Circuit::u3(double theta, double phi, double lambda, int q) {
  const std::array<int, 1> qs{q};
  const std::array<double, 3> ps{theta, phi, lambda};
  append(GateKind::kU3, qs, ps);
}

void Circuit::ccx(int c1, int c2, int target) {
  const std::array<int, 3> qs{c1, c2, target};
  append(GateKind::kCCX, qs);
}

void Circuit::ccz(int a, int b, int c) {
  const std::array<int, 3> qs{a, b, c};
  append(GateKind::kCCZ, qs);
}

void Circuit::cswap(int control, int a, int b) {
  const std::array<int, 3> qs{control, a, b};
  append(GateKind::kCSWAP, qs);
}

void Circuit::measure_all() {
  for (int q = 0; q < num_qubits_; ++q) {
    measure(q);
  }
}

void Circuit::barrier() {
  append(Operation(GateKind::kBarrier, {}, {}));
}

void Circuit::append1(GateKind kind, int q) {
  const std::array<int, 1> qs{q};
  append(kind, qs);
}

void Circuit::append1p(GateKind kind, double p0, int q) {
  const std::array<int, 1> qs{q};
  const std::array<double, 1> ps{p0};
  append(kind, qs, ps);
}

void Circuit::append2(GateKind kind, int a, int b) {
  const std::array<int, 2> qs{a, b};
  append(kind, qs);
}

void Circuit::append2p(GateKind kind, double p0, int a, int b) {
  const std::array<int, 2> qs{a, b};
  const std::array<double, 1> ps{p0};
  append(kind, qs, ps);
}

int Circuit::depth() const {
  std::vector<int> level(static_cast<std::size_t>(num_qubits_), 0);
  int max_level = 0;
  for (const Operation& op : ops()) {
    if (op.kind() == GateKind::kBarrier) {
      // Synchronise all qubits without consuming a level.
      const int sync = *std::max_element(level.begin(), level.end());
      std::fill(level.begin(), level.end(), sync);
      continue;
    }
    int start = 0;
    for (const int q : op.qubits()) {
      start = std::max(start, level[static_cast<std::size_t>(q)]);
    }
    for (const int q : op.qubits()) {
      level[static_cast<std::size_t>(q)] = start + 1;
    }
    max_level = std::max(max_level, start + 1);
  }
  return max_level;
}

int Circuit::multi_qubit_depth() const {
  std::vector<int> level(static_cast<std::size_t>(num_qubits_), 0);
  int max_level = 0;
  for (const Operation& op : ops()) {
    if (!op.is_unitary() || op.num_qubits() < 2) {
      continue;
    }
    int start = 0;
    for (const int q : op.qubits()) {
      start = std::max(start, level[static_cast<std::size_t>(q)]);
    }
    for (const int q : op.qubits()) {
      level[static_cast<std::size_t>(q)] = start + 1;
    }
    max_level = std::max(max_level, start + 1);
  }
  return max_level;
}

int Circuit::gate_count() const {
  int count = 0;
  for (const Operation& op : ops()) {
    if (op.is_unitary()) {
      ++count;
    }
  }
  return count;
}

int Circuit::two_qubit_gate_count() const {
  int count = 0;
  for (const Operation& op : ops()) {
    if (op.is_unitary() && op.num_qubits() >= 2) {
      ++count;
    }
  }
  return count;
}

std::map<std::string, int> Circuit::count_ops() const {
  std::map<std::string, int> counts;
  for (const Operation& op : ops()) {
    ++counts[std::string(gate_name(op.kind()))];
  }
  return counts;
}

bool Circuit::max_gate_arity_at_most(int max_arity) const {
  for (const Operation& op : ops()) {
    if (op.is_unitary() && op.num_qubits() > max_arity) {
      return false;
    }
  }
  return true;
}

Circuit Circuit::inverse() const {
  Circuit out(num_qubits_, name_.empty() ? "" : name_ + "_dg");
  out.global_phase_ = la::normalize_angle(-global_phase_);
  const auto& my_ops = ops();
  for (auto it = my_ops.rbegin(); it != my_ops.rend(); ++it) {
    const Operation& op = *it;
    if (op.kind() == GateKind::kBarrier) {
      out.barrier();
      continue;
    }
    if (!op.is_unitary()) {
      continue;  // measure / reset have no adjoint
    }
    if (op.kind() == GateKind::kISWAP) {
      // iSWAP^dag = (Z (x) Z) * iSWAP.
      out.iswap(op.qubit(0), op.qubit(1));
      out.z(op.qubit(0));
      out.z(op.qubit(1));
      continue;
    }
    const InverseGate inv = gate_inverse(op.kind(), op.params());
    const GateInfo& info = gate_info(inv.kind);
    out.append(inv.kind, op.qubits(),
               std::span<const double>(inv.params.data(),
                                       static_cast<std::size_t>(
                                           info.num_params)));
  }
  return out;
}

Circuit Circuit::remapped(const std::vector<int>& mapping,
                          int new_num_qubits) const {
  if (static_cast<int>(mapping.size()) < num_qubits_) {
    throw std::invalid_argument("remapped: mapping too small");
  }
  Circuit out(new_num_qubits, name_);
  out.global_phase_ = global_phase_;
  for (const Operation& op : ops()) {
    Operation copy = op;
    for (int i = 0; i < op.num_qubits(); ++i) {
      copy.set_qubit(i, mapping[static_cast<std::size_t>(op.qubit(i))]);
    }
    out.append(copy);
  }
  return out;
}

void Circuit::extend(const Circuit& other) {
  if (other.num_qubits() > num_qubits_) {
    throw std::invalid_argument("extend: other circuit is wider");
  }
  for (const Operation& op : other.ops()) {
    append(op);
  }
  add_global_phase(other.global_phase());
}

void Circuit::remove_ops(const std::vector<bool>& to_remove) {
  const auto& current = ops();
  if (to_remove.size() != current.size()) {
    throw std::invalid_argument("remove_ops: flag vector size mismatch");
  }
  auto kept = std::make_shared<std::vector<Operation>>();
  kept->reserve(current.size());
  for (std::size_t i = 0; i < current.size(); ++i) {
    if (!to_remove[i]) {
      kept->push_back(current[i]);
    }
  }
  ops_ = std::move(kept);  // full replacement: no need to materialize first
}

std::vector<int> Circuit::active_qubits() const {
  std::vector<bool> used(static_cast<std::size_t>(num_qubits_), false);
  for (const Operation& op : ops()) {
    for (const int q : op.qubits()) {
      used[static_cast<std::size_t>(q)] = true;
    }
  }
  std::vector<int> out;
  for (int q = 0; q < num_qubits_; ++q) {
    if (used[static_cast<std::size_t>(q)]) {
      out.push_back(q);
    }
  }
  return out;
}

std::string Circuit::summary() const {
  std::ostringstream os;
  os << (name_.empty() ? "circuit" : name_) << ": " << num_qubits_
     << " qubits, " << size() << " ops, depth " << depth();
  return os.str();
}

}  // namespace qrc::ir
