/// \file gate.hpp
/// \brief Gate vocabulary: kinds, static metadata (arity, names, algebraic
///        properties) and gate matrices. The single source of truth for what
///        a gate *is*; everything else (passes, simulators, devices) keys on
///        GateKind.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "la/mat2.hpp"
#include "la/mat4.hpp"

namespace qrc::ir {

/// All gate kinds known to the IR. Non-unitary circuit elements (measure,
/// barrier, reset) are included so a Circuit can represent a full program.
enum class GateKind : std::uint8_t {
  kI,
  kX,
  kY,
  kZ,
  kH,
  kS,
  kSdg,
  kT,
  kTdg,
  kSX,
  kSXdg,
  kRX,
  kRY,
  kRZ,
  kP,
  kU3,
  kCX,
  kCY,
  kCZ,
  kCH,
  kCP,
  kCRX,
  kCRY,
  kCRZ,
  kSWAP,
  kISWAP,
  kECR,
  kRXX,
  kRYY,
  kRZZ,
  kRZX,
  kCCX,
  kCCZ,
  kCSWAP,
  kMeasure,
  kBarrier,
  kReset,
};

/// Number of distinct gate kinds (for table sizing).
inline constexpr int kNumGateKinds = static_cast<int>(GateKind::kReset) + 1;

/// Static per-kind metadata.
struct GateInfo {
  std::string_view name;  ///< lowercase mnemonic, e.g. "cx"
  int num_qubits = 1;     ///< operand count (Barrier is variadic: 0 here)
  int num_params = 0;     ///< rotation-angle count
  bool is_unitary = true;
  bool is_diagonal = false;   ///< diagonal in the computational basis
  bool is_symmetric = false;  ///< invariant under operand exchange (2q)
  bool is_clifford = false;   ///< Clifford for all parameter values
};

/// \returns metadata for `kind`.
[[nodiscard]] const GateInfo& gate_info(GateKind kind);

/// \returns the mnemonic, e.g. "cx".
[[nodiscard]] std::string_view gate_name(GateKind kind);

/// \returns the kind for a mnemonic or std::nullopt if unknown.
[[nodiscard]] std::optional<GateKind> gate_from_name(std::string_view name);

/// 2x2 matrix of a single-qubit gate. Preconditions: gate_info(kind)
/// .num_qubits == 1 and is_unitary; params must carry num_params angles.
[[nodiscard]] la::Mat2 gate_matrix_1q(GateKind kind,
                                      std::span<const double> params);

/// 4x4 matrix of a two-qubit gate in the |q1 q0> basis where operand 0 of
/// the gate is qubit 0 (low bit) and operand 1 is qubit 1 (high bit).
/// For kCX the control is operand 0 and the target operand 1.
[[nodiscard]] la::Mat4 gate_matrix_2q(GateKind kind,
                                      std::span<const double> params);

/// The inverse gate expressed as a (kind, params) pair. All gates in the
/// vocabulary have inverses within the vocabulary.
struct InverseGate {
  GateKind kind;
  std::array<double, 3> params;
};
[[nodiscard]] InverseGate gate_inverse(GateKind kind,
                                       std::span<const double> params);

/// True if the gate (with the given parameters) acts as the identity up to
/// global phase (e.g. rz(0), p(2*pi)).
[[nodiscard]] bool gate_is_identity(GateKind kind,
                                    std::span<const double> params,
                                    double atol = 1e-9);

}  // namespace qrc::ir
