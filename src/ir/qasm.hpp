/// \file qasm.hpp
/// \brief OpenQASM-2-style text serialisation of circuits: dump any Circuit
///        and parse back the subset the library emits (plus the common
///        u1/u2/u aliases). Used by the examples and for interchange.
#pragma once

#include <string>

#include "ir/circuit.hpp"

namespace qrc::ir {

/// Serialises the circuit as OpenQASM 2.0 text.
[[nodiscard]] std::string to_qasm(const Circuit& circuit);

/// Parses OpenQASM 2.0 text. Supports the gate vocabulary of this library,
/// the aliases u1 (-> p), u2(phi, lambda) (-> u3(pi/2, phi, lambda)) and
/// u (-> u3), a single qreg, an optional creg, measure, barrier and reset.
/// Parameter expressions may use numbers (including scientific notation,
/// e.g. 2.5e-2), "pi", unary plus/minus, + - * / and parentheses.
/// Register sizes and qubit indices are capped at 1,000,000 (declarations
/// beyond that are rejected rather than allocated).
/// \throws std::runtime_error on malformed input, with the source line and
///         offending statement in the message.
[[nodiscard]] Circuit from_qasm(const std::string& text);

/// Canonical content fingerprint of a circuit, suitable as an exact cache
/// key: the to_qasm() statement grammar with bit-exact (hex-float)
/// parameters, prefixed with the qubit count and global phase. Two
/// circuits share a key iff they are structurally identical
/// (Circuit::operator==); the name is excluded, so differently-labelled
/// copies of the same circuit hit the same cache entry. The key is the
/// full text, not a hash — no collisions.
[[nodiscard]] std::string canonical_key(const Circuit& circuit);

}  // namespace qrc::ir
