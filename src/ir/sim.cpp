#include "ir/sim.hpp"

#include <cmath>
#include <random>
#include <stdexcept>

namespace qrc::ir {

using la::cplx;

Statevector::Statevector(int num_qubits) : num_qubits_(num_qubits) {
  if (num_qubits < 0 || num_qubits > 24) {
    throw std::invalid_argument("Statevector: unsupported qubit count");
  }
  amp_.assign(std::size_t{1} << num_qubits, cplx{0.0, 0.0});
  amp_[0] = 1.0;
}

Statevector Statevector::random(int num_qubits, std::uint64_t seed) {
  Statevector out(num_qubits);
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  double norm2 = 0.0;
  for (cplx& a : out.amp_) {
    a = cplx{gauss(rng), gauss(rng)};
    norm2 += std::norm(a);
  }
  const double inv = 1.0 / std::sqrt(norm2);
  for (cplx& a : out.amp_) {
    a *= inv;
  }
  return out;
}

void Statevector::apply_1q(const la::Mat2& u, int q) {
  const std::size_t bit = std::size_t{1} << q;
  const std::size_t n = amp_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if ((i & bit) != 0) {
      continue;
    }
    const cplx a0 = amp_[i];
    const cplx a1 = amp_[i | bit];
    amp_[i] = u(0, 0) * a0 + u(0, 1) * a1;
    amp_[i | bit] = u(1, 0) * a0 + u(1, 1) * a1;
  }
}

void Statevector::apply_2q(const la::Mat4& u, int q0, int q1) {
  const std::size_t b0 = std::size_t{1} << q0;
  const std::size_t b1 = std::size_t{1} << q1;
  const std::size_t n = amp_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if ((i & b0) != 0 || (i & b1) != 0) {
      continue;
    }
    // Basis order |q1 q0>: index = bit(q1) * 2 + bit(q0).
    const std::size_t i00 = i;
    const std::size_t i01 = i | b0;
    const std::size_t i10 = i | b1;
    const std::size_t i11 = i | b0 | b1;
    const cplx a00 = amp_[i00];
    const cplx a01 = amp_[i01];
    const cplx a10 = amp_[i10];
    const cplx a11 = amp_[i11];
    amp_[i00] = u(0, 0) * a00 + u(0, 1) * a01 + u(0, 2) * a10 + u(0, 3) * a11;
    amp_[i01] = u(1, 0) * a00 + u(1, 1) * a01 + u(1, 2) * a10 + u(1, 3) * a11;
    amp_[i10] = u(2, 0) * a00 + u(2, 1) * a01 + u(2, 2) * a10 + u(2, 3) * a11;
    amp_[i11] = u(3, 0) * a00 + u(3, 1) * a01 + u(3, 2) * a10 + u(3, 3) * a11;
  }
}

void Statevector::apply_matrix(const la::Mat2& u, int q) { apply_1q(u, q); }

void Statevector::apply_matrix(const la::Mat4& u, int q0, int q1) {
  apply_2q(u, q0, q1);
}

void Statevector::apply(const Operation& op) {
  if (!op.is_unitary()) {
    // The silent skip is deliberately restricted to the known non-unitary
    // circuit elements. A future non-unitary kind must be handled here
    // explicitly, not ignored — an equivalence check that drops ops it
    // does not understand passes vacuously.
    switch (op.kind()) {
      case GateKind::kMeasure:
      case GateKind::kBarrier:
      case GateKind::kReset:
        return;
      default:
        throw std::invalid_argument(
            "Statevector: unsupported non-unitary op '" +
            std::string(op.info().name) + "'");
    }
  }
  switch (op.num_qubits()) {
    case 1:
      apply_1q(gate_matrix_1q(op.kind(), op.params()), op.qubit(0));
      return;
    case 2:
      apply_2q(gate_matrix_2q(op.kind(), op.params()), op.qubit(0),
               op.qubit(1));
      return;
    case 3: {
      const std::size_t ba = std::size_t{1} << op.qubit(0);
      const std::size_t bb = std::size_t{1} << op.qubit(1);
      const std::size_t bc = std::size_t{1} << op.qubit(2);
      const std::size_t n = amp_.size();
      switch (op.kind()) {
        case GateKind::kCCX:
          // Controls = operands 0, 1; target = operand 2.
          for (std::size_t i = 0; i < n; ++i) {
            if ((i & ba) != 0 && (i & bb) != 0 && (i & bc) == 0) {
              std::swap(amp_[i], amp_[i | bc]);
            }
          }
          return;
        case GateKind::kCCZ:
          for (std::size_t i = 0; i < n; ++i) {
            if ((i & ba) != 0 && (i & bb) != 0 && (i & bc) != 0) {
              amp_[i] = -amp_[i];
            }
          }
          return;
        case GateKind::kCSWAP:
          // Control = operand 0; swapped = operands 1, 2.
          for (std::size_t i = 0; i < n; ++i) {
            if ((i & ba) != 0 && (i & bb) != 0 && (i & bc) == 0) {
              std::swap(amp_[i], amp_[(i & ~bb) | bc]);
            }
          }
          return;
        default:
          throw std::invalid_argument("Statevector: unknown 3q gate '" +
                                      std::string(op.info().name) + "'");
      }
    }
    default:
      throw std::invalid_argument("Statevector: unsupported arity for '" +
                                  std::string(op.info().name) + "'");
  }
}

void Statevector::apply(const Circuit& circuit) {
  if (circuit.num_qubits() > num_qubits_) {
    throw std::invalid_argument("Statevector: circuit wider than state");
  }
  for (const Operation& op : circuit.ops()) {
    apply(op);
  }
  const cplx phase = std::exp(cplx{0.0, circuit.global_phase()});
  if (phase != cplx{1.0, 0.0}) {
    for (cplx& a : amp_) {
      a *= phase;
    }
  }
}

cplx Statevector::inner_product(const Statevector& rhs) const {
  if (rhs.amp_.size() != amp_.size()) {
    throw std::invalid_argument("inner_product: dimension mismatch");
  }
  cplx acc = 0.0;
  for (std::size_t i = 0; i < amp_.size(); ++i) {
    acc += std::conj(amp_[i]) * rhs.amp_[i];
  }
  return acc;
}

double Statevector::norm() const {
  double acc = 0.0;
  for (const cplx& a : amp_) {
    acc += std::norm(a);
  }
  return std::sqrt(acc);
}

Statevector permute_qubits(const Statevector& state,
                           const std::vector<int>& perm) {
  Statevector out(state.num_qubits());
  auto& dst = out.mutable_amplitudes();
  const auto& src = state.amplitudes();
  std::fill(dst.begin(), dst.end(), cplx{0.0, 0.0});
  const int n = state.num_qubits();
  for (std::size_t i = 0; i < src.size(); ++i) {
    std::size_t j = 0;
    for (int q = 0; q < n; ++q) {
      if ((i >> q) & 1U) {
        j |= std::size_t{1} << perm[static_cast<std::size_t>(q)];
      }
    }
    dst[j] = src[i];
  }
  return out;
}

Statevector embed_state(const Statevector& state, int m,
                        const std::vector<int>& placement) {
  Statevector out(m);
  auto& dst = out.mutable_amplitudes();
  const auto& src = state.amplitudes();
  std::fill(dst.begin(), dst.end(), cplx{0.0, 0.0});
  const int n = state.num_qubits();
  for (std::size_t i = 0; i < src.size(); ++i) {
    std::size_t j = 0;
    for (int q = 0; q < n; ++q) {
      if ((i >> q) & 1U) {
        j |= std::size_t{1} << placement[static_cast<std::size_t>(q)];
      }
    }
    dst[j] = src[i];
  }
  return out;
}

bool circuits_equivalent(const Circuit& a, const Circuit& b, int num_trials,
                         std::uint64_t seed,
                         const std::vector<int>& final_permutation,
                         double atol) {
  const int n = std::max(a.num_qubits(), b.num_qubits());
  if (n > 16) {
    throw std::invalid_argument("circuits_equivalent: too many qubits");
  }
  cplx ref_phase{0.0, 0.0};
  for (int t = 0; t < num_trials; ++t) {
    Statevector input = Statevector::random(n, seed + static_cast<std::uint64_t>(t));
    Statevector sa = input;
    Statevector sb = input;
    sa.apply(a);
    sb.apply(b);
    if (!final_permutation.empty()) {
      std::vector<int> perm = final_permutation;
      // Extend the permutation over untouched qubits as identity.
      for (int q = static_cast<int>(perm.size()); q < n; ++q) {
        perm.push_back(q);
      }
      sa = permute_qubits(sa, perm);
    }
    const cplx overlap = sa.inner_product(sb);
    if (std::abs(std::abs(overlap) - 1.0) > atol) {
      return false;
    }
    if (t == 0) {
      ref_phase = overlap;
    } else if (std::abs(overlap - ref_phase) > atol * 10.0) {
      return false;
    }
  }
  return true;
}

bool mapped_circuit_equivalent(const Circuit& logical,
                               const Circuit& physical,
                               const std::vector<int>& initial_layout,
                               const std::vector<int>& final_layout,
                               int num_trials, std::uint64_t seed,
                               double atol) {
  const int m = physical.num_qubits();
  if (m > 16) {
    throw std::invalid_argument("mapped_circuit_equivalent: device too big");
  }
  for (int t = 0; t < num_trials; ++t) {
    Statevector input = Statevector::random(
        logical.num_qubits(), seed + static_cast<std::uint64_t>(t));
    // Physical evolution of the embedded input.
    Statevector phys = embed_state(input, m, initial_layout);
    phys.apply(physical);
    // Logical evolution, then embed at the final layout.
    Statevector log = input;
    log.apply(logical);
    Statevector expected = embed_state(log, m, final_layout);
    const cplx overlap = expected.inner_product(phys);
    if (std::abs(std::abs(overlap) - 1.0) > atol) {
      return false;
    }
  }
  return true;
}

}  // namespace qrc::ir
