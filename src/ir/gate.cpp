#include "ir/gate.hpp"

#include <array>
#include <cmath>
#include <stdexcept>
#include <string>

namespace qrc::ir {

namespace {

using la::cplx;
using la::kPi;
using la::Mat2;
using la::Mat4;

constexpr std::array<GateInfo, kNumGateKinds> kGateTable = {{
    // name, nq, np, unitary, diagonal, symmetric, clifford
    {"id", 1, 0, true, true, false, true},
    {"x", 1, 0, true, false, false, true},
    {"y", 1, 0, true, false, false, true},
    {"z", 1, 0, true, true, false, true},
    {"h", 1, 0, true, false, false, true},
    {"s", 1, 0, true, true, false, true},
    {"sdg", 1, 0, true, true, false, true},
    {"t", 1, 0, true, true, false, false},
    {"tdg", 1, 0, true, true, false, false},
    {"sx", 1, 0, true, false, false, true},
    {"sxdg", 1, 0, true, false, false, true},
    {"rx", 1, 1, true, false, false, false},
    {"ry", 1, 1, true, false, false, false},
    {"rz", 1, 1, true, true, false, false},
    {"p", 1, 1, true, true, false, false},
    {"u3", 1, 3, true, false, false, false},
    {"cx", 2, 0, true, false, false, true},
    {"cy", 2, 0, true, false, false, true},
    {"cz", 2, 0, true, true, true, true},
    {"ch", 2, 0, true, false, false, false},
    {"cp", 2, 1, true, true, true, false},
    {"crx", 2, 1, true, false, false, false},
    {"cry", 2, 1, true, false, false, false},
    {"crz", 2, 1, true, true, false, false},
    {"swap", 2, 0, true, false, true, true},
    {"iswap", 2, 0, true, false, true, true},
    {"ecr", 2, 0, true, false, false, true},
    {"rxx", 2, 1, true, false, true, false},
    {"ryy", 2, 1, true, false, true, false},
    {"rzz", 2, 1, true, true, true, false},
    {"rzx", 2, 1, true, false, false, false},
    {"ccx", 3, 0, true, false, false, false},
    {"ccz", 3, 0, true, true, true, false},
    {"cswap", 3, 0, true, false, false, false},
    {"measure", 1, 0, false, false, false, false},
    {"barrier", 0, 0, false, false, false, false},
    {"reset", 1, 0, false, false, false, false},
}};

}  // namespace

const GateInfo& gate_info(GateKind kind) {
  return kGateTable[static_cast<std::size_t>(kind)];
}

std::string_view gate_name(GateKind kind) { return gate_info(kind).name; }

std::optional<GateKind> gate_from_name(std::string_view name) {
  for (int i = 0; i < kNumGateKinds; ++i) {
    if (kGateTable[static_cast<std::size_t>(i)].name == name) {
      return static_cast<GateKind>(i);
    }
  }
  return std::nullopt;
}

la::Mat2 gate_matrix_1q(GateKind kind, std::span<const double> params) {
  switch (kind) {
    case GateKind::kI:
      return Mat2::identity();
    case GateKind::kX:
      return la::x_mat();
    case GateKind::kY:
      return la::y_mat();
    case GateKind::kZ:
      return la::z_mat();
    case GateKind::kH:
      return la::h_mat();
    case GateKind::kS:
      return la::s_mat();
    case GateKind::kSdg:
      return la::sdg_mat();
    case GateKind::kT:
      return la::t_mat();
    case GateKind::kTdg:
      return la::tdg_mat();
    case GateKind::kSX:
      return la::sx_mat();
    case GateKind::kSXdg:
      return la::sxdg_mat();
    case GateKind::kRX:
      return la::rx_mat(params[0]);
    case GateKind::kRY:
      return la::ry_mat(params[0]);
    case GateKind::kRZ:
      return la::rz_mat(params[0]);
    case GateKind::kP:
      return la::p_mat(params[0]);
    case GateKind::kU3:
      return la::u3_mat(params[0], params[1], params[2]);
    default:
      throw std::invalid_argument("gate_matrix_1q: not a single-qubit gate: " +
                                  std::string(gate_name(kind)));
  }
}

namespace {

/// Controlled version of a 1q gate: control = operand 0 (low bit),
/// target = operand 1 (high bit).
Mat4 controlled(const Mat2& u) {
  Mat4 out = Mat4::identity();
  // States |q1 q0>: control set means q0 = 1, i.e. columns/rows 1 and 3.
  out(1, 1) = u(0, 0);
  out(1, 3) = u(0, 1);
  out(3, 1) = u(1, 0);
  out(3, 3) = u(1, 1);
  return out;
}

/// exp(-i theta/2 * (sigma_a (x) sigma_b)) with sigma on qubit 1 / qubit 0.
Mat4 two_pauli_rotation(const Mat2& pa, const Mat2& pb, double theta) {
  const Mat4 p = la::kron(pa, pb);
  Mat4 out = Mat4::identity() * cplx{std::cos(theta / 2.0), 0.0};
  return out + p * cplx{0.0, -std::sin(theta / 2.0)};
}

}  // namespace

la::Mat4 gate_matrix_2q(GateKind kind, std::span<const double> params) {
  switch (kind) {
    case GateKind::kCX:
      return la::cx01_mat();
    case GateKind::kCY:
      return controlled(la::y_mat());
    case GateKind::kCZ:
      return la::cz_mat();
    case GateKind::kCH:
      return controlled(la::h_mat());
    case GateKind::kCP:
      return controlled(la::p_mat(params[0]));
    case GateKind::kCRX:
      return controlled(la::rx_mat(params[0]));
    case GateKind::kCRY:
      return controlled(la::ry_mat(params[0]));
    case GateKind::kCRZ:
      return controlled(la::rz_mat(params[0]));
    case GateKind::kSWAP:
      return la::swap_mat();
    case GateKind::kISWAP:
      return la::iswap_mat();
    case GateKind::kECR: {
      // ECR = (IX - XY) / sqrt(2): echoed cross-resonance, locally
      // equivalent to CX (operand 0 = low bit).
      const Mat4 ix = la::kron(Mat2::identity(), la::x_mat());
      const Mat4 xy = la::kron(la::x_mat(), la::y_mat());
      return (ix - xy) * cplx{1.0 / std::sqrt(2.0), 0.0};
    }
    case GateKind::kRXX:
      return two_pauli_rotation(la::x_mat(), la::x_mat(), params[0]);
    case GateKind::kRYY:
      return two_pauli_rotation(la::y_mat(), la::y_mat(), params[0]);
    case GateKind::kRZZ:
      return two_pauli_rotation(la::z_mat(), la::z_mat(), params[0]);
    case GateKind::kRZX:
      // Z on operand 0 (low bit), X on operand 1 (high bit).
      return two_pauli_rotation(la::x_mat(), la::z_mat(), params[0]);
    default:
      throw std::invalid_argument("gate_matrix_2q: not a two-qubit gate: " +
                                  std::string(gate_name(kind)));
  }
}

InverseGate gate_inverse(GateKind kind, std::span<const double> params) {
  InverseGate out{kind, {0.0, 0.0, 0.0}};
  switch (kind) {
    case GateKind::kS:
      out.kind = GateKind::kSdg;
      return out;
    case GateKind::kSdg:
      out.kind = GateKind::kS;
      return out;
    case GateKind::kT:
      out.kind = GateKind::kTdg;
      return out;
    case GateKind::kTdg:
      out.kind = GateKind::kT;
      return out;
    case GateKind::kSX:
      out.kind = GateKind::kSXdg;
      return out;
    case GateKind::kSXdg:
      out.kind = GateKind::kSX;
      return out;
    case GateKind::kRX:
    case GateKind::kRY:
    case GateKind::kRZ:
    case GateKind::kP:
    case GateKind::kCP:
    case GateKind::kCRX:
    case GateKind::kCRY:
    case GateKind::kCRZ:
    case GateKind::kRXX:
    case GateKind::kRYY:
    case GateKind::kRZZ:
    case GateKind::kRZX:
      out.params[0] = -params[0];
      return out;
    case GateKind::kU3:
      // U3(t, p, l)^-1 = U3(-t, -l, -p).
      out.params[0] = -params[0];
      out.params[1] = -params[2];
      out.params[2] = -params[1];
      return out;
    case GateKind::kISWAP:
      // iSWAP^dag = (Z (x) Z) * iSWAP, not a single gate in the vocabulary;
      // Circuit::inverse() expands it. The kind returned here is only used
      // for the entangling part.
      out.kind = GateKind::kISWAP;
      return out;
    default:
      // Self-inverse gates (paulis, H, CX, CZ, CY, CH, SWAP, ECR, CCX, CCZ,
      // CSWAP, I) and non-unitary ops map to themselves.
      return out;
  }
}

bool gate_is_identity(GateKind kind, std::span<const double> params,
                      double atol) {
  switch (kind) {
    case GateKind::kI:
      return true;
    case GateKind::kRX:
    case GateKind::kRY:
    case GateKind::kRZ:
    case GateKind::kRXX:
    case GateKind::kRYY:
    case GateKind::kRZZ:
    case GateKind::kRZX:
      return la::angle_is_zero(params[0], atol);
    case GateKind::kP:
    case GateKind::kCP:
    case GateKind::kCRX:
    case GateKind::kCRY:
    case GateKind::kCRZ:
      return la::angle_is_zero(params[0], atol);
    case GateKind::kU3:
      return la::angle_is_zero(params[0], atol) &&
             la::angle_is_zero(params[1] + params[2], atol);
    default:
      return false;
  }
}

}  // namespace qrc::ir
