#include "ir/dag.hpp"

#include <stdexcept>

namespace qrc::ir {

DagCircuit::DagCircuit(const Circuit& circuit) : circuit_(&circuit) {
  const auto& ops = circuit.ops();
  const int n = circuit.num_qubits();
  prev_.assign(ops.size(), {-1, -1, -1});
  next_.assign(ops.size(), {-1, -1, -1});
  first_.assign(static_cast<std::size_t>(n), -1);
  last_.assign(static_cast<std::size_t>(n), -1);

  // last_seen[q] = index of the most recent op on qubit q during the sweep.
  std::vector<int> last_seen(static_cast<std::size_t>(n), -1);

  const auto link = [&](int cur, int qubit, int operand_pos_cur) {
    const int prev_idx = last_seen[static_cast<std::size_t>(qubit)];
    if (operand_pos_cur >= 0) {
      prev_[static_cast<std::size_t>(cur)]
           [static_cast<std::size_t>(operand_pos_cur)] = prev_idx;
    } else {
      barrier_prev_[cur][static_cast<std::size_t>(qubit)] = prev_idx;
    }
    if (prev_idx >= 0) {
      const Operation& pop = ops[static_cast<std::size_t>(prev_idx)];
      if (pop.kind() == GateKind::kBarrier) {
        barrier_next_[prev_idx][static_cast<std::size_t>(qubit)] = cur;
      } else {
        for (int k = 0; k < pop.num_qubits(); ++k) {
          if (pop.qubit(k) == qubit) {
            next_[static_cast<std::size_t>(prev_idx)]
                 [static_cast<std::size_t>(k)] = cur;
            break;
          }
        }
      }
    } else {
      first_[static_cast<std::size_t>(qubit)] = cur;
    }
    last_seen[static_cast<std::size_t>(qubit)] = cur;
  };

  for (int i = 0; i < static_cast<int>(ops.size()); ++i) {
    const Operation& op = ops[static_cast<std::size_t>(i)];
    if (op.kind() == GateKind::kBarrier) {
      barrier_prev_[i].assign(static_cast<std::size_t>(n), -1);
      barrier_next_[i].assign(static_cast<std::size_t>(n), -1);
      for (int q = 0; q < n; ++q) {
        link(i, q, -1);
      }
      continue;
    }
    for (int k = 0; k < op.num_qubits(); ++k) {
      link(i, op.qubit(k), k);
    }
  }
  for (int q = 0; q < n; ++q) {
    last_[static_cast<std::size_t>(q)] = last_seen[static_cast<std::size_t>(q)];
  }
}

int DagCircuit::prev_on_qubit(int index, int qubit) const {
  const Operation& op = circuit_->ops()[static_cast<std::size_t>(index)];
  if (op.kind() == GateKind::kBarrier) {
    return barrier_prev_.at(index)[static_cast<std::size_t>(qubit)];
  }
  for (int k = 0; k < op.num_qubits(); ++k) {
    if (op.qubit(k) == qubit) {
      return prev_[static_cast<std::size_t>(index)]
                  [static_cast<std::size_t>(k)];
    }
  }
  throw std::invalid_argument("prev_on_qubit: op does not act on qubit");
}

int DagCircuit::next_on_qubit(int index, int qubit) const {
  const Operation& op = circuit_->ops()[static_cast<std::size_t>(index)];
  if (op.kind() == GateKind::kBarrier) {
    return barrier_next_.at(index)[static_cast<std::size_t>(qubit)];
  }
  for (int k = 0; k < op.num_qubits(); ++k) {
    if (op.qubit(k) == qubit) {
      return next_[static_cast<std::size_t>(index)]
                  [static_cast<std::size_t>(k)];
    }
  }
  throw std::invalid_argument("next_on_qubit: op does not act on qubit");
}

}  // namespace qrc::ir
