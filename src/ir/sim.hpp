/// \file sim.hpp
/// \brief Dense statevector simulation of circuits, used for equivalence
///        checking in tests and for validating pass soundness. Practical up
///        to ~16 qubits; equivalence checks are used on <= 12.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/circuit.hpp"
#include "la/complex.hpp"

namespace qrc::ir {

/// Dense complex statevector over n qubits (qubit 0 = least-significant
/// bit of the basis index).
class Statevector {
 public:
  /// |0...0> on n qubits.
  explicit Statevector(int num_qubits);

  [[nodiscard]] int num_qubits() const { return num_qubits_; }
  [[nodiscard]] const std::vector<la::cplx>& amplitudes() const {
    return amp_;
  }
  [[nodiscard]] std::vector<la::cplx>& mutable_amplitudes() { return amp_; }

  /// Haar-ish random normalized state (Gaussian amplitudes).
  [[nodiscard]] static Statevector random(int num_qubits,
                                          std::uint64_t seed);

  /// Applies a unitary operation in place. Measure/reset/barrier are
  /// ignored (equivalence checking concerns the unitary part); any *other*
  /// op the simulator cannot handle throws — a silent skip here would let
  /// an equivalence check pass vacuously.
  void apply(const Operation& op);

  /// Applies all ops of a circuit, plus its global phase.
  void apply(const Circuit& circuit);

  /// Applies a raw 2x2 unitary to qubit `q` (used by the verifier to apply
  /// conjugated gate matrices that have no GateKind of their own).
  void apply_matrix(const la::Mat2& u, int q);

  /// Applies a raw 4x4 unitary to the (q0 = low bit, q1 = high bit) pair.
  void apply_matrix(const la::Mat4& u, int q0, int q1);

  /// <this | rhs>.
  [[nodiscard]] la::cplx inner_product(const Statevector& rhs) const;

  /// ||this||_2.
  [[nodiscard]] double norm() const;

 private:
  void apply_1q(const la::Mat2& u, int q);
  void apply_2q(const la::Mat4& u, int q0, int q1);

  int num_qubits_;
  std::vector<la::cplx> amp_;
};

/// Reindexes `state` so that qubit q of the input becomes qubit perm[q] of
/// the output (perm must be a bijection over the state's qubits).
[[nodiscard]] Statevector permute_qubits(const Statevector& state,
                                         const std::vector<int>& perm);

/// Embeds an n-qubit state into m >= n qubits, placing logical qubit i at
/// physical qubit placement[i]; all other physical qubits are |0>.
[[nodiscard]] Statevector embed_state(const Statevector& state, int m,
                                      const std::vector<int>& placement);

/// Statistical unitary-equivalence check: applies both circuits to
/// `num_trials` shared random input states and compares the outputs up to a
/// single global phase (estimated from the first trial and required to be
/// consistent across all trials). Sound for unitary circuits: agreement on
/// enough random states implies equality of the unitaries w.h.p.
///
/// `final_permutation`, if non-empty, maps output qubit i of `a` to output
/// qubit final_permutation[i] of `b` (used for routed circuits, whose
/// final layout differs from the initial one).
[[nodiscard]] bool circuits_equivalent(const Circuit& a, const Circuit& b,
                                       int num_trials = 4,
                                       std::uint64_t seed = 12345,
                                       const std::vector<int>&
                                           final_permutation = {},
                                       double atol = 1e-6);

/// Convenience: checks a (possibly wider, mapped) circuit `b` against the
/// original `a` given an initial layout (logical -> physical) and final
/// layout after routing.
[[nodiscard]] bool mapped_circuit_equivalent(
    const Circuit& logical, const Circuit& physical,
    const std::vector<int>& initial_layout,
    const std::vector<int>& final_layout, int num_trials = 4,
    std::uint64_t seed = 12345, double atol = 1e-6);

}  // namespace qrc::ir
