#include "device/library.hpp"

#include <array>
#include <stdexcept>
#include <string>

namespace qrc::device {

namespace {

/// The 27-qubit IBM Falcon heavy-hex coupling list (ibmq_montreal family).
CouplingMap montreal_coupling() {
  return CouplingMap(
      27, {{0, 1},   {1, 2},   {1, 4},   {2, 3},   {3, 5},   {4, 7},
           {5, 8},   {6, 7},   {7, 10},  {8, 9},   {8, 11},  {10, 12},
           {11, 14}, {12, 13}, {12, 15}, {13, 14}, {14, 16}, {15, 18},
           {16, 19}, {17, 18}, {18, 21}, {19, 20}, {19, 22}, {21, 23},
           {22, 25}, {23, 24}, {24, 25}, {25, 26}});
}

Device make_device(DeviceId id) {
  switch (id) {
    case DeviceId::kIbmqMontreal:
      return Device("ibmq_montreal", Platform::kIBM, montreal_coupling(),
                    0xA0D1u);
    case DeviceId::kIbmqWashington:
      // Eagle-style heavy hex: 7 rows of 15 with 24 bridges = 127 qubits.
      return Device("ibmq_washington", Platform::kIBM,
                    CouplingMap::heavy_hex(7, 15), 0xA0D2u);
    case DeviceId::kRigettiAspenM2:
      // Two rows of five octagons = 80 qubits.
      return Device("rigetti_aspen_m2", Platform::kRigetti,
                    CouplingMap::octagonal(2, 5), 0xA0D3u);
    case DeviceId::kIonqHarmony:
      return Device("ionq_harmony", Platform::kIonQ,
                    CouplingMap::fully_connected(11), 0xA0D4u);
    case DeviceId::kOqcLucy:
      return Device("oqc_lucy", Platform::kOQC, CouplingMap::ring(8),
                    0xA0D5u);
  }
  throw std::invalid_argument("make_device: unknown id");
}

}  // namespace

const Device& get_device(DeviceId id) {
  static const std::array<Device, kNumDevices> kDevices = {
      make_device(DeviceId::kIbmqMontreal),
      make_device(DeviceId::kIbmqWashington),
      make_device(DeviceId::kRigettiAspenM2),
      make_device(DeviceId::kIonqHarmony),
      make_device(DeviceId::kOqcLucy)};
  return kDevices[static_cast<std::size_t>(id)];
}

const std::vector<const Device*>& all_devices() {
  static const std::vector<const Device*> kAll = {
      &get_device(DeviceId::kIbmqMontreal),
      &get_device(DeviceId::kIbmqWashington),
      &get_device(DeviceId::kRigettiAspenM2),
      &get_device(DeviceId::kIonqHarmony),
      &get_device(DeviceId::kOqcLucy)};
  return kAll;
}

std::vector<const Device*> devices_on_platform(Platform p) {
  std::vector<const Device*> out;
  for (const Device* d : all_devices()) {
    if (d->platform() == p) {
      out.push_back(d);
    }
  }
  return out;
}

const Device& device_by_name(std::string_view name) {
  for (const Device* d : all_devices()) {
    if (d->name() == name) {
      return *d;
    }
  }
  throw std::invalid_argument("device_by_name: unknown device '" +
                              std::string(name) + "'");
}

}  // namespace qrc::device
