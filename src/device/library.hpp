/// \file library.hpp
/// \brief The device zoo evaluated in the paper: two IBM machines, one
///        Rigetti, one IonQ and one OQC machine.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "device/device.hpp"

namespace qrc::device {

/// Identifiers of the five devices from the paper's Section IV-A.
enum class DeviceId : std::uint8_t {
  kIbmqMontreal,    ///< IBM, 27 qubits, heavy hex
  kIbmqWashington,  ///< IBM, 127 qubits, heavy hex (Eagle)
  kRigettiAspenM2,  ///< Rigetti, 80 qubits, octagonal lattice
  kIonqHarmony,     ///< IonQ, 11 qubits, all-to-all
  kOqcLucy,         ///< OQC, 8 qubits, ring
};

inline constexpr int kNumDevices = 5;

/// Shared immutable instance for `id` (devices are expensive to build —
/// the 127-qubit distance matrix — so they are constructed once).
[[nodiscard]] const Device& get_device(DeviceId id);

/// All five devices in declaration order.
[[nodiscard]] const std::vector<const Device*>& all_devices();

/// Devices belonging to a platform.
[[nodiscard]] std::vector<const Device*> devices_on_platform(Platform p);

/// Lookup by name ("ibmq_montreal", ...); throws on unknown name.
[[nodiscard]] const Device& device_by_name(std::string_view name);

}  // namespace qrc::device
