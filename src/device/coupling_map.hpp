/// \file coupling_map.hpp
/// \brief Undirected qubit-connectivity graph of a device, with all-pairs
///        shortest-path distances for routing heuristics.
#pragma once

#include <utility>
#include <vector>

namespace qrc::device {

/// Undirected connectivity graph. Distances are hop counts computed by BFS
/// over all pairs at construction (devices are <= a few hundred qubits).
class CouplingMap {
 public:
  CouplingMap() = default;

  /// \param num_qubits number of physical qubits.
  /// \param edges undirected couplings; duplicates and self-loops rejected.
  CouplingMap(int num_qubits, std::vector<std::pair<int, int>> edges);

  [[nodiscard]] int num_qubits() const { return num_qubits_; }
  [[nodiscard]] const std::vector<std::pair<int, int>>& edges() const {
    return edges_;
  }
  [[nodiscard]] const std::vector<int>& neighbors(int q) const {
    return adj_[static_cast<std::size_t>(q)];
  }

  [[nodiscard]] bool are_coupled(int a, int b) const;

  /// Hop distance between two qubits; num_qubits() if disconnected.
  [[nodiscard]] int distance(int a, int b) const {
    return dist_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
  }

  /// One shortest path from a to b (inclusive of both endpoints).
  [[nodiscard]] std::vector<int> shortest_path(int a, int b) const;

  /// True if the graph is connected.
  [[nodiscard]] bool connected() const;

  /// True if every qubit has at least one coupling (or the device is 1q).
  [[nodiscard]] bool no_isolated_qubits() const;

  // ---- Topology factories ----

  [[nodiscard]] static CouplingMap line(int n);
  [[nodiscard]] static CouplingMap ring(int n);
  [[nodiscard]] static CouplingMap grid(int rows, int cols);
  [[nodiscard]] static CouplingMap fully_connected(int n);

  /// IBM-style heavy-hex lattice with `rows` qubit rows of `row_len` qubits
  /// and 4 bridge qubits per row gap; the first and last rows are one qubit
  /// short, matching the 127-qubit Eagle shape for (7, 15).
  [[nodiscard]] static CouplingMap heavy_hex(int rows, int row_len);

  /// Rigetti-style lattice of 8-qubit octagon rings arranged in a
  /// `rows` x `cols` grid with two couplers between facing octagons.
  [[nodiscard]] static CouplingMap octagonal(int rows, int cols);

 private:
  int num_qubits_ = 0;
  std::vector<std::pair<int, int>> edges_;
  std::vector<std::vector<int>> adj_;
  std::vector<std::vector<int>> dist_;
};

}  // namespace qrc::device
