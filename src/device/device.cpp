#include "device/device.hpp"

#include <random>
#include <stdexcept>

namespace qrc::device {

std::string_view platform_name(Platform p) {
  switch (p) {
    case Platform::kIBM:
      return "ibm";
    case Platform::kRigetti:
      return "rigetti";
    case Platform::kIonQ:
      return "ionq";
    case Platform::kOQC:
      return "oqc";
  }
  return "unknown";
}

const std::set<ir::GateKind>& native_gates(Platform p) {
  using ir::GateKind;
  static const std::set<GateKind> kIbm{GateKind::kRZ, GateKind::kSX,
                                       GateKind::kX, GateKind::kCX,
                                       GateKind::kI};
  static const std::set<GateKind> kRigetti{GateKind::kRX, GateKind::kRZ,
                                           GateKind::kCZ, GateKind::kI};
  static const std::set<GateKind> kIonq{GateKind::kRX, GateKind::kRY,
                                        GateKind::kRZ, GateKind::kRXX,
                                        GateKind::kI};
  static const std::set<GateKind> kOqc{GateKind::kRZ, GateKind::kSX,
                                       GateKind::kX, GateKind::kECR,
                                       GateKind::kI};
  switch (p) {
    case Platform::kIBM:
      return kIbm;
    case Platform::kRigetti:
      return kRigetti;
    case Platform::kIonQ:
      return kIonq;
    case Platform::kOQC:
      return kOqc;
  }
  throw std::invalid_argument("native_gates: unknown platform");
}

ir::GateKind native_entangler(Platform p) {
  switch (p) {
    case Platform::kIBM:
      return ir::GateKind::kCX;
    case Platform::kRigetti:
      return ir::GateKind::kCZ;
    case Platform::kIonQ:
      return ir::GateKind::kRXX;
    case Platform::kOQC:
      return ir::GateKind::kECR;
  }
  throw std::invalid_argument("native_entangler: unknown platform");
}

namespace {

/// Platform-typical error magnitudes (medians of 2022-era published
/// calibration data); per-qubit/per-edge values scatter around these by a
/// seeded lognormal-ish factor in [0.5, 2.5].
struct ErrorProfile {
  double single_qubit;
  double two_qubit;
  double readout;
};

ErrorProfile profile_for(Platform p) {
  switch (p) {
    case Platform::kIBM:
      return {3.0e-4, 1.1e-2, 2.2e-2};
    case Platform::kRigetti:
      return {1.6e-3, 2.4e-2, 4.5e-2};
    case Platform::kIonQ:
      return {4.0e-4, 7.5e-3, 1.8e-2};
    case Platform::kOQC:
      return {8.0e-4, 2.6e-2, 5.0e-2};
  }
  throw std::invalid_argument("profile_for: unknown platform");
}

Calibration synthesize_calibration(Platform platform,
                                   const CouplingMap& coupling,
                                   std::uint64_t seed) {
  const ErrorProfile profile = profile_for(platform);
  std::mt19937_64 rng(seed);
  // Multiplicative scatter factor: exp(N(0, 0.35)) clamped to [0.4, 3.0]
  // mirrors the heavy right tail of real calibration snapshots.
  std::normal_distribution<double> gauss(0.0, 0.35);
  const auto scatter = [&]() {
    const double f = std::exp(gauss(rng));
    return std::min(3.0, std::max(0.4, f));
  };
  Calibration cal;
  const int n = coupling.num_qubits();
  cal.readout_error.reserve(static_cast<std::size_t>(n));
  cal.single_qubit_error.reserve(static_cast<std::size_t>(n));
  for (int q = 0; q < n; ++q) {
    cal.single_qubit_error.push_back(profile.single_qubit * scatter());
    cal.readout_error.push_back(profile.readout * scatter());
  }
  for (const auto& edge : coupling.edges()) {
    cal.two_qubit_error[edge] = profile.two_qubit * scatter();
  }
  return cal;
}

}  // namespace

Device::Device(std::string name, Platform platform, CouplingMap coupling,
               std::uint64_t calibration_seed)
    : name_(std::move(name)),
      platform_(platform),
      coupling_(std::move(coupling)),
      calibration_(
          synthesize_calibration(platform, coupling_, calibration_seed)) {}

bool Device::is_native(ir::GateKind kind) const {
  if (!ir::gate_info(kind).is_unitary || kind == ir::GateKind::kBarrier) {
    return true;  // measures / barriers / resets execute everywhere
  }
  return native_gates(platform_).contains(kind);
}

bool Device::circuit_is_native(const ir::Circuit& circuit) const {
  for (const ir::Operation& op : circuit.ops()) {
    if (!is_native(op.kind())) {
      return false;
    }
  }
  return true;
}

bool Device::circuit_respects_topology(const ir::Circuit& circuit) const {
  if (circuit.num_qubits() > num_qubits()) {
    return false;
  }
  for (const ir::Operation& op : circuit.ops()) {
    if (!op.is_unitary()) {
      continue;
    }
    if (op.num_qubits() > 2) {
      return false;
    }
    if (op.num_qubits() == 2 &&
        !coupling_.are_coupled(op.qubit(0), op.qubit(1))) {
      return false;
    }
  }
  return true;
}

double Device::op_error(const ir::Operation& op) const {
  if (op.kind() == ir::GateKind::kBarrier) {
    return 0.0;
  }
  if (op.kind() == ir::GateKind::kMeasure) {
    return calibration_.readout_error[static_cast<std::size_t>(op.qubit(0))];
  }
  if (op.kind() == ir::GateKind::kReset) {
    return calibration_.readout_error[static_cast<std::size_t>(op.qubit(0))] *
           0.5;
  }
  if (op.num_qubits() == 1) {
    return calibration_
        .single_qubit_error[static_cast<std::size_t>(op.qubit(0))];
  }
  if (op.num_qubits() == 2) {
    int a = op.qubit(0);
    int b = op.qubit(1);
    if (a > b) {
      std::swap(a, b);
    }
    const auto it = calibration_.two_qubit_error.find({a, b});
    if (it == calibration_.two_qubit_error.end()) {
      return 1.0;  // uncoupled pair: cannot execute
    }
    return it->second;
  }
  return 1.0;  // 3+ qubit gates are never directly executable
}

}  // namespace qrc::device
