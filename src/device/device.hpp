/// \file device.hpp
/// \brief Quantum device model: platform, native gate set, connectivity and
///        calibration data (gate/readout error rates) used by the expected-
///        fidelity reward.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "device/coupling_map.hpp"
#include "ir/circuit.hpp"

namespace qrc::device {

/// Hardware vendor / platform: fixes the native gate set.
enum class Platform : std::uint8_t {
  kIBM,      ///< superconducting, {rz, sx, x, cx}
  kRigetti,  ///< superconducting, {rx, rz, cz}
  kIonQ,     ///< trapped ion, {rx, ry, rz, rxx}
  kOQC,      ///< superconducting, {rz, sx, x, ecr}
};

[[nodiscard]] std::string_view platform_name(Platform p);

/// Native single- and two-qubit gate kinds of a platform (non-unitary ops
/// and barriers are always allowed).
[[nodiscard]] const std::set<ir::GateKind>& native_gates(Platform p);

/// The native two-qubit entangling gate of a platform.
[[nodiscard]] ir::GateKind native_entangler(Platform p);

/// Synthetic calibration data: deterministic per device name, magnitudes
/// modeled on 2022-era published medians per platform.
struct Calibration {
  std::vector<double> readout_error;           ///< per qubit
  std::vector<double> single_qubit_error;      ///< per qubit
  std::map<std::pair<int, int>, double> two_qubit_error;  ///< per edge (a<b)
};

/// An executable target: platform + topology + calibration.
class Device {
 public:
  Device(std::string name, Platform platform, CouplingMap coupling,
         std::uint64_t calibration_seed);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Platform platform() const { return platform_; }
  [[nodiscard]] int num_qubits() const { return coupling_.num_qubits(); }
  [[nodiscard]] const CouplingMap& coupling() const { return coupling_; }
  [[nodiscard]] const Calibration& calibration() const { return calibration_; }

  /// True if `kind` can execute natively on this platform.
  [[nodiscard]] bool is_native(ir::GateKind kind) const;

  /// True if every unitary gate of the circuit is native.
  [[nodiscard]] bool circuit_is_native(const ir::Circuit& circuit) const;

  /// True if every multi-qubit gate acts on a coupled pair. Gates on
  /// more than 2 qubits always fail (they must be synthesised first).
  [[nodiscard]] bool circuit_respects_topology(
      const ir::Circuit& circuit) const;

  /// Error rate of executing `op` on this device: per-qubit rates for 1q
  /// gates and measures, per-edge rates for 2q gates. Uncoupled 2q pairs
  /// return 1.0 (certain failure) — callers should have routed first.
  [[nodiscard]] double op_error(const ir::Operation& op) const;

 private:
  std::string name_;
  Platform platform_;
  CouplingMap coupling_;
  Calibration calibration_;
};

}  // namespace qrc::device
