#include "device/coupling_map.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace qrc::device {

CouplingMap::CouplingMap(int num_qubits,
                         std::vector<std::pair<int, int>> edges)
    : num_qubits_(num_qubits), edges_(std::move(edges)) {
  if (num_qubits < 1) {
    throw std::invalid_argument("CouplingMap: need at least one qubit");
  }
  adj_.assign(static_cast<std::size_t>(num_qubits), {});
  for (auto& [a, b] : edges_) {
    if (a > b) {
      std::swap(a, b);
    }
    if (a < 0 || b >= num_qubits || a == b) {
      throw std::invalid_argument("CouplingMap: bad edge");
    }
  }
  std::sort(edges_.begin(), edges_.end());
  if (std::adjacent_find(edges_.begin(), edges_.end()) != edges_.end()) {
    throw std::invalid_argument("CouplingMap: duplicate edge");
  }
  for (const auto& [a, b] : edges_) {
    adj_[static_cast<std::size_t>(a)].push_back(b);
    adj_[static_cast<std::size_t>(b)].push_back(a);
  }
  for (auto& nbrs : adj_) {
    std::sort(nbrs.begin(), nbrs.end());
  }
  // All-pairs BFS.
  dist_.assign(static_cast<std::size_t>(num_qubits),
               std::vector<int>(static_cast<std::size_t>(num_qubits),
                                num_qubits));
  for (int s = 0; s < num_qubits; ++s) {
    auto& row = dist_[static_cast<std::size_t>(s)];
    row[static_cast<std::size_t>(s)] = 0;
    std::deque<int> queue{s};
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop_front();
      for (const int v : adj_[static_cast<std::size_t>(u)]) {
        if (row[static_cast<std::size_t>(v)] > row[static_cast<std::size_t>(
                                                  u)] + 1) {
          row[static_cast<std::size_t>(v)] =
              row[static_cast<std::size_t>(u)] + 1;
          queue.push_back(v);
        }
      }
    }
  }
}

bool CouplingMap::are_coupled(int a, int b) const {
  if (a == b) {
    return false;
  }
  const auto& nbrs = adj_[static_cast<std::size_t>(a)];
  return std::binary_search(nbrs.begin(), nbrs.end(), b);
}

std::vector<int> CouplingMap::shortest_path(int a, int b) const {
  std::vector<int> path{a};
  int cur = a;
  while (cur != b) {
    int best = -1;
    for (const int nbr : neighbors(cur)) {
      if (distance(nbr, b) == distance(cur, b) - 1) {
        best = nbr;
        break;
      }
    }
    if (best < 0) {
      throw std::runtime_error("shortest_path: qubits disconnected");
    }
    path.push_back(best);
    cur = best;
  }
  return path;
}

bool CouplingMap::connected() const {
  for (int q = 1; q < num_qubits_; ++q) {
    if (distance(0, q) >= num_qubits_) {
      return false;
    }
  }
  return true;
}

bool CouplingMap::no_isolated_qubits() const {
  if (num_qubits_ == 1) {
    return true;
  }
  for (const auto& nbrs : adj_) {
    if (nbrs.empty()) {
      return false;
    }
  }
  return true;
}

CouplingMap CouplingMap::line(int n) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i + 1 < n; ++i) {
    edges.emplace_back(i, i + 1);
  }
  return CouplingMap(n, std::move(edges));
}

CouplingMap CouplingMap::ring(int n) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i + 1 < n; ++i) {
    edges.emplace_back(i, i + 1);
  }
  if (n > 2) {
    edges.emplace_back(0, n - 1);
  }
  return CouplingMap(n, std::move(edges));
}

CouplingMap CouplingMap::grid(int rows, int cols) {
  std::vector<std::pair<int, int>> edges;
  const auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        edges.emplace_back(id(r, c), id(r, c + 1));
      }
      if (r + 1 < rows) {
        edges.emplace_back(id(r, c), id(r + 1, c));
      }
    }
  }
  return CouplingMap(rows * cols, std::move(edges));
}

CouplingMap CouplingMap::fully_connected(int n) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      edges.emplace_back(i, j);
    }
  }
  return CouplingMap(n, std::move(edges));
}

CouplingMap CouplingMap::heavy_hex(int rows, int row_len) {
  // Row r occupies indices [row_start[r], row_start[r] + len_r) laid out
  // left to right; the first and last rows are one qubit short (as on the
  // IBM Eagle). Between consecutive rows, bridge qubits connect column
  // `c` of both rows, with c in {0, 4, 8, ...} for even gaps and
  // {2, 6, 10, ...} for odd gaps.
  if (rows < 2 || row_len < 5) {
    throw std::invalid_argument("heavy_hex: lattice too small");
  }
  std::vector<int> row_start(static_cast<std::size_t>(rows));
  std::vector<int> row_len_r(static_cast<std::size_t>(rows));
  std::vector<int> row_offset(static_cast<std::size_t>(rows), 0);
  int next = 0;
  std::vector<std::pair<int, int>> edges;
  for (int r = 0; r < rows; ++r) {
    int len = row_len;
    int offset = 0;
    if (r == 0) {
      len = row_len - 1;  // first row: drop the right-most qubit
    } else if (r == rows - 1) {
      len = row_len - 1;  // last row: drop the left-most qubit
      offset = 1;
    }
    row_start[static_cast<std::size_t>(r)] = next;
    row_len_r[static_cast<std::size_t>(r)] = len;
    row_offset[static_cast<std::size_t>(r)] = offset;
    for (int c = 0; c + 1 < len; ++c) {
      edges.emplace_back(next + c, next + c + 1);
    }
    next += len;
  }
  // Bridges.
  for (int r = 0; r + 1 < rows; ++r) {
    const int base_col = (r % 2 == 0) ? 0 : 2;
    for (int c = base_col; c < row_len; c += 4) {
      // Map the lattice column to indices within each row, skipping rows
      // that do not contain that column.
      const auto index_in_row = [&](int row, int col) -> int {
        const int off = row_offset[static_cast<std::size_t>(row)];
        const int len = row_len_r[static_cast<std::size_t>(row)];
        const int local = col - off;
        if (local < 0 || local >= len) {
          return -1;
        }
        return row_start[static_cast<std::size_t>(row)] + local;
      };
      const int top = index_in_row(r, c);
      const int bottom = index_in_row(r + 1, c);
      if (top < 0 || bottom < 0) {
        continue;
      }
      const int bridge = next++;
      edges.emplace_back(top, bridge);
      edges.emplace_back(bridge, bottom);
    }
  }
  return CouplingMap(next, std::move(edges));
}

CouplingMap CouplingMap::octagonal(int rows, int cols) {
  // Each octagon ring has qubits 0..7 (clockwise). Facing octagons share
  // two couplers: horizontally (1, 2) <-> (6, 5), vertically (3, 4) <->
  // (0, 7).
  std::vector<std::pair<int, int>> edges;
  const auto base = [cols](int r, int c) { return 8 * (r * cols + c); };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int b = base(r, c);
      for (int k = 0; k < 8; ++k) {
        edges.emplace_back(b + k, b + (k + 1) % 8);
      }
      if (c + 1 < cols) {
        const int right = base(r, c + 1);
        edges.emplace_back(b + 1, right + 6);
        edges.emplace_back(b + 2, right + 5);
      }
      if (r + 1 < rows) {
        const int below = base(r + 1, c);
        edges.emplace_back(b + 3, below + 0);
        edges.emplace_back(b + 4, below + 7);
      }
    }
  }
  return CouplingMap(8 * rows * cols, std::move(edges));
}

}  // namespace qrc::device
