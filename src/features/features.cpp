#include "features/features.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace qrc::features {

namespace {

/// Per-op levelisation over unitary gates only. Returns the level (1-based)
/// of each unitary op, 0 for non-unitary ops, plus the overall depth.
struct Levels {
  std::vector<int> level;  // aligned with circuit.ops()
  int depth = 0;
};

Levels levelize(const ir::Circuit& circuit) {
  Levels out;
  out.level.assign(circuit.size(), 0);
  std::vector<int> qubit_level(static_cast<std::size_t>(circuit.num_qubits()),
                               0);
  for (std::size_t i = 0; i < circuit.size(); ++i) {
    const ir::Operation& op = circuit.ops()[i];
    if (!op.is_unitary()) {
      continue;
    }
    int start = 0;
    for (const int q : op.qubits()) {
      start = std::max(start, qubit_level[static_cast<std::size_t>(q)]);
    }
    out.level[i] = start + 1;
    for (const int q : op.qubits()) {
      qubit_level[static_cast<std::size_t>(q)] = start + 1;
    }
    out.depth = std::max(out.depth, start + 1);
  }
  return out;
}

}  // namespace

double critical_depth_feature(const ir::Circuit& circuit) {
  // n_ed / n_e: the maximum number of two-qubit gates lying on any longest
  // path of the circuit DAG, over the total number of two-qubit gates.
  const auto& ops = circuit.ops();
  int n_e = 0;
  for (const ir::Operation& op : ops) {
    if (op.is_unitary() && op.num_qubits() >= 2) {
      ++n_e;
    }
  }
  if (n_e == 0) {
    return 0.0;
  }

  // DP over the DAG: for each op, the length of the longest chain ending at
  // it (len) and the max 2q-gate count over chains of that length (twoq).
  std::vector<int> qubit_len(static_cast<std::size_t>(circuit.num_qubits()),
                             0);
  std::vector<int> qubit_twoq(static_cast<std::size_t>(circuit.num_qubits()),
                              0);
  int best_len = 0;
  int best_twoq = 0;
  for (const ir::Operation& op : ops) {
    if (!op.is_unitary()) {
      continue;
    }
    int len = 0;
    int twoq = 0;
    for (const int q : op.qubits()) {
      const int ql = qubit_len[static_cast<std::size_t>(q)];
      const int qt = qubit_twoq[static_cast<std::size_t>(q)];
      if (ql > len || (ql == len && qt > twoq)) {
        len = ql;
        twoq = qt;
      }
    }
    len += 1;
    if (op.num_qubits() >= 2) {
      twoq += 1;
    }
    for (const int q : op.qubits()) {
      qubit_len[static_cast<std::size_t>(q)] = len;
      qubit_twoq[static_cast<std::size_t>(q)] = twoq;
    }
    if (len > best_len || (len == best_len && twoq > best_twoq)) {
      best_len = len;
      best_twoq = twoq;
    }
  }
  return static_cast<double>(best_twoq) / static_cast<double>(n_e);
}

FeatureVector extract_features(const ir::Circuit& circuit) {
  FeatureVector out;
  const auto active = circuit.active_qubits();
  const int n = static_cast<int>(active.size());
  out.num_qubits = static_cast<double>(n);
  if (n == 0) {
    return out;
  }

  const Levels levels = levelize(circuit);
  out.depth = static_cast<double>(levels.depth);

  // Interaction graph degrees over active qubits.
  std::set<std::pair<int, int>> interaction_edges;
  int n_g = 0;
  int n_e = 0;
  int participations = 0;
  for (const ir::Operation& op : circuit.ops()) {
    if (!op.is_unitary()) {
      continue;
    }
    ++n_g;
    participations += op.num_qubits();
    if (op.num_qubits() >= 2) {
      ++n_e;
      for (int i = 0; i < op.num_qubits(); ++i) {
        for (int j = i + 1; j < op.num_qubits(); ++j) {
          int a = op.qubit(i);
          int b = op.qubit(j);
          if (a > b) {
            std::swap(a, b);
          }
          interaction_edges.insert({a, b});
        }
      }
    }
  }
  if (n_g == 0) {
    return out;
  }

  // Program communication: mean degree / (n - 1).
  if (n > 1) {
    // degree sum = 2 * |edges|.
    out.program_communication =
        2.0 * static_cast<double>(interaction_edges.size()) /
        (static_cast<double>(n) * static_cast<double>(n - 1));
  }

  out.critical_depth = critical_depth_feature(circuit);
  out.entanglement_ratio =
      static_cast<double>(n_e) / static_cast<double>(n_g);

  if (n > 1 && levels.depth > 0) {
    const double ratio =
        static_cast<double>(n_g) / static_cast<double>(levels.depth);
    out.parallelism =
        std::max(0.0, (ratio - 1.0) / static_cast<double>(n - 1));
  }

  if (levels.depth > 0) {
    out.liveness = static_cast<double>(participations) /
                   (static_cast<double>(n) *
                    static_cast<double>(levels.depth));
  }
  return out;
}

std::array<double, kNumFeatures> FeatureVector::observation() const {
  return {
      std::min(1.0, num_qubits / 20.0),
      1.0 - std::exp(-depth / 200.0),
      program_communication,
      critical_depth,
      entanglement_ratio,
      parallelism,
      liveness,
  };
}

}  // namespace qrc::features
