/// \file features.hpp
/// \brief Circuit feature extraction for the RL observations: qubit count,
///        depth, and the five Supermarq composite features (program
///        communication, critical depth, entanglement ratio, parallelism,
///        liveness) from Tomesh et al., "Supermarq: A scalable quantum
///        benchmark suite" (2022).
///
/// All features are computed over the *unitary* gates of the circuit and
/// the *active* qubits only, so they remain meaningful after a circuit has
/// been laid out onto a much wider device.
#pragma once

#include <array>

#include "ir/circuit.hpp"

namespace qrc::features {

/// Number of observation features fed to the RL agent.
inline constexpr int kNumFeatures = 7;

/// The raw (un-normalised where noted) feature values. The five Supermarq
/// features are in [0, 1] by construction.
struct FeatureVector {
  double num_qubits = 0.0;             ///< active qubit count (raw)
  double depth = 0.0;                  ///< circuit depth (raw)
  double program_communication = 0.0;  ///< interaction-graph density
  double critical_depth = 0.0;         ///< 2q gates on critical path / all 2q
  double entanglement_ratio = 0.0;     ///< 2q gates / all gates
  double parallelism = 0.0;            ///< gate-per-layer utilisation
  double liveness = 0.0;               ///< qubit-timestep occupancy

  /// Normalised observation in [0, 1]^7: qubit count scaled by /20 (the
  /// training range upper bound, clipped), depth squashed by
  /// 1 - exp(-depth / 200).
  [[nodiscard]] std::array<double, kNumFeatures> observation() const;
};

/// Extracts all features in one pass over the circuit.
[[nodiscard]] FeatureVector extract_features(const ir::Circuit& circuit);

/// The Supermarq critical-depth feature alone (used by the reward).
[[nodiscard]] double critical_depth_feature(const ir::Circuit& circuit);

}  // namespace qrc::features
