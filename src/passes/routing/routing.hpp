/// \file routing.hpp
/// \brief Routing passes: make every two-qubit gate act on coupled qubits
///        by inserting SWAP gates. Four algorithms mirroring the paper's
///        action set: BasicSwap, StochasticSwap, SabreSwap (lookahead +
///        decay heuristic per Li et al.) and a TKET-style lookahead router.
#pragma once

#include <cstdint>
#include <vector>

#include "device/device.hpp"
#include "ir/circuit.hpp"

namespace qrc::passes {

enum class RoutingKind : std::uint8_t {
  kBasicSwap,
  kStochasticSwap,
  kSabreSwap,
  kTketRouting,
};

[[nodiscard]] std::string_view routing_name(RoutingKind kind);

/// Result of routing a circuit whose qubits are already physical slots
/// (i.e. after a layout has been applied).
struct RoutingOutcome {
  ir::Circuit routed;  ///< same width; every 2q gate coupled; SWAPs inserted
  /// permutation[slot] = physical qubit finally holding the state that
  /// started on `slot`; size = circuit.num_qubits().
  std::vector<int> permutation;
  int swap_count = 0;
};

/// Routes `circuit` on `device`. Precondition: circuit.num_qubits() ==
/// device.num_qubits() (apply a layout first). Deterministic given `seed`.
/// 3+ qubit gates must have been synthesised away beforehand.
[[nodiscard]] RoutingOutcome route(RoutingKind kind,
                                   const ir::Circuit& circuit,
                                   const device::Device& device,
                                   std::uint64_t seed = 1);

}  // namespace qrc::passes
