#include "passes/routing/routing.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <random>
#include <stdexcept>

namespace qrc::passes {

namespace {

using device::CouplingMap;
using ir::Circuit;
using ir::GateKind;
using ir::Operation;

/// Mutable placement: tau[slot] = physical qubit currently holding slot's
/// state; inv[physical] = slot.
struct Placement {
  std::vector<int> tau;
  std::vector<int> inv;

  explicit Placement(int n) {
    tau.resize(static_cast<std::size_t>(n));
    inv.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      tau[static_cast<std::size_t>(i)] = i;
      inv[static_cast<std::size_t>(i)] = i;
    }
  }

  [[nodiscard]] int phys(int slot) const {
    return tau[static_cast<std::size_t>(slot)];
  }

  /// Swaps the contents of two physical qubits.
  void swap_physical(int pa, int pb) {
    const int sa = inv[static_cast<std::size_t>(pa)];
    const int sb = inv[static_cast<std::size_t>(pb)];
    std::swap(inv[static_cast<std::size_t>(pa)],
              inv[static_cast<std::size_t>(pb)]);
    std::swap(tau[static_cast<std::size_t>(sa)],
              tau[static_cast<std::size_t>(sb)]);
  }
};

/// Emits `op` with operands translated through the placement.
void emit(Circuit& out, const Operation& op, const Placement& p) {
  Operation copy = op;
  for (int i = 0; i < op.num_qubits(); ++i) {
    copy.set_qubit(i, p.phys(op.qubit(i)));
  }
  out.append(copy);
}

void emit_swap(Circuit& out, Placement& p, int pa, int pb, int& swap_count) {
  out.swap(pa, pb);
  p.swap_physical(pa, pb);
  ++swap_count;
}

void check_preconditions(const Circuit& circuit,
                         const device::Device& device) {
  if (circuit.num_qubits() != device.num_qubits()) {
    throw std::invalid_argument(
        "route: circuit must be laid out onto the device first");
  }
  if (!circuit.max_gate_arity_at_most(2)) {
    throw std::invalid_argument("route: synthesise 3+ qubit gates first");
  }
}

// ---------------------------------------------------------- BasicSwap ----

/// In-order router: moves one operand along a shortest path until coupled.
RoutingOutcome route_basic(const Circuit& circuit,
                           const device::Device& device) {
  const CouplingMap& cm = device.coupling();
  RoutingOutcome out{Circuit(circuit.num_qubits(), circuit.name()), {}, 0};
  out.routed.add_global_phase(circuit.global_phase());
  Placement p(circuit.num_qubits());
  for (const Operation& op : circuit.ops()) {
    if (op.is_unitary() && op.num_qubits() == 2) {
      int pa = p.phys(op.qubit(0));
      int pb = p.phys(op.qubit(1));
      if (!cm.are_coupled(pa, pb)) {
        const auto path = cm.shortest_path(pa, pb);
        // Walk pa toward pb, stopping one hop short.
        for (std::size_t i = 0; i + 2 < path.size(); ++i) {
          emit_swap(out.routed, p, path[i], path[i + 1], out.swap_count);
        }
      }
    }
    emit(out.routed, op, p);
  }
  out.permutation = p.tau;
  return out;
}

// ------------------------------------------------------ StochasticSwap ----

/// Randomised variant: several trials; per blocked gate, a random endpoint
/// walks a randomised shortest path. Keeps the trial with fewest swaps.
RoutingOutcome route_stochastic(const Circuit& circuit,
                                const device::Device& device,
                                std::uint64_t seed, int trials = 8) {
  const CouplingMap& cm = device.coupling();
  std::optional<RoutingOutcome> best;
  for (int trial = 0; trial < trials; ++trial) {
    std::mt19937_64 rng(seed * 7919 + static_cast<std::uint64_t>(trial));
    RoutingOutcome out{Circuit(circuit.num_qubits(), circuit.name()), {}, 0};
    out.routed.add_global_phase(circuit.global_phase());
    Placement p(circuit.num_qubits());
    for (const Operation& op : circuit.ops()) {
      if (op.is_unitary() && op.num_qubits() == 2) {
        int slot_a = op.qubit(0);
        int slot_b = op.qubit(1);
        while (!cm.are_coupled(p.phys(slot_a), p.phys(slot_b))) {
          // Random endpoint walks one random distance-reducing step.
          const bool move_a = std::uniform_int_distribution<int>(0, 1)(rng);
          const int src = move_a ? p.phys(slot_a) : p.phys(slot_b);
          const int dst = move_a ? p.phys(slot_b) : p.phys(slot_a);
          std::vector<int> closer;
          for (const int nbr : cm.neighbors(src)) {
            if (cm.distance(nbr, dst) < cm.distance(src, dst)) {
              closer.push_back(nbr);
            }
          }
          const int step =
              closer[std::uniform_int_distribution<std::size_t>(
                  0, closer.size() - 1)(rng)];
          emit_swap(out.routed, p, src, step, out.swap_count);
        }
      }
      emit(out.routed, op, p);
    }
    out.permutation = p.tau;
    if (!best.has_value() || out.swap_count < best->swap_count) {
      best = std::move(out);
    }
  }
  return *best;
}

// ----------------------------------------------- dependency scaffolding ----

/// Per-op wire dependencies for the lookahead routers.
struct OpDag {
  std::vector<int> indegree;               // unresolved wire predecessors
  std::vector<std::vector<int>> children;  // ops unlocked by this op
};

OpDag build_op_dag(const Circuit& circuit) {
  OpDag dag;
  const auto n_ops = circuit.size();
  dag.indegree.assign(n_ops, 0);
  dag.children.assign(n_ops, {});
  std::vector<int> last_on_wire(
      static_cast<std::size_t>(circuit.num_qubits()), -1);
  for (int i = 0; i < static_cast<int>(n_ops); ++i) {
    const Operation& op = circuit.ops()[static_cast<std::size_t>(i)];
    if (op.kind() == GateKind::kBarrier) {
      for (int q = 0; q < circuit.num_qubits(); ++q) {
        auto& last = last_on_wire[static_cast<std::size_t>(q)];
        if (last >= 0) {
          dag.children[static_cast<std::size_t>(last)].push_back(i);
          ++dag.indegree[static_cast<std::size_t>(i)];
        }
        last = i;
      }
      continue;
    }
    for (const int q : op.qubits()) {
      auto& last = last_on_wire[static_cast<std::size_t>(q)];
      if (last >= 0) {
        dag.children[static_cast<std::size_t>(last)].push_back(i);
        ++dag.indegree[static_cast<std::size_t>(i)];
      }
      last = i;
    }
  }
  return dag;
}

/// True if the op needs adjacent operands to execute.
bool needs_coupling(const Operation& op) {
  return op.is_unitary() && op.num_qubits() == 2;
}

// ----------------------------------------------------------- SabreSwap ----

RoutingOutcome route_sabre(const Circuit& circuit,
                           const device::Device& device, std::uint64_t seed) {
  const CouplingMap& cm = device.coupling();
  const auto& ops = circuit.ops();
  OpDag dag = build_op_dag(circuit);

  RoutingOutcome out{Circuit(circuit.num_qubits(), circuit.name()), {}, 0};
  out.routed.add_global_phase(circuit.global_phase());
  Placement p(circuit.num_qubits());
  std::mt19937_64 rng(seed * 104729 + 17);

  std::deque<int> ready;
  for (int i = 0; i < static_cast<int>(ops.size()); ++i) {
    if (dag.indegree[static_cast<std::size_t>(i)] == 0) {
      ready.push_back(i);
    }
  }

  std::vector<double> decay(static_cast<std::size_t>(circuit.num_qubits()),
                            1.0);
  constexpr double kDecayStep = 0.001;
  constexpr int kDecayResetInterval = 5;
  constexpr double kExtendedWeight = 0.5;
  constexpr int kExtendedSize = 20;
  int swaps_since_progress = 0;

  std::vector<int> front;  // blocked 2q ops
  const auto release = [&](int idx) {
    for (const int child : dag.children[static_cast<std::size_t>(idx)]) {
      if (--dag.indegree[static_cast<std::size_t>(child)] == 0) {
        ready.push_back(child);
      }
    }
  };

  std::size_t executed = 0;
  const std::size_t total = ops.size();
  while (executed < total) {
    // Drain the ready queue: execute everything executable.
    bool progress = true;
    while (progress) {
      progress = false;
      std::deque<int> still_blocked;
      while (!ready.empty()) {
        const int idx = ready.front();
        ready.pop_front();
        const Operation& op = ops[static_cast<std::size_t>(idx)];
        if (needs_coupling(op) &&
            !cm.are_coupled(p.phys(op.qubit(0)), p.phys(op.qubit(1)))) {
          still_blocked.push_back(idx);
          continue;
        }
        emit(out.routed, op, p);
        ++executed;
        release(idx);
        progress = true;
        swaps_since_progress = 0;
        std::fill(decay.begin(), decay.end(), 1.0);
      }
      ready = std::move(still_blocked);
    }
    if (executed >= total) {
      break;
    }

    // Front layer = currently blocked 2q ops; extended set = their
    // descendants (best-effort, by op order).
    front.assign(ready.begin(), ready.end());
    std::vector<int> extended;
    {
      std::deque<int> frontier(front.begin(), front.end());
      std::vector<bool> seen(ops.size(), false);
      while (!frontier.empty() &&
             static_cast<int>(extended.size()) < kExtendedSize) {
        const int idx = frontier.front();
        frontier.pop_front();
        for (const int child : dag.children[static_cast<std::size_t>(idx)]) {
          if (seen[static_cast<std::size_t>(child)]) {
            continue;
          }
          seen[static_cast<std::size_t>(child)] = true;
          if (needs_coupling(ops[static_cast<std::size_t>(child)])) {
            extended.push_back(child);
          }
          frontier.push_back(child);
        }
      }
    }

    // Candidate swaps: edges touching any physical qubit involved in the
    // front layer.
    std::vector<std::pair<int, int>> candidates;
    for (const int idx : front) {
      const Operation& op = ops[static_cast<std::size_t>(idx)];
      for (const int slot : op.qubits()) {
        const int phys = p.phys(slot);
        for (const int nbr : cm.neighbors(phys)) {
          candidates.emplace_back(std::min(phys, nbr), std::max(phys, nbr));
        }
      }
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());

    const auto score_swap = [&](std::pair<int, int> sw) {
      // Evaluate distances as if sw were applied.
      const auto dist_after = [&](int pa, int pb) {
        const auto remap = [&](int q) {
          if (q == sw.first) {
            return sw.second;
          }
          if (q == sw.second) {
            return sw.first;
          }
          return q;
        };
        return cm.distance(remap(pa), remap(pb));
      };
      double basic = 0.0;
      for (const int idx : front) {
        const Operation& op = ops[static_cast<std::size_t>(idx)];
        basic += dist_after(p.phys(op.qubit(0)), p.phys(op.qubit(1)));
      }
      basic /= static_cast<double>(front.size());
      double ext = 0.0;
      if (!extended.empty()) {
        for (const int idx : extended) {
          const Operation& op = ops[static_cast<std::size_t>(idx)];
          ext += dist_after(p.phys(op.qubit(0)), p.phys(op.qubit(1)));
        }
        ext /= static_cast<double>(extended.size());
      }
      const double d = std::max(decay[static_cast<std::size_t>(sw.first)],
                                decay[static_cast<std::size_t>(sw.second)]);
      return d * (basic + kExtendedWeight * ext);
    };

    double best_score = 0.0;
    int best_idx = -1;
    for (int ci = 0; ci < static_cast<int>(candidates.size()); ++ci) {
      const double s = score_swap(candidates[static_cast<std::size_t>(ci)]);
      if (best_idx < 0 || s < best_score - 1e-12) {
        best_score = s;
        best_idx = ci;
      }
    }
    if (best_idx < 0) {
      throw std::logic_error("sabre: no candidate swaps");
    }
    const auto chosen = candidates[static_cast<std::size_t>(best_idx)];
    emit_swap(out.routed, p, chosen.first, chosen.second, out.swap_count);
    decay[static_cast<std::size_t>(chosen.first)] += kDecayStep;
    decay[static_cast<std::size_t>(chosen.second)] += kDecayStep;
    if (++swaps_since_progress % kDecayResetInterval == 0) {
      std::fill(decay.begin(), decay.end(), 1.0);
    }
    // Defensive bound against pathological non-progress.
    if (swaps_since_progress > 10 * circuit.num_qubits() + 100) {
      // Fall back to a forced shortest-path move for the first blocked op.
      const Operation& op = ops[static_cast<std::size_t>(front.front())];
      const auto path =
          cm.shortest_path(p.phys(op.qubit(0)), p.phys(op.qubit(1)));
      for (std::size_t i = 0; i + 2 < path.size(); ++i) {
        emit_swap(out.routed, p, path[i], path[i + 1], out.swap_count);
      }
      swaps_since_progress = 0;
    }
    (void)rng;
  }
  out.permutation = p.tau;
  return out;
}

// -------------------------------------------------- TKET-style router ----

/// In-order router with geometric lookahead over the next pending 2q gates
/// (structurally mirrors tket's LexiRoute-style swap selection).
RoutingOutcome route_tket(const Circuit& circuit,
                          const device::Device& device) {
  const CouplingMap& cm = device.coupling();
  const auto& ops = circuit.ops();
  RoutingOutcome out{Circuit(circuit.num_qubits(), circuit.name()), {}, 0};
  out.routed.add_global_phase(circuit.global_phase());
  Placement p(circuit.num_qubits());
  constexpr int kLookahead = 12;
  constexpr double kDiscount = 0.7;

  for (int i = 0; i < static_cast<int>(ops.size()); ++i) {
    const Operation& op = ops[static_cast<std::size_t>(i)];
    if (needs_coupling(op)) {
      int guard = 0;
      while (!cm.are_coupled(p.phys(op.qubit(0)), p.phys(op.qubit(1)))) {
        // Candidate swaps: edges adjacent to either endpoint.
        std::vector<std::pair<int, int>> candidates;
        for (const int slot : {op.qubit(0), op.qubit(1)}) {
          const int phys = p.phys(slot);
          for (const int nbr : cm.neighbors(phys)) {
            candidates.emplace_back(std::min(phys, nbr),
                                    std::max(phys, nbr));
          }
        }
        std::sort(candidates.begin(), candidates.end());
        candidates.erase(std::unique(candidates.begin(), candidates.end()),
                         candidates.end());

        double best_score = 0.0;
        int best = -1;
        for (int ci = 0; ci < static_cast<int>(candidates.size()); ++ci) {
          const auto sw = candidates[static_cast<std::size_t>(ci)];
          const auto remap = [&](int q) {
            if (q == sw.first) {
              return sw.second;
            }
            if (q == sw.second) {
              return sw.first;
            }
            return q;
          };
          // Weighted distance over this gate and the next pending 2q gates.
          double score = 0.0;
          double weight = 1.0;
          int counted = 0;
          for (int j = i; j < static_cast<int>(ops.size()) &&
                          counted < kLookahead;
               ++j) {
            const Operation& future = ops[static_cast<std::size_t>(j)];
            if (!needs_coupling(future)) {
              continue;
            }
            const int pa = remap(p.phys(future.qubit(0)));
            const int pb = remap(p.phys(future.qubit(1)));
            score += weight * static_cast<double>(cm.distance(pa, pb) - 1);
            weight *= kDiscount;
            ++counted;
          }
          if (best < 0 || score < best_score - 1e-12) {
            best_score = score;
            best = ci;
          }
        }
        const auto chosen = candidates[static_cast<std::size_t>(best)];
        emit_swap(out.routed, p, chosen.first, chosen.second,
                  out.swap_count);
        // Defensive: guarantee progress eventually.
        if (++guard > 4 * circuit.num_qubits() + 16) {
          const auto path =
              cm.shortest_path(p.phys(op.qubit(0)), p.phys(op.qubit(1)));
          for (std::size_t k = 0; k + 2 < path.size(); ++k) {
            emit_swap(out.routed, p, path[k], path[k + 1], out.swap_count);
          }
        }
      }
    }
    emit(out.routed, op, p);
  }
  out.permutation = p.tau;
  return out;
}

}  // namespace

std::string_view routing_name(RoutingKind kind) {
  switch (kind) {
    case RoutingKind::kBasicSwap:
      return "BasicSwap";
    case RoutingKind::kStochasticSwap:
      return "StochasticSwap";
    case RoutingKind::kSabreSwap:
      return "SabreSwap";
    case RoutingKind::kTketRouting:
      return "TketRouting";
  }
  return "unknown";
}

RoutingOutcome route(RoutingKind kind, const ir::Circuit& circuit,
                     const device::Device& device, std::uint64_t seed) {
  check_preconditions(circuit, device);

  // A measure carries no explicit classical operand — `measure q[i]`
  // records into c[i] — so its classical record is tied to the physical
  // wire it is emitted on. A measure emitted mid-stream goes stale the
  // moment a later swap moves a different slot onto that wire (the routed
  // circuit then measures two slots into one classical bit and leaves
  // another bit unwritten). Terminal measures (no later op on their wire)
  // are therefore split off here, the body is routed, and the measures are
  // re-emitted through the *final* placement — uniformly for every router,
  // including the DAG-driven SABRE which otherwise schedules them early.
  const auto& ops = circuit.ops();
  std::vector<bool> deferred(ops.size(), false);
  std::vector<bool> wire_busy(static_cast<std::size_t>(circuit.num_qubits()),
                              false);
  bool any_deferred = false;
  for (int i = static_cast<int>(ops.size()) - 1; i >= 0; --i) {
    const Operation& op = ops[static_cast<std::size_t>(i)];
    if (op.kind() == GateKind::kMeasure &&
        !wire_busy[static_cast<std::size_t>(op.qubit(0))]) {
      deferred[static_cast<std::size_t>(i)] = true;
      any_deferred = true;
      continue;
    }
    if (op.kind() == GateKind::kBarrier) {
      std::fill(wire_busy.begin(), wire_busy.end(), true);
      continue;
    }
    for (const int q : op.qubits()) {
      wire_busy[static_cast<std::size_t>(q)] = true;
    }
  }

  Circuit body(circuit.num_qubits(), circuit.name());
  body.add_global_phase(circuit.global_phase());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (!deferred[i]) {
      body.append(ops[i]);
    }
  }

  const auto run = [&](const Circuit& c) {
    switch (kind) {
      case RoutingKind::kBasicSwap:
        return route_basic(c, device);
      case RoutingKind::kStochasticSwap:
        return route_stochastic(c, device, seed);
      case RoutingKind::kSabreSwap:
        return route_sabre(c, device, seed);
      case RoutingKind::kTketRouting:
        return route_tket(c, device);
    }
    throw std::invalid_argument("route: unknown kind");
  };

  RoutingOutcome out = run(body);
  if (any_deferred) {
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (deferred[i]) {
        Operation copy = ops[i];
        copy.set_qubit(0, out.permutation[static_cast<std::size_t>(
                               copy.qubit(0))]);
        out.routed.append(copy);
      }
    }
  }
  return out;
}

}  // namespace qrc::passes
