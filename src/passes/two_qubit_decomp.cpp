#include "passes/two_qubit_decomp.hpp"

#include <cmath>

#include "la/euler.hpp"
#include "la/weyl.hpp"

namespace qrc::passes {

namespace {

using la::cplx;
using la::kPi;
using la::Mat2;
using la::Mat4;

constexpr double kCoordTol = 1e-7;

/// Appends `m` as a u3 gate on `q` unless it is the identity (up to phase);
/// the dropped phase is folded into the circuit's global phase.
void emit_1q(ir::Circuit& circuit, const Mat2& m, int q) {
  const auto u3 = la::u3_decompose(m);
  circuit.add_global_phase(u3.phase);
  if (la::angle_is_zero(u3.theta) && la::angle_is_zero(u3.phi + u3.lambda)) {
    // Diagonal with equal phases = identity up to the tracked phase; but
    // rz-like residue may remain: check matrix form directly.
    const Mat2 residue = la::u3_mat(u3.theta, u3.phi, u3.lambda);
    if (residue.approx_equal(Mat2::identity(), 1e-9)) {
      return;
    }
  }
  circuit.u3(u3.theta, u3.phi, u3.lambda, q);
}

/// N(x, 0, z) = CX * (Rx(-2x) on q0, Rz(-2z) on q1) * CX as a circuit,
/// with CX = cx(q0, q1) (control operand 0).
void emit_canonical_x0z(ir::Circuit& c, double x, double z) {
  c.cx(0, 1);
  if (!la::angle_is_zero(-2.0 * x)) {
    c.rx(-2.0 * x, 0);
  }
  if (!la::angle_is_zero(-2.0 * z)) {
    c.rz(-2.0 * z, 1);
  }
  c.cx(0, 1);
}

/// The canonicalised KAK of a constant gate, computed once.
const la::KakDecomposition& canonical_cx() {
  static const la::KakDecomposition kCx = [] {
    auto kak = la::kak_decompose(la::cx01_mat());
    kak->canonicalize();
    return *kak;
  }();
  return kCx;
}

const la::KakDecomposition& canonical_swap() {
  static const la::KakDecomposition kSwap = [] {
    auto kak = la::kak_decompose(la::swap_mat());
    kak->canonicalize();
    return *kak;
  }();
  return kSwap;
}

bool coords_match(const la::KakDecomposition& a,
                  const la::KakDecomposition& b) {
  return std::abs(a.x - b.x) < kCoordTol && std::abs(a.y - b.y) < kCoordTol &&
         std::abs(a.z - b.z) < kCoordTol;
}

}  // namespace

la::Mat4 two_qubit_circuit_unitary(const ir::Circuit& circuit) {
  Mat4 u = Mat4::identity();
  for (const ir::Operation& op : circuit.ops()) {
    Mat4 g;
    if (op.num_qubits() == 1) {
      const Mat2 m = ir::gate_matrix_1q(op.kind(), op.params());
      g = (op.qubit(0) == 0) ? la::kron(Mat2::identity(), m)
                             : la::kron(m, Mat2::identity());
    } else {
      const Mat4 m = ir::gate_matrix_2q(op.kind(), op.params());
      if (op.qubit(0) == 0) {
        g = m;
      } else {
        // Gate operands are (1, 0): conjugate by SWAP.
        g = la::swap_mat() * m * la::swap_mat();
      }
    }
    u = g * u;
  }
  return u * std::exp(cplx{0.0, circuit.global_phase()});
}

std::optional<ir::Circuit> decompose_two_qubit_unitary(const la::Mat4& u) {
  auto kak_opt = la::kak_decompose(u);
  if (!kak_opt.has_value()) {
    return std::nullopt;
  }
  la::KakDecomposition kak = *kak_opt;
  kak.canonicalize();

  ir::Circuit out(2, "resynth");
  out.add_global_phase(kak.phase);

  const bool x_zero = std::abs(kak.x) < kCoordTol;
  const bool y_zero = std::abs(kak.y) < kCoordTol;
  const bool z_zero = std::abs(kak.z) < kCoordTol;

  if (x_zero && y_zero && z_zero) {
    // Tier 0: locals only.
    emit_1q(out, kak.k1_q0 * kak.k2_q0, 0);
    emit_1q(out, kak.k1_q1 * kak.k2_q1, 1);
  } else if (coords_match(kak, canonical_cx())) {
    // Tier 1: locally equivalent to CX. With U = K1 N K2 and
    // CX = L1 N L2 (same canonical N): U = K1 L1^dag CX L2^dag K2.
    const auto& cx = canonical_cx();
    emit_1q(out, cx.k2_q0.adjoint() * kak.k2_q0, 0);
    emit_1q(out, cx.k2_q1.adjoint() * kak.k2_q1, 1);
    out.cx(0, 1);
    emit_1q(out, kak.k1_q0 * cx.k1_q0.adjoint(), 0);
    emit_1q(out, kak.k1_q1 * cx.k1_q1.adjoint(), 1);
    out.add_global_phase(-cx.phase);
  } else if (coords_match(kak, canonical_swap())) {
    // Tier 3: SWAP class (3 CX).
    const auto& sw = canonical_swap();
    emit_1q(out, sw.k2_q0.adjoint() * kak.k2_q0, 0);
    emit_1q(out, sw.k2_q1.adjoint() * kak.k2_q1, 1);
    out.cx(0, 1);
    out.cx(1, 0);
    out.cx(0, 1);
    emit_1q(out, kak.k1_q0 * sw.k1_q0.adjoint(), 0);
    emit_1q(out, kak.k1_q1 * sw.k1_q1.adjoint(), 1);
    out.add_global_phase(-sw.phase);
  } else if (z_zero) {
    // Tier 2: N(x, y, 0) = (V^dag (x) V^dag) N(x, 0, y) (V (x) V) with
    // V = Rx(pi/2): 2 CX.
    const Mat2 v = la::rx_mat(kPi / 2.0);
    const Mat2 vd = v.adjoint();
    emit_1q(out, v * kak.k2_q0, 0);
    emit_1q(out, v * kak.k2_q1, 1);
    emit_canonical_x0z(out, kak.x, kak.y);
    emit_1q(out, kak.k1_q0 * vd, 0);
    emit_1q(out, kak.k1_q1 * vd, 1);
  } else {
    // Tier 4: generic. N(x, y, z) = N(x, y, 0) * N(0, 0, z); the parts
    // commute, so emit N(0, 0, z) first (it is applied first).
    const Mat2 v = la::rx_mat(kPi / 2.0);
    const Mat2 vd = v.adjoint();
    emit_1q(out, kak.k2_q0, 0);
    emit_1q(out, kak.k2_q1, 1);
    emit_canonical_x0z(out, 0.0, kak.z);  // N(0, 0, z)
    emit_1q(out, v, 0);
    emit_1q(out, v, 1);
    emit_canonical_x0z(out, kak.x, kak.y);
    emit_1q(out, kak.k1_q0 * vd, 0);
    emit_1q(out, kak.k1_q1 * vd, 1);
  }

  // Verification gate: never hand back a wrong circuit.
  const Mat4 rebuilt = two_qubit_circuit_unitary(out);
  if (!rebuilt.equal_up_to_phase(u, 1e-6)) {
    return std::nullopt;
  }
  return out;
}

}  // namespace qrc::passes
