/// \file commutation.hpp
/// \brief Numerical commutation oracle for pairs of operations, used by the
///        commutative-cancellation passes. Exact matrix check on the union
///        of operands (up to 3 qubits); conservative `false` beyond that.
#pragma once

#include "ir/operation.hpp"

namespace qrc::passes {

/// True if the two unitary operations commute as operators. Operations on
/// disjoint qubits always commute; otherwise the commutator is evaluated
/// numerically on the joint support. Non-unitary ops never commute.
[[nodiscard]] bool ops_commute(const ir::Operation& a, const ir::Operation& b);

}  // namespace qrc::passes
