#include "passes/opt/consolidate.hpp"

#include <algorithm>
#include <vector>

#include "passes/blocks.hpp"
#include "passes/two_qubit_decomp.hpp"

namespace qrc::passes {

namespace {

using ir::Circuit;
using ir::Operation;

/// One consolidation sweep over the 2q blocks of `circuit`;
/// `min_two_qubit` selects which blocks are attacked.
bool consolidate_once(Circuit& circuit, int min_two_qubit) {
  const auto blocks = collect_2q_blocks(circuit);
  if (blocks.empty()) {
    return false;
  }
  std::vector<bool> removed(circuit.size(), false);
  std::vector<std::pair<int, std::vector<Operation>>> insertions;
  double phase = 0.0;
  bool changed = false;

  for (const TwoQubitBlock& blk : blocks) {
    if (blk.two_qubit_count < min_two_qubit) {
      continue;
    }
    // Local 2-qubit circuit: qubit_a -> 0, qubit_b -> 1.
    Circuit mini(2);
    for (const int idx : blk.op_indices) {
      Operation op = circuit.ops()[static_cast<std::size_t>(idx)];
      for (int k = 0; k < op.num_qubits(); ++k) {
        op.set_qubit(k, op.qubit(k) == blk.qubit_a ? 0 : 1);
      }
      mini.append(op);
    }
    const la::Mat4 u = two_qubit_circuit_unitary(mini);
    const auto resynth = decompose_two_qubit_unitary(u);
    if (!resynth.has_value()) {
      continue;
    }
    const int old_2q = blk.two_qubit_count;
    const int old_total = static_cast<int>(blk.op_indices.size());
    const int new_2q = resynth->two_qubit_gate_count();
    const int new_total = resynth->gate_count();
    const bool better =
        new_2q < old_2q || (new_2q == old_2q && new_total < old_total);
    if (!better) {
      continue;
    }
    std::vector<Operation> mapped;
    mapped.reserve(resynth->size());
    for (Operation op : resynth->ops()) {
      for (int k = 0; k < op.num_qubits(); ++k) {
        op.set_qubit(k, op.qubit(k) == 0 ? blk.qubit_a : blk.qubit_b);
      }
      mapped.push_back(op);
    }
    for (const int idx : blk.op_indices) {
      removed[static_cast<std::size_t>(idx)] = true;
    }
    insertions.emplace_back(blk.op_indices.back(), std::move(mapped));
    phase += resynth->global_phase();
    changed = true;
  }
  if (!changed) {
    return false;
  }

  Circuit rebuilt(circuit.num_qubits(), circuit.name());
  rebuilt.add_global_phase(circuit.global_phase() + phase);
  for (int i = 0; i < static_cast<int>(circuit.size()); ++i) {
    const auto ins = std::find_if(insertions.begin(), insertions.end(),
                                  [i](const auto& e) { return e.first == i; });
    if (ins != insertions.end()) {
      for (const Operation& op : ins->second) {
        rebuilt.append(op);
      }
    }
    if (!removed[static_cast<std::size_t>(i)]) {
      rebuilt.append(circuit.ops()[static_cast<std::size_t>(i)]);
    }
  }
  circuit = std::move(rebuilt);
  return true;
}

/// Iterates sweeps until convergence: resynthesised blocks can fuse with
/// neighbouring gates into new consolidatable blocks.
bool consolidate(Circuit& circuit, int min_two_qubit) {
  bool any = false;
  for (int round = 0; round < 8; ++round) {
    if (!consolidate_once(circuit, min_two_qubit)) {
      break;
    }
    any = true;
  }
  return any;
}

}  // namespace

bool ConsolidateBlocks::run(ir::Circuit& circuit, const PassContext&) const {
  return consolidate(circuit, /*min_two_qubit=*/2);
}

bool PeepholeOptimise2Q::run(ir::Circuit& circuit, const PassContext&) const {
  return consolidate(circuit, /*min_two_qubit=*/1);
}

}  // namespace qrc::passes
