#include "passes/opt/cancellation.hpp"

#include <algorithm>
#include <cmath>

#include "ir/dag.hpp"
#include "la/mat4.hpp"
#include "passes/commutation.hpp"
#include "passes/two_qubit_decomp.hpp"

namespace qrc::passes {

namespace {

using ir::Circuit;
using ir::DagCircuit;
using ir::GateKind;
using ir::Operation;

/// True if `b` comes immediately after `a` on every qubit of `a`, and the
/// two ops act on the same qubit set.
bool strictly_adjacent(const DagCircuit& dag, const Circuit& c, int ia,
                       int ib) {
  const Operation& a = c.ops()[static_cast<std::size_t>(ia)];
  const Operation& b = c.ops()[static_cast<std::size_t>(ib)];
  if (a.num_qubits() != b.num_qubits()) {
    return false;
  }
  for (const int q : a.qubits()) {
    if (!b.acts_on(q) || dag.next_on_qubit(ia, q) != ib) {
      return false;
    }
  }
  return true;
}

/// Kind-level structural inverse check (operands already known to match as
/// sets; `ordered_equal` distinguishes directed gates).
bool is_structural_inverse(const Operation& a, const Operation& b) {
  const auto inv = ir::gate_inverse(a.kind(), a.params());
  if (inv.kind != b.kind()) {
    return false;
  }
  if (a.kind() == GateKind::kISWAP) {
    return false;  // iSWAP's inverse is not a single gate
  }
  // Operand order: symmetric gates may be flipped.
  bool same_order = true;
  for (int i = 0; i < a.num_qubits(); ++i) {
    if (a.qubit(i) != b.qubit(i)) {
      same_order = false;
      break;
    }
  }
  if (!same_order && !a.info().is_symmetric) {
    return false;
  }
  for (int i = 0; i < b.num_params(); ++i) {
    const double diff = la::normalize_angle(
        inv.params[static_cast<std::size_t>(i)] - b.param(i));
    if (std::abs(diff) > 1e-10) {
      return false;
    }
  }
  return true;
}

/// Matrix-level inverse check on ops with identical qubit sets (1q or 2q).
bool is_matrix_inverse(const Operation& a, const Operation& b) {
  if (a.num_qubits() != b.num_qubits() || a.num_qubits() > 2) {
    return false;
  }
  if (a.num_qubits() == 1) {
    if (a.qubit(0) != b.qubit(0)) {
      return false;
    }
    const la::Mat2 prod = ir::gate_matrix_1q(b.kind(), b.params()) *
                          ir::gate_matrix_1q(a.kind(), a.params());
    return prod.equal_up_to_phase(la::Mat2::identity(), 1e-10);
  }
  // Two-qubit: build both on a local 2-qubit register.
  const int qa0 = a.qubit(0);
  const int qa1 = a.qubit(1);
  if (!b.acts_on(qa0) || !b.acts_on(qa1)) {
    return false;
  }
  Circuit mini(2);
  Operation la_op = a;
  la_op.set_qubit(0, 0);
  la_op.set_qubit(1, 1);
  Operation lb_op = b;
  lb_op.set_qubit(0, b.qubit(0) == qa0 ? 0 : 1);
  lb_op.set_qubit(1, b.qubit(1) == qa1 ? 1 : 0);
  mini.append(la_op);
  mini.append(lb_op);
  const la::Mat4 prod = two_qubit_circuit_unitary(mini);
  return prod.equal_up_to_phase(la::Mat4::identity(), 1e-10);
}

/// Same rotation axis and operands: returns true and the merged op.
bool try_merge_rotations(const Operation& a, const Operation& b,
                         Operation& merged) {
  if (a.kind() != b.kind() || a.num_params() != 1) {
    return false;
  }
  switch (a.kind()) {
    case GateKind::kRX:
    case GateKind::kRY:
    case GateKind::kRZ:
    case GateKind::kP:
    case GateKind::kRXX:
    case GateKind::kRYY:
    case GateKind::kRZZ:
    case GateKind::kRZX:
    case GateKind::kCP:
    case GateKind::kCRX:
    case GateKind::kCRY:
    case GateKind::kCRZ:
      break;
    default:
      return false;
  }
  bool same_order = true;
  for (int i = 0; i < a.num_qubits(); ++i) {
    if (a.qubit(i) != b.qubit(i)) {
      same_order = false;
      break;
    }
  }
  if (!same_order) {
    if (!a.info().is_symmetric || !b.acts_on(a.qubit(0)) ||
        !b.acts_on(a.qubit(1))) {
      return false;
    }
  }
  merged = a;
  merged.set_param(0, a.param(0) + b.param(0));
  return true;
}

/// Shared skeleton: for each op, search forward for a partner with the same
/// qubit set; intermediates sharing qubits must commute with the op.
/// `match` decides cancellation (return 2: remove both; 1: merge a into b,
/// writing `merged` at b's position; 0: no match).
///
/// The commutation guard only licenses moving `a` *forward* past the
/// intermediates, so a merge must land at `j` (b's slot), never at `i`:
/// placing the merged rotation at `i` would silently commute `b` backward
/// past ops it was never checked against (e.g. ry(pi)..rz(pi)..ry(pi/2)
/// merged to ry(3pi/2) *before* the rz is not equivalent).
template <typename MatchFn>
bool commuting_pair_pass(Circuit& circuit, const MatchFn& match,
                         bool require_adjacent) {
  constexpr int kWindow = 32;
  bool any_change = false;
  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ < 16) {
    changed = false;
    // Work on a live copy so merges written at `j` are what later outer
    // iterations see, never a stale pre-merge op.
    std::vector<Operation> work(circuit.ops().begin(), circuit.ops().end());
    std::vector<bool> removed(work.size(), false);

    for (int i = 0; i < static_cast<int>(work.size()); ++i) {
      if (removed[static_cast<std::size_t>(i)]) {
        continue;
      }
      const Operation& a = work[static_cast<std::size_t>(i)];
      if (!a.is_unitary()) {
        continue;
      }
      int encounters = 0;
      for (int j = i + 1;
           j < static_cast<int>(work.size()) && encounters < kWindow; ++j) {
        if (removed[static_cast<std::size_t>(j)]) {
          continue;
        }
        const Operation& b = work[static_cast<std::size_t>(j)];
        if (b.kind() == GateKind::kBarrier) {
          break;  // barriers block reordering across them
        }
        if (!a.overlaps(b)) {
          continue;
        }
        ++encounters;
        // Candidate partner: unitary with the same qubit set.
        const bool same_set =
            b.is_unitary() && a.num_qubits() == b.num_qubits() &&
            std::all_of(a.qubits().begin(), a.qubits().end(),
                        [&](int q) { return b.acts_on(q); });
        if (same_set) {
          Operation merged = a;
          const int verdict = match(a, b, merged);
          if (verdict == 2) {
            removed[static_cast<std::size_t>(i)] = true;
            removed[static_cast<std::size_t>(j)] = true;
            changed = true;
            break;
          }
          if (verdict == 1) {
            removed[static_cast<std::size_t>(i)] = true;
            if (ir::gate_is_identity(merged.kind(), merged.params())) {
              removed[static_cast<std::size_t>(j)] = true;
            } else {
              work[static_cast<std::size_t>(j)] = merged;
            }
            changed = true;
            break;
          }
        }
        if (require_adjacent) {
          break;  // only immediate neighbours count
        }
        if (!b.is_unitary() || !ops_commute(a, b)) {
          break;
        }
      }
    }

    if (changed) {
      Circuit rebuilt(circuit.num_qubits(), circuit.name());
      rebuilt.add_global_phase(circuit.global_phase());
      for (int i = 0; i < static_cast<int>(work.size()); ++i) {
        if (!removed[static_cast<std::size_t>(i)]) {
          rebuilt.append(work[static_cast<std::size_t>(i)]);
        }
      }
      circuit = std::move(rebuilt);
      any_change = true;
    }
  }
  return any_change;
}

bool drop_identity_gates(Circuit& circuit) {
  const auto& ops = circuit.ops();
  std::vector<bool> remove(ops.size(), false);
  bool changed = false;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Operation& op = ops[i];
    if (op.is_unitary() &&
        (op.kind() == GateKind::kI ||
         ir::gate_is_identity(op.kind(), op.params()))) {
      remove[i] = true;
      changed = true;
    }
  }
  if (changed) {
    circuit.remove_ops(remove);
  }
  return changed;
}

}  // namespace

bool CXCancellation::run(ir::Circuit& circuit, const PassContext&) const {
  bool any = false;
  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ < 16) {
    changed = false;
    const DagCircuit dag(circuit);
    const auto& ops = circuit.ops();
    std::vector<bool> removed(ops.size(), false);
    for (int i = 0; i < static_cast<int>(ops.size()); ++i) {
      if (removed[static_cast<std::size_t>(i)] ||
          ops[static_cast<std::size_t>(i)].kind() != GateKind::kCX) {
        continue;
      }
      const int j = dag.next_on_qubit(i, ops[static_cast<std::size_t>(i)]
                                             .qubit(0));
      if (j < 0 || removed[static_cast<std::size_t>(j)]) {
        continue;
      }
      const Operation& a = ops[static_cast<std::size_t>(i)];
      const Operation& b = ops[static_cast<std::size_t>(j)];
      if (b.kind() == GateKind::kCX && b.qubit(0) == a.qubit(0) &&
          b.qubit(1) == a.qubit(1) && strictly_adjacent(dag, circuit, i, j)) {
        removed[static_cast<std::size_t>(i)] = true;
        removed[static_cast<std::size_t>(j)] = true;
        changed = true;
      }
    }
    if (changed) {
      circuit.remove_ops(removed);
      any = true;
    }
  }
  return any;
}

bool InverseCancellation::run(ir::Circuit& circuit, const PassContext&) const {
  return commuting_pair_pass(
      circuit,
      [](const Operation& a, const Operation& b, Operation&) {
        return is_structural_inverse(a, b) ? 2 : 0;
      },
      /*require_adjacent=*/true);
}

bool CommutativeCancellation::run(ir::Circuit& circuit,
                                  const PassContext&) const {
  return commuting_pair_pass(
      circuit,
      [](const Operation& a, const Operation& b, Operation& merged) {
        if (is_structural_inverse(a, b)) {
          return 2;
        }
        if (try_merge_rotations(a, b, merged)) {
          return 1;
        }
        return 0;
      },
      /*require_adjacent=*/false);
}

bool CommutativeInverseCancellation::run(ir::Circuit& circuit,
                                         const PassContext&) const {
  return commuting_pair_pass(
      circuit,
      [](const Operation& a, const Operation& b, Operation&) {
        return is_matrix_inverse(a, b) ? 2 : 0;
      },
      /*require_adjacent=*/false);
}

bool RemoveDiagonalGatesBeforeMeasure::run(ir::Circuit& circuit,
                                           const PassContext&) const {
  bool any = false;
  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ < 16) {
    changed = false;
    const DagCircuit dag(circuit);
    const auto& ops = circuit.ops();
    std::vector<bool> removed(ops.size(), false);
    for (int i = 0; i < static_cast<int>(ops.size()); ++i) {
      const Operation& op = ops[static_cast<std::size_t>(i)];
      if (!op.is_unitary() || !op.info().is_diagonal) {
        continue;
      }
      bool all_measured = true;
      for (const int q : op.qubits()) {
        const int nxt = dag.next_on_qubit(i, q);
        if (nxt < 0 ||
            ops[static_cast<std::size_t>(nxt)].kind() != GateKind::kMeasure) {
          all_measured = false;
          break;
        }
      }
      if (all_measured) {
        removed[static_cast<std::size_t>(i)] = true;
        changed = true;
      }
    }
    if (changed) {
      circuit.remove_ops(removed);
      any = true;
    }
  }
  return any;
}

bool RemoveRedundancies::run(ir::Circuit& circuit,
                             const PassContext& ctx) const {
  bool any = false;
  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ < 8) {
    changed = false;
    if (drop_identity_gates(circuit)) {
      changed = true;
    }
    if (commuting_pair_pass(
            circuit,
            [](const Operation& a, const Operation& b, Operation& merged) {
              if (is_structural_inverse(a, b)) {
                return 2;
              }
              if (try_merge_rotations(a, b, merged)) {
                return 1;
              }
              return 0;
            },
            /*require_adjacent=*/true)) {
      changed = true;
    }
    if (changed) {
      any = true;
    }
  }
  (void)ctx;
  return any;
}

}  // namespace qrc::passes
