#include "passes/opt/clifford_opt.hpp"

#include <algorithm>
#include <vector>

#include "clifford/tableau.hpp"
#include "passes/blocks.hpp"

namespace qrc::passes {

namespace {

using ir::Circuit;
using ir::Operation;

bool clifford_resynthesize(Circuit& circuit, const PassContext& ctx,
                           int min_two_qubit, bool strict_two_qubit) {
  const auto blocks = collect_clifford_blocks(circuit);
  if (blocks.empty()) {
    return false;
  }
  std::vector<bool> removed(circuit.size(), false);
  std::vector<std::pair<int, std::vector<Operation>>> insertions;
  bool changed = false;

  for (const CliffordBlock& blk : blocks) {
    if (blk.two_qubit_count < min_two_qubit) {
      continue;
    }
    // Re-index the support to 0..k-1.
    const auto local = [&](int q) {
      return static_cast<int>(
          std::lower_bound(blk.qubits.begin(), blk.qubits.end(), q) -
          blk.qubits.begin());
    };
    Circuit mini(static_cast<int>(blk.qubits.size()));
    for (const int idx : blk.op_indices) {
      Operation op = circuit.ops()[static_cast<std::size_t>(idx)];
      for (int k = 0; k < op.num_qubits(); ++k) {
        op.set_qubit(k, local(op.qubit(k)));
      }
      mini.append(op);
    }
    const auto tableau = clifford::Tableau::from_circuit(mini);
    if (!tableau.has_value()) {
      continue;  // defensive; collection should guarantee Clifford
    }
    const Circuit resynth = tableau->to_circuit();
    const int old_2q = blk.two_qubit_count;
    const int old_total = static_cast<int>(blk.op_indices.size());
    const int new_2q = resynth.two_qubit_gate_count();
    const int new_total = resynth.gate_count();
    const bool better =
        strict_two_qubit
            ? new_2q < old_2q
            : (new_2q < old_2q || (new_2q == old_2q && new_total < old_total));
    if (!better) {
      continue;
    }
    // Map back to the original qubits; reject if connectivity would break
    // on a mapped circuit.
    std::vector<Operation> mapped;
    mapped.reserve(resynth.size());
    bool respects_topology = true;
    for (Operation op : resynth.ops()) {
      for (int k = 0; k < op.num_qubits(); ++k) {
        op.set_qubit(k, blk.qubits[static_cast<std::size_t>(op.qubit(k))]);
      }
      if (ctx.is_mapped && ctx.device != nullptr && op.num_qubits() == 2 &&
          !ctx.device->coupling().are_coupled(op.qubit(0), op.qubit(1))) {
        respects_topology = false;
        break;
      }
      mapped.push_back(op);
    }
    if (!respects_topology) {
      continue;
    }
    for (const int idx : blk.op_indices) {
      removed[static_cast<std::size_t>(idx)] = true;
    }
    insertions.emplace_back(blk.op_indices.back(), std::move(mapped));
    changed = true;
  }
  if (!changed) {
    return false;
  }

  Circuit rebuilt(circuit.num_qubits(), circuit.name());
  rebuilt.add_global_phase(circuit.global_phase());
  for (int i = 0; i < static_cast<int>(circuit.size()); ++i) {
    const auto ins = std::find_if(insertions.begin(), insertions.end(),
                                  [i](const auto& e) { return e.first == i; });
    if (ins != insertions.end()) {
      for (const Operation& op : ins->second) {
        rebuilt.append(op);
      }
    }
    if (!removed[static_cast<std::size_t>(i)]) {
      rebuilt.append(circuit.ops()[static_cast<std::size_t>(i)]);
    }
  }
  circuit = std::move(rebuilt);
  return true;
}

}  // namespace

bool OptimizeCliffords::run(ir::Circuit& circuit,
                            const PassContext& ctx) const {
  return clifford_resynthesize(circuit, ctx, /*min_two_qubit=*/1,
                               /*strict_two_qubit=*/false);
}

bool CliffordSimp::run(ir::Circuit& circuit, const PassContext& ctx) const {
  return clifford_resynthesize(circuit, ctx, /*min_two_qubit=*/2,
                               /*strict_two_qubit=*/true);
}

}  // namespace qrc::passes
