/// \file composite.hpp
/// \brief TKET-style FullPeepholeOptimise: an iterated composition of
///        single-qubit fusion, two-qubit peephole resynthesis, commutative
///        cancellation and redundancy removal.
#pragma once

#include "passes/pass.hpp"

namespace qrc::passes {

class FullPeepholeOptimise final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "FullPeepholeOptimise";
  }
  bool run(ir::Circuit& circuit, const PassContext& ctx) const override;
};

}  // namespace qrc::passes
