/// \file cancellation.hpp
/// \brief Gate-cancellation passes from the paper's action list:
///        CXCancellation, InverseCancellation, CommutativeCancellation,
///        CommutativeInverseCancellation, RemoveDiagonalGatesBeforeMeasure
///        and TKET-style RemoveRedundancies.
#pragma once

#include "passes/pass.hpp"

namespace qrc::passes {

/// Cancels immediately adjacent identical CX pairs.
class CXCancellation final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "CXCancellation";
  }
  bool run(ir::Circuit& circuit, const PassContext& ctx) const override;
};

/// Cancels immediately adjacent gate/inverse pairs (kind-level: h-h, x-x,
/// cx-cx, s-sdg, t-tdg, sx-sxdg, rot(t)-rot(-t), ...).
class InverseCancellation final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "InverseCancellation";
  }
  bool run(ir::Circuit& circuit, const PassContext& ctx) const override;
};

/// Cancels or merges gate pairs separated by gates they commute with
/// (commutation checked by the numerical oracle).
class CommutativeCancellation final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "CommutativeCancellation";
  }
  bool run(ir::Circuit& circuit, const PassContext& ctx) const override;
};

/// Like CommutativeCancellation but matches partners whose matrix product
/// is the identity up to phase (catches cross-kind inverses).
class CommutativeInverseCancellation final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "CommutativeInverseCancellation";
  }
  bool run(ir::Circuit& circuit, const PassContext& ctx) const override;
};

/// Removes diagonal gates whose every qubit is immediately measured
/// afterwards (they cannot affect Z-basis outcomes).
class RemoveDiagonalGatesBeforeMeasure final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "RemoveDiagonalGatesBeforeMeasure";
  }
  bool run(ir::Circuit& circuit, const PassContext& ctx) const override;
};

/// TKET-style RemoveRedundancies: drops identity-angle rotations, cancels
/// adjacent inverses and merges adjacent same-axis rotations, to fixpoint.
class RemoveRedundancies final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "RemoveRedundancies";
  }
  bool run(ir::Circuit& circuit, const PassContext& ctx) const override;
};

}  // namespace qrc::passes
