/// \file clifford_opt.hpp
/// \brief Clifford-segment resynthesis passes: Qiskit-style
///        OptimizeCliffords and TKET-style CliffordSimp. Both collect
///        Clifford blocks, resynthesise them canonically through the
///        stabilizer tableau, and keep improvements only. On mapped
///        circuits, replacements that would violate the coupling map are
///        rejected.
#pragma once

#include "passes/pass.hpp"

namespace qrc::passes {

class OptimizeCliffords final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "OptimizeCliffords";
  }
  bool run(ir::Circuit& circuit, const PassContext& ctx) const override;
};

/// Stricter variant: only blocks with >= 2 two-qubit gates, replaced only
/// on a strict two-qubit-count reduction.
class CliffordSimp final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "CliffordSimp";
  }
  bool run(ir::Circuit& circuit, const PassContext& ctx) const override;
};

}  // namespace qrc::passes
