#include "passes/opt/one_qubit_opt.hpp"

#include <algorithm>
#include <vector>

#include "passes/blocks.hpp"
#include "passes/synthesis/euler_synth.hpp"

namespace qrc::passes {

bool Optimize1qGatesDecomposition::run(ir::Circuit& circuit,
                                       const PassContext& ctx) const {
  const auto runs = collect_1q_runs(circuit);
  if (runs.empty()) {
    return false;
  }

  // Decide replacements per run.
  std::vector<bool> removed(circuit.size(), false);
  // Insertion anchored at the run's last op index.
  std::vector<std::pair<int, std::vector<ir::Operation>>> insertions;
  double phase = 0.0;
  bool changed = false;

  for (const OneQubitRun& run : runs) {
    const la::Mat2 u = run_matrix(circuit, run);
    double run_phase = 0.0;
    std::vector<ir::Operation> synth;
    if (ctx.device != nullptr) {
      synth = synthesize_1q_native(u, run.qubit, ctx.device->platform(),
                                   run_phase);
    } else {
      synth = synthesize_1q_u3(u, run.qubit, run_phase);
    }
    const int old_count = static_cast<int>(run.op_indices.size());
    const int new_count = static_cast<int>(synth.size());
    bool non_native = false;
    if (ctx.device != nullptr) {
      for (const int idx : run.op_indices) {
        if (!ctx.device->is_native(
                circuit.ops()[static_cast<std::size_t>(idx)].kind())) {
          non_native = true;
          break;
        }
      }
    }
    // Substitute when strictly shorter, or whenever the run leaves the
    // device's native set (mirrors Qiskit's substitution rule).
    if (new_count < old_count || non_native) {
      for (const int idx : run.op_indices) {
        removed[static_cast<std::size_t>(idx)] = true;
      }
      insertions.emplace_back(run.op_indices.back(), std::move(synth));
      phase += run_phase;
      changed = true;
    }
  }
  if (!changed) {
    return false;
  }

  ir::Circuit rebuilt(circuit.num_qubits(), circuit.name());
  rebuilt.add_global_phase(circuit.global_phase() + phase);
  for (int i = 0; i < static_cast<int>(circuit.size()); ++i) {
    const auto ins = std::find_if(
        insertions.begin(), insertions.end(),
        [i](const auto& e) { return e.first == i; });
    if (ins != insertions.end()) {
      for (const ir::Operation& op : ins->second) {
        rebuilt.append(op);
      }
    }
    if (!removed[static_cast<std::size_t>(i)]) {
      rebuilt.append(circuit.ops()[static_cast<std::size_t>(i)]);
    }
  }
  circuit = std::move(rebuilt);
  return true;
}

}  // namespace qrc::passes
