/// \file one_qubit_opt.hpp
/// \brief Optimize1qGatesDecomposition: fuses runs of single-qubit gates
///        and resynthesises them minimally (into the device-native basis if
///        a device is fixed, otherwise into a single u3).
#pragma once

#include "passes/pass.hpp"

namespace qrc::passes {

class Optimize1qGatesDecomposition final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "Optimize1qGatesDecomposition";
  }
  bool run(ir::Circuit& circuit, const PassContext& ctx) const override;
};

}  // namespace qrc::passes
