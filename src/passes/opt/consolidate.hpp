/// \file consolidate.hpp
/// \brief Two-qubit block consolidation: Qiskit-style Collect2qBlocks +
///        ConsolidateBlocks, and the TKET-style PeepholeOptimise2Q. Both
///        rebuild two-qubit blocks through the KAK decomposition and keep
///        the replacement only when it reduces cost.
#pragma once

#include "passes/pass.hpp"

namespace qrc::passes {

/// Collects maximal blocks over a qubit pair and resynthesises blocks with
/// at least two 2q gates; replaces when the CX count strictly drops (or
/// ties with fewer total gates).
class ConsolidateBlocks final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "Collect2qBlocks+ConsolidateBlocks";
  }
  bool run(ir::Circuit& circuit, const PassContext& ctx) const override;
};

/// TKET-style peephole: also attacks single-2q-gate blocks, normalising
/// them through the KAK form; same strict cost gate as ConsolidateBlocks.
class PeepholeOptimise2Q final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "PeepholeOptimise2Q";
  }
  bool run(ir::Circuit& circuit, const PassContext& ctx) const override;
};

}  // namespace qrc::passes
