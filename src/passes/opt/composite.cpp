#include "passes/opt/composite.hpp"

#include "passes/opt/cancellation.hpp"
#include "passes/opt/consolidate.hpp"
#include "passes/opt/one_qubit_opt.hpp"

namespace qrc::passes {

bool FullPeepholeOptimise::run(ir::Circuit& circuit,
                               const PassContext& ctx) const {
  const Optimize1qGatesDecomposition opt1q;
  const PeepholeOptimise2Q peephole;
  const CommutativeCancellation commutative;
  const RemoveRedundancies redundancies;

  bool any = false;
  for (int round = 0; round < 3; ++round) {
    bool changed = false;
    changed |= opt1q.run(circuit, ctx);
    changed |= peephole.run(circuit, ctx);
    changed |= commutative.run(circuit, ctx);
    changed |= redundancies.run(circuit, ctx);
    if (!changed) {
      break;
    }
    any = true;
  }
  return any;
}

}  // namespace qrc::passes
