/// \file pass.hpp
/// \brief The unified pass interface of the framework ("all actions use a
///        quantum circuit as the main representation for their input and
///        output", Section III). Optimization and synthesis passes
///        implement Pass; layout and routing have dedicated typed entry
///        points in layout/ and routing/.
#pragma once

#include <cstdint>
#include <string_view>

#include "device/device.hpp"
#include "ir/circuit.hpp"

namespace qrc::passes {

/// Context shared by all passes. `device` is null until the MDP has fixed
/// a device; `is_mapped` is true once the circuit lives on physical qubits
/// (passes must then preserve connectivity).
struct PassContext {
  const device::Device* device = nullptr;
  bool is_mapped = false;
  std::uint64_t seed = 1;  ///< for stochastic passes; fixed => deterministic
};

/// A circuit-to-circuit transformation.
class Pass {
 public:
  virtual ~Pass() = default;
  Pass() = default;
  Pass(const Pass&) = delete;
  Pass& operator=(const Pass&) = delete;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Transforms `circuit` in place. \returns true if anything changed.
  virtual bool run(ir::Circuit& circuit, const PassContext& ctx) const = 0;
};

}  // namespace qrc::passes
