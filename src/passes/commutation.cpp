#include "passes/commutation.hpp"

#include <algorithm>
#include <vector>

#include "ir/circuit.hpp"
#include "ir/sim.hpp"

namespace qrc::passes {

namespace {

using ir::GateKind;
using ir::Operation;

bool is_x_type_1q(GateKind k) {
  return k == GateKind::kX || k == GateKind::kSX || k == GateKind::kSXdg ||
         k == GateKind::kRX;
}

/// Exact commutation via simulation on the joint support (re-indexed).
bool numeric_commute(const Operation& a, const Operation& b) {
  std::vector<int> support;
  for (const int q : a.qubits()) {
    support.push_back(q);
  }
  for (const int q : b.qubits()) {
    if (std::find(support.begin(), support.end(), q) == support.end()) {
      support.push_back(q);
    }
  }
  if (support.size() > 5) {
    return false;  // conservative
  }
  std::sort(support.begin(), support.end());
  const auto local = [&](int q) {
    return static_cast<int>(std::find(support.begin(), support.end(), q) -
                            support.begin());
  };
  const int n = static_cast<int>(support.size());
  Operation la = a;
  Operation lb = b;
  for (int i = 0; i < a.num_qubits(); ++i) {
    la.set_qubit(i, local(a.qubit(i)));
  }
  for (int i = 0; i < b.num_qubits(); ++i) {
    lb.set_qubit(i, local(b.qubit(i)));
  }
  ir::Circuit ab(n);
  ab.append(la);
  ab.append(lb);
  ir::Circuit ba(n);
  ba.append(lb);
  ba.append(la);
  return ir::circuits_equivalent(ab, ba, 2, 777, {}, 1e-9);
}

}  // namespace

bool ops_commute(const Operation& a, const Operation& b) {
  if (!a.is_unitary() || !b.is_unitary()) {
    return false;
  }
  if (!a.overlaps(b)) {
    return true;
  }
  const auto& ia = a.info();
  const auto& ib = b.info();
  // Fast path: two diagonal gates always commute.
  if (ia.is_diagonal && ib.is_diagonal) {
    return true;
  }
  // Fast paths around CX, the dominant two-qubit gate.
  const auto cx_rule = [](const Operation& cx,
                          const Operation& other) -> int {
    // returns 1 = commute, 0 = don't know, -1 = no fast answer but likely
    // not commuting.
    if (cx.kind() != GateKind::kCX) {
      return 0;
    }
    if (other.num_qubits() == 1) {
      const int q = other.qubit(0);
      if (q == cx.qubit(0)) {  // control
        return other.info().is_diagonal ? 1 : -1;
      }
      if (q == cx.qubit(1)) {  // target
        return is_x_type_1q(other.kind()) ? 1 : -1;
      }
    }
    if (other.kind() == GateKind::kCX) {
      const bool share_control = other.qubit(0) == cx.qubit(0);
      const bool share_target = other.qubit(1) == cx.qubit(1);
      const bool cross = other.qubit(0) == cx.qubit(1) ||
                         other.qubit(1) == cx.qubit(0);
      if (share_control && share_target) {
        return 1;  // identical pair
      }
      if (cross) {
        return -1;
      }
      if (share_control || share_target) {
        return 1;
      }
    }
    return 0;
  };
  const int ab = cx_rule(a, b);
  if (ab == 1) {
    return true;
  }
  if (ab == -1) {
    return numeric_commute(a, b);
  }
  const int ba = cx_rule(b, a);
  if (ba == 1) {
    return true;
  }
  return numeric_commute(a, b);
}

}  // namespace qrc::passes
