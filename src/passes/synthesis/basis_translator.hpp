/// \file basis_translator.hpp
/// \brief Qiskit-style BasisTranslator: rewrites every non-native gate into
///        the target platform's native set via a rule system (multi-qubit
///        gates lower through CX, CX converts to the platform entangler,
///        single-qubit remainders re-synthesise through Euler angles).
///        Equivalences hold up to global phase.
#pragma once

#include "passes/pass.hpp"

namespace qrc::passes {

class BasisTranslator final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "BasisTranslator";
  }

  /// Requires ctx.device (the platform fixes the native set). Two-qubit
  /// decompositions keep both operands on the same qubit pair, so a mapped
  /// circuit stays mapped.
  bool run(ir::Circuit& circuit, const PassContext& ctx) const override;
};

}  // namespace qrc::passes
