/// \file euler_synth.hpp
/// \brief Shared single-qubit resynthesis: rewrite an arbitrary 2x2 unitary
///        as a minimal native gate sequence for a platform, or as a single
///        u3. Used by BasisTranslator and Optimize1qGatesDecomposition.
#pragma once

#include <vector>

#include "device/device.hpp"
#include "ir/operation.hpp"
#include "la/mat2.hpp"

namespace qrc::passes {

/// Rewrites `u` on qubit `q` into the platform's native 1q basis
/// (IBM/OQC: rz-sx; Rigetti: rz-rx; IonQ: rz-ry-rz). Returns the gate list
/// in circuit order; `phase_out` accumulates the dropped global phase.
/// Identity (up to phase) yields an empty list. Diagonal and anti-diagonal
/// shortcuts keep sequences minimal.
[[nodiscard]] std::vector<ir::Operation> synthesize_1q_native(
    const la::Mat2& u, int q, device::Platform platform, double& phase_out);

/// Rewrites `u` as at most one u3 gate (empty if identity up to phase).
[[nodiscard]] std::vector<ir::Operation> synthesize_1q_u3(const la::Mat2& u,
                                                          int q,
                                                          double& phase_out);

}  // namespace qrc::passes
