#include "passes/synthesis/basis_translator.hpp"

#include <stdexcept>
#include <vector>

#include "la/euler.hpp"
#include "passes/synthesis/euler_synth.hpp"

namespace qrc::passes {

namespace {

using ir::GateKind;
using ir::Operation;
using la::kPi;

Operation g1(GateKind kind, int q) {
  const std::array<int, 1> qs{q};
  return Operation(kind, qs);
}

Operation g1p(GateKind kind, double p, int q) {
  const std::array<int, 1> qs{q};
  const std::array<double, 1> ps{p};
  return Operation(kind, qs, ps);
}

Operation g2(GateKind kind, int a, int b) {
  const std::array<int, 2> qs{a, b};
  return Operation(kind, qs);
}

Operation g2p(GateKind kind, double p, int a, int b) {
  const std::array<int, 2> qs{a, b};
  const std::array<double, 1> ps{p};
  return Operation(kind, qs, ps);
}

/// Controlled-U via the ABC decomposition (Nielsen & Chuang 4.2): with
/// U = e^{i alpha} Rz(beta) Ry(gamma) Rz(delta),
/// CU = P(alpha)_c Rz(beta)_t Ry(gamma/2)_t CX Ry(-gamma/2)_t
///      Rz(-(delta+beta)/2)_t CX Rz((delta-beta)/2)_t  (rightmost first).
void controlled_1q(std::vector<Operation>& out, const la::Mat2& u, int c,
                   int t) {
  const auto zyz = la::zyz_decompose(u);
  out.push_back(g1p(GateKind::kRZ, (zyz.delta - zyz.beta) / 2.0, t));
  out.push_back(g2(GateKind::kCX, c, t));
  out.push_back(g1p(GateKind::kRZ, -(zyz.delta + zyz.beta) / 2.0, t));
  out.push_back(g1p(GateKind::kRY, -zyz.gamma / 2.0, t));
  out.push_back(g2(GateKind::kCX, c, t));
  out.push_back(g1p(GateKind::kRY, zyz.gamma / 2.0, t));
  out.push_back(g1p(GateKind::kRZ, zyz.beta, t));
  if (!la::angle_is_zero(zyz.phase)) {
    out.push_back(g1p(GateKind::kP, zyz.phase, c));
  }
}

/// One-level lowering of a non-native gate. Multi-qubit gates lower toward
/// {CX, 1q}; CX lowers to the platform entangler; 1q gates are handled by
/// the Euler stage (returns empty optional here).
std::optional<std::vector<Operation>> lower_step(
    const Operation& op, const device::Platform platform) {
  std::vector<Operation> out;
  const int a = op.num_qubits() > 0 ? op.qubit(0) : 0;
  const int b = op.num_qubits() > 1 ? op.qubit(1) : 0;
  switch (op.kind()) {
    case GateKind::kCCX: {
      const int c1 = op.qubit(0);
      const int c2 = op.qubit(1);
      const int t = op.qubit(2);
      // Standard 6-CX Toffoli.
      out.push_back(g1(GateKind::kH, t));
      out.push_back(g2(GateKind::kCX, c2, t));
      out.push_back(g1(GateKind::kTdg, t));
      out.push_back(g2(GateKind::kCX, c1, t));
      out.push_back(g1(GateKind::kT, t));
      out.push_back(g2(GateKind::kCX, c2, t));
      out.push_back(g1(GateKind::kTdg, t));
      out.push_back(g2(GateKind::kCX, c1, t));
      out.push_back(g1(GateKind::kT, c2));
      out.push_back(g1(GateKind::kT, t));
      out.push_back(g1(GateKind::kH, t));
      out.push_back(g2(GateKind::kCX, c1, c2));
      out.push_back(g1(GateKind::kT, c1));
      out.push_back(g1(GateKind::kTdg, c2));
      out.push_back(g2(GateKind::kCX, c1, c2));
      return out;
    }
    case GateKind::kCCZ: {
      const int t = op.qubit(2);
      out.push_back(g1(GateKind::kH, t));
      const std::array<int, 3> qs{op.qubit(0), op.qubit(1), t};
      out.push_back(Operation(GateKind::kCCX, qs));
      out.push_back(g1(GateKind::kH, t));
      return out;
    }
    case GateKind::kCSWAP: {
      const int c = op.qubit(0);
      const int x = op.qubit(1);
      const int y = op.qubit(2);
      out.push_back(g2(GateKind::kCX, y, x));
      const std::array<int, 3> qs{c, x, y};
      out.push_back(Operation(GateKind::kCCX, qs));
      out.push_back(g2(GateKind::kCX, y, x));
      return out;
    }
    case GateKind::kCY:
      out.push_back(g1(GateKind::kSdg, b));
      out.push_back(g2(GateKind::kCX, a, b));
      out.push_back(g1(GateKind::kS, b));
      return out;
    case GateKind::kCZ:
      out.push_back(g1(GateKind::kH, b));
      out.push_back(g2(GateKind::kCX, a, b));
      out.push_back(g1(GateKind::kH, b));
      return out;
    case GateKind::kCH:
      controlled_1q(out, la::h_mat(), a, b);
      return out;
    case GateKind::kCP: {
      const double l = op.param(0);
      out.push_back(g1p(GateKind::kP, l / 2.0, a));
      out.push_back(g2(GateKind::kCX, a, b));
      out.push_back(g1p(GateKind::kP, -l / 2.0, b));
      out.push_back(g2(GateKind::kCX, a, b));
      out.push_back(g1p(GateKind::kP, l / 2.0, b));
      return out;
    }
    case GateKind::kCRZ: {
      const double l = op.param(0);
      out.push_back(g1p(GateKind::kRZ, l / 2.0, b));
      out.push_back(g2(GateKind::kCX, a, b));
      out.push_back(g1p(GateKind::kRZ, -l / 2.0, b));
      out.push_back(g2(GateKind::kCX, a, b));
      return out;
    }
    case GateKind::kCRY: {
      const double l = op.param(0);
      out.push_back(g1p(GateKind::kRY, l / 2.0, b));
      out.push_back(g2(GateKind::kCX, a, b));
      out.push_back(g1p(GateKind::kRY, -l / 2.0, b));
      out.push_back(g2(GateKind::kCX, a, b));
      return out;
    }
    case GateKind::kCRX:
      out.push_back(g1(GateKind::kH, b));
      out.push_back(g2p(GateKind::kCRZ, op.param(0), a, b));
      out.push_back(g1(GateKind::kH, b));
      return out;
    case GateKind::kSWAP:
      out.push_back(g2(GateKind::kCX, a, b));
      out.push_back(g2(GateKind::kCX, b, a));
      out.push_back(g2(GateKind::kCX, a, b));
      return out;
    case GateKind::kISWAP:
      // iSWAP = (S (x) S) CZ SWAP.
      out.push_back(g2(GateKind::kSWAP, a, b));
      out.push_back(g2(GateKind::kCZ, a, b));
      out.push_back(g1(GateKind::kS, a));
      out.push_back(g1(GateKind::kS, b));
      return out;
    case GateKind::kECR:
      if (platform == device::Platform::kOQC) {
        return std::nullopt;  // native
      }
      // ECR = X_a SX_b S_a CX(a, b) up to global phase.
      out.push_back(g2(GateKind::kCX, a, b));
      out.push_back(g1(GateKind::kS, a));
      out.push_back(g1(GateKind::kSX, b));
      out.push_back(g1(GateKind::kX, a));
      return out;
    case GateKind::kRZZ: {
      out.push_back(g2(GateKind::kCX, a, b));
      out.push_back(g1p(GateKind::kRZ, op.param(0), b));
      out.push_back(g2(GateKind::kCX, a, b));
      return out;
    }
    case GateKind::kRXX:
      if (platform == device::Platform::kIonQ) {
        return std::nullopt;  // native
      }
      out.push_back(g1(GateKind::kH, a));
      out.push_back(g1(GateKind::kH, b));
      out.push_back(g2p(GateKind::kRZZ, op.param(0), a, b));
      out.push_back(g1(GateKind::kH, a));
      out.push_back(g1(GateKind::kH, b));
      return out;
    case GateKind::kRYY:
      out.push_back(g1p(GateKind::kRX, -kPi / 2.0, a));
      out.push_back(g1p(GateKind::kRX, -kPi / 2.0, b));
      out.push_back(g2p(GateKind::kRZZ, op.param(0), a, b));
      out.push_back(g1p(GateKind::kRX, kPi / 2.0, a));
      out.push_back(g1p(GateKind::kRX, kPi / 2.0, b));
      return out;
    case GateKind::kRZX:
      out.push_back(g1(GateKind::kH, b));
      out.push_back(g2p(GateKind::kRZZ, op.param(0), a, b));
      out.push_back(g1(GateKind::kH, b));
      return out;
    case GateKind::kCX:
      // Convert to the platform entangler.
      switch (platform) {
        case device::Platform::kIBM:
          return std::nullopt;  // native
        case device::Platform::kRigetti:
          out.push_back(g1(GateKind::kH, b));
          out.push_back(g2(GateKind::kCZ, a, b));
          out.push_back(g1(GateKind::kH, b));
          return out;
        case device::Platform::kIonQ:
          // Moelmer-Soerensen construction:
          // CX(c,t) = Ry(pi/2)_c RXX(pi/2) Rx(-pi/2)_c Rx(-pi/2)_t
          //           Ry(-pi/2)_c  (rightmost first).
          out.push_back(g1p(GateKind::kRY, kPi / 2.0, a));
          out.push_back(g2p(GateKind::kRXX, kPi / 2.0, a, b));
          out.push_back(g1p(GateKind::kRX, -kPi / 2.0, a));
          out.push_back(g1p(GateKind::kRX, -kPi / 2.0, b));
          out.push_back(g1p(GateKind::kRY, -kPi / 2.0, a));
          return out;
        case device::Platform::kOQC:
          // CX = Sdg_a SXdg_b X_a ECR(a, b) up to global phase.
          out.push_back(g2(GateKind::kECR, a, b));
          out.push_back(g1(GateKind::kX, a));
          out.push_back(g1(GateKind::kSXdg, b));
          out.push_back(g1(GateKind::kSdg, a));
          return out;
      }
      return std::nullopt;
    default:
      return std::nullopt;  // 1q gates handled by the Euler stage
  }
}

}  // namespace

bool BasisTranslator::run(ir::Circuit& circuit, const PassContext& ctx) const {
  if (ctx.device == nullptr) {
    throw std::invalid_argument("BasisTranslator requires a target device");
  }
  const device::Platform platform = ctx.device->platform();
  const auto& native = device::native_gates(platform);

  bool changed = false;
  for (int round = 0; round < 16; ++round) {
    bool round_changed = false;
    double phase = 0.0;
    std::vector<Operation> next;
    next.reserve(circuit.size());
    for (const Operation& op : circuit.ops()) {
      if (!op.is_unitary() || op.kind() == ir::GateKind::kBarrier ||
          native.contains(op.kind())) {
        next.push_back(op);
        continue;
      }
      const auto lowered = lower_step(op, platform);
      if (lowered.has_value()) {
        next.insert(next.end(), lowered->begin(), lowered->end());
        round_changed = true;
        continue;
      }
      if (op.num_qubits() == 1) {
        const la::Mat2 u = ir::gate_matrix_1q(op.kind(), op.params());
        const auto synth = synthesize_1q_native(u, op.qubit(0), platform,
                                                phase);
        next.insert(next.end(), synth.begin(), synth.end());
        round_changed = true;
        continue;
      }
      throw std::logic_error("BasisTranslator: no rule for gate " +
                             std::string(ir::gate_name(op.kind())));
    }
    if (!round_changed) {
      break;
    }
    ir::Circuit rebuilt(circuit.num_qubits(), circuit.name());
    rebuilt.add_global_phase(circuit.global_phase() + phase);
    for (const Operation& op : next) {
      rebuilt.append(op);
    }
    circuit = std::move(rebuilt);
    changed = true;
  }
  if (!ctx.device->circuit_is_native(circuit)) {
    throw std::logic_error("BasisTranslator failed to reach the native set");
  }
  return changed;
}

}  // namespace qrc::passes
