#include "passes/synthesis/euler_synth.hpp"

#include <cmath>
#include <stdexcept>

#include "la/euler.hpp"

namespace qrc::passes {

namespace {

using ir::GateKind;
using ir::Operation;

Operation g1(GateKind kind, int q) {
  const std::array<int, 1> qs{q};
  return Operation(kind, qs);
}

Operation g1p(GateKind kind, double p, int q) {
  const std::array<int, 1> qs{q};
  const std::array<double, 1> ps{p};
  return Operation(kind, qs, ps);
}

}  // namespace

std::vector<Operation> synthesize_1q_native(const la::Mat2& u, int q,
                                            device::Platform platform,
                                            double& phase_out) {
  std::vector<Operation> out;
  // Diagonal shortcut: a single rz (all platforms have rz native).
  if (la::approx_zero(u(0, 1)) && la::approx_zero(u(1, 0))) {
    const double angle = std::arg(u(1, 1) / u(0, 0));
    // u = e^{i phase} Rz(angle).
    phase_out += std::arg(u(0, 0)) + angle / 2.0;
    if (!la::angle_is_zero(angle)) {
      out.push_back(g1p(GateKind::kRZ, angle, q));
    }
    return out;
  }
  switch (platform) {
    case device::Platform::kIBM:
    case device::Platform::kOQC: {
      // Anti-diagonal shortcut: rz then X.
      if (la::approx_zero(u(0, 0)) && la::approx_zero(u(1, 1))) {
        // u = X * diag(u(1,0)? ...) — recompute: X * u = diag(u10, u01).
        const double angle = std::arg(u(0, 1) / u(1, 0));
        // X * u = e^{i p} Rz(angle) with p = arg(u10) + angle/2.
        phase_out += std::arg(u(1, 0)) + angle / 2.0;
        if (!la::angle_is_zero(angle)) {
          out.push_back(g1p(GateKind::kRZ, angle, q));
        }
        out.push_back(g1(GateKind::kX, q));
        return out;
      }
      const auto zx = la::zxzxz_decompose(u);
      phase_out += zx.phase;
      if (!la::angle_is_zero(zx.a3)) {
        out.push_back(g1p(GateKind::kRZ, zx.a3, q));
      }
      out.push_back(g1(GateKind::kSX, q));
      if (!la::angle_is_zero(zx.a2)) {
        out.push_back(g1p(GateKind::kRZ, zx.a2, q));
      }
      out.push_back(g1(GateKind::kSX, q));
      if (!la::angle_is_zero(zx.a1)) {
        out.push_back(g1p(GateKind::kRZ, zx.a1, q));
      }
      return out;
    }
    case device::Platform::kRigetti: {
      const auto zx = la::zxz_decompose(u);
      phase_out += zx.phase;
      if (!la::angle_is_zero(zx.delta)) {
        out.push_back(g1p(GateKind::kRZ, zx.delta, q));
      }
      if (!la::angle_is_zero(zx.gamma)) {
        out.push_back(g1p(GateKind::kRX, zx.gamma, q));
      }
      if (!la::angle_is_zero(zx.beta)) {
        out.push_back(g1p(GateKind::kRZ, zx.beta, q));
      }
      return out;
    }
    case device::Platform::kIonQ: {
      const auto zyz = la::zyz_decompose(u);
      phase_out += zyz.phase;
      if (!la::angle_is_zero(zyz.delta)) {
        out.push_back(g1p(GateKind::kRZ, zyz.delta, q));
      }
      if (!la::angle_is_zero(zyz.gamma)) {
        out.push_back(g1p(GateKind::kRY, zyz.gamma, q));
      }
      if (!la::angle_is_zero(zyz.beta)) {
        out.push_back(g1p(GateKind::kRZ, zyz.beta, q));
      }
      return out;
    }
  }
  throw std::logic_error("synthesize_1q_native: unknown platform");
}

std::vector<Operation> synthesize_1q_u3(const la::Mat2& u, int q,
                                        double& phase_out) {
  std::vector<Operation> out;
  const auto a = la::u3_decompose(u);
  phase_out += a.phase;
  const la::Mat2 body = la::u3_mat(a.theta, a.phi, a.lambda);
  if (body.approx_equal(la::Mat2::identity(), 1e-10)) {
    return out;
  }
  const std::array<int, 1> qs{q};
  const std::array<double, 3> ps{a.theta, a.phi, a.lambda};
  out.push_back(Operation(GateKind::kU3, qs, ps));
  return out;
}

}  // namespace qrc::passes
