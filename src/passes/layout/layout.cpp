#include "passes/layout/layout.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <random>
#include <set>
#include <stdexcept>

#include "passes/routing/routing.hpp"

namespace qrc::passes {

namespace {

using device::CouplingMap;
using ir::Circuit;

std::vector<int> trivial_layout(int n) {
  std::vector<int> out(static_cast<std::size_t>(n));
  std::iota(out.begin(), out.end(), 0);
  return out;
}

/// Interaction degree of each logical qubit (number of distinct partners).
std::vector<int> interaction_degrees(const Circuit& circuit) {
  std::set<std::pair<int, int>> edges;
  for (const ir::Operation& op : circuit.ops()) {
    if (op.is_unitary() && op.num_qubits() >= 2) {
      for (int i = 0; i < op.num_qubits(); ++i) {
        for (int j = i + 1; j < op.num_qubits(); ++j) {
          edges.insert({std::min(op.qubit(i), op.qubit(j)),
                        std::max(op.qubit(i), op.qubit(j))});
        }
      }
    }
  }
  std::vector<int> deg(static_cast<std::size_t>(circuit.num_qubits()), 0);
  for (const auto& [a, b] : edges) {
    ++deg[static_cast<std::size_t>(a)];
    ++deg[static_cast<std::size_t>(b)];
  }
  return deg;
}

/// Densest connected physical subset of size n, grown greedily from every
/// seed; logical qubits are matched by interaction degree to subset degree.
std::vector<int> dense_layout(const Circuit& circuit,
                              const device::Device& device) {
  const CouplingMap& cm = device.coupling();
  const int n = circuit.num_qubits();
  const int m = device.num_qubits();

  std::vector<int> best_set;
  int best_edges = -1;
  for (int seed_q = 0; seed_q < m; ++seed_q) {
    std::vector<int> set{seed_q};
    std::set<int> in_set{seed_q};
    int internal_edges = 0;
    for (int step = 1; step < n; ++step) {
      int best_v = -1;
      int best_gain = -1;
      for (const int v0 : set) {
        for (const int v : cm.neighbors(v0)) {
          if (in_set.contains(v)) {
            continue;
          }
          int gain = 0;
          for (const int u : cm.neighbors(v)) {
            if (in_set.contains(u)) {
              ++gain;
            }
          }
          if (gain > best_gain || (gain == best_gain && v < best_v)) {
            best_gain = gain;
            best_v = v;
          }
        }
      }
      if (best_v < 0) {
        break;  // device disconnected relative to this seed
      }
      set.push_back(best_v);
      in_set.insert(best_v);
      internal_edges += best_gain;
    }
    if (static_cast<int>(set.size()) == n && internal_edges > best_edges) {
      best_edges = internal_edges;
      best_set = set;
    }
  }
  if (best_set.empty()) {
    return trivial_layout(n);
  }

  // Rank physical qubits by internal degree, logical by interaction degree.
  std::vector<int> phys_rank = best_set;
  const std::set<int> in_best(best_set.begin(), best_set.end());
  std::sort(phys_rank.begin(), phys_rank.end(), [&](int a, int b) {
    const auto internal_deg = [&](int q) {
      int d = 0;
      for (const int u : cm.neighbors(q)) {
        if (in_best.contains(u)) {
          ++d;
        }
      }
      return d;
    };
    const int da = internal_deg(a);
    const int db = internal_deg(b);
    return da != db ? da > db : a < b;
  });
  const std::vector<int> ldeg = interaction_degrees(circuit);
  std::vector<int> logical_rank(static_cast<std::size_t>(n));
  std::iota(logical_rank.begin(), logical_rank.end(), 0);
  std::sort(logical_rank.begin(), logical_rank.end(), [&](int a, int b) {
    const int da = ldeg[static_cast<std::size_t>(a)];
    const int db = ldeg[static_cast<std::size_t>(b)];
    return da != db ? da > db : a < b;
  });

  std::vector<int> layout(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    layout[static_cast<std::size_t>(
        logical_rank[static_cast<std::size_t>(i)])] =
        phys_rank[static_cast<std::size_t>(i)];
  }
  return layout;
}

/// SABRE layout: start from a seeded random placement, refine by routing
/// forward and backward; the placement surviving the iterations becomes
/// the initial layout.
std::vector<int> sabre_layout(const Circuit& original,
                              const device::Device& device,
                              std::uint64_t seed) {
  // Routing requires arity <= 2; for layout purposes a 3+ qubit gate is a
  // clique of pairwise interactions, so build a 2q proxy circuit.
  Circuit circuit(original.num_qubits(), original.name());
  for (const ir::Operation& op : original.ops()) {
    if (op.is_unitary() && op.num_qubits() > 2) {
      for (int i = 0; i < op.num_qubits(); ++i) {
        for (int j = i + 1; j < op.num_qubits(); ++j) {
          circuit.cx(op.qubit(i), op.qubit(j));
        }
      }
    } else if (op.kind() != ir::GateKind::kBarrier) {
      circuit.append(op);
    }
  }

  const int n = circuit.num_qubits();
  const int m = device.num_qubits();
  std::mt19937_64 rng(seed * 31337 + 5);
  std::vector<int> phys(static_cast<std::size_t>(m));
  std::iota(phys.begin(), phys.end(), 0);
  std::shuffle(phys.begin(), phys.end(), rng);
  std::vector<int> layout(phys.begin(),
                          phys.begin() + static_cast<std::ptrdiff_t>(n));

  const Circuit& forward = circuit;
  const Circuit reversed = circuit.inverse();
  constexpr int kIterations = 3;
  for (int iter = 0; iter < kIterations; ++iter) {
    for (const Circuit* dir : {&forward, &reversed}) {
      const Circuit placed = apply_layout(*dir, layout, device);
      const RoutingOutcome outcome =
          route(RoutingKind::kSabreSwap, placed, device,
                seed + static_cast<std::uint64_t>(iter));
      // New layout: where each logical ended up.
      for (int l = 0; l < n; ++l) {
        layout[static_cast<std::size_t>(l)] =
            outcome.permutation[static_cast<std::size_t>(
                layout[static_cast<std::size_t>(l)])];
      }
    }
  }
  return layout;
}

}  // namespace

std::string_view layout_name(LayoutKind kind) {
  switch (kind) {
    case LayoutKind::kTrivial:
      return "TrivialLayout";
    case LayoutKind::kDense:
      return "DenseLayout";
    case LayoutKind::kSabre:
      return "SabreLayout";
  }
  return "unknown";
}

std::vector<int> compute_layout(LayoutKind kind, const ir::Circuit& circuit,
                                const device::Device& device,
                                std::uint64_t seed) {
  if (circuit.num_qubits() > device.num_qubits()) {
    throw std::invalid_argument("compute_layout: circuit wider than device");
  }
  switch (kind) {
    case LayoutKind::kTrivial:
      return trivial_layout(circuit.num_qubits());
    case LayoutKind::kDense:
      return dense_layout(circuit, device);
    case LayoutKind::kSabre:
      return sabre_layout(circuit, device, seed);
  }
  throw std::invalid_argument("compute_layout: unknown kind");
}

ir::Circuit apply_layout(const ir::Circuit& circuit,
                         const std::vector<int>& layout,
                         const device::Device& device) {
  if (static_cast<int>(layout.size()) != circuit.num_qubits()) {
    throw std::invalid_argument("apply_layout: layout size mismatch");
  }
  std::set<int> distinct(layout.begin(), layout.end());
  if (distinct.size() != layout.size()) {
    throw std::invalid_argument("apply_layout: layout not injective");
  }
  for (const int p : layout) {
    if (p < 0 || p >= device.num_qubits()) {
      throw std::invalid_argument("apply_layout: physical qubit out of range");
    }
  }
  return circuit.remapped(layout, device.num_qubits());
}

}  // namespace qrc::passes
