/// \file layout.hpp
/// \brief Layout passes: choose an initial placement of logical qubits onto
///        physical qubits. Three algorithms per the paper's action set:
///        TrivialLayout, DenseLayout and SabreLayout (bidirectional routing
///        refinement per Li et al.).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "device/device.hpp"
#include "ir/circuit.hpp"

namespace qrc::passes {

enum class LayoutKind : std::uint8_t {
  kTrivial,
  kDense,
  kSabre,
};

[[nodiscard]] std::string_view layout_name(LayoutKind kind);

/// Computes a placement: result[logical] = physical, injective, size =
/// circuit.num_qubits(). Precondition: the device has at least as many
/// qubits as the circuit.
[[nodiscard]] std::vector<int> compute_layout(LayoutKind kind,
                                              const ir::Circuit& circuit,
                                              const device::Device& device,
                                              std::uint64_t seed = 1);

/// Applies a placement: returns the circuit rewritten onto the device's
/// physical qubits (width = device.num_qubits()).
[[nodiscard]] ir::Circuit apply_layout(const ir::Circuit& circuit,
                                       const std::vector<int>& layout,
                                       const device::Device& device);

}  // namespace qrc::passes
