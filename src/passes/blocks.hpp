/// \file blocks.hpp
/// \brief Collection of maximal gate runs and blocks used by the fusion and
///        consolidation passes: single-qubit runs, two-qubit blocks (the
///        Collect2qBlocks analysis), and Clifford segments.
#pragma once

#include <vector>

#include "ir/circuit.hpp"
#include "la/mat2.hpp"

namespace qrc::passes {

/// A maximal run of consecutive single-qubit unitary gates on one qubit
/// (no other op touches the qubit in between). Indices into circuit.ops().
struct OneQubitRun {
  int qubit = 0;
  std::vector<int> op_indices;
};

/// All maximal 1q runs, in circuit order of their first gate.
[[nodiscard]] std::vector<OneQubitRun> collect_1q_runs(
    const ir::Circuit& circuit);

/// Product matrix of a 1q run (later gates multiplied on the left).
[[nodiscard]] la::Mat2 run_matrix(const ir::Circuit& circuit,
                                  const OneQubitRun& run);

/// A maximal block of ops acting entirely on one pair of qubits: 2q gates
/// on (a, b) plus interleaved 1q gates on a or b, contiguous per wire.
struct TwoQubitBlock {
  int qubit_a = 0;  ///< lower index
  int qubit_b = 0;
  std::vector<int> op_indices;  ///< in circuit order
  int two_qubit_count = 0;
};

/// Greedy maximal 2q-block collection (Collect2qBlocks): walks the circuit,
/// growing a block per active pair; blocks never overlap.
[[nodiscard]] std::vector<TwoQubitBlock> collect_2q_blocks(
    const ir::Circuit& circuit);

/// A contiguous segment of Clifford ops (per clifford::as_clifford_ops)
/// whose joint support has at most `max_qubits` qubits.
struct CliffordBlock {
  std::vector<int> qubits;      ///< sorted support
  std::vector<int> op_indices;  ///< contiguous range in circuit order
  int two_qubit_count = 0;
};

[[nodiscard]] std::vector<CliffordBlock> collect_clifford_blocks(
    const ir::Circuit& circuit, int max_qubits = 8);

}  // namespace qrc::passes
