/// \file two_qubit_decomp.hpp
/// \brief Resynthesis of arbitrary two-qubit unitaries into {1q, CX}
///        circuits via the KAK decomposition, with a CX-count ladder:
///        0 (local), 1 (CX class), 2 (z = 0 Weyl slice), 3 (SWAP class),
///        4 (generic). Every result is verified against the input matrix
///        before being returned.
#pragma once

#include <optional>

#include "ir/circuit.hpp"
#include "la/mat4.hpp"

namespace qrc::passes {

/// Resynthesises `u` (a 4x4 unitary in the |q1 q0> basis) as a circuit on
/// two qubits {0, 1} using u3 and cx gates only. Returns std::nullopt if
/// the KAK decomposition fails or the rebuilt matrix does not verify.
[[nodiscard]] std::optional<ir::Circuit> decompose_two_qubit_unitary(
    const la::Mat4& u);

/// Computes the unitary of a circuit over exactly 2 qubits (all ops must
/// act on qubits 0/1 and be unitary).
[[nodiscard]] la::Mat4 two_qubit_circuit_unitary(const ir::Circuit& circuit);

}  // namespace qrc::passes
