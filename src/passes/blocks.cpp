#include "passes/blocks.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "clifford/tableau.hpp"

namespace qrc::passes {

std::vector<OneQubitRun> collect_1q_runs(const ir::Circuit& circuit) {
  std::vector<OneQubitRun> out;
  std::vector<OneQubitRun> open(
      static_cast<std::size_t>(circuit.num_qubits()));
  for (int q = 0; q < circuit.num_qubits(); ++q) {
    open[static_cast<std::size_t>(q)].qubit = q;
  }
  const auto close = [&](int q) {
    auto& run = open[static_cast<std::size_t>(q)];
    if (run.op_indices.size() >= 1) {
      out.push_back(run);
    }
    run.op_indices.clear();
  };
  for (int i = 0; i < static_cast<int>(circuit.size()); ++i) {
    const ir::Operation& op = circuit.ops()[static_cast<std::size_t>(i)];
    if (op.is_unitary() && op.num_qubits() == 1) {
      open[static_cast<std::size_t>(op.qubit(0))].op_indices.push_back(i);
      continue;
    }
    if (op.kind() == ir::GateKind::kBarrier) {
      for (int q = 0; q < circuit.num_qubits(); ++q) {
        close(q);
      }
      continue;
    }
    for (const int q : op.qubits()) {
      close(q);
    }
  }
  for (int q = 0; q < circuit.num_qubits(); ++q) {
    close(q);
  }
  std::sort(out.begin(), out.end(),
            [](const OneQubitRun& a, const OneQubitRun& b) {
              return a.op_indices.front() < b.op_indices.front();
            });
  return out;
}

la::Mat2 run_matrix(const ir::Circuit& circuit, const OneQubitRun& run) {
  la::Mat2 m = la::Mat2::identity();
  for (const int idx : run.op_indices) {
    const ir::Operation& op = circuit.ops()[static_cast<std::size_t>(idx)];
    m = ir::gate_matrix_1q(op.kind(), op.params()) * m;
  }
  return m;
}

std::vector<TwoQubitBlock> collect_2q_blocks(const ir::Circuit& circuit) {
  std::vector<TwoQubitBlock> out;
  // Active block per qubit (index into `blocks` arena), -1 if none.
  std::vector<TwoQubitBlock> arena;
  std::vector<int> active(static_cast<std::size_t>(circuit.num_qubits()), -1);
  // Buffered leading 1q gates per qubit.
  std::vector<std::vector<int>> buffer(
      static_cast<std::size_t>(circuit.num_qubits()));

  const auto close_block = [&](int block_id) {
    if (block_id < 0) {
      return;
    }
    TwoQubitBlock& blk = arena[static_cast<std::size_t>(block_id)];
    if (blk.two_qubit_count >= 1) {
      out.push_back(blk);
    }
    active[static_cast<std::size_t>(blk.qubit_a)] = -1;
    active[static_cast<std::size_t>(blk.qubit_b)] = -1;
  };

  for (int i = 0; i < static_cast<int>(circuit.size()); ++i) {
    const ir::Operation& op = circuit.ops()[static_cast<std::size_t>(i)];
    if (op.kind() == ir::GateKind::kBarrier) {
      for (int q = 0; q < circuit.num_qubits(); ++q) {
        close_block(active[static_cast<std::size_t>(q)]);
        buffer[static_cast<std::size_t>(q)].clear();
      }
      continue;
    }
    if (op.is_unitary() && op.num_qubits() == 1) {
      const int q = op.qubit(0);
      const int blk = active[static_cast<std::size_t>(q)];
      if (blk >= 0) {
        arena[static_cast<std::size_t>(blk)].op_indices.push_back(i);
      } else {
        buffer[static_cast<std::size_t>(q)].push_back(i);
      }
      continue;
    }
    if (op.is_unitary() && op.num_qubits() == 2) {
      int a = op.qubit(0);
      int b = op.qubit(1);
      if (a > b) {
        std::swap(a, b);
      }
      const int blk_a = active[static_cast<std::size_t>(a)];
      const int blk_b = active[static_cast<std::size_t>(b)];
      if (blk_a >= 0 && blk_a == blk_b) {
        TwoQubitBlock& blk = arena[static_cast<std::size_t>(blk_a)];
        blk.op_indices.push_back(i);
        blk.two_qubit_count += 1;
        continue;
      }
      close_block(blk_a);
      if (blk_b != blk_a) {
        close_block(blk_b);
      }
      TwoQubitBlock blk;
      blk.qubit_a = a;
      blk.qubit_b = b;
      // Absorb buffered leading 1q gates (they precede `i`).
      auto& ba = buffer[static_cast<std::size_t>(a)];
      auto& bb = buffer[static_cast<std::size_t>(b)];
      blk.op_indices.reserve(ba.size() + bb.size() + 1);
      std::merge(ba.begin(), ba.end(), bb.begin(), bb.end(),
                 std::back_inserter(blk.op_indices));
      ba.clear();
      bb.clear();
      blk.op_indices.push_back(i);
      blk.two_qubit_count = 1;
      arena.push_back(std::move(blk));
      const int id = static_cast<int>(arena.size()) - 1;
      active[static_cast<std::size_t>(a)] = id;
      active[static_cast<std::size_t>(b)] = id;
      continue;
    }
    // Non-unitary or 3+ qubit op: closes blocks and buffers on its qubits.
    for (const int q : op.qubits()) {
      close_block(active[static_cast<std::size_t>(q)]);
      buffer[static_cast<std::size_t>(q)].clear();
    }
  }
  for (int q = 0; q < circuit.num_qubits(); ++q) {
    close_block(active[static_cast<std::size_t>(q)]);
  }
  std::sort(out.begin(), out.end(),
            [](const TwoQubitBlock& a, const TwoQubitBlock& b) {
              return a.op_indices.front() < b.op_indices.front();
            });
  return out;
}

std::vector<CliffordBlock> collect_clifford_blocks(const ir::Circuit& circuit,
                                                   int max_qubits) {
  std::vector<CliffordBlock> out;
  CliffordBlock current;
  std::set<int> support;

  const auto close = [&]() {
    if (current.two_qubit_count >= 1 && current.op_indices.size() >= 2) {
      current.qubits.assign(support.begin(), support.end());
      out.push_back(current);
    }
    current = CliffordBlock{};
    support.clear();
  };

  for (int i = 0; i < static_cast<int>(circuit.size()); ++i) {
    const ir::Operation& op = circuit.ops()[static_cast<std::size_t>(i)];
    const bool touches = std::any_of(
        op.qubits().begin(), op.qubits().end(),
        [&](int q) { return support.contains(q); });
    const bool is_barrier = op.kind() == ir::GateKind::kBarrier;
    const bool clifford = !is_barrier &&
                          clifford::as_clifford_ops(op).has_value();
    if (clifford) {
      std::set<int> grown = support;
      for (const int q : op.qubits()) {
        grown.insert(q);
      }
      if (static_cast<int>(grown.size()) <= max_qubits) {
        support = std::move(grown);
        current.op_indices.push_back(i);
        if (op.num_qubits() >= 2) {
          current.two_qubit_count += 1;
        }
        continue;
      }
      // Would exceed the support cap.
      if (touches) {
        close();
        // Start fresh with this op.
        for (const int q : op.qubits()) {
          support.insert(q);
        }
        current.op_indices.push_back(i);
        if (op.num_qubits() >= 2) {
          current.two_qubit_count += 1;
        }
      }
      // Disjoint over-cap op: leave it outside any block.
      continue;
    }
    if (is_barrier || touches) {
      close();
    }
  }
  close();
  return out;
}

}  // namespace qrc::passes
