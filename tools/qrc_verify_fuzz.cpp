// qrc_verify_fuzz — verification fuzz harness.
//
// Sweeps the 22-family benchmark suite through the full deterministic pass
// pipeline (synthesis, SABRE layout + routing, re-synthesis, the
// optimization passes including RemoveDiagonalGatesBeforeMeasure) on every
// library device the instance fits, and checks every compiled circuit
// against its input with the tiered EquivalenceChecker. Then it seeds
// single-gate mutations into the compiled circuits and asserts the checker
// flags them. Exit code 0 iff every genuine compilation verified
// equivalent and the mutation catch rate reached the target.
//
// Knobs (environment):
//   QRC_FUZZ_MIN_QUBITS   smallest instance (default 2)
//   QRC_FUZZ_MAX_QUBITS   largest instance (default 8; the CI long sweep
//                         runs 12)
//   QRC_FUZZ_MUTATIONS    seeded mutations per instance (default 2)
//   QRC_FUZZ_SEED         base seed (default 1)

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "bench_suite/benchmarks.hpp"
#include "core/predictor.hpp"
#include "device/library.hpp"
#include "verify/equivalence.hpp"
#include "verify/mutate.hpp"
#include "verify_fuzz_common.hpp"

namespace {

using namespace qrc;
using verify_fuzz::measurement_equivalent_oracle;
using verify_fuzz::run_full_pipeline;

int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

}  // namespace

int main() {
  const int min_qubits = env_int("QRC_FUZZ_MIN_QUBITS", 2);
  const int max_qubits = env_int("QRC_FUZZ_MAX_QUBITS", 8);
  const int mutations_per_instance = env_int("QRC_FUZZ_MUTATIONS", 2);
  const auto seed = static_cast<std::uint64_t>(env_int("QRC_FUZZ_SEED", 1));

  const verify::EquivalenceChecker checker;
  std::map<std::string, int> tier_histogram;
  int instances = 0;
  int equivalent = 0;
  int refuted = 0;
  int unknown = 0;
  int mutants = 0;
  int mutants_refuted = 0;      ///< flagged not_equivalent (witnessed)
  int mutants_uncertified = 0;  ///< kUnknown: refused, so never trusted
  int mutants_skipped = 0;

  std::printf("# fuzz sweep: %d families x %d..%d qubits x %d devices\n",
              bench::kNumFamilies, min_qubits, max_qubits,
              device::kNumDevices);
  for (const auto family : bench::all_families()) {
    for (int n = min_qubits; n <= max_qubits; ++n) {
      const ir::Circuit circuit = bench::make_benchmark(family, n, seed);
      for (const device::Device* dev : device::all_devices()) {
        if (n > dev->num_qubits()) {
          continue;
        }
        const auto result = run_full_pipeline(circuit, *dev, seed);
        const auto verdict = core::verify_compilation(circuit, result);
        ++instances;
        ++tier_histogram[std::string(verify::method_name(verdict.method))];
        switch (verdict.verdict) {
          case verify::Verdict::kEquivalent:
            ++equivalent;
            break;
          case verify::Verdict::kNotEquivalent:
            ++refuted;
            std::printf("REFUTED %s on %s: %s\n", circuit.name().c_str(),
                        dev->name().c_str(), verdict.detail.c_str());
            break;
          case verify::Verdict::kUnknown:
            ++unknown;
            std::printf("UNDECIDED %s on %s: %s\n", circuit.name().c_str(),
                        dev->name().c_str(), verdict.detail.c_str());
            break;
        }

        // Seeded fault injection: the checker must flag the mutants.
        for (int m = 0; m < mutations_per_instance; ++m) {
          const auto mutation = verify::mutate_single_gate(
              result.circuit,
              seed + 977u * static_cast<std::uint64_t>(m) +
                  static_cast<std::uint64_t>(instances));
          if (!mutation.has_value()) {
            continue;
          }
          // Oracle: a mutation may (rarely) compose to something the
          // measurements cannot distinguish; only count genuine faults
          // against the checker.
          if (measurement_equivalent_oracle(mutation->circuit,
                                            result.circuit)) {
            ++mutants_skipped;
            continue;
          }
          core::CompilationResult mutated = result;
          mutated.circuit = mutation->circuit;
          const auto mverdict = core::verify_compilation(circuit, mutated);
          ++mutants;
          // A gate blocks anything it cannot certify: kNotEquivalent is a
          // witnessed refutation, kUnknown (e.g. the mutation broke the
          // deferred-measurement structure) still means "not trusted".
          // Only a mutant *certified equivalent* slipped through.
          if (mverdict.verdict == verify::Verdict::kNotEquivalent) {
            ++mutants_refuted;
          } else if (mverdict.verdict == verify::Verdict::kUnknown) {
            ++mutants_uncertified;
          } else {
            std::printf("MISSED %s on %s (%s): certified equivalent via "
                        "%s (confidence %.6f)\n",
                        circuit.name().c_str(), dev->name().c_str(),
                        mutation->description.c_str(),
                        verify::method_name(mverdict.method).data(),
                        mverdict.confidence);
          }
        }
      }
    }
    std::printf("# %-14s done (%d instances so far)\n",
                bench::family_name(family).data(), instances);
    std::fflush(stdout);
  }

  const int mutants_caught = mutants_refuted + mutants_uncertified;
  const double catch_rate =
      mutants > 0 ? static_cast<double>(mutants_caught) /
                        static_cast<double>(mutants)
                  : 1.0;
  std::printf("\n# %d instances: %d equivalent, %d refuted, %d undecided\n",
              instances, equivalent, refuted, unknown);
  std::printf("# tier dispatch:");
  for (const auto& [method, count] : tier_histogram) {
    std::printf(" %s:%d", method.c_str(), count);
  }
  std::printf("\n# mutants: %d seeded (%d skipped as coincidentally "
              "equivalent), %d blocked (%.1f%%: %d refuted + %d "
              "uncertified)\n",
              mutants, mutants_skipped, mutants_caught, 100.0 * catch_rate,
              mutants_refuted, mutants_uncertified);

  const bool ok = refuted == 0 && unknown == 0 && catch_rate >= 0.95;
  std::printf("# %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
