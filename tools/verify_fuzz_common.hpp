/// \file verify_fuzz_common.hpp
/// \brief Shared plumbing of the verification fuzz harness, used by both
///        the standalone sweep binary (tools/qrc_verify_fuzz.cpp) and the
///        in-tree CI sweep (tests/test_verify_fuzz.cpp) so the two grids
///        always apply the same pipeline and the same fault oracle.
#pragma once

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/actions.hpp"
#include "core/predictor.hpp"
#include "device/library.hpp"
#include "ir/sim.hpp"

namespace qrc::verify_fuzz {

/// The canned full pipeline: the deterministic sequence the Predictor's
/// fallback uses (synthesis, SABRE layout + routing, re-synthesis, 1q
/// optimization) plus the optimization tail — including the
/// measurement-sensitive RemoveDiagonalGatesBeforeMeasure, which
/// exercises the checker's distribution-level tolerance.
inline core::CompilationResult run_full_pipeline(const ir::Circuit& circuit,
                                                 const device::Device& dev,
                                                 std::uint64_t seed) {
  const auto& registry = core::ActionRegistry::instance();
  core::CompilationState state;
  state.circuit = circuit;
  const auto apply = [&](const std::string& name) {
    const int id = registry.index_of(name);
    if (registry.at(id).valid(state)) {
      registry.at(id).apply(state, seed);
    }
  };
  apply("platform_" + std::string(device::platform_name(dev.platform())));
  apply("device_" + dev.name());
  apply("BasisTranslator");
  apply("SabreLayout");
  apply("SabreSwap");
  apply("BasisTranslator");
  apply("Optimize1qGatesDecomposition");
  apply("CommutativeCancellation");
  apply("RemoveDiagonalGatesBeforeMeasure");
  apply("BasisTranslator");
  if (state.state() != core::MdpState::kDone) {
    throw std::runtime_error("pipeline failed to reach Done on " +
                             circuit.name() + " / " + dev.name());
  }
  core::CompilationResult result;
  result.circuit = state.circuit;
  result.device = state.device;
  if (state.initial_layout.has_value()) {
    result.initial_layout = *state.initial_layout;
  }
  result.final_layout = state.final_layout;
  return result;
}

/// Mutation oracle: is `a` equivalent to `b` *up to measurement* (same
/// outcome distributions for shared random inputs)? Mutations that land
/// here are not genuine faults — e.g. deleting a rotation that a later
/// basis change turns into a pre-measurement phase, or a gate that is a
/// no-op on the reachable |0>-ancilla subspace — and a
/// measurement-tolerant checker is right to accept them. Both circuits
/// are first compacted onto b's active qubits; returns false (count the
/// mutant as a genuine fault) if the compacted width is too wide to
/// decide here.
inline bool measurement_equivalent_oracle(const ir::Circuit& a,
                                          const ir::Circuit& b) {
  const auto active = b.active_qubits();
  const int k = static_cast<int>(active.size());
  if (k > 16) {
    return false;
  }
  std::vector<int> map(static_cast<std::size_t>(
                           std::max(a.num_qubits(), b.num_qubits())),
                       0);
  for (int i = 0; i < k; ++i) {
    map[static_cast<std::size_t>(active[static_cast<std::size_t>(i)])] = i;
  }
  const ir::Circuit ac = a.remapped(map, k);
  const ir::Circuit bc = b.remapped(map, k);
  for (int t = 0; t < 4; ++t) {
    ir::Statevector sa =
        ir::Statevector::random(k, 555u + static_cast<std::uint64_t>(t));
    ir::Statevector sb = sa;
    sa.apply(ac);
    sb.apply(bc);
    for (std::size_t i = 0; i < sa.amplitudes().size(); ++i) {
      if (std::abs(std::abs(sa.amplitudes()[i]) -
                   std::abs(sb.amplitudes()[i])) > 1e-6) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace qrc::verify_fuzz
