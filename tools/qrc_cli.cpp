// qrc — command-line interface to the RL quantum compiler.
//
//   qrc info
//       Lists devices, native gate sets and the action registry.
//   qrc train --reward <fidelity|critical_depth|combination|gate_count|depth>
//             --out <model.txt> [--steps N] [--count N]
//             [--min-qubits N] [--max-qubits N] [--seed N]
//             [--num-envs N] [--workers N]
//       Trains a model on the built-in benchmark corpus. --num-envs > 1
//       collects rollouts from that many environments in parallel
//       (deterministic for a fixed seed/num-envs pair); --workers caps the
//       stepping threads (default: one per env).
//   qrc compile --model <model.txt> <circuit.qasm> [--out <compiled.qasm>]
//       Compiles an OpenQASM 2.0 circuit with a trained model.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "bench_suite/benchmarks.hpp"
#include "core/actions.hpp"
#include "core/predictor.hpp"
#include "device/library.hpp"
#include "ir/qasm.hpp"

namespace {

using namespace qrc;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  qrc info\n"
               "  qrc train --reward <kind> --out <model.txt> [--steps N]\n"
               "            [--count N] [--min-qubits N] [--max-qubits N]\n"
               "            [--seed N] [--num-envs N] [--workers N]\n"
               "  qrc compile --model <model.txt> <circuit.qasm>\n"
               "              [--out <compiled.qasm>]\n");
  return 2;
}

std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int start,
                                               std::string& positional) {
  std::map<std::string, std::string> flags;
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      if (i + 1 >= argc) {
        throw std::runtime_error("missing value for " + arg);
      }
      flags[arg.substr(2)] = argv[++i];
    } else {
      positional = arg;
    }
  }
  return flags;
}

reward::RewardKind parse_reward(const std::string& name) {
  for (const auto kind :
       {reward::RewardKind::kFidelity, reward::RewardKind::kCriticalDepth,
        reward::RewardKind::kCombination, reward::RewardKind::kGateCount,
        reward::RewardKind::kDepth}) {
    if (reward::reward_name(kind) == name) {
      return kind;
    }
  }
  throw std::runtime_error("unknown reward kind '" + name + "'");
}

int cmd_info() {
  std::printf("devices:\n");
  for (const device::Device* dev : device::all_devices()) {
    std::printf("  %-18s %-9s %3d qubits, %3zu couplers, native:",
                dev->name().c_str(),
                device::platform_name(dev->platform()).data(),
                dev->num_qubits(), dev->coupling().edges().size());
    for (const auto kind : device::native_gates(dev->platform())) {
      std::printf(" %s", ir::gate_name(kind).data());
    }
    std::printf("\n");
  }
  std::printf("\nactions (%d):\n", core::ActionRegistry::instance().size());
  const auto& registry = core::ActionRegistry::instance();
  for (int i = 0; i < registry.size(); ++i) {
    std::printf("  [%2d] %-12s %s\n", i,
                core::action_type_name(registry.at(i).type()).data(),
                registry.at(i).name().c_str());
  }
  std::printf("\nbenchmark families (%d):", bench::kNumFamilies);
  for (const auto family : bench::all_families()) {
    std::printf(" %s", bench::family_name(family).data());
  }
  std::printf("\n");
  return 0;
}

int cmd_train(int argc, char** argv) {
  std::string positional;
  const auto flags = parse_flags(argc, argv, 2, positional);
  if (!flags.contains("reward") || !flags.contains("out")) {
    return usage();
  }
  const auto get_int = [&](const char* key, int fallback) {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::stoi(it->second);
  };
  core::PredictorConfig config;
  config.reward = parse_reward(flags.at("reward"));
  config.seed = static_cast<std::uint64_t>(get_int("seed", 1));
  config.ppo.total_timesteps = get_int("steps", 100000);
  config.ppo.steps_per_update = 2048;
  config.num_envs = std::max(1, get_int("num-envs", 1));
  config.rollout_workers = std::max(0, get_int("workers", 0));

  const int min_q = get_int("min-qubits", 2);
  const int max_q = get_int("max-qubits", 20);
  const int count = get_int("count", 200);
  std::printf("training '%s' model: %d timesteps on %d circuits "
              "(%d-%d qubits), %d parallel env(s)\n",
              reward::reward_name(config.reward).data(),
              config.ppo.total_timesteps, count, min_q, max_q,
              config.num_envs);
  core::Predictor predictor(config);
  const auto stats =
      predictor.train(bench::benchmark_suite(min_q, max_q, count));
  std::printf("done: %zu updates, final mean episode reward %.3f\n",
              stats.size(), stats.back().mean_episode_reward);

  std::ofstream os(flags.at("out"));
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", flags.at("out").c_str());
    return 1;
  }
  predictor.save(os);
  std::printf("model written to %s\n", flags.at("out").c_str());
  return 0;
}

int cmd_compile(int argc, char** argv) {
  std::string qasm_path;
  const auto flags = parse_flags(argc, argv, 2, qasm_path);
  if (!flags.contains("model") || qasm_path.empty()) {
    return usage();
  }
  std::ifstream model_is(flags.at("model"));
  if (!model_is) {
    std::fprintf(stderr, "cannot read model %s\n",
                 flags.at("model").c_str());
    return 1;
  }
  const auto predictor = core::Predictor::load(model_is);

  std::ifstream qasm_is(qasm_path);
  if (!qasm_is) {
    std::fprintf(stderr, "cannot read %s\n", qasm_path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << qasm_is.rdbuf();
  ir::Circuit circuit = ir::from_qasm(buffer.str());
  circuit.set_name(qasm_path);
  std::printf("input: %s\n", circuit.summary().c_str());

  const auto result = predictor.compile(circuit);
  std::printf("target: %s\n", result.device->name().c_str());
  std::printf("reward (%s): %.4f%s\n",
              reward::reward_name(predictor.config().reward).data(),
              result.reward, result.used_fallback ? " [fallback]" : "");
  std::printf("flow:");
  for (const auto& a : result.action_trace) {
    std::printf(" %s", a.c_str());
  }
  std::printf("\noutput: %s\n", result.circuit.summary().c_str());

  if (flags.contains("out")) {
    std::ofstream os(flags.at("out"));
    os << ir::to_qasm(result.circuit);
    std::printf("compiled circuit written to %s\n",
                flags.at("out").c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  try {
    if (std::strcmp(argv[1], "info") == 0) {
      return cmd_info();
    }
    if (std::strcmp(argv[1], "train") == 0) {
      return cmd_train(argc, argv);
    }
    if (std::strcmp(argv[1], "compile") == 0) {
      return cmd_compile(argc, argv);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
