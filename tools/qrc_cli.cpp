// qrc — command-line interface to the RL quantum compiler.
//
//   qrc info
//       Lists devices, native gate sets and the action registry.
//   qrc train --reward <fidelity|critical_depth|combination|gate_count|depth>
//             --out <model.txt> [--steps N] [--count N]
//             [--min-qubits N] [--max-qubits N] [--seed N]
//             [--num-envs N] [--workers N] [--log-jsonl <curves.jsonl>]
//       Trains a model on the built-in benchmark corpus. --num-envs > 1
//       collects rollouts from that many environments in parallel
//       (deterministic for a fixed seed/num-envs pair); --workers caps the
//       stepping threads (default: one per env). --log-jsonl streams one
//       JSON record per PPO update (losses, entropy, approx KL, clip
//       fraction, episode reward/length, env steps/sec) — observation
//       only, never changes the trained model.
//   qrc compile --model <model.txt> <circuit.qasm> [--out <compiled.qasm>]
//             [--verify] [--search beam:8|mcts:400] [--deadline-ms N]
//             [--trace] [--profile] [--profile-hz N]
//       Compiles an OpenQASM 2.0 circuit with a trained model. --verify
//       runs the QCEC-style equivalence gate on the result. --search
//       compiles by policy-guided lookahead (beam search or MCTS) instead
//       of the greedy rollout — never worse than greedy, often better;
//       --deadline-ms bounds the search wall clock (anytime best-so-far).
//       --trace records per-phase spans (detail timers included) and
//       prints the span tree after the result. --profile samples the
//       compile with the in-process SIGPROF profiler (default 97 Hz,
//       override with --profile-hz) and dumps folded flamegraph stacks
//       plus per-kernel hardware-counter summaries to stderr.
//   qrc verify <a.qasm> <b.qasm> [--stimuli N] [--seed N]
//              [--max-miter-qubits N] [--max-stimuli-qubits N]
//       Checks two circuits for functional equivalence with the tiered
//       checker (Clifford tableau / alternating miter / random stimuli).
//       Exit code: 0 equivalent, 1 not equivalent, 2 usage/operational
//       error, 3 undecided.
//   qrc serve --model <name>=<model.txt> [--model <name2>=<m2.txt> ...]
//             [--default-model <name>] [--max-batch N] [--max-wait-us N]
//             [--cache-entries N] [--max-lane-queue N]
//             [--listen HOST:PORT] [--max-frame-bytes N]
//             [--max-inflight N] [--max-connections N]
//             [--poller auto|epoll|poll]
//             [--metrics-listen HOST:PORT] [--profile-hz N]
//       Long-lived compile server speaking line-delimited JSON over
//       stdin/stdout: {"id","model","qasm","verify","search",
//       "deadline_ms"} in, {"id","model","qasm","reward","device",
//       "used_fallback","cached","latency_us"} out — plus
//       "verdict"/"verify_method"/"verify_confidence" when the request
//       set "verify": true, and "search"/"search_nodes"/
//       "search_improved"/"search_deadline_hit"/"search_reward_delta"
//       when it set "search" (or {"id","error"}). Requests arriving
//       within the batch window are fused into one batched policy rollout
//       per model ("search" requests run the lookahead engine instead);
//       repeat circuits are served from an LRU result cache keyed on
//       model + search config + content. Diagnostics go to stderr,
//       stdout stays pure JSONL.
//       With --listen the same protocol is served over TCP instead: a
//       non-blocking event loop multiplexes many connections, v1
//       envelopes ({"v":1,"op":"compile"|"stats"|"ping",...}) get typed
//       responses and streamed "partial" frames for deadline-bounded
//       searches, and overload is shed with typed "overloaded" errors
//       (--max-lane-queue bounds each model lane, --max-inflight each
//       connection). SIGINT/SIGTERM drain gracefully: stop accepting,
//       answer everything in flight, flush, exit; SIGQUIT dumps the
//       flight recorder (recent sheds/errors/refutations) to stderr.
//       --metrics-listen binds a second HTTP listener answering
//       GET /metrics (Prometheus exposition), /healthz, /readyz,
//       /statusz, /debugz and /profilez?seconds=N&hz=H (on-demand
//       sampling session, folded stacks in the response body).
//       --profile-hz samples the whole serve lifetime instead and dumps
//       the folded stacks to stderr at shutdown.
//
//   Every subcommand honours QRC_LOG=debug|info|warn|error|off and
//   QRC_LOG_JSON=1; train and serve also take --log-level/--log-json.
//   Diagnostics go to stderr, stdout stays machine-readable.
//   qrc client HOST:PORT
//       Connects to a --listen server, pipelines request lines from
//       stdin, and prints every response frame (partials included) to
//       stdout as it arrives. Exits when the server has answered
//       everything and closed the connection.

#include <sys/socket.h>

#include <algorithm>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_suite/benchmarks.hpp"
#include "core/actions.hpp"
#include "core/predictor.hpp"
#include "device/library.hpp"
#include "ir/qasm.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "obs/build_info.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "obs/training_logger.hpp"
#include "rl/mlp.hpp"
#include "search/search.hpp"
#include "service/compile_service.hpp"
#include "service/jsonl.hpp"

namespace {

using namespace qrc;

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  qrc info\n"
      "  qrc train --reward <kind> --out <model.txt> [--steps N]\n"
      "            [--count N] [--min-qubits N] [--max-qubits N]\n"
      "            [--seed N] [--num-envs N] [--workers N]\n"
      "            [--log-jsonl <curves.jsonl>] [--log-level L] [--log-json]\n"
      "  qrc compile --model <model.txt> <circuit.qasm>\n"
      "              [--out <compiled.qasm>] [--verify]\n"
      "              [--search beam:8|mcts:400] [--deadline-ms N]\n"
      "              [--trace] [--profile] [--profile-hz N]\n"
      "  qrc verify <a.qasm> <b.qasm> [--stimuli N] [--seed N]\n"
      "             [--max-miter-qubits N] [--max-stimuli-qubits N]\n"
      "  qrc serve --model <name>=<model.txt> [--model <n2>=<m2.txt> ...]\n"
      "            [--default-model <name>] [--max-batch N]\n"
      "            [--max-wait-us N] [--cache-entries N]\n"
      "            [--max-lane-queue N] [--listen HOST:PORT]\n"
      "            [--max-frame-bytes N] [--max-inflight N]\n"
      "            [--max-connections N] [--poller auto|epoll|poll]\n"
      "            [--metrics-listen HOST:PORT] [--profile-hz N]\n"
      "            [--log-level L] [--log-json]\n"
      "  qrc client HOST:PORT\n"
      "\n"
      "logging: --log-level debug|info|warn|error|off (default info);\n"
      "         --log-json switches stderr lines to JSON. QRC_LOG and\n"
      "         QRC_LOG_JSON=1 set the same knobs for every subcommand.\n");
  return 2;
}

/// Parsed command line: every `--flag value` pair (repeats kept in order)
/// plus the bare positional arguments.
struct ParsedArgs {
  std::map<std::string, std::vector<std::string>> flags;
  std::vector<std::string> positionals;

  /// The value of a non-repeatable flag; throws if given more than once.
  [[nodiscard]] const std::string* single(const std::string& key) const {
    const auto it = flags.find(key);
    if (it == flags.end()) {
      return nullptr;
    }
    if (it->second.size() > 1) {
      throw std::runtime_error("--" + key + " given " +
                               std::to_string(it->second.size()) +
                               " times; expected at most once");
    }
    return &it->second.front();
  }

  [[nodiscard]] int get_int(const char* key, int fallback) const {
    const std::string* v = single(key);
    if (v == nullptr) {
      return fallback;
    }
    try {
      std::size_t end = 0;
      const int parsed = std::stoi(*v, &end);
      if (end != v->size()) {
        throw std::invalid_argument(*v);
      }
      return parsed;
    } catch (const std::exception&) {
      throw std::runtime_error("--" + std::string(key) +
                               " expects an integer, got '" + *v + "'");
    }
  }
};

/// Parses `--flag value` pairs, valueless boolean switches and
/// positionals; flags outside `allowed`/`switches` are hard errors (a typo
/// must not silently fall back to a default).
ParsedArgs parse_args(int argc, char** argv, int start,
                      std::initializer_list<const char*> allowed,
                      std::initializer_list<const char*> switches = {}) {
  ParsedArgs out;
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::string key = arg.substr(2);
      if (std::find_if(switches.begin(), switches.end(),
                       [&](const char* a) { return key == a; }) !=
          switches.end()) {
        out.flags[key].emplace_back("true");
        continue;
      }
      if (std::find_if(allowed.begin(), allowed.end(),
                       [&](const char* a) { return key == a; }) ==
          allowed.end()) {
        throw std::runtime_error("unknown flag " + arg + " for '" +
                                 std::string(argv[1]) + "'");
      }
      if (i + 1 >= argc) {
        throw std::runtime_error("missing value for " + arg);
      }
      out.flags[key].emplace_back(argv[++i]);
    } else {
      out.positionals.push_back(arg);
    }
  }
  return out;
}

/// Enforces the exact positional-argument count; extra positionals are a
/// hard error (they used to silently overwrite each other).
void expect_positionals(const ParsedArgs& args, std::size_t count,
                        const char* what) {
  if (args.positionals.size() > count) {
    throw std::runtime_error("unexpected extra argument '" +
                             args.positionals[count] + "' (" + what + ")");
  }
  if (args.positionals.size() < count) {
    throw std::runtime_error(std::string("missing argument: ") + what);
  }
}

/// Applies the shared logging knobs (--log-level, --log-json) on top of
/// whatever QRC_LOG / QRC_LOG_JSON already configured in main().
void apply_log_flags(const ParsedArgs& args) {
  if (const std::string* level = args.single("log-level")) {
    const auto parsed = obs::parse_log_level(*level);
    if (!parsed.has_value()) {
      throw std::runtime_error(
          "--log-level expects debug|info|warn|error|off, got '" + *level +
          "'");
    }
    obs::Logger::instance().set_level(*parsed);
  }
  if (args.single("log-json") != nullptr) {
    obs::Logger::instance().set_json(true);
  }
}

reward::RewardKind parse_reward(const std::string& name) {
  for (const auto kind :
       {reward::RewardKind::kFidelity, reward::RewardKind::kCriticalDepth,
        reward::RewardKind::kCombination, reward::RewardKind::kGateCount,
        reward::RewardKind::kDepth}) {
    if (reward::reward_name(kind) == name) {
      return kind;
    }
  }
  throw std::runtime_error("unknown reward kind '" + name + "'");
}

int cmd_info(int argc, char** argv) {
  const auto args = parse_args(argc, argv, 2, {});
  expect_positionals(args, 0, "info takes no arguments");
  std::printf("devices:\n");
  for (const device::Device* dev : device::all_devices()) {
    std::printf("  %-18s %-9s %3d qubits, %3zu couplers, native:",
                dev->name().c_str(),
                device::platform_name(dev->platform()).data(),
                dev->num_qubits(), dev->coupling().edges().size());
    for (const auto kind : device::native_gates(dev->platform())) {
      std::printf(" %s", ir::gate_name(kind).data());
    }
    std::printf("\n");
  }
  std::printf("\nactions (%d):\n", core::ActionRegistry::instance().size());
  const auto& registry = core::ActionRegistry::instance();
  for (int i = 0; i < registry.size(); ++i) {
    std::printf("  [%2d] %-12s %s\n", i,
                core::action_type_name(registry.at(i).type()).data(),
                registry.at(i).name().c_str());
  }
  std::printf("\nbenchmark families (%d):", bench::kNumFamilies);
  for (const auto family : bench::all_families()) {
    std::printf(" %s", bench::family_name(family).data());
  }
  std::printf("\n");
  return 0;
}

int cmd_train(int argc, char** argv) {
  const auto args = parse_args(
      argc, argv, 2,
      {"reward", "out", "steps", "count", "min-qubits", "max-qubits",
       "seed", "num-envs", "workers", "log-jsonl", "log-level"},
      {"log-json"});
  expect_positionals(args, 0, "train takes only flags");
  apply_log_flags(args);
  const std::string* reward_flag = args.single("reward");
  const std::string* out_flag = args.single("out");
  if (reward_flag == nullptr || out_flag == nullptr) {
    return usage();
  }
  core::PredictorConfig config;
  config.reward = parse_reward(*reward_flag);
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  config.ppo.total_timesteps = args.get_int("steps", 100000);
  config.ppo.steps_per_update = 2048;
  config.num_envs = std::max(1, args.get_int("num-envs", 1));
  config.rollout_workers = std::max(0, args.get_int("workers", 0));

  const int min_q = args.get_int("min-qubits", 2);
  const int max_q = args.get_int("max-qubits", 20);
  const int count = args.get_int("count", 200);
  std::printf("training '%s' model: %d timesteps on %d circuits "
              "(%d-%d qubits), %d parallel env(s)\n",
              reward::reward_name(config.reward).data(),
              config.ppo.total_timesteps, count, min_q, max_q,
              config.num_envs);
  core::Predictor predictor(config);

  // --log-jsonl PATH streams one JSON object per PPO update to disk; the
  // local registry mirrors the same numbers as qrc_train_* families so a
  // final scrape (or a test) can inspect them. Both are observation-only.
  std::optional<obs::TrainingLogger> jsonl;
  if (const std::string* jsonl_flag = args.single("log-jsonl")) {
    jsonl.emplace(*jsonl_flag);
    if (!jsonl->ok()) {
      std::fprintf(stderr, "cannot write %s\n", jsonl_flag->c_str());
      return 1;
    }
  }
  obs::MetricsRegistry train_registry;
  const auto progress = [&](const rl::PpoUpdateStats& u) {
    if (!jsonl.has_value()) {
      return;
    }
    jsonl->write(
        {{"update", static_cast<double>(u.update_index)},
         {"timesteps", static_cast<double>(u.timesteps)},
         {"episodes", static_cast<double>(u.episodes)},
         {"mean_episode_reward", u.mean_episode_reward},
         {"mean_episode_length", u.mean_episode_length},
         {"policy_loss", u.policy_loss},
         {"value_loss", u.value_loss},
         {"entropy", u.entropy},
         {"approx_kl", u.approx_kl},
         {"clip_fraction", u.clip_fraction},
         {"env_steps_per_sec", u.env_steps_per_sec},
         {"update_duration_us", static_cast<double>(u.update_duration_us)}});
  };
  const auto stats = predictor.train(
      bench::benchmark_suite(min_q, max_q, count), progress, &train_registry);
  std::printf("done: %zu updates, final mean episode reward %.3f\n",
              stats.size(), stats.back().mean_episode_reward);
  if (jsonl.has_value()) {
    std::printf("training curves: %zu update record(s) written to %s\n",
                jsonl->records(), jsonl->path().c_str());
  }

  std::ofstream os(*out_flag);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", out_flag->c_str());
    return 1;
  }
  predictor.save(os);
  std::printf("model written to %s\n", out_flag->c_str());
  return 0;
}

ir::Circuit read_qasm_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("cannot read " + path);
  }
  std::stringstream buffer;
  buffer << is.rdbuf();
  ir::Circuit circuit = ir::from_qasm(buffer.str());
  circuit.set_name(path);
  return circuit;
}

int cmd_compile(int argc, char** argv) {
  const auto args = parse_args(
      argc, argv, 2, {"model", "out", "search", "deadline-ms", "profile-hz"},
      {"verify", "trace", "profile"});
  const std::string* model_flag = args.single("model");
  if (model_flag == nullptr || args.positionals.empty()) {
    return usage();
  }
  expect_positionals(args, 1, "compile takes exactly one circuit.qasm");
  std::ifstream model_is(*model_flag);
  if (!model_is) {
    std::fprintf(stderr, "cannot read model %s\n", model_flag->c_str());
    return 1;
  }
  const auto predictor = core::Predictor::load(model_is);

  const ir::Circuit circuit = read_qasm_file(args.positionals.front());
  std::printf("input: %s\n", circuit.summary().c_str());

  const bool verify = args.single("verify") != nullptr;
  std::optional<search::SearchOptions> search_options;
  if (const std::string* spec = args.single("search")) {
    search_options = search::parse_spec(*spec);
    const int deadline = args.get_int("deadline-ms", 0);
    if (deadline < 0) {
      throw std::runtime_error("--deadline-ms must be >= 0");
    }
    search_options->deadline_ms = deadline;
  } else if (args.single("deadline-ms") != nullptr) {
    throw std::runtime_error("--deadline-ms requires --search");
  }

  // --trace: make a CLI-local context ambient for the compile (the
  // predictor's AmbientSpans and the hot-path DetailTimers record into
  // it), then print the span tree after the result.
  const bool trace = args.single("trace") != nullptr;
  std::optional<obs::TraceContext> trace_ctx;
  int root_span = obs::TraceContext::kNoParent;
  if (trace) {
    obs::set_detail_enabled(true);
    trace_ctx.emplace("cli");
    root_span = trace_ctx->begin_span("compile");
    trace_ctx->set_ambient_parent(root_span);
  }

  // --profile: sample the whole compile with the in-process SIGPROF
  // profiler and dump the folded stacks to stderr afterwards (stdout
  // stays the human-readable report). Hardware counters are armed too,
  // so the seams accumulate cycles/instructions while the compile runs.
  const bool profile = args.single("profile") != nullptr ||
                       args.single("profile-hz") != nullptr;
  const int profile_hz = args.get_int("profile-hz", 97);
  if (profile) {
    if (profile_hz < obs::Profiler::kMinHz ||
        profile_hz > obs::Profiler::kMaxHz) {
      throw std::runtime_error("--profile-hz must be in [1, 1000]");
    }
    obs::Profiler::enroll_current_thread();
    obs::set_perf_enabled(true);
    if (!obs::Profiler::start(profile_hz)) {
      std::fprintf(stderr, "profiler: could not start (busy?)\n");
    }
  }

  const verify::VerifyOptions verify_options;
  const auto result = [&] {
    std::optional<obs::CurrentTraceScope> scope;
    if (trace_ctx.has_value()) {
      scope.emplace(&*trace_ctx);
    }
    return search_options.has_value()
               ? predictor.compile_search(circuit, *search_options,
                                          verify ? &verify_options : nullptr)
               : (verify ? predictor.compile_verified(circuit)
                         : predictor.compile(circuit));
  }();
  if (trace_ctx.has_value()) {
    trace_ctx->end_span(root_span);
  }
  if (profile && obs::Profiler::active()) {
    obs::Profiler::stop();
    const auto pstats = obs::Profiler::stats();
    std::fprintf(stderr,
                 "# profile: %llu samples at %d Hz (%llu dropped, %llu "
                 "pc-only) — folded stacks follow\n",
                 static_cast<unsigned long long>(pstats.retained), profile_hz,
                 static_cast<unsigned long long>(pstats.dropped),
                 static_cast<unsigned long long>(pstats.pc_only));
    std::fputs(obs::Profiler::render_folded().c_str(), stderr);
    if (obs::perf_available()) {
      for (int k = 0; k < static_cast<int>(obs::PerfKernel::kCount); ++k) {
        const auto kernel = static_cast<obs::PerfKernel>(k);
        const auto totals = obs::perf_kernel_totals(kernel);
        if (totals.scopes == 0 || totals.cycles == 0) {
          continue;
        }
        std::fprintf(
            stderr,
            "# perf %-16s %llu scopes, %.2f ipc, %.4f cache miss rate, "
            "%.4f branch miss rate\n",
            obs::perf_kernel_name(kernel).data(),
            static_cast<unsigned long long>(totals.scopes),
            static_cast<double>(totals.instructions) /
                static_cast<double>(totals.cycles),
            totals.cache_refs > 0
                ? static_cast<double>(totals.cache_misses) /
                      static_cast<double>(totals.cache_refs)
                : 0.0,
            totals.branches > 0
                ? static_cast<double>(totals.branch_misses) /
                      static_cast<double>(totals.branches)
                : 0.0);
      }
    } else {
      std::fprintf(stderr,
                   "# perf counters unavailable (perf_event_open denied)\n");
    }
  }
  std::printf("target: %s\n", result.device->name().c_str());
  std::printf("reward (%s): %.4f%s\n",
              reward::reward_name(predictor.config().reward).data(),
              result.reward, result.used_fallback ? " [fallback]" : "");
  std::printf("flow:");
  for (const auto& a : result.action_trace) {
    std::printf(" %s", a.c_str());
  }
  std::printf("\noutput: %s\n", result.circuit.summary().c_str());
  if (result.search_stats.has_value()) {
    const auto& s = *result.search_stats;
    std::printf(
        "search: %s — %llu nodes, %llu transposition hits, depth %d, "
        "%.1f ms%s\n",
        search::strategy_name(s.strategy).data(),
        static_cast<unsigned long long>(s.nodes_expanded),
        static_cast<unsigned long long>(s.transposition_hits),
        s.depth_reached, static_cast<double>(s.elapsed_us) / 1000.0,
        s.deadline_hit ? " [deadline hit]" : "");
    std::printf("search: reward %+.4f vs greedy %.4f (%s)\n",
                result.reward - s.baseline_reward, s.baseline_reward,
                s.improved ? "improved" : "kept greedy result");
  }
  if (result.verification.has_value()) {
    const auto& v = *result.verification;
    std::printf("verification: %s via %s (confidence %.6f, %d qubits) — %s\n",
                verify::verdict_name(v.verdict).data(),
                verify::method_name(v.method).data(), v.confidence,
                v.checked_qubits, v.detail.c_str());
    if (v.verdict != verify::Verdict::kEquivalent) {
      return v.verdict == verify::Verdict::kNotEquivalent ? 1 : 3;
    }
  }

  if (trace_ctx.has_value()) {
    std::printf("trace:\n%s", trace_ctx->to_text().c_str());
  }

  if (const std::string* out_flag = args.single("out")) {
    std::ofstream os(*out_flag);
    os << ir::to_qasm(result.circuit);
    std::printf("compiled circuit written to %s\n", out_flag->c_str());
  }
  return 0;
}

int cmd_verify(int argc, char** argv) try {
  const auto args = parse_args(argc, argv, 2,
                               {"stimuli", "seed", "max-miter-qubits",
                                "max-stimuli-qubits"});
  if (args.positionals.size() < 2) {
    std::fprintf(stderr, "verify takes two circuit files\n");
    return usage();
  }
  expect_positionals(args, 2, "verify takes exactly two circuit files");

  verify::VerifyOptions options;
  options.num_stimuli = args.get_int("stimuli", options.num_stimuli);
  options.seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<int>(options.seed & 0x7fffffff)));
  options.max_miter_qubits =
      args.get_int("max-miter-qubits", options.max_miter_qubits);
  options.max_stimuli_qubits =
      args.get_int("max-stimuli-qubits", options.max_stimuli_qubits);

  const ir::Circuit a = read_qasm_file(args.positionals[0]);
  const ir::Circuit b = read_qasm_file(args.positionals[1]);
  std::printf("a: %s\nb: %s\n", a.summary().c_str(), b.summary().c_str());

  const verify::EquivalenceChecker checker(options);
  const auto result = checker.check(a, b);
  std::printf("verdict: %s\nmethod: %s\nconfidence: %.6f\nqubits: %d\n"
              "detail: %s\n",
              verify::verdict_name(result.verdict).data(),
              verify::method_name(result.method).data(), result.confidence,
              result.checked_qubits, result.detail.c_str());
  switch (result.verdict) {
    case verify::Verdict::kEquivalent:
      return 0;
    case verify::Verdict::kNotEquivalent:
      return 1;
    case verify::Verdict::kUnknown:
      return 3;
  }
  return 3;
} catch (const std::exception& e) {
  // Operational failures (unreadable file, malformed QASM, bad flags) must
  // be distinguishable from a refutation (exit 1): use the usage code.
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}

/// One in-flight serve request: the id (kept for error reporting) and the
/// service future. Responses are written back in submission order.
struct Inflight {
  std::string id;
  std::future<service::ServiceResponse> future;
};

/// Drain target for the SIGINT/SIGTERM handlers while `qrc serve
/// --listen` is up. Written once before the handlers are installed.
net::Server* g_listen_server = nullptr;

extern "C" void handle_drain_signal(int) {
  if (g_listen_server != nullptr) {
    g_listen_server->request_drain();  // async-signal-safe
  }
}

/// Serves the wire protocol over TCP until a drain signal lands.
int serve_listen(service::CompileService& svc, const std::string& spec,
                 const ParsedArgs& args) {
  net::ServerConfig config;
  std::tie(config.host, config.port) = net::parse_host_port(spec);
  config.max_frame_bytes = static_cast<std::size_t>(
      std::max(1, args.get_int("max-frame-bytes",
                               static_cast<int>(config.max_frame_bytes))));
  config.max_inflight_per_conn = static_cast<std::size_t>(
      std::max(1, args.get_int("max-inflight", 32)));
  config.max_connections = static_cast<std::size_t>(
      std::max(1, args.get_int("max-connections", 256)));
  if (const std::string* metrics = args.single("metrics-listen")) {
    std::tie(config.metrics_host, config.metrics_port) =
        net::parse_host_port(*metrics);
  }
  if (const std::string* poller = args.single("poller")) {
    if (*poller == "auto") {
      config.poller = net::PollerKind::kAuto;
    } else if (*poller == "epoll") {
      config.poller = net::PollerKind::kEpoll;
    } else if (*poller == "poll") {
      config.poller = net::PollerKind::kPoll;
    } else {
      throw std::runtime_error("--poller expects auto|epoll|poll, got '" +
                               *poller + "'");
    }
  }

  net::Server server(svc, config);
  server.start();
  g_listen_server = &server;
  std::signal(SIGINT, handle_drain_signal);
  std::signal(SIGTERM, handle_drain_signal);
  obs::install_sigquit_dump(2);  // SIGQUIT dumps the flight recorder
  auto& log = obs::Logger::instance();
  log.logf(obs::LogLevel::kInfo, "serve",
           "listening on %s:%d (SIGINT/SIGTERM drains, SIGQUIT dumps "
           "flight recorder)",
           config.host.c_str(), server.port());
  if (server.metrics_port() >= 0) {
    log.logf(obs::LogLevel::kInfo, "serve",
             "metrics on http://%s:%d/metrics (plus /healthz /readyz "
             "/statusz /debugz)",
             config.metrics_host.c_str(), server.metrics_port());
  }

  server.join();  // exits after a signal-triggered graceful drain
  g_listen_server = nullptr;
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGQUIT, SIG_DFL);

  const auto net_stats = server.stats();
  log.logf(obs::LogLevel::kInfo, "serve",
           "connections: %llu accepted, %llu rejected at cap",
           static_cast<unsigned long long>(net_stats.accepted),
           static_cast<unsigned long long>(net_stats.rejected));
  log.logf(obs::LogLevel::kInfo, "serve",
           "frames: %llu in, %llu out (%llu partial, %llu error, "
           "%llu oversized), %llu shed at the connection cap",
           static_cast<unsigned long long>(net_stats.frames_in),
           static_cast<unsigned long long>(net_stats.frames_out),
           static_cast<unsigned long long>(net_stats.partial_frames),
           static_cast<unsigned long long>(net_stats.error_frames),
           static_cast<unsigned long long>(net_stats.oversized_frames),
           static_cast<unsigned long long>(net_stats.shed_inflight));
  const auto stats = svc.stats();
  log.logf(obs::LogLevel::kInfo, "serve",
           "served %llu request(s) in %llu batch(es), %llu shed at "
           "lane bounds, %llu partial frame(s) streamed",
           static_cast<unsigned long long>(stats.requests),
           static_cast<unsigned long long>(stats.batches),
           static_cast<unsigned long long>(stats.shed),
           static_cast<unsigned long long>(stats.partials));
  return stats.refuted > 0 ? 1 : 0;
}

int cmd_serve(int argc, char** argv) {
  const auto args = parse_args(argc, argv, 2,
                               {"model", "default-model", "max-batch",
                                "max-wait-us", "cache-entries",
                                "max-lane-queue", "listen",
                                "max-frame-bytes", "max-inflight",
                                "max-connections", "poller",
                                "metrics-listen", "profile-hz",
                                "log-level"},
                               {"log-json"});
  expect_positionals(args, 0, "serve takes only flags");
  apply_log_flags(args);

  // --profile-hz N: sample the whole serve lifetime and dump folded
  // stacks to stderr at shutdown. While a startup session is running,
  // GET /profilez and the v1 "profile" op report busy (the interval
  // timer is a process-wide resource). Also arms the per-kernel
  // hardware counters so /metrics carries qrc_profile_* totals.
  struct ServeProfile {
    bool started = false;
    int hz = 0;
    ~ServeProfile() {
      if (!started) {
        return;
      }
      obs::Profiler::stop();
      const auto pstats = obs::Profiler::stats();
      std::fprintf(stderr,
                   "# serve profile: %llu samples at %d Hz (%llu dropped, "
                   "%llu pc-only)\n",
                   static_cast<unsigned long long>(pstats.retained), hz,
                   static_cast<unsigned long long>(pstats.dropped),
                   static_cast<unsigned long long>(pstats.pc_only));
      std::fputs(obs::Profiler::render_folded().c_str(), stderr);
    }
  } serve_profile;
  if (args.single("profile-hz") != nullptr) {
    const int hz = args.get_int("profile-hz", 97);
    if (hz < obs::Profiler::kMinHz || hz > obs::Profiler::kMaxHz) {
      throw std::runtime_error("--profile-hz must be in [1, 1000]");
    }
    obs::Profiler::enroll_current_thread();
    obs::set_perf_enabled(true);
    if (obs::Profiler::start(hz)) {
      serve_profile.started = true;
      serve_profile.hz = hz;
      obs::Logger::instance().logf(obs::LogLevel::kInfo, "serve",
                                   "profiling at %d Hz for the serve "
                                   "lifetime (folded dump at shutdown)",
                                   hz);
    } else {
      std::fprintf(stderr, "profiler: could not start (busy?)\n");
    }
  }
  const auto model_it = args.flags.find("model");
  if (model_it == args.flags.end() || model_it->second.empty()) {
    std::fprintf(stderr,
                 "serve requires at least one --model <name>=<path>\n");
    return usage();
  }

  service::ServiceConfig config;
  config.max_batch = args.get_int("max-batch", 32);
  config.max_wait_us = args.get_int("max-wait-us", 2000);
  config.cache_entries =
      static_cast<std::size_t>(std::max(0, args.get_int("cache-entries", 1024)));
  config.max_lane_queue = static_cast<std::size_t>(
      std::max(0, args.get_int("max-lane-queue", 0)));
  if (const std::string* def = args.single("default-model")) {
    config.default_model = *def;
  }
  service::CompileService svc(config);

  for (const std::string& spec : model_it->second) {
    const auto eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
      throw std::runtime_error("--model expects <name>=<path>, got '" +
                               spec + "'");
    }
    const std::string name = spec.substr(0, eq);
    const std::string path = spec.substr(eq + 1);
    svc.registry().add_from_file(name, path);
    const auto model = svc.registry().at(name);
    obs::Logger::instance().logf(
        obs::LogLevel::kInfo, "serve", "model '%s' <- %s (objective: %s)",
        name.c_str(), path.c_str(),
        reward::reward_name(model->config().reward).data());
  }
  if (!config.default_model.empty() &&
      svc.registry().find(config.default_model) == nullptr) {
    throw std::runtime_error("--default-model '" + config.default_model +
                             "' was not loaded via --model");
  }
  obs::Logger::instance().logf(
      obs::LogLevel::kInfo, "serve",
      "serving %zu model(s): max_batch=%d max_wait_us=%lld "
      "cache_entries=%zu max_lane_queue=%zu",
      svc.registry().size(), config.max_batch,
      static_cast<long long>(config.max_wait_us), config.cache_entries,
      config.max_lane_queue);

  if (const std::string* listen = args.single("listen")) {
    return serve_listen(svc, *listen, args);
  }
  if (args.single("metrics-listen") != nullptr) {
    throw std::runtime_error("--metrics-listen requires --listen");
  }

  // Reader (main thread) parses stdin and submits without waiting, so
  // concurrent requests fuse into batches; the writer thread emits
  // responses strictly in submission order.
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Inflight> inflight;
  bool done_reading = false;

  std::thread writer([&] {
    for (;;) {
      Inflight item;
      {
        std::unique_lock lock(mu);
        cv.wait(lock, [&] { return done_reading || !inflight.empty(); });
        if (inflight.empty()) {
          return;
        }
        item = std::move(inflight.front());
        inflight.pop_front();
      }
      std::string line;
      try {
        line = service::serve_response_line(item.future.get());
      } catch (const std::exception& e) {
        line = service::serve_error_line(item.id, e.what());
      }
      std::fputs(line.c_str(), stdout);
      std::fputc('\n', stdout);
      std::fflush(stdout);
    }
  });

  const auto enqueue = [&](Inflight item) {
    {
      std::lock_guard lock(mu);
      inflight.push_back(std::move(item));
    }
    cv.notify_one();
  };
  const auto enqueue_error = [&](const std::string& id,
                                 const std::string& message) {
    std::promise<service::ServiceResponse> promise;
    promise.set_exception(
        std::make_exception_ptr(std::runtime_error(message)));
    enqueue({id, promise.get_future()});
  };

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;  // blank lines are allowed between requests
    }
    try {
      service::ServeRequest request = service::parse_serve_request(line);
      ir::Circuit circuit = ir::from_qasm(request.qasm);
      enqueue({request.id,
               svc.submit(request.id, request.model, std::move(circuit),
                          request.verify, request.search)});
    } catch (const std::exception& e) {
      // Echo whatever id the line carried so clients can correlate the
      // error even when validation failed.
      enqueue_error(service::extract_request_id(line), e.what());
    }
  }
  {
    std::lock_guard lock(mu);
    done_reading = true;
  }
  cv.notify_all();
  writer.join();

  const auto stats = svc.stats();
  const double hit_rate =
      stats.requests > 0
          ? static_cast<double>(stats.cache_hits) /
                static_cast<double>(stats.requests)
          : 0.0;
  auto& log = obs::Logger::instance();
  log.logf(obs::LogLevel::kInfo, "serve",
           "served %llu request(s) in %llu batch(es), cache hit rate "
           "%.2f, largest batch %d, %llu shed at lane bounds, %llu "
           "partial frame(s)",
           static_cast<unsigned long long>(stats.requests),
           static_cast<unsigned long long>(stats.batches), hit_rate,
           stats.max_batch_size, static_cast<unsigned long long>(stats.shed),
           static_cast<unsigned long long>(stats.partials));
  log.logf(obs::LogLevel::kInfo, "serve",
           "verification: %llu verified, %llu refuted, %llu undecided",
           static_cast<unsigned long long>(stats.verified),
           static_cast<unsigned long long>(stats.refuted),
           static_cast<unsigned long long>(stats.verify_unknown));
  if (stats.beam_requests + stats.mcts_requests > 0) {
    log.logf(obs::LogLevel::kInfo, "serve",
             "search: %llu beam, %llu mcts, %llu improved on greedy, "
             "%llu deadline hit(s)",
             static_cast<unsigned long long>(stats.beam_requests),
             static_cast<unsigned long long>(stats.mcts_requests),
             static_cast<unsigned long long>(stats.search_improved),
             static_cast<unsigned long long>(stats.search_deadline_hits));
  }
  return stats.refuted > 0 ? 1 : 0;
}

int cmd_client(int argc, char** argv) {
  const auto args = parse_args(argc, argv, 2, {});
  if (args.positionals.size() != 1) {
    std::fprintf(stderr, "client takes exactly one HOST:PORT argument\n");
    return usage();
  }
  const auto [host, port] = net::parse_host_port(args.positionals.front());
  const net::Socket sock = net::connect_tcp(host, port);
  obs::Logger::instance().logf(obs::LogLevel::kInfo, "client",
                               "connected to %s:%d", host.c_str(), port);

  // Printer thread: every frame the server sends (results, partials,
  // typed errors) goes straight to stdout in arrival order.
  std::uint64_t frames = 0;
  std::uint64_t partials = 0;
  std::thread printer([&] {
    net::LineReader reader(sock.fd());
    while (const auto line = reader.next_line()) {
      std::fputs(line->c_str(), stdout);
      std::fputc('\n', stdout);
      std::fflush(stdout);
      ++frames;
      if (line->find("\"type\":\"partial\"") != std::string::npos) {
        ++partials;
      }
    }
  });

  // Pipeline stdin without waiting for responses; half-close the socket
  // at EOF so the server answers what is in flight and then hangs up,
  // which is the printer's (and our) exit signal.
  std::string line;
  std::uint64_t sent = 0;
  while (std::getline(std::cin, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    net::send_all(sock.fd(), line + "\n");
    ++sent;
  }
  ::shutdown(sock.fd(), SHUT_WR);
  printer.join();
  obs::Logger::instance().logf(
      obs::LogLevel::kInfo, "client",
      "sent %llu request(s), received %llu frame(s) (%llu partial)",
      static_cast<unsigned long long>(sent),
      static_cast<unsigned long long>(frames),
      static_cast<unsigned long long>(partials));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  // QRC_LOG / QRC_LOG_JSON configure logging before any subcommand runs;
  // --log-level / --log-json (where accepted) override them afterwards.
  obs::Logger::instance().configure_from_env();
  try {
    if (std::strcmp(argv[1], "info") == 0) {
      return cmd_info(argc, argv);
    }
    if (std::strcmp(argv[1], "train") == 0) {
      return cmd_train(argc, argv);
    }
    if (std::strcmp(argv[1], "compile") == 0) {
      return cmd_compile(argc, argv);
    }
    if (std::strcmp(argv[1], "verify") == 0) {
      return cmd_verify(argc, argv);
    }
    if (std::strcmp(argv[1], "serve") == 0) {
      return cmd_serve(argc, argv);
    }
    if (std::strcmp(argv[1], "client") == 0) {
      return cmd_client(argc, argv);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown subcommand '%s'\n", argv[1]);
  return usage();
}
