/// \file qrc_bench_diff.cpp
/// \brief CLI for the bench regression sentinel (src/obs/bench_diff.hpp):
///        loads BENCH_*.json files and a BENCH_history.jsonl, prints a
///        per-metric comparison table and exits non-zero on a gated
///        regression.
///
/// Usage:
///   qrc_bench_diff --history BENCH_history.jsonl BENCH_a.json BENCH_b.json...
///
/// Flags:
///   --history PATH       rolling history file (required; CI appends one
///                        row per bench per run)
///   --min-history N      rows a metric needs before regressions gate
///                        (default 3; below that they are advisory)
///   --window N           newest history rows forming the median baseline
///                        (default 10)
///
/// Exit codes: 0 = pass (including advisory-only and no-baseline),
/// 1 = at least one gated regression, 2 = usage or I/O error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench_diff.hpp"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --history BENCH_history.jsonl [--min-history N] "
               "[--window N] BENCH_*.json...\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string history_path;
  int min_history = 3;
  int window = 10;
  std::vector<std::string> bench_paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--history") {
      const char* v = next();
      if (v == nullptr) {
        return usage(argv[0]);
      }
      history_path = v;
    } else if (arg == "--min-history") {
      const char* v = next();
      if (v == nullptr || std::atoi(v) < 1) {
        return usage(argv[0]);
      }
      min_history = std::atoi(v);
    } else if (arg == "--window") {
      const char* v = next();
      if (v == nullptr || std::atoi(v) < 1) {
        return usage(argv[0]);
      }
      window = std::atoi(v);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return usage(argv[0]);
    } else {
      bench_paths.push_back(arg);
    }
  }
  if (history_path.empty() || bench_paths.empty()) {
    return usage(argv[0]);
  }

  // A missing history file is a young repo, not an error: everything
  // comes out no-baseline and the gate passes (CI's first run).
  std::string history;
  if (!read_file(history_path, history)) {
    std::fprintf(stderr, "note: no history at %s (first run? gate passes)\n",
                 history_path.c_str());
  }

  std::map<std::string, qrc::obs::BenchMetrics> current;
  for (const std::string& path : bench_paths) {
    std::string text;
    if (!read_file(path, text)) {
      std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
      return 2;
    }
    std::string bench_name;
    try {
      qrc::obs::BenchMetrics metrics =
          qrc::obs::extract_bench_metrics(text, bench_name);
      if (bench_name.empty()) {
        std::fprintf(stderr, "note: %s has no \"bench\" field, skipped\n",
                     path.c_str());
        continue;
      }
      current[bench_name] = std::move(metrics);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s: %s\n", path.c_str(), e.what());
      return 2;
    }
  }

  const qrc::obs::DiffReport report =
      qrc::obs::diff_benches(history, current, min_history, window);
  std::fputs(report.render().c_str(), stdout);
  return report.regressed ? 1 : 0;
}
