// Parameterized property-style sweeps (TEST_P) over the invariants that
// hold across the whole pass/router/reward landscape:
//  - every optimization pass preserves the circuit unitary (random sweeps)
//  - every optimization pass is idempotent-or-monotone in gate count
//  - every router yields coupled circuits with valid permutations on every
//    topology family
//  - Euler decompositions round-trip across the angle grid
//  - rewards are bounded and monotone under gate insertion
//  - serialization fuzzing: corrupted models and malformed QASM are
//    rejected, never crash.

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "core/predictor.hpp"
#include "device/library.hpp"
#include "ir/qasm.hpp"
#include "ir/sim.hpp"
#include "la/euler.hpp"
#include "passes/opt/cancellation.hpp"
#include "passes/opt/clifford_opt.hpp"
#include "passes/opt/composite.hpp"
#include "passes/opt/consolidate.hpp"
#include "passes/opt/one_qubit_opt.hpp"
#include "passes/routing/routing.hpp"
#include "reward/reward.hpp"
#include "rl/mlp.hpp"
#include "verify/equivalence.hpp"

namespace {

using qrc::device::CouplingMap;
using qrc::device::Device;
using qrc::device::Platform;
using qrc::ir::Circuit;
using qrc::la::kPi;

Circuit random_circuit(int n, int length, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> ang(-kPi, kPi);
  std::uniform_int_distribution<int> qpick(0, n - 1);
  Circuit c(n, "random");
  for (int i = 0; i < length; ++i) {
    const int q = qpick(rng);
    int q2 = qpick(rng);
    while (q2 == q) {
      q2 = qpick(rng);
    }
    switch (std::uniform_int_distribution<int>(0, 10)(rng)) {
      case 0:
        c.h(q);
        break;
      case 1:
        c.t(q);
        break;
      case 2:
        c.cx(q, q2);
        break;
      case 3:
        c.rz(ang(rng), q);
        break;
      case 4:
        c.cz(q, q2);
        break;
      case 5:
        c.sx(q);
        break;
      case 6:
        c.swap(q, q2);
        break;
      case 7:
        c.s(q);
        break;
      case 8:
        c.rzz(ang(rng), q, q2);
        break;
      case 9:
        c.ry(ang(rng), q);
        break;
      default:
        c.cp(ang(rng), q, q2);
        break;
    }
  }
  return c;
}

// ------------------------------------------------ pass property sweeps ----

/// Factory so each (pass, seed) combination is an independent test case.
enum class PassId {
  kCxCancel,
  kInverseCancel,
  kCommutativeCancel,
  kCommutativeInverse,
  kRemoveRedundancies,
  kOptimize1q,
  kConsolidate,
  kPeephole2q,
  kOptimizeCliffords,
  kCliffordSimp,
  kFullPeephole,
};

std::unique_ptr<qrc::passes::Pass> make_pass(PassId id) {
  using namespace qrc::passes;
  switch (id) {
    case PassId::kCxCancel:
      return std::make_unique<CXCancellation>();
    case PassId::kInverseCancel:
      return std::make_unique<InverseCancellation>();
    case PassId::kCommutativeCancel:
      return std::make_unique<CommutativeCancellation>();
    case PassId::kCommutativeInverse:
      return std::make_unique<CommutativeInverseCancellation>();
    case PassId::kRemoveRedundancies:
      return std::make_unique<RemoveRedundancies>();
    case PassId::kOptimize1q:
      return std::make_unique<Optimize1qGatesDecomposition>();
    case PassId::kConsolidate:
      return std::make_unique<ConsolidateBlocks>();
    case PassId::kPeephole2q:
      return std::make_unique<PeepholeOptimise2Q>();
    case PassId::kOptimizeCliffords:
      return std::make_unique<OptimizeCliffords>();
    case PassId::kCliffordSimp:
      return std::make_unique<CliffordSimp>();
    case PassId::kFullPeephole:
      return std::make_unique<FullPeepholeOptimise>();
  }
  return nullptr;
}

class PassPropertyTest
    : public ::testing::TestWithParam<std::tuple<PassId, int>> {};

TEST_P(PassPropertyTest, PreservesUnitaryAndNeverGrowsTwoQubitCount) {
  // Equivalence is judged by the tiered EquivalenceChecker (exact miter at
  // these widths) on seeded random 5-10 qubit circuits — the same engine
  // the production verification gate uses, replacing the ad-hoc
  // random-state sim check this test used to roll by hand.
  const auto [pass_id, seed] = GetParam();
  const auto pass = make_pass(pass_id);
  const int n = 5 + (seed % 6);  // 5..10 qubits
  Circuit c = random_circuit(n, 8 * n,
                             9000 + static_cast<std::uint64_t>(seed));
  const Circuit original = c;
  const int original_2q = c.two_qubit_gate_count();
  (void)pass->run(c, {});
  const auto verdict = qrc::verify::EquivalenceChecker().check(original, c);
  EXPECT_EQ(verdict.verdict, qrc::verify::Verdict::kEquivalent)
      << pass->name() << ": " << verdict.detail;
  EXPECT_LE(c.two_qubit_gate_count(), original_2q) << pass->name();
}

TEST_P(PassPropertyTest, SecondRunIsFixpoint) {
  const auto [pass_id, seed] = GetParam();
  const auto pass = make_pass(pass_id);
  Circuit c = random_circuit(4, 30, 9500 + static_cast<std::uint64_t>(seed));
  (void)pass->run(c, {});
  const int count_after_first = c.gate_count();
  const int twoq_after_first = c.two_qubit_gate_count();
  (void)pass->run(c, {});
  // Passes iterate internally to a fixpoint, so a second invocation must
  // not find further reductions (strict idempotence of the cost).
  EXPECT_EQ(c.gate_count(), count_after_first) << pass->name();
  EXPECT_EQ(c.two_qubit_gate_count(), twoq_after_first) << pass->name();
}

INSTANTIATE_TEST_SUITE_P(
    AllPassesSweep, PassPropertyTest,
    ::testing::Combine(
        ::testing::Values(PassId::kCxCancel, PassId::kInverseCancel,
                          PassId::kCommutativeCancel,
                          PassId::kCommutativeInverse,
                          PassId::kRemoveRedundancies, PassId::kOptimize1q,
                          PassId::kConsolidate, PassId::kPeephole2q,
                          PassId::kOptimizeCliffords, PassId::kCliffordSimp,
                          PassId::kFullPeephole),
        ::testing::Range(1, 5)));

// -------------------------------------------------- router x topology -----

struct RoutingCase {
  qrc::passes::RoutingKind kind;
  int topology;  // 0 = line, 1 = ring, 2 = grid 2x3, 3 = heavy-hex-ish
};

class RoutingPropertyTest : public ::testing::TestWithParam<
                                std::tuple<qrc::passes::RoutingKind, int,
                                           int>> {};

TEST_P(RoutingPropertyTest, RoutedCircuitCoupledAndEquivalent) {
  const auto [kind, topology, seed] = GetParam();
  CouplingMap cm = CouplingMap::line(2);
  switch (topology) {
    case 0:
      cm = CouplingMap::line(6);
      break;
    case 1:
      cm = CouplingMap::ring(6);
      break;
    default:
      cm = CouplingMap::grid(2, 3);
      break;
  }
  const Device dev("prop_dev", Platform::kIBM, cm, 5);
  Circuit logical = random_circuit(6, 20, 1300 + static_cast<std::uint64_t>(seed));
  const auto outcome = qrc::passes::route(kind, logical, dev,
                                          static_cast<std::uint64_t>(seed));
  EXPECT_TRUE(dev.circuit_respects_topology(outcome.routed));
  // Permutation must be a bijection.
  std::vector<bool> seen(6, false);
  for (const int p : outcome.permutation) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 6);
    EXPECT_FALSE(seen[static_cast<std::size_t>(p)]);
    seen[static_cast<std::size_t>(p)] = true;
  }
  std::vector<int> identity(6);
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_TRUE(qrc::ir::mapped_circuit_equivalent(
      logical, outcome.routed, identity, outcome.permutation, 2,
      static_cast<std::uint64_t>(seed)));
}

INSTANTIATE_TEST_SUITE_P(
    RoutersByTopology, RoutingPropertyTest,
    ::testing::Combine(
        ::testing::Values(qrc::passes::RoutingKind::kBasicSwap,
                          qrc::passes::RoutingKind::kStochasticSwap,
                          qrc::passes::RoutingKind::kSabreSwap,
                          qrc::passes::RoutingKind::kTketRouting),
        ::testing::Values(0, 1, 2), ::testing::Values(1, 2)));

// --------------------------------------------------- Euler angle sweep ----

class EulerGridTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(EulerGridTest, AllDecompositionsRoundTripOnAngleGrid) {
  const auto [i, j] = GetParam();
  // Grid includes the degenerate axes (0, pi, pi/2) where branch cuts live.
  const double grid[] = {0.0, kPi / 2, kPi, -kPi / 2, 0.3, -2.7};
  const double a = grid[i];
  const double b = grid[j];
  const auto u = qrc::la::rz_mat(a) * qrc::la::ry_mat(b) *
                 qrc::la::rz_mat(a / 2 + 0.1);
  EXPECT_TRUE(qrc::la::zyz_compose(qrc::la::zyz_decompose(u))
                  .approx_equal(u, 1e-8));
  EXPECT_TRUE(qrc::la::zxz_compose(qrc::la::zxz_decompose(u))
                  .approx_equal(u, 1e-8));
  EXPECT_TRUE(qrc::la::u3_compose(qrc::la::u3_decompose(u))
                  .approx_equal(u, 1e-8));
  EXPECT_TRUE(qrc::la::zxzxz_compose(qrc::la::zxzxz_decompose(u))
                  .approx_equal(u, 1e-8));
}

INSTANTIATE_TEST_SUITE_P(AngleGrid, EulerGridTest,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Range(0, 6)));

// ------------------------------------------------------- reward sweeps ----

class RewardMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(RewardMonotonicityTest, InsertingGatesNeverImprovesFidelity) {
  const int seed = GetParam();
  const auto& dev =
      qrc::device::get_device(qrc::device::DeviceId::kIonqHarmony);
  std::mt19937_64 rng(static_cast<std::uint64_t>(seed));
  Circuit c(5);
  double last = qrc::reward::expected_fidelity(c, dev);
  std::uniform_int_distribution<int> qpick(0, 4);
  for (int i = 0; i < 30; ++i) {
    const int q = qpick(rng);
    int q2 = qpick(rng);
    while (q2 == q) {
      q2 = qpick(rng);
    }
    if (i % 3 == 0) {
      c.rxx(0.5, q, q2);
    } else {
      c.rz(0.3, q);
    }
    const double now = qrc::reward::expected_fidelity(c, dev);
    EXPECT_LT(now, last);
    last = now;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewardMonotonicityTest,
                         ::testing::Range(1, 5));

// ------------------------------------------------- failure injection ------

TEST(FailureInjectionTest, CorruptedModelFilesRejected) {
  // Build a valid serialized agent, then corrupt it at several offsets.
  qrc::rl::Mlp net({3, 4, 2}, 1);
  std::stringstream good;
  net.save(good);
  const std::string text = good.str();

  for (const std::size_t cut : {std::size_t{0}, text.size() / 2}) {
    std::stringstream damaged(text.substr(0, cut));
    EXPECT_THROW((void)qrc::rl::Mlp::load(damaged), std::runtime_error);
  }
  std::stringstream wrong_magic("xlp 2\n3 2\n0 0 0 0 0 0 0 0\n");
  EXPECT_THROW((void)qrc::rl::Mlp::load(wrong_magic), std::runtime_error);
}

TEST(FailureInjectionTest, MalformedQasmRejected) {
  const char* cases[] = {
      "h q[0];",                              // statement before qreg
      "qreg q[2]; cx q[0];",                  // wrong arity
      "qreg q[2]; rz() q[0];",                // empty parameter
      "qreg q[2]; rz(pi q[0];",               // unbalanced parens
      "qreg q[2]; h q[9];",                   // out of range
      "qreg q[2]; frobnicate q[0];",          // unknown gate
  };
  for (const char* text : cases) {
    EXPECT_ANY_THROW((void)qrc::ir::from_qasm(text)) << text;
  }
}

TEST(FailureInjectionTest, PredictorLoadRejectsGarbage) {
  std::stringstream ss("qrc_predictor 9 0 40 1\n");
  EXPECT_THROW((void)qrc::core::Predictor::load(ss), std::runtime_error);
  std::stringstream ss2("not_a_predictor");
  EXPECT_THROW((void)qrc::core::Predictor::load(ss2), std::runtime_error);
}

}  // namespace
