// Tests for the benchmark circuit generators: well-formedness across the
// full size range, determinism, family coverage and semantic spot checks
// (GHZ/W-state amplitudes, QPE readout).

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "bench_suite/benchmarks.hpp"
#include "ir/sim.hpp"

namespace {

using qrc::bench::BenchmarkFamily;
using qrc::bench::make_benchmark;
using qrc::ir::Circuit;

TEST(BenchSuiteTest, AllFamiliesListed) {
  EXPECT_EQ(qrc::bench::all_families().size(),
            static_cast<std::size_t>(qrc::bench::kNumFamilies));
  std::set<std::string_view> names;
  for (const auto f : qrc::bench::all_families()) {
    names.insert(qrc::bench::family_name(f));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(qrc::bench::kNumFamilies));
  EXPECT_TRUE(names.contains("ae"));
  EXPECT_TRUE(names.contains("wstate"));
  EXPECT_TRUE(names.contains("qftentangled"));
}

TEST(BenchSuiteTest, AllFamiliesBuildAcrossSizes) {
  for (const auto family : qrc::bench::all_families()) {
    for (const int n : {2, 3, 5, 11, 20}) {
      const Circuit c = make_benchmark(family, n, 1);
      EXPECT_EQ(c.num_qubits(), n) << qrc::bench::family_name(family);
      EXPECT_GT(c.gate_count(), 0) << qrc::bench::family_name(family);
      // Target-independent level: measured on every qubit.
      EXPECT_EQ(c.count_ops().at("measure"), n)
          << qrc::bench::family_name(family);
      // Everything stays within 2-qubit gates (no MCX needed downstream).
      EXPECT_TRUE(c.max_gate_arity_at_most(2))
          << qrc::bench::family_name(family);
    }
  }
}

TEST(BenchSuiteTest, GeneratorsAreDeterministic) {
  for (const auto family : qrc::bench::all_families()) {
    const Circuit a = make_benchmark(family, 6, 3);
    const Circuit b = make_benchmark(family, 6, 3);
    ASSERT_EQ(a.size(), b.size()) << qrc::bench::family_name(family);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_TRUE(a.ops()[i] == b.ops()[i])
          << qrc::bench::family_name(family);
    }
  }
}

TEST(BenchSuiteTest, SeedsChangeVariationalFamilies) {
  const Circuit a = make_benchmark(BenchmarkFamily::kVqe, 5, 1);
  const Circuit b = make_benchmark(BenchmarkFamily::kVqe, 5, 2);
  bool differs = false;
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a.ops()[i] == b.ops()[i])) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(BenchSuiteTest, GhzStateIsCorrect) {
  const Circuit c = make_benchmark(BenchmarkFamily::kGhz, 5, 1);
  qrc::ir::Statevector s(5);
  s.apply(c);  // measures are ignored by the simulator
  const auto& amp = s.amplitudes();
  EXPECT_NEAR(std::abs(amp[0]), 1.0 / std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(std::abs(amp[31]), 1.0 / std::sqrt(2.0), 1e-9);
}

TEST(BenchSuiteTest, WstateHasUniformSingleExcitation) {
  const int n = 4;
  const Circuit c = make_benchmark(BenchmarkFamily::kWstate, n, 1);
  qrc::ir::Statevector s(n);
  s.apply(c);
  const auto& amp = s.amplitudes();
  const double expected = 1.0 / std::sqrt(static_cast<double>(n));
  for (int q = 0; q < n; ++q) {
    EXPECT_NEAR(std::abs(amp[std::size_t{1} << q]), expected, 1e-9)
        << "qubit " << q;
  }
  EXPECT_NEAR(std::abs(amp[0]), 0.0, 1e-9);
}

TEST(BenchSuiteTest, QpeExactRecoversPhase) {
  // With an exactly representable phase, the counting register collapses
  // onto a single basis state k with phase = k / 2^m.
  const int n = 5;
  const int m = n - 1;
  const Circuit c = make_benchmark(BenchmarkFamily::kQpeExact, n, 4);
  qrc::ir::Statevector s(n);
  s.apply(c);
  const auto& amp = s.amplitudes();
  int peaked = -1;
  for (std::size_t i = 0; i < amp.size(); ++i) {
    if (std::abs(amp[i]) > 0.99) {
      peaked = static_cast<int>(i);
    }
  }
  ASSERT_GE(peaked, 0) << "no sharp peak in QPE output";
  // Eigenstate qubit must still be |1>.
  EXPECT_TRUE((peaked >> m) & 1);
}

TEST(BenchSuiteTest, QftOfZeroIsUniform) {
  const Circuit c = make_benchmark(BenchmarkFamily::kQft, 4, 1);
  qrc::ir::Statevector s(4);
  s.apply(c);
  for (const auto& a : s.amplitudes()) {
    EXPECT_NEAR(std::abs(a), 1.0 / 4.0, 1e-9);
  }
}

TEST(BenchSuiteTest, FamiliesAreStructurallyDistinct) {
  // Distinct families should produce different op-count signatures for the
  // same size and seed (coarse check that no two generators alias).
  std::set<std::string> signatures;
  for (const auto family : qrc::bench::all_families()) {
    const Circuit c = make_benchmark(family, 7, 1);
    std::string sig;
    for (const auto& [k, v] : c.count_ops()) {
      sig += k + ":" + std::to_string(v) + ",";
    }
    sig += "d" + std::to_string(c.depth());
    signatures.insert(sig);
  }
  // pricingcall/pricingput and qpeexact/qpeinexact are intentionally
  // structure-identical pairs (they differ in angles only), so 20 distinct
  // signatures out of 22 families is the expected count.
  EXPECT_GE(signatures.size(), 20U);
}

TEST(BenchSuiteTest, SuiteCyclesFamiliesAndSizes) {
  const auto suite = qrc::bench::benchmark_suite(2, 20, 200);
  EXPECT_EQ(suite.size(), 200U);
  std::set<std::string> names;
  int min_q = 1000;
  int max_q = 0;
  for (const auto& c : suite) {
    names.insert(c.name());
    min_q = std::min(min_q, c.num_qubits());
    max_q = std::max(max_q, c.num_qubits());
  }
  EXPECT_EQ(min_q, 2);
  EXPECT_GE(max_q, 10);
  EXPECT_GT(names.size(), 150U);  // mostly unique instances
}

TEST(BenchSuiteTest, RejectsTooFewQubits) {
  EXPECT_THROW((void)make_benchmark(BenchmarkFamily::kGhz, 1, 0),
               std::invalid_argument);
}

TEST(BenchSuiteTest, BadQubitCountErrorNamesTheFamily) {
  // Sweeps report which instance was bad, so the message must carry the
  // family and the offending count.
  for (const int bad : {-3, 0, 1, qrc::bench::kMaxBenchmarkQubits + 1}) {
    try {
      (void)make_benchmark(BenchmarkFamily::kQftEntangled, bad, 0);
      FAIL() << "make_benchmark accepted " << bad << " qubits";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("qftentangled"),
                std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find(std::to_string(bad)),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(BenchSuiteTest, SuiteValidatesArgumentsWithNamedErrors) {
  using qrc::bench::benchmark_suite;
  const auto message_of = [](auto&& call) -> std::string {
    try {
      (void)call();
    } catch (const std::invalid_argument& e) {
      return e.what();
    }
    return "";
  };
  EXPECT_NE(message_of([] { return benchmark_suite(1, 5, 10); })
                .find("min_qubits"),
            std::string::npos);
  EXPECT_NE(message_of([] { return benchmark_suite(4, 3, 10); })
                .find("max_qubits"),
            std::string::npos);
  EXPECT_NE(message_of([] {
              return benchmark_suite(2, qrc::bench::kMaxBenchmarkQubits + 1,
                                     10);
            }).find("max_qubits"),
            std::string::npos);
  EXPECT_NE(message_of([] { return benchmark_suite(2, 5, 0); })
                .find("count"),
            std::string::npos);
}

}  // namespace
