// Tests for the tiered equivalence-checking engine (src/verify/): tier
// dispatch (Clifford tableau / alternating miter / random stimuli),
// permutation- and layout-awareness, measurement tolerance, verdict
// semantics (not-equivalent verdicts are witnessed and definitive), the
// Predictor verification gate, and the mutation helper.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <random>

#include "bench_suite/benchmarks.hpp"
#include "clifford/tableau.hpp"
#include "core/actions.hpp"
#include "core/predictor.hpp"
#include "device/library.hpp"
#include "ir/sim.hpp"
#include "la/complex.hpp"
#include "passes/opt/composite.hpp"
#include "verify/equivalence.hpp"
#include "verify/mutate.hpp"

namespace {

using qrc::ir::Circuit;
using qrc::la::kPi;
using qrc::verify::EquivalenceChecker;
using qrc::verify::Method;
using qrc::verify::Verdict;
using qrc::verify::VerifyOptions;

Circuit random_clifford(int n, int length, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> qpick(0, n - 1);
  Circuit c(n, "clifford");
  for (int i = 0; i < length; ++i) {
    const int q = qpick(rng);
    int q2 = qpick(rng);
    while (q2 == q) {
      q2 = qpick(rng);
    }
    switch (std::uniform_int_distribution<int>(0, 5)(rng)) {
      case 0: c.h(q); break;
      case 1: c.s(q); break;
      case 2: c.cx(q, q2); break;
      case 3: c.x(q); break;
      case 4: c.cz(q, q2); break;
      default: c.sx(q); break;
    }
  }
  return c;
}

Circuit random_circuit(int n, int length, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> ang(-kPi, kPi);
  std::uniform_int_distribution<int> qpick(0, n - 1);
  Circuit c(n, "random");
  for (int i = 0; i < length; ++i) {
    const int q = qpick(rng);
    int q2 = qpick(rng);
    while (q2 == q) {
      q2 = qpick(rng);
    }
    switch (std::uniform_int_distribution<int>(0, 7)(rng)) {
      case 0: c.h(q); break;
      case 1: c.t(q); break;
      case 2: c.cx(q, q2); break;
      case 3: c.rz(ang(rng), q); break;
      case 4: c.ry(ang(rng), q); break;
      case 5: c.rzz(ang(rng), q, q2); break;
      case 6: c.sx(q); break;
      default: c.cp(ang(rng), q, q2); break;
    }
  }
  return c;
}

// ----------------------------------------------------- Clifford tier ------

TEST(VerifyCliffordTest, FiftyQubitCliffordVerifiesViaTableau) {
  // Far beyond every dense tier: only the tableau fast path can decide.
  const Circuit a = random_clifford(50, 600, 7);
  Circuit b = a;
  b.add_global_phase(1.234);  // equivalence is up to global phase
  const EquivalenceChecker checker;
  const auto result = checker.check(a, b);
  EXPECT_EQ(result.verdict, Verdict::kEquivalent);
  EXPECT_EQ(result.method, Method::kCliffordTableau);
  EXPECT_DOUBLE_EQ(result.confidence, 1.0);
  EXPECT_EQ(result.checked_qubits, 50);
}

TEST(VerifyCliffordTest, FiftyQubitFaultIsCaught) {
  const Circuit a = random_clifford(50, 600, 8);
  Circuit b = a;
  // Replace op 300 with a different gate on the same wire.
  const auto replacement = a.ops()[300].kind() == qrc::ir::GateKind::kX
                               ? qrc::ir::GateKind::kH
                               : qrc::ir::GateKind::kX;
  b.mutable_ops()[300] = qrc::ir::Operation(
      replacement, std::array{a.ops()[300].qubit(0)});
  const auto result = EquivalenceChecker().check(a, b);
  EXPECT_EQ(result.verdict, Verdict::kNotEquivalent);
  EXPECT_EQ(result.method, Method::kCliffordTableau);
  EXPECT_DOUBLE_EQ(result.confidence, 1.0);
}

TEST(VerifyCliffordTest, ResynthesisedTableauIsEquivalent) {
  const Circuit a = random_clifford(12, 80, 9);
  const auto tableau = qrc::clifford::Tableau::from_circuit(a);
  ASSERT_TRUE(tableau.has_value());
  const auto result = EquivalenceChecker().check(a, tableau->to_circuit());
  EXPECT_EQ(result.verdict, Verdict::kEquivalent);
  EXPECT_EQ(result.method, Method::kCliffordTableau);
}

// ------------------------------------------------ alternating miter -------

TEST(VerifyMiterTest, OptimisedNonCliffordCircuitEquivalent) {
  Circuit a = random_circuit(5, 40, 21);
  Circuit b = a;
  const qrc::passes::FullPeepholeOptimise opt;
  (void)opt.run(b, {});
  ASSERT_NE(a.size(), b.size()) << "optimiser should have changed the gate "
                                   "list, else the test is vacuous";
  const auto result = EquivalenceChecker().check(a, b);
  EXPECT_EQ(result.verdict, Verdict::kEquivalent);
  EXPECT_EQ(result.method, Method::kAlternatingMiter);
  EXPECT_DOUBLE_EQ(result.confidence, 1.0);
}

TEST(VerifyMiterTest, SingleGateFaultRefutedExactly) {
  const Circuit a = random_circuit(5, 40, 22);
  Circuit b = a;
  std::size_t target = b.size();
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (b.ops()[i].num_params() > 0) {
      target = i;
      break;
    }
  }
  ASSERT_LT(target, b.size()) << "no parameterised gate to perturb";
  b.mutable_ops()[target].set_param(0, b.ops()[target].param(0) + 0.5);
  const auto result = EquivalenceChecker().check(a, b);
  EXPECT_EQ(result.verdict, Verdict::kNotEquivalent);
  EXPECT_EQ(result.method, Method::kAlternatingMiter);
  EXPECT_DOUBLE_EQ(result.confidence, 1.0);
}

TEST(VerifyMiterTest, AgreesWithReferenceSimOnRandomPairs) {
  // The miter must agree with the independent statevector implementation
  // on both equivalent and inequivalent pairs.
  const EquivalenceChecker checker;
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    const Circuit a = random_circuit(4, 24, seed);
    Circuit b = random_circuit(4, 24, seed + 1000);
    const bool reference = qrc::ir::circuits_equivalent(a, b);
    const auto result = checker.check(a, b);
    EXPECT_EQ(result.verdict, reference ? Verdict::kEquivalent
                                        : Verdict::kNotEquivalent)
        << "seed " << seed;
    const auto same = checker.check(a, a);
    EXPECT_EQ(same.verdict, Verdict::kEquivalent) << "seed " << seed;
  }
}

TEST(VerifyMiterTest, PermutationAware) {
  // cx(0,1) then swap == remapped cx under the {1,0} output permutation
  // (mirrors the ir::circuits_equivalent convention).
  Circuit a(2);
  a.cx(0, 1);
  Circuit b(2);
  b.cx(0, 1);
  b.swap(0, 1);
  b.t(0);  // force the non-Clifford path
  Circuit a2 = a;
  a2.t(1);
  const auto result = EquivalenceChecker().check(a2, b, {1, 0});
  EXPECT_EQ(result.verdict, Verdict::kEquivalent);
  EXPECT_EQ(result.method, Method::kAlternatingMiter);
  const auto wrong = EquivalenceChecker().check(a2, b);
  EXPECT_EQ(wrong.verdict, Verdict::kNotEquivalent);
}

TEST(VerifyMiterTest, PermutationMatchesReferenceOnRandomPerms) {
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 6; ++trial) {
    const int n = 4;
    std::vector<int> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    std::shuffle(perm.begin(), perm.end(), rng);
    const Circuit a = random_circuit(n, 20, 400 + static_cast<std::uint64_t>(trial));
    // b := a followed by the permutation, realised through remapping:
    // remapped(perm) applied to each op + the inverse wire order gives the
    // reference implementation its own path to the same comparison.
    const bool reference =
        qrc::ir::circuits_equivalent(a, a.remapped(perm, n), 4, 12345, perm);
    const auto result =
        EquivalenceChecker().check(a, a.remapped(perm, n), perm);
    EXPECT_EQ(result.verdict == Verdict::kEquivalent, reference)
        << "trial " << trial;
  }
}

TEST(VerifyMiterTest, DifferentWidthsWidenedWithIdentity) {
  Circuit a(2);
  a.h(0);
  a.cx(0, 1);
  a.t(1);
  Circuit b(4);
  b.h(0);
  b.cx(0, 1);
  b.t(1);
  EXPECT_EQ(EquivalenceChecker().check(a, b).verdict, Verdict::kEquivalent);
  b.h(3);  // touching the extra wire breaks identity-extension
  EXPECT_EQ(EquivalenceChecker().check(a, b).verdict,
            Verdict::kNotEquivalent);
}

// ------------------------------------------------------ stimuli tier ------

TEST(VerifyStimuliTest, WideCircuitFallsBackToSampling) {
  VerifyOptions options;
  options.max_miter_qubits = 3;  // force the sampling tier
  const Circuit a = random_circuit(6, 30, 31);
  Circuit b = a;
  const qrc::passes::FullPeepholeOptimise opt;
  (void)opt.run(b, {});
  const auto result = EquivalenceChecker(options).check(a, b);
  EXPECT_EQ(result.verdict, Verdict::kEquivalent);
  EXPECT_EQ(result.method, Method::kRandomStimuli);
  EXPECT_LT(result.confidence, 1.0);
  EXPECT_GT(result.confidence, 0.99);
}

TEST(VerifyStimuliTest, SamplingCatchesFaults) {
  VerifyOptions options;
  options.max_miter_qubits = 3;
  const Circuit a = random_circuit(6, 30, 32);
  Circuit b = a;
  b.mutable_ops()[10] = qrc::ir::Operation(qrc::ir::GateKind::kH,
                                           std::array{b.ops()[10].qubit(0)});
  const auto result = EquivalenceChecker(options).check(a, b);
  if (result.verdict == Verdict::kNotEquivalent) {
    EXPECT_EQ(result.method, Method::kRandomStimuli);
    EXPECT_DOUBLE_EQ(result.confidence, 1.0);  // witnessed
  } else {
    // The replaced op could have been an h already; then equivalence is
    // genuine.
    EXPECT_TRUE(a.ops()[10] == b.ops()[10]);
  }
}

TEST(VerifyStimuliTest, TooWideIsUnknownNotWrong) {
  Circuit a(23);
  for (int q = 0; q + 1 < 23; ++q) {
    a.cx(q, q + 1);
  }
  a.t(0);  // non-Clifford, 23 qubits: beyond both dense tiers
  const auto result = EquivalenceChecker().check(a, a);
  EXPECT_EQ(result.verdict, Verdict::kUnknown);
  EXPECT_EQ(result.method, Method::kNone);
  EXPECT_EQ(result.confidence, 0.0);
}

TEST(VerifyStimuliTest, WideInstancesShrinkTheStimulusBudget) {
  // 17 active qubits: the adaptive budget drops to num_stimuli / 4 and the
  // reported confidence drops with it — still a decided verdict.
  Circuit a(17);
  for (int q = 0; q + 1 < 17; ++q) {
    a.cx(q, q + 1);
  }
  a.t(16);
  const auto result = EquivalenceChecker().check(a, a);
  EXPECT_EQ(result.verdict, Verdict::kEquivalent);
  EXPECT_EQ(result.method, Method::kRandomStimuli);
  EXPECT_DOUBLE_EQ(result.confidence, 1.0 - std::pow(0.5, 2.0));
}

// ---------------------------------------------- measurement tolerance -----

TEST(VerifyToleranceTest, DiagonalBeforeMeasureAccepted) {
  Circuit a(2);
  a.h(0);
  a.cx(0, 1);
  a.t(0);  // non-Clifford so the miter runs
  a.rz(0.7, 1);
  a.measure_all();
  Circuit b(2);
  b.h(0);
  b.cx(0, 1);
  b.t(0);  // the trailing rz was "optimised away" before the measures
  b.measure_all();
  const auto result = EquivalenceChecker().check(a, b);
  EXPECT_EQ(result.verdict, Verdict::kEquivalent);
  EXPECT_LT(result.confidence, 1.0);  // distribution-level, not exact
  EXPECT_NE(result.detail.find("diagonal"), std::string::npos);
}

TEST(VerifyToleranceTest, WithoutMeasuresTheSameGapIsRefuted) {
  Circuit a(2);
  a.h(0);
  a.cx(0, 1);
  a.t(0);
  a.rz(0.7, 1);
  Circuit b(2);
  b.h(0);
  b.cx(0, 1);
  b.t(0);
  const auto result = EquivalenceChecker().check(a, b);
  EXPECT_EQ(result.verdict, Verdict::kNotEquivalent);
}

TEST(VerifyToleranceTest, NonDiagonalGapIsRefutedDespiteMeasures) {
  Circuit a(2);
  a.h(0);
  a.cx(0, 1);
  a.t(0);
  a.measure_all();
  Circuit b = a;
  b.mutable_ops()[1] = qrc::ir::Operation(qrc::ir::GateKind::kCX,
                                          std::array{1, 0});
  const auto result = EquivalenceChecker().check(a, b);
  EXPECT_EQ(result.verdict, Verdict::kNotEquivalent);
}

TEST(VerifyToleranceTest, CanBeDisabled) {
  Circuit a(2);
  a.h(0);
  a.t(0);
  a.h(1);
  a.rz(0.7, 1);  // trailing diagonal: invisible to the measures
  a.measure_all();
  Circuit b(2);
  b.h(0);
  b.t(0);
  b.h(1);
  b.measure_all();
  VerifyOptions strict;
  strict.measurement_tolerant = false;
  EXPECT_EQ(EquivalenceChecker(strict).check(a, b).verdict,
            Verdict::kNotEquivalent);
  EXPECT_EQ(EquivalenceChecker().check(a, b).verdict, Verdict::kEquivalent);
}

TEST(VerifyToleranceTest, GenuineMidCircuitMeasureIsUnknownNotEquivalent) {
  // 'measure q0; h q0' is NOT the same program as 'h q0; measure q0':
  // stripping the measure would certify them equivalent, so the checker
  // must refuse instead (the h changes what the measurement records).
  Circuit a(2);
  a.measure(0);
  a.h(0);
  a.t(1);
  Circuit b(2);
  b.h(0);
  b.t(1);
  b.measure(0);
  const auto result = EquivalenceChecker().check(a, b);
  EXPECT_EQ(result.verdict, Verdict::kUnknown);
  EXPECT_NE(result.detail.find("mid-circuit"), std::string::npos);
}

TEST(VerifyToleranceTest, SwapTailAfterMeasureIsDeferrable) {
  // A routing swap network moving other qubits through an already
  // measured wire does not change what that measurement recorded — the
  // checker must still decide (this is what SABRE-routed circuits with
  // early measures look like).
  Circuit a(3);
  a.h(0);
  a.cx(0, 1);
  a.t(2);
  a.measure(1);
  // swap(1, 2) as the router writes it: a cx triple through wire 1.
  a.cx(1, 2);
  a.cx(2, 1);
  a.cx(1, 2);
  a.measure(0);
  a.measure(2);
  Circuit b(3);
  b.h(0);
  b.cx(0, 1);
  b.t(2);
  b.swap(1, 2);
  b.measure_all();
  const auto result = EquivalenceChecker().check(a, b);
  EXPECT_EQ(result.verdict, Verdict::kEquivalent) << result.detail;
}

TEST(VerifyToleranceTest, ResetMakesTheCheckUnknown) {
  Circuit a(2);
  a.h(0);
  a.reset(0);
  const auto result = EquivalenceChecker().check(a, a);
  EXPECT_EQ(result.verdict, Verdict::kUnknown);
  EXPECT_NE(result.detail.find("reset"), std::string::npos);
}

// ------------------------------------------------------- mapped checks ----

TEST(VerifyMappedTest, RoutedBenchmarkVerifiesThroughLayouts) {
  using qrc::core::ActionRegistry;
  const auto& registry = ActionRegistry::instance();
  const auto& dev =
      qrc::device::get_device(qrc::device::DeviceId::kOqcLucy);
  qrc::core::CompilationState state;
  state.circuit =
      qrc::bench::make_benchmark(qrc::bench::BenchmarkFamily::kQft, 5, 3);
  for (const char* name :
       {"platform_oqc", "device_oqc_lucy", "BasisTranslator", "SabreLayout",
        "SabreSwap", "BasisTranslator", "Optimize1qGatesDecomposition"}) {
    const int id = registry.index_of(name);
    if (registry.at(id).valid(state)) {
      registry.at(id).apply(state, 5);
    }
  }
  ASSERT_EQ(state.state(), qrc::core::MdpState::kDone);
  ASSERT_TRUE(state.initial_layout.has_value());
  const auto result = EquivalenceChecker().check_mapped(
      qrc::bench::make_benchmark(qrc::bench::BenchmarkFamily::kQft, 5, 3),
      state.circuit, *state.initial_layout, state.final_layout);
  EXPECT_EQ(result.verdict, Verdict::kEquivalent) << result.detail;
  EXPECT_EQ(dev.num_qubits(), 8);
  EXPECT_LE(result.checked_qubits, dev.num_qubits());
  EXPECT_GE(result.checked_qubits, 5);
}

TEST(VerifyMappedTest, WrongFinalLayoutRefuted) {
  // A deliberate off-by-one in the final layout must flip the verdict:
  // layout bookkeeping is exactly what routed-circuit verification guards.
  Circuit logical(2, "bell");
  logical.h(0);
  logical.cx(0, 1);
  logical.t(1);
  Circuit physical(3);
  physical.h(1);
  physical.cx(1, 2);
  physical.t(2);
  physical.swap(0, 1);
  const auto good = EquivalenceChecker().check_mapped(logical, physical,
                                                      {1, 2}, {0, 2});
  EXPECT_EQ(good.verdict, Verdict::kEquivalent) << good.detail;
  const auto bad = EquivalenceChecker().check_mapped(logical, physical,
                                                     {1, 2}, {1, 2});
  EXPECT_EQ(bad.verdict, Verdict::kNotEquivalent);
}

TEST(VerifyMappedTest, AncillaMustReturnToZero) {
  // A physical circuit that parks junk on an ancilla wire is not a valid
  // implementation even if the logical wires look right.
  Circuit logical(1);
  logical.t(0);
  logical.h(0);
  Circuit physical(2);
  physical.t(0);
  physical.h(0);
  physical.x(1);  // ancilla left dirty
  const auto result =
      EquivalenceChecker().check_mapped(logical, physical, {0}, {0});
  EXPECT_EQ(result.verdict, Verdict::kNotEquivalent);
}

TEST(VerifyMappedTest, ReadoutMismatchRefuted) {
  // `measure q[i]` records into c[i]: the classical record is tied to the
  // physical wire. A measure emitted before a later swap moved a
  // different slot onto its wire records the wrong logical qubit — and is
  // invisible to the unitary tiers, which strip measures. check_mapped
  // must refute on the measured sets alone.
  Circuit logical(2);
  logical.h(0);
  logical.cx(0, 1);
  logical.measure(0);
  logical.measure(1);
  Circuit physical(3);
  physical.h(0);
  physical.cx(0, 1);
  physical.measure(1);  // recorded into c[1]...
  physical.swap(1, 2);  // ...but logical 1 then moves to wire 2
  physical.measure(0);
  const auto result =
      EquivalenceChecker().check_mapped(logical, physical, {0, 1}, {0, 2});
  EXPECT_EQ(result.verdict, Verdict::kNotEquivalent);
  EXPECT_NE(result.detail.find("readout"), std::string::npos)
      << result.detail;
}

TEST(VerifyMappedTest, RoutingThoroughfareKeepsMeasurementTolerance) {
  // A swap network may borrow a wire that ends active-but-unmeasured (it
  // carries only the |0> ancilla back). That thoroughfare must not void
  // the distribution-level tolerance for diagonal phases removed before
  // measure-all on the *measured* wires.
  Circuit logical(2);
  logical.h(0);
  logical.cx(0, 1);
  logical.rz(0.7, 1);  // legitimately removable before measurement
  logical.measure(0);
  logical.measure(1);
  Circuit physical(3);
  physical.h(0);
  physical.cx(0, 1);
  physical.swap(1, 2);  // wire 1 becomes an unmeasured thoroughfare
  physical.measure(0);
  physical.measure(2);  // rz dropped: diagonal gap on a measured wire
  const auto result =
      EquivalenceChecker().check_mapped(logical, physical, {0, 1}, {0, 2});
  EXPECT_EQ(result.verdict, Verdict::kEquivalent) << result.detail;
  EXPECT_NE(result.detail.find("diagonal"), std::string::npos)
      << result.detail;
}

TEST(VerifyMappedTest, LayoutValidationThrows) {
  Circuit logical(2);
  logical.cx(0, 1);
  Circuit physical(3);
  physical.cx(0, 1);
  const EquivalenceChecker checker;
  EXPECT_THROW((void)checker.check_mapped(logical, physical, {0}, {0, 1}),
               std::invalid_argument);
  EXPECT_THROW((void)checker.check_mapped(logical, physical, {0, 3}, {}),
               std::invalid_argument);
  EXPECT_THROW((void)checker.check_mapped(logical, physical, {1, 1}, {}),
               std::invalid_argument);
  EXPECT_THROW((void)checker.check_mapped(physical, logical, {}, {}),
               std::invalid_argument);
}

TEST(VerifyMappedTest, CompactionKeepsWideDevicesCheap) {
  // 3 active qubits on a 127-qubit register must verify in a 3-qubit
  // space, not 127.
  Circuit logical(3);
  logical.h(0);
  logical.cx(0, 1);
  logical.cx(1, 2);
  logical.t(2);
  Circuit physical(127);
  physical.h(100);
  physical.cx(100, 101);
  physical.cx(101, 102);
  physical.t(102);
  const auto result = EquivalenceChecker().check_mapped(
      logical, physical, {100, 101, 102}, {100, 101, 102});
  EXPECT_EQ(result.verdict, Verdict::kEquivalent);
  EXPECT_EQ(result.checked_qubits, 3);
  EXPECT_EQ(result.method, Method::kAlternatingMiter);
}

// ----------------------------------------------- Predictor integration ----

TEST(VerifyPredictorTest, CompileVerifiedGatesTheResult) {
  qrc::core::PredictorConfig config;
  config.seed = 3;
  config.ppo.total_timesteps = 512;
  config.ppo.steps_per_update = 256;
  config.ppo.hidden_sizes = {16};
  qrc::core::Predictor predictor(config);
  Circuit ghz(3, "ghz3");
  ghz.h(0);
  ghz.cx(0, 1);
  ghz.cx(1, 2);
  ghz.measure_all();
  (void)predictor.train({ghz});

  const auto plain = predictor.compile(ghz);
  EXPECT_FALSE(plain.verification.has_value());
  const auto verified = predictor.compile_verified(ghz);
  ASSERT_TRUE(verified.verification.has_value());
  EXPECT_EQ(verified.verification->verdict, Verdict::kEquivalent)
      << verified.verification->detail;
  // Verification only observes: the compiled artifact is identical.
  EXPECT_TRUE(plain.circuit == verified.circuit);
  EXPECT_EQ(plain.final_layout, verified.final_layout);

  // compile_all with the gate fills every result.
  const std::vector<Circuit> suite = {ghz, ghz};
  qrc::verify::VerifyOptions options;
  const auto results = predictor.compile_all(suite, nullptr, &options);
  for (const auto& r : results) {
    ASSERT_TRUE(r.verification.has_value());
    EXPECT_EQ(r.verification->verdict, Verdict::kEquivalent);
    EXPECT_TRUE(r.circuit == plain.circuit);
  }

  // verify_compilation refutes a tampered result.
  auto tampered = plain;
  ASSERT_FALSE(tampered.circuit.empty());
  auto mutation = qrc::verify::mutate_single_gate(tampered.circuit, 5);
  ASSERT_TRUE(mutation.has_value());
  tampered.circuit = mutation->circuit;
  const auto verdict = qrc::core::verify_compilation(ghz, tampered);
  EXPECT_NE(verdict.verdict, Verdict::kUnknown);
}

// -------------------------------------------------- registry property ----

TEST(VerifyPassPropertyTest, EveryRegisteredPassPreservesEquivalence) {
  // Every optimization/synthesis pass in the action registry must preserve
  // equivalence on seeded random 5-10 qubit circuits, judged by the
  // EquivalenceChecker itself. Enumerating the registry (instead of a
  // hand-kept list) means a newly added pass cannot dodge the sweep.
  using qrc::core::ActionRegistry;
  using qrc::core::ActionType;
  const auto& registry = ActionRegistry::instance();
  const auto& dev =
      qrc::device::get_device(qrc::device::DeviceId::kIonqHarmony);
  const EquivalenceChecker checker;
  int passes_swept = 0;
  for (int i = 0; i < registry.size(); ++i) {
    const auto& action = registry.at(i);
    if (action.type() != ActionType::kOptimization &&
        action.type() != ActionType::kSynthesis) {
      continue;
    }
    ++passes_swept;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const int n = 5 + static_cast<int>(seed);  // 6..8 qubits
      qrc::core::CompilationState state;
      state.circuit = random_circuit(n, 30, 7000 + seed);
      state.platform = dev.platform();
      state.device = &dev;
      const Circuit original = state.circuit;
      if (!action.valid(state)) {
        continue;
      }
      action.apply(state, seed);
      const auto result = checker.check(original, state.circuit);
      EXPECT_EQ(result.verdict, Verdict::kEquivalent)
          << action.name() << " seed " << seed << ": " << result.detail;
    }
  }
  EXPECT_GE(passes_swept, 13);  // 12 optimizations + BasisTranslator
}

// ------------------------------------------------------ mutation tool -----

TEST(VerifyMutateTest, MutationsChangeTheCircuitAndAreDescribed) {
  const Circuit c = random_circuit(4, 20, 77);
  int produced = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto mutation = qrc::verify::mutate_single_gate(c, seed);
    if (!mutation.has_value()) {
      continue;
    }
    ++produced;
    EXPECT_FALSE(mutation->description.empty());
    EXPECT_FALSE(mutation->circuit == c);
  }
  EXPECT_GE(produced, 15);
}

TEST(VerifyMutateTest, MeasureOnlyCircuitHasNoMutableGate) {
  Circuit c(2);
  c.measure_all();
  EXPECT_FALSE(qrc::verify::mutate_single_gate(c, 1).has_value());
}

// ------------------------------------------------------- options/misc -----

TEST(VerifyOptionsTest, BadOptionsRejected) {
  const auto construct = [](const VerifyOptions& options) {
    const EquivalenceChecker checker(options);
    (void)checker;
  };
  VerifyOptions options;
  options.max_miter_qubits = 13;  // Choi state would need 26 qubits
  EXPECT_THROW(construct(options), std::invalid_argument);
  options = {};
  options.max_stimuli_qubits = 25;
  EXPECT_THROW(construct(options), std::invalid_argument);
  options = {};
  options.num_stimuli = 0;
  EXPECT_THROW(construct(options), std::invalid_argument);
}

TEST(VerifyNamesTest, VerdictAndMethodNamesRoundTrip) {
  EXPECT_EQ(qrc::verify::verdict_name(Verdict::kEquivalent), "equivalent");
  EXPECT_EQ(qrc::verify::verdict_name(Verdict::kNotEquivalent),
            "not_equivalent");
  EXPECT_EQ(qrc::verify::verdict_name(Verdict::kUnknown), "unknown");
  EXPECT_EQ(qrc::verify::method_name(Method::kCliffordTableau),
            "clifford_tableau");
  EXPECT_EQ(qrc::verify::method_name(Method::kAlternatingMiter),
            "alternating_miter");
  EXPECT_EQ(qrc::verify::method_name(Method::kRandomStimuli),
            "random_stimuli");
  EXPECT_EQ(qrc::verify::method_name(Method::kNone), "none");
}

}  // namespace
